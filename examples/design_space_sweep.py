#!/usr/bin/env python
"""Design-space study: what should the next server core spend area on?

The kind of question the paper's tooling exists to answer.  For each
workload this script sweeps issue-window size, ROB decoupling, issue
aggressiveness and runahead, then translates MLP into an estimated CPI
improvement (Equation 2) with the cycle simulator anchoring CPI_perf
and Overlap_CM — ranking the design options by performance per
"hardware cost" (a toy cost model: CAM entries are 4x FIFO entries).

Run:  python examples/design_space_sweep.py [workload] [trace_length] [jobs]

*jobs* (or the ``REPRO_JOBS`` environment variable) runs the
configuration sweep on a process pool; results are identical to the
serial run.  See docs/PERFORMANCE.md.
"""

import sys

from repro import CycleSimConfig, MachineConfig, annotate, generate_trace, run_cyclesim
from repro.analysis.sweep import sweep
from repro.analysis.tables import format_table
from repro.perf.cpi_model import derive_overlap_cm, estimate_cpi

MISS_PENALTY = 1000

OPTIONS = [
    # label                      machine                                cost
    ("baseline 64C", MachineConfig.named("64C"), 0),
    ("wider issue: 128C", MachineConfig.named("128C"), 64 * 4 + 64),
    ("decoupled ROB: 64C/rob256", MachineConfig.named("64C", rob=256), 192),
    ("aggressive issue: 64E", MachineConfig.named("64E"), 16),
    ("both: 64E/rob256", MachineConfig.named("64E", rob=256), 208),
    ("runahead", MachineConfig.runahead_machine(), 96),
]


def study(workload, length, jobs=None):
    trace = generate_trace(workload, length)
    annotated = annotate(trace)

    # Anchor the CPI model on the baseline.
    base_machine = OPTIONS[0][1]
    real = run_cyclesim(
        annotated, CycleSimConfig.from_machine(base_machine, MISS_PENALTY)
    )
    perfect = run_cyclesim(
        annotated,
        CycleSimConfig.from_machine(base_machine, MISS_PENALTY, perfect_l2=True),
    )
    grid = sweep(
        annotated, [(label, m) for label, m, _ in OPTIONS], jobs=jobs
    )
    base = grid.results["baseline 64C"]
    base_rate = base.accesses / base.instructions
    overlap = derive_overlap_cm(
        real.cpi, perfect.cpi, base_rate, MISS_PENALTY, base.mlp
    )
    base_cpi = estimate_cpi(
        perfect.cpi, overlap, base_rate, MISS_PENALTY, base.mlp
    )

    rows = []
    for label, _, cost in OPTIONS:
        result = grid.results[label]
        rate = result.accesses / result.instructions
        cpi = estimate_cpi(perfect.cpi, overlap, rate, MISS_PENALTY, result.mlp)
        gain = base_cpi / cpi - 1
        value = gain / cost * 1000 if cost else None
        rows.append([label, result.mlp, cpi, gain, value])

    print(
        format_table(
            ["option", "MLP", "est. CPI", "speedup", "speedup/kcost"],
            rows,
            title=f"\n{workload} @ {MISS_PENALTY}-cycle memory,"
            f" {length} instructions",
        )
    )
    best = max(
        (r for r in rows if r[4] is not None), key=lambda r: r[4]
    )
    print(f"best performance per unit cost: {best[0]}")


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "database"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 120_000
    jobs = int(sys.argv[3]) if len(sys.argv) > 3 else None
    study(workload, length, jobs=jobs)


if __name__ == "__main__":
    main()
