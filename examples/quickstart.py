#!/usr/bin/env python
"""Quickstart: measure the MLP of a workload on a few machines.

Generates the synthetic database workload, annotates it against the
paper's default memory hierarchy, and compares the MLP of an in-order
core, the default out-of-order 64C machine, and a runahead machine —
the headline comparison of the paper in ~20 lines.

Run:  python examples/quickstart.py [trace_length]
"""

import sys

from repro import (
    MachineConfig,
    MLPSim,
    annotate,
    generate_trace,
    simulate_stall_on_use,
)


def main():
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    print(f"generating a {length}-instruction database trace ...")
    trace = generate_trace("database", length)

    print("annotating (caches + branch predictor + value predictor) ...")
    annotated = annotate(trace)
    print(
        f"  {annotated.num_offchip()} useful off-chip accesses in the"
        f" measured region ({annotated.miss_rate_per_100():.2f} per 100"
        " instructions)"
    )

    print("\nsimulating:")
    in_order = simulate_stall_on_use(annotated)
    print(f"  {in_order.summary()}")

    default = MLPSim(MachineConfig.named("64C")).run(annotated)
    print(f"  {default.summary()}")

    runahead = MLPSim(MachineConfig.runahead_machine()).run(annotated)
    print(f"  {runahead.summary()}")

    print(
        "\nrunahead improves MLP over the conventional machine by"
        f" {runahead.mlp / default.mlp - 1:+.0%}"
        f" (and over in-order by {runahead.mlp / in_order.mlp - 1:+.0%})."
    )


if __name__ == "__main__":
    main()
