#!/usr/bin/env python
"""Multithreaded MLP: the paper's Section 7 future work, explored.

The paper closes by naming "studying MLP for multithreaded processors"
as future work.  This script profiles the three commercial workloads
with MLPsim, composes 1-8 copies onto one SMT core with the epoch-
timeline model of ``repro.core.smt``, and reports how aggregate MLP and
throughput scale — including the interaction with runahead execution
(do you still want runahead once you have SMT?).

Run:  python examples/smt_study.py [trace_length]
"""

import sys

from repro import MachineConfig, annotate, generate_trace
from repro.analysis.tables import format_table
from repro.core.smt import profile_workload, simulate_smt

THREAD_COUNTS = (1, 2, 4, 8)


def study(name, trace_len):
    # Each hardware thread runs its own instance of the workload (a
    # different seed), so thread phases are not artificially in lockstep.
    conventional = []
    runahead = []
    for thread in range(max(THREAD_COUNTS)):
        annotated = annotate(generate_trace(name, trace_len,
                                            seed=1234 + 7 * thread))
        conventional.append(
            profile_workload(annotated, MachineConfig.named("64C"),
                             workload=f"{name}#{thread}")
        )
        runahead.append(
            profile_workload(annotated, MachineConfig.runahead_machine(),
                             workload=f"{name}#{thread}/RAE")
        )

    rows = []
    for threads in THREAD_COUNTS:
        conv = simulate_smt(conventional[:threads])
        rae = simulate_smt(runahead[:threads])
        rows.append(
            [
                threads,
                conv.mlp,
                conv.speedup_vs_serial,
                rae.mlp,
                rae.speedup_vs_serial,
            ]
        )
    print(
        format_table(
            [
                "threads",
                "MLP (64C)",
                "SMT gain (64C)",
                "MLP (RAE)",
                "SMT gain (RAE)",
            ],
            rows,
            title=f"\n=== {name} ===",
        )
    )
    return rows


def main():
    trace_len = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    verdicts = []
    for name in ("database", "specjbb2000", "specweb99"):
        rows = study(name, trace_len)
        single_rae = rows[0][3]
        four_conv = rows[2][1]
        verdicts.append(
            f"{name}: 4 conventional threads reach MLP {four_conv:.2f} vs"
            f" {single_rae:.2f} for one runahead thread"
        )
    print("\nrunahead-vs-SMT verdicts:")
    for verdict in verdicts:
        print(f"  - {verdict}")
    print(
        "\nSMT multiplies MLP across threads (overlapping *different*"
        " threads' epochs); runahead deepens each thread's own epochs."
        " They compose: the RAE columns keep their advantage at every"
        " thread count."
    )


if __name__ == "__main__":
    main()
