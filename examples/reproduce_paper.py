#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Runs all 13 exhibit harnesses and writes their formatted output to
stdout (and optionally to a directory).  ``REPRO_TRACE_LEN`` controls
the trace length (default 120,000 instructions per workload).

Run:  python examples/reproduce_paper.py [--out DIR] [--jobs N] [exhibit ...]
"""

import argparse
import os
import pathlib
import sys
import time

from repro.experiments import EXHIBITS, run_exhibit
from repro.robustness.atomic import atomic_write_text


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "exhibits",
        nargs="*",
        default=list(EXHIBITS),
        help="exhibit names to run (default: all)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, help="directory to archive outputs in"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the configuration sweeps"
        " (sets REPRO_JOBS; 0 = one per CPU, default serial)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)

    unknown = [name for name in args.exhibits if name not in EXHIBITS]
    if unknown:
        parser.error(f"unknown exhibits: {unknown}; choose from {list(EXHIBITS)}")
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)

    # Timing lines are progress reporting, not results: the archived
    # exhibit text itself stays a pure function of (trace, seed, config).
    total = time.time()  # reprolint: disable=determinism
    for name in args.exhibits:
        started = time.time()  # reprolint: disable=determinism
        exhibit = run_exhibit(name)
        text = exhibit.format()
        print(text)
        elapsed = time.time() - started  # reprolint: disable=determinism
        print(f"[{name} took {elapsed:.1f}s]\n")
        if args.out:
            atomic_write_text(args.out / f"{name}.txt", text + "\n")
    wall = time.time() - total  # reprolint: disable=determinism
    print(f"reproduced {len(args.exhibits)} exhibits in {wall:.0f}s")


if __name__ == "__main__":
    sys.exit(main())
