#!/usr/bin/env python
"""A guided tour of the epoch model using the paper's Examples 1-5.

For each worked example of Section 3 this script prints the instruction
sequence, runs MLPsim with epoch-set recording, and shows how the
window termination conditions partition the stream — reproducing the
epoch sets printed in the paper.

Run:  python examples/epoch_model_tour.py
"""

from repro import MachineConfig, MLPSim
from repro.workloads.microbench import EXAMPLES

MACHINES = {
    1: [("window of 4 (paper)", MachineConfig.named("4C"))],
    2: [
        ("64C (serializing MEMBAR)", MachineConfig.named("64C")),
        ("64E (non-serializing)", MachineConfig.named("64E")),
    ],
    3: [("64C", MachineConfig.named("64C"))],
    4: [
        ("config A: loads in order", MachineConfig.named("64A")),
        ("config B: wait for store addresses", MachineConfig.named("64B")),
        ("config C: speculate past stores", MachineConfig.named("64C")),
    ],
    5: [
        ("branches in order (config C)", MachineConfig.named("64C")),
        ("branches out of order (config D)", MachineConfig.named("64D")),
    ],
}

EVENT_NAMES = [
    ("dmiss", "Dmiss"),
    ("imiss", "Imiss"),
    ("mispred", "Mispred"),
]


def describe(annotated, index):
    tags = [
        label
        for attr, label in EVENT_NAMES
        if getattr(annotated, attr)[index]
    ]
    suffix = f"   <- {', '.join(tags)}" if tags else ""
    return f"    i{index + 1}: {annotated.trace.instruction(index)}{suffix}"


def main():
    for number, build in sorted(EXAMPLES.items()):
        annotated = build()
        print(f"=== Paper Example {number} " + "=" * 40)
        for index in range(len(annotated.trace)):
            print(describe(annotated, index))
        for label, machine in MACHINES[number]:
            result = MLPSim(machine, record_sets=True).run(annotated)
            sets = " ".join(
                "{" + ", ".join(f"i{m + 1}" for m in e.members) + "}"
                for e in result.epoch_records
            )
            print(f"  [{label}]")
            print(f"    epoch sets: {sets}")
            print(
                f"    MLP = {result.accesses}/{result.epochs}"
                f" = {result.mlp:.3g}   (inhibitors:"
                f" {[e.inhibitor.value for e in result.epoch_records]})"
            )
        print()


if __name__ == "__main__":
    main()
