#!/usr/bin/env python
"""Building and studying a custom workload with the synthesis toolkit.

Models a key-value store lookup loop: a hash probe (one independent
missing load), a short collision chain (dependent misses), and value
copy-out — then asks the paper's questions of it: how clustered are its
misses, what limits its MLP, and how much would runahead help?

This demonstrates the extension surface a downstream user has: the
Emitter / Region / site-model toolkit, the annotation pipeline, and
MLPsim's inhibitor accounting.

Run:  python examples/custom_workload.py
"""

from repro import MachineConfig, MLPSim, annotate
from repro.analysis.clustering import clustering_curves
from repro.core.termination import FIGURE5_ORDER
from repro.workloads.base import Emitter, SyntheticWorkload
from repro.workloads.synthesis import BranchSites, Region, ValueSites


class KeyValueStore(SyntheticWorkload):
    """A memcached-ish lookup loop."""

    name = "kvstore"

    def __init__(self, seed=7, chain_probability=0.3, values_per_hit=2):
        super().__init__(seed=seed)
        self.chain_probability = chain_probability
        self.values_per_hit = values_per_hit

    def setup(self, rng):
        self.hot = Region(0x1000_0000, 8 * 1024)  # hash-table metadata
        self.buckets = Region(0x4000_0000, 256 * 1024 * 1024)
        self.heap = Region(0x5000_0000, 256 * 1024 * 1024)
        self.values = ValueSites(repeat_prob=0.4)
        self.branches = BranchSites()
        self.loop_base = 0x0080_0000

    def emit_transaction(self, em, rng):
        base = self.loop_base
        em.jump(base)
        # Hash computation: pure on-chip work at fixed PCs.
        for k in range(6):
            em.alu(16 + (k % 4), 16 + ((k + 1) % 4), 1)
        # Bucket probe: an independent missing load.
        em.alu(8, 1, 7)
        bucket = self.buckets.next_line(stride_lines=211)
        em.load(9, bucket, src1=8, value=self.values.value(rng, em.pc))
        # Collision chain: dependent misses, like the paper's B-trees.
        head = em.pc
        chained = rng.random() < self.chain_probability
        em.branch(not chained, head + 8, src1=5)
        if chained:
            em.load(9, self.buckets.next_line(stride_lines=223), src1=9,
                    value=self.values.value(rng, em.pc))
        # Value copy-out: lines adjacent to the entry (a small cluster).
        em.pc = head + 8
        item = self.heap.next_line(stride_lines=97)
        for v in range(self.values_per_hit):
            em.load(10 + v, item + 64 * v, src1=9,
                    value=self.values.value(rng, em.pc))
            em.alu(15, 10 + v, 15)
        em.store(self.hot.random_addr(rng), data_src=15, src1=1)
        # Think time between requests.
        for k in range(40):
            em.alu(20 + (k % 8), 20 + ((k + 1) % 8), 1)


def main():
    workload = KeyValueStore()
    trace = workload.generate(120_000)
    annotated = annotate(trace)
    print(
        f"kvstore: {annotated.miss_rate_per_100():.2f} useful off-chip"
        " accesses per 100 instructions"
    )

    curves = clustering_curves(annotated)
    print(
        f"miss clustering divergence from uniform: {curves.divergence():.2f}"
    )

    print("\nMLP and limiting factors:")
    for label in ("64A", "64C", "64E"):
        result = MLPSim(MachineConfig.named(label)).run(annotated)
        breakdown = result.inhibitor_breakdown()
        top = max(FIGURE5_ORDER, key=lambda i: breakdown[i])
        print(
            f"  {label}: MLP={result.mlp:5.3f}  dominant inhibitor:"
            f" {top.value} ({breakdown[top]:.0%} of epochs)"
        )

    rae = MLPSim(MachineConfig.runahead_machine(max_runahead=512)).run(annotated)
    base = MLPSim(MachineConfig.named("64C")).run(annotated)
    print(
        "\nrunahead (512-instruction distance):"
        f" MLP={rae.mlp:.3f} ({rae.mlp / base.mlp - 1:+.0%})"
    )
    print(
        "the collision chains resist runahead (dependent misses), the"
        " copy-out clusters do not — same physics as the paper's database."
    )


if __name__ == "__main__":
    main()
