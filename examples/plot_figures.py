#!/usr/bin/env python
"""Render the paper's key figures as terminal charts.

The exhibit harnesses reproduce the figures' *data*; this script draws
Figure 4 (MLP vs window size per issue configuration), Figure 8
(runahead bars) and Figure 10 (limit-study bars) as ASCII graphics —
useful in the offline, headless reproduction environment.

Run:  python examples/plot_figures.py [trace_length]
"""

import sys

from repro.analysis.charts import bar_chart, line_chart
from repro.experiments import run_exhibit


def figure4(trace_len):
    exhibit = run_exhibit("figure4", trace_len=trace_len)
    for title, headers, rows in exhibit.tables:
        sizes = [row[0] for row in rows]
        series = {
            headers[c][-1]: [row[c] for row in rows]
            for c in range(1, len(headers))
        }
        print(
            line_chart(
                sizes,
                series,
                title=f"\nFigure 4 — {title}: MLP vs ROB/IW size",
            )
        )
        print()


def figure8(trace_len):
    exhibit = run_exhibit("figure8", trace_len=trace_len)
    _, headers, rows = exhibit.tables[0]
    groups = [
        (row[0], list(zip(headers[1:], row[1:])))
        for row in rows
    ]
    print(bar_chart(groups, title="\nFigure 8 — runahead execution (MLP)"))


def figure10(trace_len):
    exhibit = run_exhibit("figure10", trace_len=trace_len)
    title, headers, rows = exhibit.tables[0]  # the runahead baseline
    groups = [
        (row[0], list(zip(headers[1:-1], row[1:-1])))
        for row in rows
    ]
    print(bar_chart(groups, title=f"\nFigure 10 — {title} (MLP)"))


def main():
    trace_len = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    figure4(trace_len)
    figure8(trace_len)
    figure10(trace_len)


if __name__ == "__main__":
    main()
