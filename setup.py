"""Setup shim for environments that cannot build PEP 517 editable wheels.

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` on machines without the ``wheel``
package (e.g. fully offline boxes).
"""

from setuptools import setup

setup()
