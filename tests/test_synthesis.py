"""Tests for the workload-synthesis building blocks."""

import random

import pytest

from repro.workloads.synthesis import (
    BranchSites,
    RecentPool,
    Region,
    ValueSites,
    ZipfRegion,
    ZipfSampler,
)


class TestRegion:
    def test_bounds(self):
        r = Region(0x1000, 4096)
        assert r.end == 0x2000
        assert r.num_lines == 64
        assert r.contains(0x1800)
        assert not r.contains(0x2000)

    def test_alignment_required(self):
        with pytest.raises(ValueError):
            Region(0x1001, 4096)

    def test_random_addr_in_bounds(self):
        rng = random.Random(1)
        r = Region(0x1000, 4096)
        for _ in range(100):
            a = r.random_addr(rng)
            assert r.contains(a)
            assert a % 8 == 0

    def test_next_line_cycles(self):
        r = Region(0, 3 * 64)
        lines = [r.next_line() for _ in range(4)]
        assert lines == [0, 64, 128, 0]

    def test_next_line_with_stride_covers_region(self):
        r = Region(0, 64 * 64)
        # A stride coprime with the line count visits every line.
        seen = {r.next_line(stride_lines=13) for _ in range(64)}
        assert len(seen) == 64

    def test_line_of(self):
        r = Region(0, 4096)
        assert r.line_of(130) == 128


class TestZipf:
    def test_sampler_skews_to_head(self):
        rng = random.Random(7)
        sampler = ZipfSampler(1000, exponent=1.0)
        draws = [sampler.sample(rng) for _ in range(3000)]
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 500)
        assert head > tail

    def test_sampler_bounds(self):
        rng = random.Random(3)
        sampler = ZipfSampler(5, exponent=0.8)
        assert all(0 <= sampler.sample(rng) < 5 for _ in range(200))
        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_zipf_region_lines_valid(self):
        rng = random.Random(5)
        zr = ZipfRegion(0x1000_0000, 1024 * 1024)
        for _ in range(200):
            line = zr.sample_line(rng)
            assert zr.region.contains(line)
            assert line % 64 == 0

    def test_zipf_region_concentrates(self):
        rng = random.Random(5)
        zr = ZipfRegion(0, 1024 * 1024, exponent=1.2)
        draws = [zr.sample_line(rng) for _ in range(2000)]
        assert len(set(draws)) < 1200  # heavy reuse of the popular head


class TestRecentPool:
    def test_sample_from_inserted(self):
        rng = random.Random(2)
        pool = RecentPool(4)
        assert pool.sample(rng) is None
        for line in (64, 128, 192):
            pool.insert(line)
        assert pool.sample(rng) in {64, 128, 192}

    def test_capacity_wraps(self):
        pool = RecentPool(2)
        for line in (1, 2, 3):
            pool.insert(line)
        assert len(pool) == 2
        rng = random.Random(0)
        seen = {pool.sample(rng) for _ in range(50)}
        assert 1 not in seen  # the oldest entry was overwritten

    def test_validation(self):
        with pytest.raises(ValueError):
            RecentPool(0)


class TestValueSites:
    def test_repeat_probability_respected(self):
        rng = random.Random(11)
        sites = ValueSites(repeat_prob=0.8)
        values = [sites.value(rng, 0x100) for _ in range(2000)]
        repeats = sum(a == b for a, b in zip(values, values[1:]))
        assert repeats / (len(values) - 1) == pytest.approx(0.8, abs=0.05)

    def test_zero_repeat_always_fresh(self):
        rng = random.Random(11)
        sites = ValueSites(repeat_prob=0.0)
        values = [sites.value(rng, 0x100) for _ in range(50)]
        assert len(set(values)) == 50

    def test_sites_are_independent(self):
        rng = random.Random(11)
        sites = ValueSites(repeat_prob=1.0)
        a0 = sites.value(rng, 0xA)
        b0 = sites.value(rng, 0xB)
        assert a0 != b0
        assert sites.value(rng, 0xA) == a0
        assert sites.value(rng, 0xB) == b0


class TestBranchSites:
    def test_forced_bias(self):
        rng = random.Random(13)
        sites = BranchSites()
        sites.force_bias(0x40, 1.0)
        assert all(sites.outcome(rng, 0x40) for _ in range(50))
        sites.force_bias(0x44, 0.0)
        assert not any(sites.outcome(rng, 0x44) for _ in range(50))

    def test_bias_is_sticky_per_site(self):
        rng = random.Random(13)
        sites = BranchSites(predictable_fraction=1.0, strong_bias=0.95)
        outcomes = [sites.outcome(rng, 0x80) for _ in range(400)]
        rate = sum(outcomes) / len(outcomes)
        assert rate > 0.85 or rate < 0.15  # strongly biased either way

    def test_mixed_population(self):
        rng = random.Random(17)
        sites = BranchSites(predictable_fraction=0.5, weak_bias=0.5)
        rates = []
        for site in range(60):
            outcomes = [sites.outcome(rng, site) for _ in range(100)]
            rates.append(sum(outcomes) / 100)
        strong = sum(1 for r in rates if r > 0.85 or r < 0.15)
        weak = len(rates) - strong
        assert strong > 10 and weak > 10
