"""Unit tests for the abstract ISA layer."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opclass import (
    MEMORY_OPS,
    OpClass,
    SERIALIZING_OPS,
    is_branch,
    is_load_like,
    is_memory,
    is_serializing,
    is_store_like,
)
from repro.isa.registers import (
    NUM_REGS,
    REG_NONE,
    REG_ZERO,
    RegisterNames,
    register_name,
)


class TestOpClass:
    def test_values_are_stable(self):
        # The numeric values are part of the trace format.
        assert OpClass.ALU == 0
        assert OpClass.LOAD == 1
        assert OpClass.STORE == 2
        assert OpClass.BRANCH == 3
        assert OpClass.PREFETCH == 4
        assert OpClass.CAS == 5
        assert OpClass.LDSTUB == 6
        assert OpClass.MEMBAR == 7
        assert OpClass.NOP == 8

    def test_memory_classification(self):
        assert MEMORY_OPS == {
            OpClass.LOAD,
            OpClass.STORE,
            OpClass.PREFETCH,
            OpClass.CAS,
            OpClass.LDSTUB,
        }
        for op in OpClass:
            assert is_memory(op) == (op in MEMORY_OPS)

    def test_serializing_classification(self):
        assert SERIALIZING_OPS == {OpClass.CAS, OpClass.LDSTUB, OpClass.MEMBAR}
        assert is_serializing(OpClass.MEMBAR)
        assert not is_serializing(OpClass.LOAD)

    def test_load_and_store_like(self):
        assert is_load_like(OpClass.LOAD)
        assert is_load_like(OpClass.CAS)
        assert is_load_like(OpClass.LDSTUB)
        assert not is_load_like(OpClass.STORE)
        assert is_store_like(OpClass.STORE)
        assert is_store_like(OpClass.CAS)
        assert not is_store_like(OpClass.LOAD)

    def test_branch_classification(self):
        assert is_branch(OpClass.BRANCH)
        assert not is_branch(OpClass.ALU)


class TestRegisters:
    def test_zero_register_is_register_zero(self):
        assert REG_ZERO == 0
        assert REG_NONE == -1
        assert NUM_REGS == 64

    def test_sparc_style_names(self):
        assert register_name(0) == "%g0"
        assert register_name(7) == "%g7"
        assert register_name(8) == "%o0"
        assert register_name(16) == "%l0"
        assert register_name(24) == "%i0"
        assert register_name(REG_NONE) == "--"

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            register_name(64)
        with pytest.raises(ValueError):
            register_name(-2)

    def test_all_names_unique(self):
        names = RegisterNames.all_names()
        assert len(names) == NUM_REGS
        assert len(set(names)) == NUM_REGS


class TestInstruction:
    def test_sources_skip_none_and_zero(self):
        insn = Instruction(op=OpClass.ALU, pc=0x100, dst=3, src1=0, src2=5)
        assert insn.sources() == (5,)

    def test_store_data_source_included(self):
        insn = Instruction(
            op=OpClass.STORE, pc=0x100, src1=4, src3=7, addr=0x1000
        )
        assert insn.sources() == (4, 7)
        assert insn.address_sources() == (4,)

    def test_address_sources_only_for_memory(self):
        alu = Instruction(op=OpClass.ALU, pc=0x100, dst=3, src1=4)
        assert alu.address_sources() == ()
        load = Instruction(op=OpClass.LOAD, pc=0x100, dst=3, src1=4, addr=8)
        assert load.address_sources() == (4,)

    def test_prefetch_must_not_write_register(self):
        with pytest.raises(ValueError):
            Instruction(op=OpClass.PREFETCH, pc=0x100, dst=5, addr=0x40)

    def test_src3_only_on_store_like(self):
        with pytest.raises(ValueError):
            Instruction(op=OpClass.ALU, pc=0x100, dst=1, src3=2)
        Instruction(op=OpClass.CAS, pc=0x100, dst=1, src1=2, src3=3, addr=8)

    def test_writes_register(self):
        assert Instruction(op=OpClass.LOAD, pc=0, dst=5, addr=8).writes_register()
        assert not Instruction(op=OpClass.LOAD, pc=0, dst=0, addr=8).writes_register()
        assert not Instruction(op=OpClass.STORE, pc=0, src3=1, addr=8).writes_register()

    def test_classification_properties(self):
        cas = Instruction(op=OpClass.CAS, pc=0, dst=1, addr=8)
        assert cas.is_memory and cas.is_load_like and cas.is_store_like
        assert cas.is_serializing and not cas.is_branch

    def test_disassemble_is_stringy(self):
        samples = [
            Instruction(op=OpClass.LOAD, pc=0x40, dst=2, src1=1, addr=0x100),
            Instruction(op=OpClass.STORE, pc=0x44, src1=1, src3=2, addr=0x100),
            Instruction(op=OpClass.BRANCH, pc=0x48, src1=2, taken=True, target=0x80),
            Instruction(op=OpClass.PREFETCH, pc=0x4C, addr=0x200),
            Instruction(op=OpClass.MEMBAR, pc=0x50),
            Instruction(op=OpClass.ALU, pc=0x54, dst=3, src1=1, src2=2),
        ]
        for insn in samples:
            text = str(insn)
            assert hex(insn.pc)[2:] in text.lower()
            assert insn.op.name.lower() in text
