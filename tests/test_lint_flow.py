"""Tests for the reprolint dataflow layer and the four flow passes.

Covers the CFG builder (golden edge lists for the tricky control-flow
shapes), the worklist solver instantiations (reaching definitions,
taint), the module summary layer (call graph, return taint, external
mutations), and the pass-level behaviour of sweep-race,
seed-provenance, resource-paths and unreachable-code against their
fixture trees — counts, suppression, ``--select`` isolation and the
JSON/github CLI formats.
"""

import ast
import json
import pathlib
import shutil
import textwrap

import pytest

from repro.cli import main
from repro.lint import run_lint
from repro.lint.flow import (
    ModuleSummaries,
    TaintAnalysis,
    build_cfg,
    reaching_definitions,
)
from repro.lint.flow.cfg import iter_scopes

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"


def _function_cfg(source, name="f"):
    tree = ast.parse(textwrap.dedent(source))
    scopes = dict(iter_scopes(tree))
    return build_cfg(scopes[name], name=name)


class TestCfgEdges:
    """Golden edge-list assertions for the tricky control-flow shapes.

    Labels are ``kind:lineno`` with ``entry``/``exit`` synthetic; the
    line numbers below count from the start of the dedented snippet
    (``def`` is line 2 because of the leading newline).
    """

    def test_while_else_runs_only_on_normal_exhaustion(self):
        cfg = _function_cfg('''
            def f(items):
                while items:
                    items.pop()
                else:
                    log()
                return items
        ''')
        assert cfg.edges() == [
            ("entry", "while:3"),
            ("expr:4", "while:3"),
            ("expr:6", "return:7"),
            ("return:7", "exit"),
            ("while:3", "expr:4"),
            ("while:3", "expr:6"),
        ]

    def test_break_routes_through_both_nested_finallies(self):
        cfg = _function_cfg('''
            def f(jobs):
                for job in jobs:
                    try:
                        try:
                            job.run()
                        finally:
                            job.inner()
                        if job.done:
                            break
                    finally:
                        job.outer()
                return jobs
        ''')
        edges = cfg.edges()
        # break reaches the outer finally, never the loop head directly
        assert ("break:10", "expr:12") in edges
        assert ("break:10", "for:3") not in edges
        # the outer finally fans out to: loop continue, the statement
        # after the loop (the break continuation) and the exceptional
        # continuation (scope exit)
        assert ("expr:12", "for:3") in edges
        assert ("expr:12", "return:13") in edges
        assert ("expr:12", "exit") in edges
        # the inner finally's exception path lands in the outer finally
        assert ("expr:8", "expr:12") in edges

    def test_bare_except_reraise_propagates_to_exit(self):
        cfg = _function_cfg('''
            def f(task):
                try:
                    task.run()
                except:
                    task.abort()
                    raise
                return task
        ''')
        assert cfg.edges() == [
            ("entry", "try:3"),
            ("except:5", "expr:6"),
            ("expr:4", "except:5"),
            ("expr:4", "return:8"),
            ("expr:6", "raise:7"),
            ("raise:7", "exit"),
            ("return:8", "exit"),
            ("try:3", "expr:4"),
        ]

    def test_generator_expression_stays_one_statement(self):
        cfg = _function_cfg('''
            def f(rows):
                total = sum(len(r) for r in rows)
                return total
        ''')
        assert cfg.edges() == [
            ("assign:3", "return:4"),
            ("entry", "assign:3"),
            ("return:4", "exit"),
        ]

    def test_suppress_block_swallows_and_resumes_after_with(self):
        cfg = _function_cfg('''
            def f(path):
                with suppress(OSError):
                    path.unlink()
                    path.flush()
                return path
        ''')
        assert cfg.edges() == [
            ("entry", "with:3"),
            ("expr:4", "expr:5"),
            ("expr:4", "return:6"),
            ("expr:5", "return:6"),
            ("return:6", "exit"),
            ("with:3", "expr:4"),
        ]

    def test_pytest_raises_swallows_the_asserted_exception(self):
        """Code after a ``with pytest.raises(...)`` block is reachable
        even when the block always raises (regression: the assertions
        in test_robustness were flagged unreachable)."""
        cfg = _function_cfg('''
            def f(path):
                with pytest.raises(RuntimeError):
                    raise RuntimeError("expected")
                return path
        ''')
        reachable = {cfg.label(i) for i in cfg.reachable()}
        assert "return:5" in reachable

    def test_while_true_without_break_has_no_fall_out(self):
        cfg = _function_cfg('''
            def f(queue):
                while True:
                    queue.poll()
                return queue
        ''')
        reachable = {cfg.label(i) for i in cfg.reachable()}
        assert "return:5" not in reachable


class TestDataflow:
    def test_reaching_definitions_merge_at_join(self):
        cfg = _function_cfg('''
            def f(flag):
                x = 1
                if flag:
                    x = 2
                return x
        ''')
        defs = reaching_definitions(cfg)
        return_index = next(
            i for i in cfg.statement_nodes()
            if cfg.label(i).startswith("return")
        )
        assert defs[return_index]["x"] == frozenset({3, 5})

    def test_taint_propagates_through_assignment_chain(self):
        tree = ast.parse(textwrap.dedent('''
            def f():
                a = time.time()
                b = int(a) + 1
                return b
        '''))
        summaries = ModuleSummaries(tree)
        analysis = TaintAnalysis(
            lambda name: {"wall-clock"} if name == "time.time" else set(),
            summaries,
        )
        cfg = build_cfg(dict(iter_scopes(tree))["f"], name="f")
        states = analysis.solve(cfg)
        assert states[cfg.exit].get("b") == frozenset({"wall-clock"})

    def test_helper_return_taint_crosses_call_sites(self):
        tree = ast.parse(textwrap.dedent('''
            def fresh():
                return int(time.time())

            def use():
                seed = fresh()
                return seed
        '''))
        summaries = ModuleSummaries(tree)
        analysis = TaintAnalysis(
            lambda name: {"wall-clock"} if name == "time.time" else set(),
            summaries,
        )
        assert summaries.returns_taint("fresh", analysis) == frozenset(
            {"wall-clock"}
        )
        assert summaries.returns_taint("use", analysis) == frozenset(
            {"wall-clock"}
        )

    def test_untainted_parameter_stays_clean(self):
        tree = ast.parse(textwrap.dedent('''
            def f(seed):
                rng = default_rng(seed)
                return rng
        '''))
        summaries = ModuleSummaries(tree)
        analysis = TaintAnalysis(lambda name: set(), summaries)
        cfg = build_cfg(dict(iter_scopes(tree))["f"], name="f")
        states = analysis.solve(cfg)
        assert states[cfg.exit].get("rng", frozenset()) == frozenset()


class TestSummaries:
    TREE = textwrap.dedent('''
        SHARED = {}
        TOTALS = []

        class Stats:
            count = 0

        def leaf(value):
            TOTALS.append(value)

        def middle(value):
            leaf(value)

        def worker(value):
            SHARED[value] = value
            Stats.count += 1
            middle(value)

        def pure(value):
            local = [value]
            local.append(value)
            return local
    ''')

    def test_call_graph_transitive_closure(self):
        summaries = ModuleSummaries(ast.parse(self.TREE))
        assert summaries.transitive_closure("worker") == [
            "worker", "middle", "leaf",
        ]

    def test_external_mutations_kinds_and_chains(self):
        summaries = ModuleSummaries(ast.parse(self.TREE))
        found = {
            (m.kind, m.name, tuple(chain))
            for m, chain in summaries.external_mutations("worker")
        }
        assert found == {
            ("global", "SHARED", ("worker",)),
            ("class-attr", "Stats", ("worker",)),
            ("global", "TOTALS", ("worker", "middle", "leaf")),
        }

    def test_local_mutation_is_not_external(self):
        summaries = ModuleSummaries(ast.parse(self.TREE))
        assert summaries.external_mutations("pure") == []


class TestFlowPassBehaviors:
    """Suppression, --select and CLI formats against the new fixtures."""

    def test_suppression_silences_a_flow_finding(self, tmp_path):
        src = FIXTURES / "unreachable_code" / "violation"
        root = tmp_path / "tree"
        shutil.copytree(src, root)
        target = root / "src/repro/flow.py"
        lines = target.read_text().splitlines()
        lines[5] += "  # reprolint: disable=unreachable-code"
        target.write_text("\n".join(lines) + "\n")  # reprolint: disable=atomic-writes
        findings = run_lint(root, select=["unreachable-code"])
        assert len(findings) == 3
        assert all(f.line != 6 for f in findings)

    def test_select_isolates_flow_passes(self):
        root = FIXTURES / "sweep_race" / "violation"
        assert run_lint(root, select=["seed-provenance"]) == []
        assert len(run_lint(root, select=["sweep-race"])) == 4

    def test_json_schema_for_flow_findings(self, capsys):
        root = FIXTURES / "seed_provenance" / "violation"
        code = main([
            "lint", "--root", str(root), "--format", "json",
            "--select", "seed-provenance",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 4
        assert {f["pass"] for f in payload} == {"seed-provenance"}
        assert all(
            set(f) == {"path", "line", "pass", "severity", "message"}
            for f in payload
        )

    def test_github_format_emits_error_annotations(self, capsys):
        root = FIXTURES / "resource_paths" / "violation"
        code = main([
            "lint", "--root", str(root), "--format", "github",
            "--select", "resource-paths",
        ])
        assert code == 1
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 3
        assert all(
            line.startswith("::error file=src/repro/robustness/writer.py,line=")
            for line in out
        )
        assert all("[resource-paths]" in line for line in out)

    def test_seed_provenance_tracks_module_level_taint(self, tmp_path):
        """A module-level wall-clock stamp taints a seed used inside a
        function, across the scope boundary."""
        target = tmp_path / "src" / "repro" / "stamped.py"
        target.parent.mkdir(parents=True)
        source = textwrap.dedent('''
            import time

            STAMP = int(time.time())

            def make_rng():
                import numpy as np
                return np.random.default_rng(STAMP)
        ''')
        target.write_text(source)  # reprolint: disable=atomic-writes
        findings = run_lint(tmp_path, select=["seed-provenance"])
        assert len(findings) == 1
        assert "wall-clock" in findings[0].message


class TestSweepRaceRegression:
    def test_global_mutating_worker_is_caught(self, tmp_path):
        """The acceptance-criterion regression: a worker that appends
        to a module-global accumulator is flagged at the mutation site
        with the submit line in the message."""
        target = tmp_path / "src" / "repro" / "racy.py"
        target.parent.mkdir(parents=True)
        source = textwrap.dedent('''
            from concurrent.futures import ProcessPoolExecutor

            ACCUMULATOR = []

            def worker(item):
                ACCUMULATOR.append(item * 2)
                return item

            def sweep(items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(worker, items))
        ''')
        target.write_text(source)  # reprolint: disable=atomic-writes
        findings = run_lint(tmp_path, select=["sweep-race"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.pass_id == "sweep-race"
        assert finding.line == 7
        assert "ACCUMULATOR" in finding.message
        assert "line 12" in finding.message

    def test_parent_side_aggregation_is_clean(self, tmp_path):
        target = tmp_path / "src" / "repro" / "clean.py"
        target.parent.mkdir(parents=True)
        source = textwrap.dedent('''
            from concurrent.futures import ProcessPoolExecutor

            def worker(item):
                return item * 2

            def sweep(items):
                results = []
                with ProcessPoolExecutor() as pool:
                    for value in pool.map(worker, items):
                        results.append(value)
                return results
        ''')
        target.write_text(source)  # reprolint: disable=atomic-writes
        assert run_lint(tmp_path, select=["sweep-race"]) == []

    def test_real_parallel_backend_is_clean(self):
        """The repo's own sweep backend follows the safe protocol."""
        repo_root = pathlib.Path(__file__).resolve().parents[1]
        findings = run_lint(repo_root, select=["sweep-race"])
        assert findings == []


class TestResourcePathsDetails:
    def test_finding_names_the_leaking_handle(self):
        findings = run_lint(
            FIXTURES / "resource_paths" / "violation",
            select=["resource-paths"],
        )
        assert [f.line for f in findings] == [10, 19, 29]
        assert "'handle'" in findings[0].message
        assert "not kept" in findings[2].message


class TestUnreachableDetails:
    def test_only_the_head_of_a_dead_run_is_reported(self):
        """``after_raise`` has two dead statements but one finding."""
        findings = run_lint(
            FIXTURES / "unreachable_code" / "violation",
            select=["unreachable-code"],
        )
        lines = [f.line for f in findings]
        assert lines == [6, 11, 18, 26]
        assert 12 not in lines  # `return cleanup` rides with line 11

    def test_scope_name_appears_in_message(self):
        findings = run_lint(
            FIXTURES / "unreachable_code" / "violation",
            select=["unreachable-code"],
        )
        messages = [f.message for f in findings]
        assert any("after_return" in m for m in messages)
        assert any("both_branches_return" in m for m in messages)
