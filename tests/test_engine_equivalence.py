"""Optimized engine vs. the frozen reference interpreter.

``repro.core.mlpsim`` gained a restructured hot path (hoisted
closures, inlined opcode dispatch, bulk-skipping of on-chip stretches,
memoised interpreter tables); ``repro.core.mlpsim_reference`` is the
verbatim pre-optimization engine kept as a correctness oracle.  Every
optimization must be behaviour-preserving: full ``MLPResult`` equality,
per-epoch membership equality, and identical failure behaviour.
"""

import dataclasses

import pytest

from repro.cli import _parse_machine
from repro.core.mlpsim import simulate
from repro.core.mlpsim_reference import simulate_reference

MACHINE_SPECS = (
    "16A",
    "64A",
    "64B",
    "64C",
    "64D",
    "64E",
    "256E",
    "64C:store_buffer=2",
    "64C:max_outstanding=4",
    "64D:slow_branch_predictor=true",
    "64C:value_prediction=true",
    "64C:perfect_branch=true",
    "64C:perfect_ifetch=true",
    "64C:perfect_value=true",
)


def _result_fields(result):
    fields = dataclasses.asdict(result)
    fields["inhibitors"] = result.inhibitors.as_dict()
    return fields


@pytest.mark.parametrize("spec", MACHINE_SPECS)
def test_results_bit_identical(all_annotated, spec):
    """Every MLPResult field matches the oracle on every workload."""
    machine = _parse_machine(spec)
    for name, annotated in all_annotated.items():
        fast = simulate(annotated, machine)
        oracle = simulate_reference(annotated, machine)
        assert _result_fields(fast) == _result_fields(oracle), (name, spec)


def test_epoch_records_identical(specjbb_annotated):
    """record_sets epochs (trigger, members, inhibitor) match exactly."""
    for spec in ("16A", "64C", "64E"):
        machine = _parse_machine(spec)
        fast = simulate(specjbb_annotated, machine, record_sets=True)
        oracle = simulate_reference(specjbb_annotated, machine,
                                    record_sets=True)
        fast_epochs = [
            (e.index, e.trigger, e.trigger_kind, e.accesses, e.inhibitor,
             tuple(e.members))
            for e in fast.epoch_records
        ]
        oracle_epochs = [
            (e.index, e.trigger, e.trigger_kind, e.accesses, e.inhibitor,
             tuple(e.members))
            for e in oracle.epoch_records
        ]
        assert fast_epochs == oracle_epochs, spec


def test_subregion_results_identical(database_annotated):
    """Explicit (start, stop) windows agree with the oracle too."""
    machine = _parse_machine("64C")
    start = database_annotated.measure_start
    for stop in (start + 5_000, start + 20_000):
        fast = simulate(database_annotated, machine, start=start, stop=stop)
        oracle = simulate_reference(database_annotated, machine,
                                    start=start, stop=stop)
        assert _result_fields(fast) == _result_fields(oracle), stop


def test_repeated_runs_are_stable(specweb_annotated):
    """Memoised interpreter tables must not leak state between runs."""
    machine = _parse_machine("64C")
    first = simulate(specweb_annotated, machine)
    second = simulate(specweb_annotated, machine)
    assert _result_fields(first) == _result_fields(second)


def test_zero_store_buffer_parity(database_annotated):
    """``store_buffer=0`` livelocks the seed engine; the optimized
    engine must fail identically (same error, same instruction) rather
    than silently diverge."""
    machine = _parse_machine("64C:store_buffer=0")
    fast_error = oracle_error = None
    try:
        simulate(database_annotated, machine)
    except RuntimeError as exc:
        fast_error = str(exc)
    try:
        simulate_reference(database_annotated, machine)
    except RuntimeError as exc:
        oracle_error = str(exc)
    assert fast_error == oracle_error
