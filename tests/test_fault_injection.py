"""Fault-injection tests: every corrupted archive is rejected loudly.

Each test saves a known-good trace (or annotated trace) archive, applies
one deterministic corruption from :mod:`repro.robustness.faults`, and
proves the loader raises a :class:`~repro.robustness.errors.ReproError`
subclass naming the file and the field at fault — never a raw numpy
traceback, and never a silently wrong in-memory trace.

Also covers the other two robustness contracts of the PR: atomic saves
(an interrupted :func:`save_trace` leaves no partial archive at the
destination) and the fail-soft exhibit runner (one failing exhibit does
not sink the batch).
"""

import numpy as np
import pytest

from repro.robustness import faults
from repro.robustness.errors import (
    ConfigError,
    ExhibitTimeout,
    ReproError,
    TraceFormatError,
)
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder
from repro.trace.io import (
    load_annotated,
    load_trace,
    save_annotated,
    save_trace,
)


def _trace():
    b = TraceBuilder("faulty")
    b.add_alu(0x100, dst=1, src1=2, src2=3)
    b.add_load(0x104, dst=4, addr=0x8000, src1=1, value=42)
    b.add_store(0x108, addr=0x8008, data_src=4, src1=1)
    b.add_branch(0x10C, taken=True, target=0x200, src1=4)
    b.add_prefetch(0x200, addr=0x9000, src1=1)
    b.add_membar(0x204)
    b.add_nop(0x208)
    return b.build()


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "trace.npz"
    save_trace(_trace(), path)
    return path


@pytest.fixture
def annotated_path(tmp_path):
    trace = _trace()
    annotated = manual_annotation(
        trace, dmiss_at=[1], imiss_at=[4], mispred_at=[3], measure_start=1
    )
    path = tmp_path / "annotated.npz"
    save_annotated(annotated, path)
    return path


#: (fault name, injector options, loader, expected field in the error).
TRACE_FAULTS = [
    ("truncate", {}, None),
    ("drop_column", {"column": "addr"}, "addr"),
    ("extra_column", {"column": "bogus"}, "bogus"),
    ("wrong_dtype", {"column": "addr"}, "addr"),
    ("nan", {"column": "addr"}, "addr"),
    ("out_of_range_register", {"column": "src1"}, "src1"),
    ("version_skew", {}, "__version__"),
]


class TestTraceFaults:
    @pytest.mark.parametrize("fault,options,field", TRACE_FAULTS)
    def test_corrupted_trace_rejected(self, trace_path, fault, options,
                                      field):
        faults.inject_fault(trace_path, fault, **options)
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(trace_path)
        error = excinfo.value
        assert isinstance(error, ReproError)
        assert error.path == str(trace_path)
        if field is not None:
            assert error.field == field

    @pytest.mark.parametrize("fault,options,field", TRACE_FAULTS)
    def test_corrupted_annotated_rejected(self, annotated_path, fault,
                                          options, field):
        faults.inject_fault(annotated_path, fault, **options)
        with pytest.raises(TraceFormatError) as excinfo:
            load_annotated(annotated_path)
        error = excinfo.value
        assert error.path == str(annotated_path)
        if field is not None:
            assert error.field == field

    def test_corrupted_event_mask_rejected(self, annotated_path):
        # dmiss everywhere marks ALU/branch/store instructions that
        # cannot raise a data miss — the canonical silent-wrong-MLP
        # corruption.
        faults.inject_fault(annotated_path, "corrupt_mask",
                            field="ann_dmiss")
        with pytest.raises(TraceFormatError) as excinfo:
            load_annotated(annotated_path)
        assert excinfo.value.field == "dmiss"
        assert "index" in str(excinfo.value)

    def test_errors_are_valueerror_compatible(self, trace_path):
        faults.inject_fault(trace_path, "drop_column", column="pc")
        with pytest.raises(ValueError):
            load_trace(trace_path)

    def test_unknown_fault_name_rejected(self, trace_path):
        with pytest.raises(ConfigError, match="unknown fault"):
            faults.inject_fault(trace_path, "cosmic_ray")

    def test_all_registered_faults_covered(self):
        tested = {name for name, _, _ in TRACE_FAULTS} | {"corrupt_mask"}
        assert tested == set(faults.FAULTS)


class TestAtomicSaves:
    def test_interrupted_save_leaves_no_partial_archive(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-write must not leave a partial .npz behind."""
        import repro.robustness.atomic as atomic_module

        path = tmp_path / "trace.npz"

        def exploding_savez(handle, **arrays):
            handle.write(b"PK\x03\x04 partial zip header")
            raise OSError("disk full")  # reprolint: disable=error-hierarchy

        monkeypatch.setattr(
            atomic_module.np, "savez_compressed", exploding_savez
        )
        with pytest.raises(OSError, match="disk full"):
            save_trace(_trace(), path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_interrupted_save_preserves_previous_archive(
        self, trace_path, monkeypatch
    ):
        """Overwriting an existing archive keeps the old copy on failure."""
        import repro.robustness.atomic as atomic_module

        before = trace_path.read_bytes()

        def exploding_savez(handle, **arrays):
            raise OSError("disk full")  # reprolint: disable=error-hierarchy

        monkeypatch.setattr(
            atomic_module.np, "savez_compressed", exploding_savez
        )
        with pytest.raises(OSError):
            save_trace(_trace(), trace_path)
        assert trace_path.read_bytes() == before
        assert load_trace(trace_path) is not None


class _FakeExhibit:
    def format(self):
        return "== fake =="


class TestFailSoftRunner:
    @pytest.fixture
    def fake_registry(self, monkeypatch):
        import repro.experiments.runner as runner_module

        calls = []

        def fake_run_exhibit(name, **kwargs):
            calls.append(name)
            if name == "bad":
                raise TraceFormatError("synthetic failure", field="x")
            return _FakeExhibit()

        monkeypatch.setattr(
            runner_module, "EXHIBITS", {"a": None, "bad": None, "c": None}
        )
        monkeypatch.setattr(runner_module, "run_exhibit", fake_run_exhibit)
        return calls

    def test_one_failure_does_not_sink_the_batch(self, fake_registry):
        from repro.experiments.runner import format_summary, run_exhibits

        outcomes = run_exhibits(["a", "bad", "c"])
        assert fake_registry == ["a", "bad", "c"]
        assert [o.ok for o in outcomes] == [True, False, True]
        failed = outcomes[1]
        assert "synthetic failure" in failed.error
        assert failed.traceback is not None
        summary = format_summary(outcomes)
        assert "2/3 passed" in summary
        assert "FAILED" in summary

    def test_all_expands_to_registry(self, fake_registry):
        from repro.experiments.runner import run_exhibits

        outcomes = run_exhibits(["all"])
        assert [o.name for o in outcomes] == ["a", "bad", "c"]
        assert run_exhibits(None)[0].name == "a"

    def test_unknown_exhibit_recorded_not_raised(self, fake_registry,
                                                 monkeypatch):
        import repro.experiments.runner as runner_module

        def strict_run_exhibit(name, **kwargs):
            if name not in runner_module.EXHIBITS:
                raise ValueError(f"unknown exhibit {name!r}")  # reprolint: disable=error-hierarchy
            return _FakeExhibit()

        monkeypatch.setattr(runner_module, "run_exhibit", strict_run_exhibit)
        from repro.experiments.runner import run_exhibits

        outcomes = run_exhibits(["a", "nope"])
        assert [o.ok for o in outcomes] == [True, False]
        assert "unknown exhibit" in outcomes[1].error

    def test_cli_exhibit_fail_soft_exit_code(self, fake_registry, capsys):
        from repro.cli import main

        assert main(["exhibit", "a", "bad", "c"]) == 1
        out = capsys.readouterr().out
        assert "exhibit summary: 2/3 passed" in out
        assert main(["exhibit", "a", "c"]) == 0

    @pytest.mark.skipif(
        not hasattr(__import__("signal"), "SIGALRM"),
        reason="per-exhibit timeouts need SIGALRM",
    )
    def test_timeout_fails_one_exhibit_softly(self, monkeypatch):
        import repro.experiments.runner as runner_module

        def slow_run_exhibit(name, **kwargs):
            if name == "slow":
                import time

                time.sleep(5.0)
            return _FakeExhibit()

        monkeypatch.setattr(
            runner_module, "EXHIBITS", {"slow": None, "quick": None}
        )
        monkeypatch.setattr(runner_module, "run_exhibit", slow_run_exhibit)
        from repro.experiments.runner import run_exhibits

        outcomes = run_exhibits(["slow", "quick"], timeout=0.2)
        assert [o.ok for o in outcomes] == [False, True]
        assert ExhibitTimeout.__name__ in outcomes[0].error
        assert outcomes[0].seconds < 2.0
