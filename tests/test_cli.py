"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_machine, build_parser, main
from repro.core.config import BranchPolicy


class TestMachineSpecs:
    def test_simple_spec(self):
        m = _parse_machine("64C")
        assert m.issue_window == 64 and m.issue.name == "C"

    def test_rob_suffix(self):
        m = _parse_machine("64D/rob256")
        assert m.rob == 256
        assert m.issue.branch_policy == BranchPolicy.OUT_OF_ORDER

    def test_runahead(self):
        m = _parse_machine("RAE")
        assert m.runahead
        m = _parse_machine("rae:max_runahead=512")
        assert m.max_runahead == 512

    def test_options(self):
        m = _parse_machine("64C:store_buffer=8,max_outstanding=16")
        assert m.store_buffer == 8 and m.max_outstanding == 16

    def test_boolean_and_float_options(self):
        m = _parse_machine("64C:slow_branch_predictor=true,slow_bp_accuracy=0.7")
        assert m.slow_branch_predictor
        assert m.slow_bp_accuracy == pytest.approx(0.7)

    def test_malformed_option(self):
        with pytest.raises(ValueError):
            _parse_machine("64C:store_buffer")

    def test_inorder_spec_rejected(self):
        with pytest.raises(ValueError):
            _parse_machine("SOM")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "database"])
        assert args.workload == "database"
        assert args.length == 120_000

    def test_workload_or_trace_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate"])


class TestCommands:
    WORKLOAD_ARGS = ["specjbb2000", "-n", "12000"]

    def test_simulate(self, capsys):
        assert main(["simulate", *self.WORKLOAD_ARGS, "-m", "32C"]) == 0
        out = capsys.readouterr().out
        assert "32C" in out and "MLP=" in out

    def test_simulate_in_order_and_flags(self, capsys):
        code = main(
            [
                "simulate",
                *self.WORKLOAD_ARGS,
                "--in-order", "both",
                "--inhibitors",
                "--store-mlp",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stall-on-miss" in out and "stall-on-use" in out
        assert "inhibitors:" in out

    def test_generate_and_reload(self, tmp_path, capsys):
        path = str(tmp_path / "t.npz")
        assert main(["generate", "database", "-n", "8000", "-o", path]) == 0
        assert main(["simulate", "--trace", path, "-m", "16A"]) == 0
        out = capsys.readouterr().out
        assert "wrote 8000 instructions" in out
        assert "16A" in out

    def test_stats(self, capsys):
        assert main(["stats", *self.WORKLOAD_ARGS]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out and "inter-miss" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", *self.WORKLOAD_ARGS]) == 0
        assert "vs paper" in capsys.readouterr().out

    def test_cyclesim(self, capsys):
        code = main(
            ["cyclesim", *self.WORKLOAD_ARGS, "-m", "32C", "--latency", "300"]
        )
        assert code == 0
        assert "CPI=" in capsys.readouterr().out

    def test_exhibit(self, capsys):
        assert main(["exhibit", "table5", "-n", "12000"]) == 0
        assert "In-Order" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["ablation", "runahead_distance", "-n", "12000"]) == 0
        assert "runahead" in capsys.readouterr().out.lower()

    def test_bad_machine_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "database", "-n", "5000", "-m", "64Z"])


class TestInspect:
    def test_inspect_prints_epochs(self, capsys):
        from repro.cli import main

        code = main(
            [
                "inspect", "specjbb2000", "-n", "12000",
                "--epochs", "2", "--members", "4", "--window", "2000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch 0:" in out
        assert "trigger" in out
        assert "MLP=" in out

    def test_inspect_with_machine_spec(self, capsys):
        from repro.cli import main

        code = main(
            ["inspect", "specjbb2000", "-n", "12000", "-m", "16A",
             "--epochs", "1", "--window", "1500"]
        )
        assert code == 0
        assert "16A" in capsys.readouterr().out
