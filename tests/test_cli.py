"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_machine, build_parser, main
from repro.core.config import BranchPolicy


class TestMachineSpecs:
    def test_simple_spec(self):
        m = _parse_machine("64C")
        assert m.issue_window == 64 and m.issue.name == "C"

    def test_rob_suffix(self):
        m = _parse_machine("64D/rob256")
        assert m.rob == 256
        assert m.issue.branch_policy == BranchPolicy.OUT_OF_ORDER

    def test_runahead(self):
        m = _parse_machine("RAE")
        assert m.runahead
        m = _parse_machine("rae:max_runahead=512")
        assert m.max_runahead == 512

    def test_options(self):
        m = _parse_machine("64C:store_buffer=8,max_outstanding=16")
        assert m.store_buffer == 8 and m.max_outstanding == 16

    def test_boolean_and_float_options(self):
        m = _parse_machine("64C:slow_branch_predictor=true,slow_bp_accuracy=0.7")
        assert m.slow_branch_predictor
        assert m.slow_bp_accuracy == pytest.approx(0.7)

    def test_malformed_option(self):
        with pytest.raises(ValueError):
            _parse_machine("64C:store_buffer")

    def test_inorder_spec_rejected(self):
        with pytest.raises(ValueError):
            _parse_machine("SOM")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "database"])
        assert args.workload == "database"
        assert args.length == 120_000

    def test_workload_or_trace_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate"])


class TestCommands:
    WORKLOAD_ARGS = ["specjbb2000", "-n", "12000"]

    def test_simulate(self, capsys):
        assert main(["simulate", *self.WORKLOAD_ARGS, "-m", "32C"]) == 0
        out = capsys.readouterr().out
        assert "32C" in out and "MLP=" in out

    def test_simulate_in_order_and_flags(self, capsys):
        code = main(
            [
                "simulate",
                *self.WORKLOAD_ARGS,
                "--in-order", "both",
                "--inhibitors",
                "--store-mlp",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stall-on-miss" in out and "stall-on-use" in out
        assert "inhibitors:" in out

    def test_generate_and_reload(self, tmp_path, capsys):
        path = str(tmp_path / "t.npz")
        assert main(["generate", "database", "-n", "8000", "-o", path]) == 0
        assert main(["simulate", "--trace", path, "-m", "16A"]) == 0
        out = capsys.readouterr().out
        assert "wrote 8000 instructions" in out
        assert "16A" in out

    def test_stats(self, capsys):
        assert main(["stats", *self.WORKLOAD_ARGS]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out and "inter-miss" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", *self.WORKLOAD_ARGS]) == 0
        assert "vs paper" in capsys.readouterr().out

    def test_cyclesim(self, capsys):
        code = main(
            ["cyclesim", *self.WORKLOAD_ARGS, "-m", "32C", "--latency", "300"]
        )
        assert code == 0
        assert "CPI=" in capsys.readouterr().out

    def test_exhibit(self, capsys):
        assert main(["exhibit", "table5", "-n", "12000"]) == 0
        assert "In-Order" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["ablation", "runahead_distance", "-n", "12000"]) == 0
        assert "runahead" in capsys.readouterr().out.lower()

    def test_bad_machine_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "database", "-n", "5000", "-m", "64Z"])


class TestSweepCommand:
    WORKLOAD_ARGS = ["specjbb2000", "-n", "8000", "--seed", "7"]

    def test_sweep_explicit_machines(self, capsys):
        code = main(
            ["sweep", *self.WORKLOAD_ARGS, "-m", "16A", "-m", "64C"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "16A" in out and "64C" in out and "MLP=" in out

    def test_sweep_journal_and_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        args = ["sweep", *self.WORKLOAD_ARGS, "-m", "16A", "-m", "64C",
                "--journal", journal]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main([*args, "--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed 2 config(s)" in second
        # Restored results render identically to the executed ones.
        assert [line for line in first.splitlines() if "MLP=" in line] \
            == [line for line in second.splitlines() if "MLP=" in line]

    def test_sweep_window_policy_grid(self, capsys):
        code = main(
            ["sweep", *self.WORKLOAD_ARGS,
             "--windows", "16,32", "--policies", "A,C"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for label in ("16A", "16C", "32A", "32C"):
            assert label in out

    def test_resume_requires_journal(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", *self.WORKLOAD_ARGS, "--resume"])
        assert excinfo.value.code == 2
        assert "--journal" in capsys.readouterr().err

    def test_bad_jobs_argument_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", *self.WORKLOAD_ARGS, "--jobs", "lots"])
        assert excinfo.value.code == 2

    def test_bad_jobs_env_var_exits_2_with_one_line(self, monkeypatch,
                                                    capsys):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", *self.WORKLOAD_ARGS])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err.strip()
        assert len(err.splitlines()) == 1
        assert "REPRO_JOBS" in err

    def test_bad_jobs_env_var_fails_exhibit_eagerly(self, monkeypatch,
                                                    capsys):
        """`repro exhibit` must reject a junk REPRO_JOBS up front with
        exit code 2, not fail-soft per exhibit deep in the batch."""
        monkeypatch.setenv("REPRO_JOBS", "nope")
        with pytest.raises(SystemExit) as excinfo:
            main(["exhibit", "table5", "-n", "8000"])
        assert excinfo.value.code == 2
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_bad_windows_exit_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", *self.WORKLOAD_ARGS, "--windows", "16,huge"])
        assert excinfo.value.code == 2

    def test_quarantine_reported_and_exit_1(self, monkeypatch, capsys):
        """A poison config leaves the sweep fail-soft: results print,
        the quarantine is reported, and the exit code flags it."""
        monkeypatch.setenv("REPRO_PROCESS_FAULTS", "fail:16A")
        code = main(
            ["sweep", *self.WORKLOAD_ARGS, "-m", "16A", "-m", "64C",
             "--backoff", "0.01"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "64C" in out  # the healthy config still completed


class TestInspect:
    def test_inspect_prints_epochs(self, capsys):
        from repro.cli import main

        code = main(
            [
                "inspect", "specjbb2000", "-n", "12000",
                "--epochs", "2", "--members", "4", "--window", "2000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch 0:" in out
        assert "trigger" in out
        assert "MLP=" in out

    def test_inspect_with_machine_spec(self, capsys):
        from repro.cli import main

        code = main(
            ["inspect", "specjbb2000", "-n", "12000", "-m", "16A",
             "--epochs", "1", "--window", "1500"]
        )
        assert code == 0
        assert "16A" in capsys.readouterr().out
