"""Tests for the CPI model (paper Section 2.2, Equations 1 and 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.cpi_model import (
    cpi_breakdown,
    derive_overlap_cm,
    estimate_cpi,
    estimate_cycles,
    speedup,
)


class TestEquations:
    def test_paper_figure1_example(self):
        """The worked example under Figure 1: 570 total cycles."""
        cycles = estimate_cycles(
            cycles_perf=200,
            overlap_cm=0.2,
            num_misses=3,
            miss_penalty=200,
            mlp=1.463,
        )
        assert cycles == pytest.approx(570, abs=1.0)

    def test_cpi_form(self):
        cpi = estimate_cpi(
            cpi_perf=1.47,
            overlap_cm=0.18,
            miss_rate=0.0084,
            miss_penalty=1000,
            mlp=1.38,
        )
        # Paper Table 1: database at 1000 cycles has CPI ~7.28.
        assert cpi == pytest.approx(7.29, abs=0.15)

    def test_doubling_mlp_halves_offchip_term(self):
        kwargs = dict(cpi_perf=1.0, overlap_cm=0.0, miss_rate=0.01,
                      miss_penalty=1000)
        base = estimate_cpi(mlp=1.0, **kwargs)
        doubled = estimate_cpi(mlp=2.0, **kwargs)
        assert (base - 1.0) == pytest.approx(2 * (doubled - 1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_cpi(1.0, 0.0, 0.01, 1000, 0.0)
        with pytest.raises(ValueError):
            estimate_cpi(1.0, 0.0, 0.01, -5, 1.0)
        with pytest.raises(ValueError):
            derive_overlap_cm(2.0, 0.0, 0.01, 1000, 1.0)


class TestOverlapDerivation:
    def test_roundtrip(self):
        cpi = estimate_cpi(1.5, 0.25, 0.008, 1000, 1.3)
        overlap = derive_overlap_cm(cpi, 1.5, 0.008, 1000, 1.3)
        assert overlap == pytest.approx(0.25)

    def test_clamped_to_physical_range(self):
        # A CPI smaller than the off-chip term alone would imply
        # overlap > 1; the paper's own Table 1 clamps to [0, 1].
        assert derive_overlap_cm(1.0, 1.0, 0.01, 1000, 1.0) == 1.0
        assert derive_overlap_cm(100.0, 1.0, 0.01, 1000, 1.0) == 0.0


class TestBreakdown:
    def test_components_sum(self):
        b = cpi_breakdown(cpi=7.28, cpi_perf=1.47, miss_rate=0.0084,
                          miss_penalty=1000, mlp=1.38)
        assert b.on_chip + b.off_chip == pytest.approx(b.cpi)
        assert b.off_chip == pytest.approx(0.0084 * 1000 / 1.38)
        assert "CPI" in b.format_row()


class TestSpeedup:
    def test_definition(self):
        assert speedup(2.0, 1.0) == pytest.approx(1.0)  # +100%
        assert speedup(1.0, 1.0) == pytest.approx(0.0)
        assert speedup(1.0, 2.0) == pytest.approx(-0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)


@settings(max_examples=60, deadline=None)
@given(
    cpi_perf=st.floats(0.3, 5),
    overlap=st.floats(0, 1),
    miss_rate=st.floats(0.0001, 0.05),
    penalty=st.integers(100, 2000),
    mlp=st.floats(1.0, 10.0),
)
def test_overlap_roundtrip_property(cpi_perf, overlap, miss_rate, penalty, mlp):
    cpi = estimate_cpi(cpi_perf, overlap, miss_rate, penalty, mlp)
    recovered = derive_overlap_cm(cpi, cpi_perf, miss_rate, penalty, mlp)
    assert recovered == pytest.approx(overlap, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    miss_rate=st.floats(0.001, 0.05),
    penalty=st.integers(100, 2000),
    mlp_low=st.floats(1.0, 5.0),
    gain=st.floats(0.01, 5.0),
)
def test_cpi_monotone_in_mlp(miss_rate, penalty, mlp_low, gain):
    """More MLP never hurts: CPI is strictly decreasing in MLP."""
    low = estimate_cpi(1.5, 0.1, miss_rate, penalty, mlp_low)
    high = estimate_cpi(1.5, 0.1, miss_rate, penalty, mlp_low + gain)
    assert high < low
