"""Property tests: archive persistence is an identity, or it fails loudly.

Hypothesis generates arbitrary valid traces (and event-consistent
annotations) and proves ``save → load`` returns an identical object.
Paired with the fault-injection suite, this pins the persistence
contract from both sides: valid archives round-trip exactly; damaged
ones raise :class:`~repro.robustness.errors.TraceFormatError`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opclass import OpClass
from repro.isa.registers import NUM_REGS, REG_NONE
from repro.trace.annotate import AnnotatedTrace, AnnotationConfig
from repro.trace.io import (
    FORMAT_VERSION,
    load_annotated,
    load_trace,
    save_annotated,
    save_trace,
)
from repro.trace.trace import Trace

_OPS = sorted(int(o) for o in OpClass)


@st.composite
def traces(draw, min_size=1, max_size=40):
    """An arbitrary schema-valid :class:`Trace`."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    ints = st.integers(min_value=0, max_value=2**40)
    regs = st.integers(min_value=REG_NONE, max_value=NUM_REGS - 1)
    column = {
        "op": draw(st.lists(st.sampled_from(_OPS), min_size=n, max_size=n)),
        "pc": draw(st.lists(ints, min_size=n, max_size=n)),
        "dst": draw(st.lists(regs, min_size=n, max_size=n)),
        "src1": draw(st.lists(regs, min_size=n, max_size=n)),
        "src2": draw(st.lists(regs, min_size=n, max_size=n)),
        "src3": draw(st.lists(regs, min_size=n, max_size=n)),
        "addr": draw(st.lists(ints, min_size=n, max_size=n)),
        "taken": draw(st.lists(st.booleans(), min_size=n, max_size=n)),
        "target": draw(st.lists(ints, min_size=n, max_size=n)),
        "value": draw(st.lists(ints, min_size=n, max_size=n)),
    }
    name = draw(st.text(
        alphabet=st.characters(min_codepoint=48, max_codepoint=122),
        min_size=1, max_size=12,
    ))
    return Trace(column, name=name)


@st.composite
def annotated_traces(draw):
    """An event-consistent :class:`AnnotatedTrace` over a random trace."""
    trace = draw(traces())
    n = len(trace)

    def submask(allowed):
        bits = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        return np.asarray(bits, dtype=bool) & allowed

    dmiss = submask(trace.load_like_mask())
    pmiss = submask(np.asarray(trace.op) == int(OpClass.PREFETCH))
    pfuseful = submask(pmiss)
    imiss = submask(np.ones(n, dtype=bool))
    mispred = submask(trace.branch_mask())
    smiss = submask(np.asarray(trace.op) == int(OpClass.STORE))
    vp_outcome = np.full(n, -1, dtype=np.int8)
    codes = draw(st.lists(
        st.sampled_from([0, 1, 2]), min_size=n, max_size=n
    ))
    vp_outcome[dmiss] = np.asarray(codes, dtype=np.int8)[dmiss]
    measure_start = draw(st.integers(min_value=0, max_value=n))
    return AnnotatedTrace(
        trace=trace,
        dmiss=dmiss,
        pmiss=pmiss,
        pfuseful=pfuseful,
        imiss=imiss,
        mispred=mispred,
        vp_outcome=vp_outcome,
        smiss=smiss,
        measure_start=measure_start,
        config=AnnotationConfig(),
    )


class TestTraceRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(trace=traces())
    def test_save_load_identity(self, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("rt") / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded == trace
        assert loaded.name == trace.name
        for name in ("op", "pc", "addr", "taken"):
            assert getattr(loaded, name).dtype == getattr(trace, name).dtype

    @settings(max_examples=15, deadline=None)
    @given(trace=traces())
    def test_saved_columns_are_read_only_after_load(
        self, trace, tmp_path_factory
    ):
        path = tmp_path_factory.mktemp("rt") / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        with pytest.raises(ValueError):
            loaded.op[0] = 0


class TestAnnotatedRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(annotated=annotated_traces())
    def test_save_load_identity(self, annotated, tmp_path_factory):
        path = tmp_path_factory.mktemp("rt") / "annotated.npz"
        save_annotated(annotated, path)
        loaded = load_annotated(path)
        assert loaded.trace == annotated.trace
        assert loaded.measure_start == annotated.measure_start
        for field in ("dmiss", "pmiss", "pfuseful", "imiss", "mispred",
                      "vp_outcome", "smiss"):
            assert np.array_equal(
                getattr(loaded, field), getattr(annotated, field)
            ), field

    @settings(max_examples=10, deadline=None)
    @given(annotated=annotated_traces())
    def test_offchip_accounting_survives_round_trip(
        self, annotated, tmp_path_factory
    ):
        path = tmp_path_factory.mktemp("rt") / "annotated.npz"
        save_annotated(annotated, path)
        loaded = load_annotated(path)
        assert loaded.num_offchip() == annotated.num_offchip()
        assert loaded.miss_rate_per_100() == annotated.miss_rate_per_100()


class TestVersionSkew:
    """Archives from a different format version are rejected, not misread."""

    def _saved_trace(self, tmp_path):
        from repro.trace.builder import TraceBuilder

        b = TraceBuilder("skew")
        b.add_load(0x100, dst=1, addr=0x8000, src1=2)
        b.add_nop(0x104)
        path = tmp_path / "trace.npz"
        save_trace(b.build(), path)
        return path

    @pytest.mark.parametrize("delta", [-1, 1, 100])
    def test_trace_version_skew_rejected(self, tmp_path, delta):
        from repro.robustness.faults import skew_version

        path = self._saved_trace(tmp_path)
        skew_version(path, delta=delta)
        with pytest.raises(ValueError, match="version") as excinfo:
            load_trace(path)
        assert str(FORMAT_VERSION + delta) in str(excinfo.value)

    def test_versionless_archive_rejected(self, tmp_path):
        path = tmp_path / "raw.npz"
        with open(path, "wb") as handle:  # reprolint: disable=atomic-writes
            np.savez(handle, op=np.zeros(1, dtype=np.int8))  # reprolint: disable=atomic-writes
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_trace_archive_is_not_an_annotated_archive(self, tmp_path):
        path = self._saved_trace(tmp_path)
        with pytest.raises(ValueError, match="annotated"):
            load_annotated(path)
