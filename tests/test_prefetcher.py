"""Tests for the hardware prefetchers and the premise-check harness."""

import pytest

from repro.memory.prefetcher import (
    NextLinePrefetcher,
    StridePrefetcher,
    run_prefetch_study,
)
from repro.trace.builder import TraceBuilder


class TestNextLine:
    def test_prefetches_on_miss_only(self):
        pf = NextLinePrefetcher(degree=2)
        assert pf.observe(0x100, 0x8000, was_miss=False) == ()
        assert pf.observe(0x100, 0x8000, was_miss=True) == (0x8040, 0x8080)

    def test_degree(self):
        pf = NextLinePrefetcher(degree=4)
        assert len(pf.observe(0, 0, True)) == 4
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)

    def test_line_alignment(self):
        pf = NextLinePrefetcher(degree=1)
        assert pf.observe(0, 0x8018, True) == (0x8040,)


class TestStride:
    def test_learns_constant_stride(self):
        pf = StridePrefetcher(entries=64, degree=2, threshold=2)
        pc = 0x100
        out = []
        for k in range(6):
            out.append(pf.observe(pc, 0x8000 + 128 * k, False))
        assert out[0] == () and out[1] == ()  # allocating / training
        assert out[-1] == (0x8000 + 128 * 6, 0x8000 + 128 * 7)

    def test_stride_change_resets(self):
        pf = StridePrefetcher(entries=64, threshold=2)
        pc = 0x100
        for k in range(5):
            pf.observe(pc, 0x8000 + 64 * k, False)
        assert pf.observe(pc, 0x20000, False) == ()  # stride broke
        assert pf.observe(pc, 0x20040, False) == ()  # retraining

    def test_random_addresses_never_fire(self):
        import random

        rng = random.Random(3)
        pf = StridePrefetcher(entries=64)
        fired = 0
        for _ in range(200):
            fired += bool(pf.observe(0x100, rng.randrange(1 << 24) * 8, True))
        assert fired <= 4  # only accidental stride repeats

    def test_zero_stride_never_fires(self):
        pf = StridePrefetcher(entries=64)
        for _ in range(10):
            out = pf.observe(0x100, 0x8000, False)
        assert out == ()

    def test_sites_tracked_separately(self):
        # Adjacent PCs map to different table indices (0x100 and 0x200
        # would alias in a 64-entry table).
        pf = StridePrefetcher(entries=64, threshold=1)
        for k in range(4):
            pf.observe(0x100, 0x8000 + 64 * k, False)
            pf.observe(0x104, 0x90000 + 128 * k, False)
        assert pf.observe(0x100, 0x8000 + 64 * 4, False)[0] == 0x8000 + 64 * 5
        assert (
            pf.observe(0x104, 0x90000 + 128 * 4, False)[0]
            == 0x90000 + 128 * 5
        )

    def test_aliasing_sites_evict_each_other(self):
        pf = StridePrefetcher(entries=64, threshold=1)
        for k in range(4):
            pf.observe(0x100, 0x8000 + 64 * k, False)
            pf.observe(0x200, 0x90000 + 128 * k, False)  # same index
        # Neither site ever accumulates confidence.
        assert pf.observe(0x100, 0x8000 + 64 * 4, False) == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            StridePrefetcher(entries=100)


class TestStudyHarness:
    def _streaming_trace(self, lines=600):
        """A perfectly sequential (stream) access pattern."""
        b = TraceBuilder("stream")
        for k in range(lines):
            b.add_load(0x100, dst=2, addr=0x5000_0000 + 64 * k, src1=1)
        return b.build()

    def _random_trace(self, count=600):
        import random

        rng = random.Random(5)
        b = TraceBuilder("randomaccess")
        for _ in range(count):
            b.add_load(0x100, dst=2,
                       addr=0x5000_0000 + 64 * rng.randrange(1 << 20), src1=1)
        return b.build()

    def test_stream_is_fully_coverable(self):
        trace = self._streaming_trace()
        study = run_prefetch_study(trace, StridePrefetcher(degree=4))
        assert study.coverage > 0.9
        assert study.accuracy > 0.9

    def test_random_is_not_coverable(self):
        trace = self._random_trace()
        study = run_prefetch_study(trace, StridePrefetcher(degree=4))
        assert study.coverage < 0.05

    def test_reference_run_issues_nothing(self):
        study = run_prefetch_study(self._streaming_trace(), None)
        assert study.issued == 0
        assert study.coverage == 0.0
        assert study.remaining_misses > 0

    def test_next_line_on_stream(self):
        study = run_prefetch_study(
            self._streaming_trace(), NextLinePrefetcher(degree=2)
        )
        assert study.coverage > 0.5

    def test_summary_text(self):
        study = run_prefetch_study(self._streaming_trace(), None)
        assert "coverage" in study.summary()

    def test_paper_premise_on_workloads(self, trace_len):
        """Stride prefetching covers little of the database/SPECjbb2000
        miss streams — the paper's Section 1 premise."""
        from repro.workloads import generate_trace

        for name in ("database", "specjbb2000"):
            trace = generate_trace(name, min(trace_len, 60000))
            study = run_prefetch_study(trace, StridePrefetcher(degree=2))
            assert study.coverage < 0.25, name
