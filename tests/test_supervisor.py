"""Unit tests for the crash-safe sweep supervision layer.

Covers the journal (content-hash keys, exact result round-trips,
torn-tail replay, meta checks), the supervision policy (retry budget,
deterministic backoff, validation), the fault-plan parser, the nestable
SIGALRM deadline, and the serial supervisor paths: retry-then-succeed,
dead-letter quarantine, crash-mid-journal-write and resume.  The
process-pool chaos paths (SIGKILL, hangs, worker replacement) live in
``tests/test_chaos.py``.
"""

import dataclasses
import json
import time

import pytest

from repro.analysis.sweep import sweep
from repro.core.config import MachineConfig
from repro.core.mlpsim import simulate
from repro.robustness.errors import (
    ConfigError,
    InjectedCrash,
    JournalError,
    SweepTimeout,
)
from repro.robustness.faults import ProcessFaultPlan, tear_journal
from repro.robustness.journal import (
    JOURNAL_VERSION,
    SweepJournal,
    config_key,
    result_from_payload,
    result_to_payload,
)
from repro.robustness.supervisor import (
    SupervisorPolicy,
    supervised_sweep,
    wall_clock_deadline,
)
from repro.trace.annotate import annotate
from repro.workloads import generate_trace

GRID_SPECS = ("16A", "64C", "64E", "128C")


@pytest.fixture(scope="module")
def small_annotated():
    """A small trace: supervisor tests re-simulate configs many times."""
    return annotate(generate_trace("specjbb2000", 12_000))


@pytest.fixture(scope="module")
def serial_baseline(small_annotated):
    """The clean serial sweep every supervised variant must match."""
    return sweep(small_annotated, _grid(), jobs=1)


def _grid():
    return [(spec, MachineConfig.named(spec)) for spec in GRID_SPECS]


def _result_fields(result):
    """Every MLPResult field, with inhibitor counts expanded."""
    fields = dataclasses.asdict(result)
    fields["inhibitors"] = result.inhibitors.as_dict()
    return fields


def _assert_matches_baseline(supervised, baseline, labels=None):
    """Bit-identical comparison against the clean serial sweep."""
    labels = labels if labels is not None else baseline.labels()
    for label in labels:
        assert _result_fields(supervised.results[label]) == \
            _result_fields(baseline.results[label]), label


class TestConfigKey:
    def test_stable_and_label_independent(self):
        machine = MachineConfig.named("64C")
        key = config_key("specjbb2000", 1234, 120_000, machine)
        assert key == config_key("specjbb2000", 1234, 120_000, machine)
        # The label is presentation, not identity: an equal config made
        # a different way hashes identically.
        again = MachineConfig.named("64C")
        assert key == config_key("specjbb2000", 1234, 120_000, again)

    def test_sensitive_to_every_identity_field(self):
        machine = MachineConfig.named("64C")
        base = config_key("specjbb2000", 1234, 120_000, machine)
        assert base != config_key("database", 1234, 120_000, machine)
        assert base != config_key("specjbb2000", 99, 120_000, machine)
        assert base != config_key("specjbb2000", 1234, 5_000, machine)
        assert base != config_key(
            "specjbb2000", 1234, 120_000, MachineConfig.named("64E")
        )

    def test_rejects_unhashable_config_parts(self):
        with pytest.raises(JournalError):
            config_key("w", 1, 10, object())


class TestResultRoundTrip:
    def test_payload_restores_bit_identical(self, small_annotated):
        result = simulate(
            small_annotated, MachineConfig.named("64C"),
            workload="specjbb2000",
        )
        # JSON is the journal's wire format: the round trip must be
        # exact, or resumed sweeps would diverge from clean ones.
        payload = json.loads(json.dumps(result_to_payload(result)))
        restored = result_from_payload(payload)
        assert _result_fields(restored) == _result_fields(result)

    def test_epoch_records_refused(self, small_annotated):
        result = simulate(
            small_annotated, MachineConfig.named("64C"), record_sets=True
        )
        with pytest.raises(JournalError):
            result_to_payload(result)

    def test_missing_field_raises_journal_error(self):
        with pytest.raises(JournalError):
            result_from_payload({"workload": "x"})


class TestJournalReplay:
    def _journal(self, tmp_path, name="sweep.jsonl"):
        journal = SweepJournal(tmp_path / name)
        journal.initialize("specjbb2000", 1234, 12_000)
        return journal

    def test_records_round_trip(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record_attempt("k1", "64C", 1)
        journal.record_failure("k1", "64C", 1, 0.5, "boom")
        journal.record_attempt("k1", "64C", 2)
        journal.record_quarantine("k2", "16A", 3, "poison")
        state = journal.replay()
        assert state.meta["workload"] == "specjbb2000"
        assert state.meta["version"] == JOURNAL_VERSION
        assert state.attempts == {"k1": 2}
        assert state.quarantined["k2"]["attempts"] == 3
        assert not state.torn_tail
        assert state.finished("k2") and not state.finished("k1")

    def test_torn_tail_discarded_silently(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record_attempt("k1", "64C", 1)
        journal.record_attempt("k2", "64E", 1)
        tear_journal(journal.path, drop_bytes=10)
        state = journal.replay()
        # Only the final record is lost; everything before survives.
        assert state.torn_tail
        assert state.attempts == {"k1": 1}

    def test_corruption_before_tail_raises(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record_attempt("k1", "64C", 1)
        journal.record_attempt("k2", "64E", 1)
        with open(journal.path, encoding="utf-8") as handle:
            raw = handle.read().splitlines()
        raw[1] = raw[1][:5]  # corrupt a middle record, keep the tail
        # Deliberately non-atomic: simulating in-place file damage.
        with open(journal.path, "w", encoding="utf-8") as handle:  # reprolint: disable=atomic-writes
            handle.write("\n".join(raw) + "\n")
        with pytest.raises(JournalError):
            journal.replay()

    def test_non_journal_file_raises(self, tmp_path):
        path = tmp_path / "not-a-journal.jsonl"
        path.write_text('{"type": "attempt", "key": "k"}\n')  # reprolint: disable=atomic-writes
        with pytest.raises(JournalError):
            SweepJournal(path).replay()

    def test_version_skew_raises(self, tmp_path):
        path = tmp_path / "future.jsonl"
        meta = {"type": "meta", "version": JOURNAL_VERSION + 1,
                "workload": "w", "seed": 1, "trace_len": 10}
        path.write_text(json.dumps(meta) + "\n")  # reprolint: disable=atomic-writes
        with pytest.raises(JournalError) as excinfo:
            SweepJournal(path).replay()
        assert "version" in str(excinfo.value)

    def test_check_meta_rejects_wrong_sweep(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.check_meta("specjbb2000", 1234, 12_000)  # matching: fine
        with pytest.raises(JournalError) as excinfo:
            journal.check_meta("specjbb2000", 4321, 12_000)
        assert "seed" in str(excinfo.value)
        with pytest.raises(JournalError):
            journal.check_meta("database", 1234, 12_000)


class TestSupervisorPolicy:
    def test_defaults(self):
        policy = SupervisorPolicy()
        assert policy.attempts_allowed == 3
        assert policy.config_timeout is None

    def test_backoff_is_deterministic_and_capped(self):
        policy = SupervisorPolicy(backoff_base=0.5, backoff_cap=3.0)
        assert policy.backoff_delay(1) == 0.5
        assert policy.backoff_delay(2) == 1.0
        assert policy.backoff_delay(3) == 2.0
        assert policy.backoff_delay(4) == 3.0  # capped
        assert SupervisorPolicy(backoff_base=0.0).backoff_delay(5) == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"max_retries": 1.5},
        {"max_retries": True},
        {"config_timeout": 0},
        {"config_timeout": -2.0},
        {"backoff_base": -0.1},
        {"pool_failure_limit": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            SupervisorPolicy(**kwargs)


class TestProcessFaultPlan:
    def test_parse_full_spec(self):
        plan = ProcessFaultPlan.parse(
            "kill:64A@1, hang:64C@2 fail:128C crash-journal:64E@1"
        )
        assert plan.entries == (
            ("kill", "64A", 1), ("hang", "64C", 2),
            ("fail", "128C", None), ("crash-journal", "64E", 1),
        )
        # Canonical spec string survives a re-parse (pickle protocol).
        assert ProcessFaultPlan.parse(plan.spec) == plan

    def test_attempt_scoping(self):
        plan = ProcessFaultPlan.parse("fail:64C@2 kill:16A")
        assert not plan._matches("fail", "64C", 1)
        assert plan._matches("fail", "64C", 2)
        assert plan._matches("kill", "16A", 1)
        assert plan._matches("kill", "16A", 7)  # every attempt: poison

    def test_empty_plan(self):
        assert ProcessFaultPlan.parse("").empty
        assert ProcessFaultPlan.parse(None).empty

    @pytest.mark.parametrize("spec", [
        "explode:64C", "kill", "kill:", "fail:64C@soon",
    ])
    def test_bad_specs_raise_config_error(self, spec):
        with pytest.raises(ConfigError):
            ProcessFaultPlan.parse(spec)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_FAULTS", "fail:64C@1")
        assert ProcessFaultPlan.from_env().entries == (("fail", "64C", 1),)
        monkeypatch.delenv("REPRO_PROCESS_FAULTS")
        assert ProcessFaultPlan.from_env().empty


class TestWallClockDeadline:
    def test_expires(self):
        with pytest.raises(SweepTimeout):
            with wall_clock_deadline(
                0.1, lambda s: SweepTimeout(f"blew {s}s")
            ):
                time.sleep(5)

    def test_no_deadline_is_a_no_op(self):
        with wall_clock_deadline(None, lambda s: SweepTimeout("never")):
            pass

    def test_nested_inner_expiry_preserves_outer(self):
        # The inner deadline fires; the outer one must survive the
        # round-trip (re-armed with its remaining budget) and still
        # fire afterwards.
        with pytest.raises(SweepTimeout, match="outer"):
            with wall_clock_deadline(0.4, lambda s: SweepTimeout("outer")):
                with pytest.raises(SweepTimeout, match="inner"):
                    with wall_clock_deadline(
                        0.05, lambda s: SweepTimeout("inner")
                    ):
                        time.sleep(5)
                time.sleep(5)


class TestSupervisedSerial:
    POLICY = SupervisorPolicy(max_retries=2, backoff_base=0.01)

    def test_matches_plain_serial_sweep(self, small_annotated,
                                        serial_baseline, tmp_path):
        seen = []
        result = supervised_sweep(
            small_annotated, _grid(), seed=1234, jobs=1,
            journal_path=tmp_path / "sweep.jsonl",
            policy=self.POLICY, progress=seen.append,
        )
        assert result.labels() == list(GRID_SPECS)
        assert seen == list(GRID_SPECS)
        assert result.complete and not result.quarantined
        assert result.executed == len(GRID_SPECS) and result.resumed == 0
        _assert_matches_baseline(result, serial_baseline)

    def test_supervise_kwarg_routes_through_sweep(self, small_annotated,
                                                  serial_baseline):
        result = sweep(
            small_annotated, _grid(), jobs=1,
            supervise={"seed": 1234, "policy": self.POLICY},
        )
        assert result.complete
        _assert_matches_baseline(result, serial_baseline)

    def test_duplicate_labels_rejected(self, small_annotated):
        machine = MachineConfig.named("64C")
        with pytest.raises(ConfigError):
            supervised_sweep(
                small_annotated, [("64C", machine), ("64C", machine)]
            )

    def test_retry_after_transient_fault(self, small_annotated,
                                         serial_baseline, tmp_path):
        journal_path = tmp_path / "retry.jsonl"
        result = supervised_sweep(
            small_annotated, _grid(), seed=1234, jobs=1,
            journal_path=journal_path, policy=self.POLICY,
            fault_plan=ProcessFaultPlan.parse("fail:64C@1"),
        )
        assert result.complete
        _assert_matches_baseline(result, serial_baseline)
        state = SweepJournal(journal_path).replay()
        key = config_key(
            "specjbb2000", 1234, len(small_annotated.trace),
            MachineConfig.named("64C"),
        )
        assert state.attempts[key] == 2  # failed once, then succeeded

    def test_poison_config_is_quarantined_fail_soft(self, small_annotated,
                                                    serial_baseline):
        result = supervised_sweep(
            small_annotated, _grid(), seed=1234, jobs=1,
            policy=self.POLICY,
            fault_plan=ProcessFaultPlan.parse("fail:64E"),
        )
        assert not result.complete
        assert [q.label for q in result.quarantined] == ["64E"]
        assert result.quarantined[0].attempts == self.POLICY.attempts_allowed
        # Attempt count and elapsed time ride along in the error.
        assert "attempt 3 of 3" in result.quarantined[0].error
        assert "after " in result.quarantined[0].error
        assert "64E" in result.quarantine_report()
        # The poison config must not sink the rest of the grid.
        survivors = [s for s in GRID_SPECS if s != "64E"]
        assert result.labels() == survivors
        _assert_matches_baseline(result, serial_baseline, survivors)

    def test_serial_config_timeout_recovers_hang(self, small_annotated,
                                                 serial_baseline):
        policy = SupervisorPolicy(
            max_retries=2, backoff_base=0.01, config_timeout=0.5
        )
        result = supervised_sweep(
            small_annotated, _grid(), seed=1234, jobs=1, policy=policy,
            fault_plan=ProcessFaultPlan.parse("hang:64C@1"),
        )
        assert result.complete
        _assert_matches_baseline(result, serial_baseline)


class TestCrashAndResume:
    POLICY = SupervisorPolicy(max_retries=2, backoff_base=0.01)

    def test_crash_mid_journal_write_then_resume(self, small_annotated,
                                                 serial_baseline, tmp_path):
        journal_path = tmp_path / "crash.jsonl"
        # The supervisor dies flushing the third config's result record:
        # the journal keeps a torn tail for 64E and durable results for
        # the two configs before it.
        with pytest.raises(InjectedCrash):
            supervised_sweep(
                small_annotated, _grid(), seed=1234, jobs=1,
                journal_path=journal_path, policy=self.POLICY,
                fault_plan=ProcessFaultPlan.parse("crash-journal:64E@1"),
            )
        state = SweepJournal(journal_path).replay()
        assert state.torn_tail
        assert len(state.results) == 2

        resumed = supervised_sweep(
            small_annotated, _grid(), seed=1234, jobs=1,
            journal_path=journal_path, resume=True, policy=self.POLICY,
        )
        # Only the configs the journal marks unfinished re-execute.
        assert resumed.resumed == 2 and resumed.executed == 2
        assert resumed.complete
        assert resumed.labels() == list(GRID_SPECS)
        _assert_matches_baseline(resumed, serial_baseline)

    def test_resume_of_finished_sweep_executes_nothing(self,
                                                       small_annotated,
                                                       serial_baseline,
                                                       tmp_path):
        journal_path = tmp_path / "done.jsonl"
        supervised_sweep(
            small_annotated, _grid(), seed=1234, jobs=1,
            journal_path=journal_path, policy=self.POLICY,
        )
        again = supervised_sweep(
            small_annotated, _grid(), seed=1234, jobs=1,
            journal_path=journal_path, resume=True, policy=self.POLICY,
        )
        assert again.resumed == len(GRID_SPECS) and again.executed == 0
        _assert_matches_baseline(again, serial_baseline)

    def test_resume_against_wrong_journal_refuses(self, small_annotated,
                                                  tmp_path):
        journal_path = tmp_path / "wrong.jsonl"
        supervised_sweep(
            small_annotated, _grid()[:1], seed=1234, jobs=1,
            journal_path=journal_path, policy=self.POLICY,
        )
        with pytest.raises(JournalError):
            supervised_sweep(
                small_annotated, _grid()[:1], seed=4321, jobs=1,
                journal_path=journal_path, resume=True, policy=self.POLICY,
            )

    def test_quarantine_survives_resume(self, small_annotated, tmp_path):
        journal_path = tmp_path / "poison.jsonl"
        first = supervised_sweep(
            small_annotated, _grid(), seed=1234, jobs=1,
            journal_path=journal_path, policy=self.POLICY,
            fault_plan=ProcessFaultPlan.parse("fail:64E"),
        )
        assert [q.label for q in first.quarantined] == ["64E"]
        # Resuming does NOT retry the dead-lettered config: the journal
        # remembers the quarantine decision.
        resumed = supervised_sweep(
            small_annotated, _grid(), seed=1234, jobs=1,
            journal_path=journal_path, resume=True, policy=self.POLICY,
        )
        assert [q.label for q in resumed.quarantined] == ["64E"]
        assert resumed.executed == 0
        assert resumed.resumed == len(GRID_SPECS) - 1
