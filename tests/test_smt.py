"""Tests for the multithreaded-MLP extension (paper Section 7)."""

import pytest

from repro.core.config import MachineConfig
from repro.core.mlpsim import MLPSim
from repro.core.smt import (
    ThreadProfile,
    profile_from_result,
    profile_workload,
    simulate_smt,
)
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


def make_profile(name, phases, tail=0):
    return ThreadProfile(name=name, phases=tuple(phases), tail_instructions=tail)


class TestThreadProfile:
    def test_totals(self):
        p = make_profile("t", [(100, 1), (50, 2)], tail=25)
        assert p.total_accesses == 3
        assert p.total_instructions == 175

    def test_profile_from_mlpsim_run(self):
        b = TraceBuilder("p")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        for k in range(10):
            b.add_alu(0x104 + 4 * k, dst=3, src1=1)
        b.add_load(0x130, dst=4, addr=0x9000, src1=2)  # dep: second epoch
        ann = manual_annotation(b.build(), dmiss_at=[0, 11])
        result = MLPSim(MachineConfig.named("64C"), record_sets=True).run(ann)
        profile = profile_from_result(result, region_start=0)
        assert len(profile.phases) == 2
        assert profile.phases[0] == (0, 1)
        assert profile.phases[1] == (11, 1)

    def test_requires_epoch_records(self, specjbb_annotated):
        result = MLPSim(MachineConfig.named("64C")).run(specjbb_annotated)
        with pytest.raises(ValueError, match="epoch records"):
            profile_from_result(result)


class TestSingleThread:
    def test_one_thread_mlp_matches_profile(self):
        # Two epochs of 2 and 4 accesses -> MLP(t) = (2+4)/2 epochs = 3.
        p = make_profile("t", [(100, 2), (100, 4)])
        result = simulate_smt([p], ipc=1.0, latency=500)
        assert result.mlp == pytest.approx(3.0)
        assert result.accesses == 6

    def test_cycle_accounting(self):
        p = make_profile("t", [(100, 1)], tail=100)
        result = simulate_smt([p], ipc=2.0, latency=400)
        # 50 compute + 400 stall + 50 tail.
        assert result.cycles == pytest.approx(500.0)
        assert result.speedup_vs_serial == pytest.approx(0.0)

    def test_compute_only_thread(self):
        p = make_profile("t", [], tail=300)
        result = simulate_smt([p], ipc=3.0)
        assert result.cycles == pytest.approx(100.0)
        assert result.mlp == 0.0


class TestMultiThread:
    def test_disjoint_stalls_overlap(self):
        # Two identical memory-bound threads: stalls overlap almost
        # fully, so two threads take barely longer than one.
        p = make_profile("t", [(10, 1)] * 5)
        one = simulate_smt([p], ipc=1.0, latency=1000)
        two = simulate_smt([p, p], ipc=1.0, latency=1000)
        assert two.cycles < one.cycles * 1.1
        assert two.speedup_vs_serial > 0.8

    def test_aggregate_mlp_scales_with_threads(self):
        p = make_profile("t", [(50, 1)] * 4)
        mlps = [
            simulate_smt([p] * n, ipc=2.0, latency=1000).mlp
            for n in (1, 2, 4)
        ]
        assert mlps[0] == pytest.approx(1.0)
        assert mlps[0] < mlps[1] < mlps[2]
        assert mlps[2] <= 4.0 + 1e-9

    def test_compute_bound_threads_share_bandwidth(self):
        # Pure compute threads cannot overlap anything: two of them take
        # twice as long, no speedup.
        p = make_profile("t", [], tail=1000)
        two = simulate_smt([p, p], ipc=1.0)
        assert two.cycles == pytest.approx(2000.0)
        assert two.speedup_vs_serial == pytest.approx(0.0)

    def test_heterogeneous_threads_finish_independently(self):
        short = make_profile("short", [(10, 1)])
        long_ = make_profile("long", [(10, 1)] * 6)
        result = simulate_smt([short, long_], ipc=1.0, latency=100)
        assert result.thread_finish["short"] < result.thread_finish["long"]
        assert result.cycles == result.thread_finish["long"]

    def test_zero_compute_phases_cascade(self):
        # Back-to-back epochs (dependent-chain threads) must not hang.
        p = make_profile("chain", [(0, 1)] * 4)
        result = simulate_smt([p, p], ipc=1.0, latency=50)
        assert result.accesses == 8
        assert result.cycles == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_smt([])
        with pytest.raises(ValueError):
            simulate_smt([make_profile("t", [(1, 1)])], ipc=0)

    def test_summary_text(self):
        p = make_profile("t", [(10, 1)])
        assert "SMT x1" in simulate_smt([p]).summary()


class TestWorkloadComposition:
    def test_multithreading_lifts_core_mlp(self, specjbb_annotated):
        profile = profile_workload(specjbb_annotated)
        one = simulate_smt([profile])
        four = simulate_smt([profile] * 4)
        assert four.mlp > one.mlp * 2
        assert four.speedup_vs_serial > 0.5

    def test_memory_bound_gains_more_than_compute_bound(
        self, database_annotated, specweb_annotated
    ):
        db = profile_workload(database_annotated)
        web = profile_workload(specweb_annotated)
        db_gain = simulate_smt([db] * 4).speedup_vs_serial
        web_gain = simulate_smt([web] * 4).speedup_vs_serial
        # The database workload spends more time stalled, so SMT hides
        # more of its time.
        assert db_gain > web_gain
