"""The merged tree is reprolint-clean: every invariant holds right now.

This is the enforcement tier: ``repro lint`` runs all nineteen passes
over the real repository (``src/repro``, ``tests`` and ``examples``)
and must report nothing.  A failure here means a commit introduced a
bare stdlib raise, a non-atomic result write, a nondeterminism hazard,
an edit to the frozen oracle, a misspelled config field, a stale
exhibit registry, a pool worker mutating shared state, a
wall-clock-tainted RNG seed, a leakable write handle, unreachable
code, an ABI/constant/schema drift between the Python engines and the
C kernels, a typestate-protocol violation — or an unprovable kernel
subscript/overflow or a plan-contract drift: the interval
certification (``kernel-bounds``/``kernel-overflow``/``plan-contract``)
is part of this tier, so the compiled kernels stay machine-checked
against the ranges the Python validators enforce.  The assertion
output carries the exact file, line and message.
"""

import pathlib

from repro.cli import main
from repro.lint import Severity, run_lint

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_repository_is_lint_clean():
    findings = run_lint(REPO_ROOT)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    report = "\n".join(f.format() for f in errors)
    assert errors == [], f"reprolint found violations:\n{report}"


def test_cli_exits_zero_on_repository(capsys):
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out
