"""Targeted semantics tests for the out-of-order MLPsim engine.

Each test constructs a tiny trace that isolates one window-termination
rule or dependence mechanism from Section 3 of the paper.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.epoch import TriggerKind, epoch_sets
from repro.core.mlpsim import MLPSim, simulate
from repro.core.termination import Inhibitor
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


def run(annotated, label="64C", record=True, **overrides):
    machine = MachineConfig.named(label, **overrides)
    return MLPSim(machine, record_sets=record).run(annotated)


def chain_trace(levels, spacing=0):
    """A pointer chase: each missing load's address feeds the next."""
    b = TraceBuilder("chain")
    pc = 0x100
    for level in range(levels):
        b.add_load(pc, dst=2, addr=0x8000 + 0x1000 * level, src1=2, value=level)
        pc += 4
        for _ in range(spacing):
            b.add_alu(pc, dst=9, src1=8)
            pc += 4
    return manual_annotation(
        b.build(), dmiss_at=[i * (spacing + 1) for i in range(levels)]
    )


def burst_trace(misses, spacing=0):
    """Independent missing loads, optionally separated by filler ALUs."""
    b = TraceBuilder("burst")
    pc = 0x100
    dmiss_at = []
    for m in range(misses):
        dmiss_at.append(len(b._cols["op"]))
        b.add_load(pc, dst=8 + (m % 4), addr=0x8000 + 0x1000 * m, src1=1)
        pc += 4
        for _ in range(spacing):
            b.add_alu(pc, dst=20, src1=21)
            pc += 4
    return manual_annotation(b.build(), dmiss_at=dmiss_at)


class TestDependences:
    def test_chain_serialises_completely(self):
        result = run(chain_trace(5))
        assert result.epochs == 5
        assert result.mlp == pytest.approx(1.0)

    def test_independent_burst_overlaps_completely(self):
        result = run(burst_trace(6))
        assert result.epochs == 1
        assert result.mlp == pytest.approx(6.0)

    def test_store_forwarding_creates_memory_dependence(self):
        # load(miss) -> store of its value -> load of the stored address
        # (a cache hit): the final load cannot execute before the store.
        b = TraceBuilder("fwd")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        b.add_store(0x104, addr=0x9000, data_src=2, src1=1)
        b.add_load(0x108, dst=3, addr=0x9000, src1=1)  # hit, forwarded
        b.add_load(0x10C, dst=4, addr=0xA000, src1=3)  # miss, dep via memory
        ann = manual_annotation(b.build(), dmiss_at=[0, 3])
        result = run(ann)
        assert epoch_sets(result.epoch_records) == [[0], [1, 2, 3]]
        assert result.mlp == pytest.approx(1.0)

    def test_memory_dependence_is_address_precise(self):
        # A store to a *different* address does not delay the load.
        b = TraceBuilder("nofwd")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        b.add_store(0x104, addr=0x9000, data_src=2, src1=1)
        b.add_load(0x108, dst=3, addr=0x9040, src1=1)  # different addr
        ann = manual_annotation(b.build(), dmiss_at=[0, 2])
        result = run(ann)  # config C: load speculates past the store
        assert result.epochs == 1
        assert result.accesses == 2

    def test_zero_register_never_creates_dependence(self):
        b = TraceBuilder("zero")
        b.add_load(0x100, dst=0, addr=0x8000, src1=1)  # writes %g0
        b.add_load(0x104, dst=3, addr=0x9000, src1=0)  # reads %g0
        ann = manual_annotation(b.build(), dmiss_at=[0, 1])
        result = run(ann)
        assert result.epochs == 1  # both overlap


class TestWindowLimits:
    def test_rob_bounds_the_epoch(self):
        # 8 independent misses, 3 apart; ROB 8 reaches only the first 3.
        ann = burst_trace(8, spacing=2)
        small = run(ann, "8C", fetch_buffer=0)
        big = run(ann, "64C")
        assert small.mlp < big.mlp
        assert big.mlp == pytest.approx(8.0)

    def test_issue_window_occupancy_counts_unissued_only(self):
        # A missing load issues and leaves the issue window, so a tiny
        # IW with a big ROB still exposes distant misses (decoupling).
        b = TraceBuilder("decouple")
        pc = 0x100
        dmiss = []
        for m in range(4):
            dmiss.append(len(b._cols["op"]))
            b.add_load(pc, dst=8, addr=0x8000 + 0x1000 * m, src1=1)
            pc += 4
            for _ in range(7):
                b.add_alu(pc, dst=20, src1=1)  # independent: all execute
                pc += 4
        ann = manual_annotation(b.build(), dmiss_at=dmiss)
        result = run(ann, "4C", rob=64, fetch_buffer=0)
        assert result.mlp == pytest.approx(4.0)

    def test_deferred_instructions_fill_the_issue_window(self):
        # Instructions dependent on the miss stay in the IW and stall
        # dispatch once it is full.
        b = TraceBuilder("iwfull")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        pc = 0x104
        for _k in range(6):
            b.add_alu(pc, dst=3, src1=2)  # all depend on the miss
            pc += 4
        b.add_load(pc, dst=9, addr=0x9000, src1=1)  # independent miss
        ann = manual_annotation(b.build(), dmiss_at=[0, 7])
        blocked = run(ann, "4C", rob=64, fetch_buffer=0)
        assert blocked.epochs == 2  # IW filled by the four deferred ALUs
        free = run(ann, "16C", rob=64, fetch_buffer=0)
        assert free.epochs == 1

    def test_fetch_buffer_catches_imiss_past_the_window(self):
        # The window fills at the ROB limit, but the fetch buffer keeps
        # fetching and finds an instruction miss to overlap.
        b = TraceBuilder("fbuf")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # trigger
        pc = 0x104
        for _ in range(4):
            b.add_alu(pc, dst=3, src1=2)
            pc += 4
        b.add_alu(pc, dst=9, src1=1)  # this one fetch-misses
        ann = manual_annotation(b.build(), dmiss_at=[0], imiss_at=[5])
        with_buffer = run(ann, "4C", fetch_buffer=8)
        assert with_buffer.epoch_records[0].accesses == 2
        without = run(ann, "4C", fetch_buffer=0)
        assert without.epoch_records[0].accesses == 1

    def test_maxwin_inhibitor_reported(self):
        ann = burst_trace(8, spacing=2)
        result = run(ann, "8C", fetch_buffer=0)
        assert result.epoch_records[0].inhibitor == Inhibitor.MAXWIN


class TestSerializing:
    def test_cas_blocks_overlap(self):
        b = TraceBuilder("cas")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        b.add_cas(0x104, dst=3, addr=0x1000, src1=1, data_src=4)
        b.add_load(0x108, dst=5, addr=0x9000, src1=1)  # miss
        ann = manual_annotation(b.build(), dmiss_at=[0, 2])
        serialized = run(ann, "64D")
        assert serialized.epochs == 2
        assert serialized.epoch_records[0].inhibitor == Inhibitor.SERIALIZE
        relaxed = run(ann, "64E")
        assert relaxed.epochs == 1

    def test_serializing_is_free_with_nothing_outstanding(self):
        b = TraceBuilder("free-cas")
        b.add_cas(0x100, dst=3, addr=0x1000, src1=1, data_src=4)
        b.add_membar(0x104)
        b.add_load(0x108, dst=5, addr=0x9000, src1=1)  # miss
        b.add_load(0x10C, dst=6, addr=0xA000, src1=1)  # miss
        ann = manual_annotation(b.build(), dmiss_at=[2, 3])
        result = run(ann, "64C")
        assert result.epochs == 1
        assert result.mlp == pytest.approx(2.0)

    def test_missing_cas_forms_its_own_epoch(self):
        b = TraceBuilder("cas-miss")
        b.add_cas(0x100, dst=3, addr=0x8000, src1=1, data_src=4)
        b.add_load(0x104, dst=5, addr=0x9000, src1=1)  # independent miss
        ann = manual_annotation(b.build(), dmiss_at=[0, 1])
        result = run(ann, "64C")
        assert result.epochs == 2
        assert result.epoch_records[0].inhibitor == Inhibitor.SERIALIZE
        # Config E lets the atomic behave like a load: full overlap.
        relaxed = run(ann, "64E")
        assert relaxed.epochs == 1

    def test_deferred_cas_executes_after_drain(self):
        b = TraceBuilder("cas-defer")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        b.add_cas(0x104, dst=3, addr=0x8100, src1=1, data_src=2)
        ann = manual_annotation(b.build(), dmiss_at=[0, 1])
        result = run(ann, "64C")
        # Epoch 1: the load; epoch 2: the (missing) CAS.
        assert result.epochs == 2
        assert result.accesses == 2


class TestBranches:
    def test_resolvable_misprediction_costs_nothing(self):
        b = TraceBuilder("cheap-mispredict")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        b.add_branch(0x104, taken=True, target=0x200, src1=1)  # on-chip cond
        b.add_load(0x200, dst=3, addr=0x9000, src1=1)  # miss
        ann = manual_annotation(b.build(), dmiss_at=[0, 2], mispred_at=[1])
        result = run(ann, "64C")
        assert result.epochs == 1  # branch resolves on-chip, no break

    def test_unresolvable_misprediction_terminates(self):
        b = TraceBuilder("hard-mispredict")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        b.add_branch(0x104, taken=True, target=0x200, src1=2)  # dep on miss
        b.add_load(0x200, dst=3, addr=0x9000, src1=1)  # miss
        ann = manual_annotation(b.build(), dmiss_at=[0, 2], mispred_at=[1])
        result = run(ann, "64C")
        assert result.epochs == 2
        assert result.epoch_records[0].inhibitor == Inhibitor.MISPRED_BR

    def test_in_order_branch_blocked_behind_deferred_branch(self):
        # A correctly predicted branch dependent on the miss defers; the
        # younger mispredicted branch cannot issue in order, so it is
        # unresolvable even though its own inputs are ready.
        b = TraceBuilder("blocked-branch")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        b.add_branch(0x104, taken=False, target=0x900, src1=2)  # deferred
        b.add_branch(0x108, taken=False, target=0x800, src1=1)  # mispredicted
        b.add_load(0x10C, dst=3, addr=0x9000, src1=1)  # miss
        ann = manual_annotation(b.build(), dmiss_at=[0, 3], mispred_at=[2])
        in_order = run(ann, "64C")
        assert in_order.epochs == 2
        out_of_order = run(ann, "64D")
        assert out_of_order.epochs == 1


class TestPrefetchesAndImiss:
    def test_useful_prefetch_counts(self):
        b = TraceBuilder("pf")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        b.add_prefetch(0x104, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[0], pmiss_at=[1])
        result = run(ann)
        assert result.accesses == 2
        assert result.prefetch_accesses == 1

    def test_useless_prefetch_does_not_count(self):
        b = TraceBuilder("useless-pf")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_prefetch(0x104, addr=0x9000, src1=1)
        ann = manual_annotation(
            b.build(), dmiss_at=[0], pmiss_at=[1], useless_prefetches=[1]
        )
        result = run(ann)
        assert result.accesses == 1
        assert result.prefetch_accesses == 0

    def test_prefetch_can_trigger_an_epoch(self):
        b = TraceBuilder("pf-trigger")
        b.add_prefetch(0x100, addr=0x9000, src1=1)
        b.add_load(0x104, dst=2, addr=0x8000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[1], pmiss_at=[0])
        result = run(ann)
        assert result.epoch_records[0].trigger_kind == TriggerKind.PMISS
        assert result.epoch_records[0].accesses == 2

    def test_imiss_start_epoch(self):
        b = TraceBuilder("imiss-start")
        b.add_alu(0x100, dst=2, src1=1)
        b.add_load(0x104, dst=3, addr=0x8000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[1], imiss_at=[0])
        result = run(ann)
        assert result.epochs == 2
        assert result.epoch_records[0].inhibitor == Inhibitor.IMISS_START
        assert result.epoch_records[0].trigger_kind == TriggerKind.IMISS

    def test_perfect_ifetch_removes_imisses(self):
        b = TraceBuilder("perfi")
        b.add_alu(0x100, dst=2, src1=1)
        b.add_load(0x104, dst=3, addr=0x8000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[1], imiss_at=[0])
        result = run(ann, "64C", perfect_ifetch=True)
        assert result.epochs == 1
        assert result.imiss_accesses == 0


class TestValuePrediction:
    def _vp_chain(self):
        b = TraceBuilder("vp")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss, predicted
        b.add_load(0x104, dst=3, addr=0x9000, src1=2)  # dependent miss
        return b.build()

    def test_correct_prediction_overlaps_dependent_miss(self):
        ann = manual_annotation(
            self._vp_chain(), dmiss_at=[0, 1], vp_correct_at=[0]
        )
        base = run(ann, "64C")
        assert base.epochs == 2
        vp = run(ann, "64C", value_prediction=True)
        assert vp.epochs == 1

    def test_wrong_prediction_changes_nothing(self):
        ann = manual_annotation(self._vp_chain(), dmiss_at=[0, 1])
        vp = run(ann, "64C", value_prediction=True)
        assert vp.epochs == 2

    def test_perfect_value_prediction(self):
        ann = manual_annotation(self._vp_chain(), dmiss_at=[0, 1])
        result = run(ann, "64C", perfect_value=True)
        assert result.epochs == 1

    def test_predicted_value_does_not_resolve_branches(self):
        # The branch consumes a correctly predicted value, but recovery
        # needs the validated data: the window still terminates.
        b = TraceBuilder("vp-branch")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss, predicted
        b.add_branch(0x104, taken=True, target=0x200, src1=2)  # mispredicted
        b.add_load(0x200, dst=3, addr=0x9000, src1=1)  # miss
        ann = manual_annotation(
            b.build(), dmiss_at=[0, 2], mispred_at=[1], vp_correct_at=[0]
        )
        result = run(ann, "64C", value_prediction=True)
        assert result.epochs == 2
        assert result.epoch_records[0].inhibitor == Inhibitor.MISPRED_BR


class TestAccounting:
    def test_every_event_counted_exactly_once(self, database_annotated):
        import numpy as np

        ann = database_annotated
        result = simulate(ann, MachineConfig.named("64C"))
        start, stop = ann.measured_region()
        expected = (
            int(np.count_nonzero(ann.dmiss[start:stop]))
            + int(np.count_nonzero(ann.imiss[start:stop]))
            + int(np.count_nonzero(ann.pfuseful[start:stop]))
        )
        assert result.accesses == expected

    def test_mlp_equals_accesses_over_epochs(self, specweb_annotated):
        result = simulate(specweb_annotated, MachineConfig.named("64C"))
        assert result.mlp == pytest.approx(result.accesses / result.epochs)

    def test_region_bounds_validated(self, database_annotated):
        with pytest.raises(ValueError):
            simulate(
                database_annotated,
                MachineConfig(),
                start=10,
                stop=len(database_annotated.trace) + 5,
            )

    def test_deterministic(self, specjbb_annotated):
        machine = MachineConfig.named("64C")
        a = simulate(specjbb_annotated, machine)
        b = simulate(specjbb_annotated, machine)
        assert a.mlp == b.mlp
        assert a.epochs == b.epochs
        assert a.inhibitors.as_dict() == b.inhibitors.as_dict()


class TestFetchRunOnParity:
    """A dispatch-side stop must allow fetch-buffer run-on regardless of
    whether it is reached from the deferred list (phase 1) or from the
    fetch stream (phase 2).

    Regression test: the phase-1 path used to skip the run-on, so a
    serializing drain hit while draining deferred instructions could not
    absorb a following I-fetch miss into the current epoch — perfect
    branch prediction (which reshuffles where stops are encountered)
    could then *reduce* MLP, violating the engine's monotonicity
    invariant.
    """

    def test_serialize_stop_from_deferred_list_allows_runon(self):
        b = TraceBuilder("runon-parity")
        b.add_load(0x100, dst=1, addr=0x10000, src1=2)  # i0: miss
        b.add_membar(0x104)                             # i1: drains behind i0
        b.add_load(0x108, dst=3, addr=0x20000, src1=2)  # i2: miss
        b.add_cas(0x10C, dst=4, addr=0x30000, src1=2, data_src=3)  # i3
        b.add_alu(0x110, dst=5, src1=4)                 # i4
        b.add_alu(0x114, dst=6, src1=5)                 # i5: I-fetch miss
        ann = manual_annotation(b.build(), dmiss_at=[0, 2], imiss_at=[5])
        # Epoch 1 buffers i2..i4 behind the MEMBAR drain (fetch_buffer=3
        # fills before reaching i5).  Epoch 2 replays the deferred list,
        # hits the CAS drain *in the deferred scan*, and the run-on must
        # still absorb the i5 I-miss into this epoch: 2 epochs total.
        result = MLPSim(MachineConfig(fetch_buffer=3)).run(ann)
        assert result.accesses == 3
        assert result.imiss_accesses == 1
        assert result.epochs == 2
        assert result.mlp == pytest.approx(1.5)
