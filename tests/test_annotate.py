"""Tests for the annotation pipeline (trace -> MLPsim events)."""

import numpy as np

from repro.memory.hierarchy import HierarchyConfig
from repro.trace.annotate import AnnotationConfig, annotate, manual_annotation
from repro.trace.builder import TraceBuilder


def cold_loop_trace(lines=64, repeats=3, region=0x5000_0000):
    """Touch `lines` distinct lines `repeats` times from a fixed loop PC."""
    b = TraceBuilder("cold-loop")
    for _r in range(repeats):
        for k in range(lines):
            b.add_load(0x100, dst=2, addr=region + 64 * k, src1=1, value=k)
    return b.build()


class TestDataAnnotations:
    def test_first_touch_misses_then_hits(self):
        ann = annotate(cold_loop_trace(lines=32, repeats=2))
        assert int(ann.dmiss[:32].sum()) == 32
        assert int(ann.dmiss[32:].sum()) == 0

    def test_big_region_always_misses(self):
        # A working set far beyond the L2 never becomes resident.
        b = TraceBuilder("stream")
        for k in range(200):
            b.add_load(0x100, dst=2, addr=0x5000_0000 + 64 * 997 * k, src1=1)
        ann = annotate(b.build())
        assert int(np.count_nonzero(ann.dmiss)) == 200

    def test_store_misses_allocate_but_do_not_count(self):
        b = TraceBuilder("store")
        b.add_store(0x100, addr=0x5000_0000, data_src=2, src1=1)
        b.add_load(0x104, dst=3, addr=0x5000_0000, src1=1)
        ann = annotate(b.build())
        assert not ann.dmiss.any()  # store allocated the line
        # The only off-chip traffic left is the code's own fetch miss.
        assert ann.num_offchip(start=0) == int(ann.imiss.sum())

    def test_l2_size_changes_events(self):
        trace = cold_loop_trace(lines=3000, repeats=3)  # ~192KB
        small = annotate(
            trace,
            AnnotationConfig(
                hierarchy=HierarchyConfig().with_l2_size(128 * 1024)
            ),
        )
        big = annotate(trace)
        assert small.dmiss.sum() > big.dmiss.sum()


class TestInstructionAnnotations:
    def test_cold_code_fetch_misses(self):
        b = TraceBuilder("coldcode")
        for k in range(64):
            b.add_alu(0x0100_0000 + 4 * k, dst=2, src1=1)
        ann = annotate(b.build())
        # One miss per 64B line = every 16 instructions.
        assert int(np.count_nonzero(ann.imiss)) == 4
        assert ann.imiss[0] and ann.imiss[16]

    def test_warm_code_does_not_miss(self):
        b = TraceBuilder("warmcode")
        for _ in range(3):
            for k in range(16):
                b.add_alu(0x0100_0000 + 4 * k, dst=2, src1=1)
        ann = annotate(b.build())
        assert int(np.count_nonzero(ann.imiss)) == 1  # first touch only


class TestBranchAnnotations:
    def test_biased_branch_learned(self):
        b = TraceBuilder("biased")
        for _ in range(100):
            b.add_branch(0x100, taken=True, target=0x200, src1=2)
            b.add_alu(0x200, dst=2, src1=1)
        ann = annotate(b.build())
        branch_positions = np.nonzero(b.build().branch_mask())[0]
        late = ann.mispred[branch_positions[50:]]
        assert not late.any()

    def test_unconditional_jumps_never_mispredict(self):
        b = TraceBuilder("jumps")
        import random

        rng = random.Random(7)
        for _ in range(50):
            b.add_branch(0x100, taken=True, target=rng.randrange(1 << 20) * 4)
            b.add_alu(0x104, dst=2, src1=1)
        ann = annotate(b.build())
        assert not ann.mispred.any()


class TestPrefetchAnnotations:
    def test_useful_prefetch_detected(self):
        b = TraceBuilder("pf")
        b.add_prefetch(0x100, addr=0x5000_0000, src1=1)
        b.add_load(0x104, dst=2, addr=0x5000_0000, src1=1)
        ann = annotate(b.build())
        assert ann.pmiss[0] and ann.pfuseful[0]
        assert not ann.dmiss[1]  # the load hits on the prefetched line

    def test_unused_prefetch_is_useless(self):
        b = TraceBuilder("pf-useless")
        b.add_prefetch(0x100, addr=0x5000_0000, src1=1)
        b.add_load(0x104, dst=2, addr=0x6000_0000, src1=1)
        ann = annotate(b.build())
        assert ann.pmiss[0] and not ann.pfuseful[0]

    def test_prefetch_into_cache_is_not_pmiss(self):
        b = TraceBuilder("pf-hit")
        b.add_load(0x100, dst=2, addr=0x5000_0000, src1=1)
        b.add_prefetch(0x104, addr=0x5000_0000, src1=1)
        ann = annotate(b.build())
        assert not ann.pmiss[1]


class TestValueAnnotations:
    def test_vp_outcomes_only_on_missing_loads(self):
        ann = annotate(cold_loop_trace(lines=8, repeats=3))
        assert (ann.vp_outcome[ann.dmiss] >= 0).all()
        assert (ann.vp_outcome[~np.asarray(ann.dmiss)] == -1).all()

    def test_constant_values_predicted(self):
        b = TraceBuilder("vp")
        # Same site, always-missing loads, constant value.
        for k in range(6):
            b.add_load(0x100, dst=2, addr=0x5000_0000 + 64 * 1031 * k,
                       src1=1, value=7)
        ann = annotate(b.build())
        assert (ann.vp_outcome[2:] == 0).all()  # correct after the ramp


class TestRegionsAndHelpers:
    def test_measure_start_fraction(self):
        trace = cold_loop_trace(lines=30, repeats=2)
        ann = annotate(trace, AnnotationConfig(warmup_fraction=0.5))
        assert ann.measure_start == len(trace) // 2
        assert ann.measured_region() == (len(trace) // 2, len(trace))

    def test_miss_rate_helpers(self):
        ann = annotate(cold_loop_trace(lines=16, repeats=1))
        ann.measure_start = 0
        assert ann.miss_rate_per_100() > 0
        assert ann.l2_load_miss_rate_per_100() > 0

    def test_manual_annotation_validation_free_layout(self):
        b = TraceBuilder("manual")
        b.add_load(0x100, dst=2, addr=0x40, src1=1)
        b.add_branch(0x104, taken=False, target=0x200, src1=2)
        ann = manual_annotation(
            b.build(), dmiss_at=[0], mispred_at=[1], vp_correct_at=[0]
        )
        assert ann.dmiss[0] and ann.mispred[1]
        assert ann.vp_outcome[0] == 0
        assert ann.num_offchip() == 1

    def test_annotation_config_cache_key(self):
        a = AnnotationConfig()
        b = AnnotationConfig(
            hierarchy=HierarchyConfig().with_l2_size(1024 * 1024)
        )
        assert a.cache_key() != b.cache_key()
        assert a.cache_key() == AnnotationConfig().cache_key()
