"""Shared fixtures for the test suite.

Workload traces are expensive to generate and annotate, so the fixtures
are session-scoped and sized by ``REPRO_TEST_TRACE_LEN`` (default
120,000 instructions — enough for stable shape assertions, small enough
to keep the suite fast).
"""

import os

import pytest

from repro.core.config import MachineConfig
from repro.trace.annotate import annotate
from repro.workloads import generate_trace

TEST_TRACE_LEN = int(os.environ.get("REPRO_TEST_TRACE_LEN", "120000"))


@pytest.fixture(scope="session")
def trace_len():
    return TEST_TRACE_LEN


def _annotated(name):
    return annotate(generate_trace(name, TEST_TRACE_LEN))


@pytest.fixture(scope="session")
def database_annotated():
    return _annotated("database")


@pytest.fixture(scope="session")
def specjbb_annotated():
    return _annotated("specjbb2000")


@pytest.fixture(scope="session")
def specweb_annotated():
    return _annotated("specweb99")


@pytest.fixture(scope="session")
def all_annotated(database_annotated, specjbb_annotated, specweb_annotated):
    return {
        "database": database_annotated,
        "specjbb2000": specjbb_annotated,
        "specweb99": specweb_annotated,
    }


@pytest.fixture
def default_machine():
    return MachineConfig()  # the paper's 64C machine
