"""Tests for the cross-language ABI parity layer of reprolint.

Covers the three clang-parity passes (``kernel-abi``,
``kernel-constants``, ``schema-version``) over their fixture pairs,
the mutation scenarios the passes exist for (run against copies of the
*real* kernel/binding/columnar sources), and the
``repro lint --manifest-update`` regeneration flow with its
dirty-tree interlock.
"""

import pathlib
import shutil
import subprocess

import pytest

from repro.cli import main
from repro.lint import run_lint
from repro.lint.manifest import (
    CYCLESIM_ORACLE_PATH,
    CYCLESIM_ORACLE_SHA256,
    ORACLE_PATH,
    ORACLE_SHA256,
    PAYLOAD_SCHEMA_PATH,
    PAYLOAD_SCHEMA_SHA256,
)
from repro.lint.update import (
    MANIFEST_PATH,
    ManifestUpdateError,
    update_manifest,
)

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"
REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: pass id -> (fixture directory, expected finding count in violation/)
PARITY_FIXTURES = {
    "kernel-abi": ("kernel_abi", 2),
    "kernel-constants": ("kernel_constants", 3),
    "schema-version": ("schema_version", 1),
}

C_KERNEL = "src/repro/core/_mlpsim_kernel.c"
CKERNEL = "src/repro/core/ckernel.py"

#: Everything the three parity passes read, copied verbatim from the
#: real tree so mutation tests exercise the production contract.
_PARITY_SOURCES = (
    C_KERNEL,
    CKERNEL,
    "src/repro/isa/opclass.py",
    "src/repro/core/termination.py",
    "src/repro/core/mlpsim.py",
    "src/repro/cyclesim/plan.py",  # CYCLE_PLAN_CONTRACT fingerprint pin
    PAYLOAD_SCHEMA_PATH,
    ORACLE_PATH,
    CYCLESIM_ORACLE_PATH,
)


class TestParityFixtures:
    @pytest.mark.parametrize("pass_id", sorted(PARITY_FIXTURES))
    def test_clean_fixture_has_no_findings(self, pass_id):
        root = FIXTURES / PARITY_FIXTURES[pass_id][0] / "clean"
        assert run_lint(root) == []

    @pytest.mark.parametrize("pass_id", sorted(PARITY_FIXTURES))
    def test_violation_fixture_is_flagged(self, pass_id):
        fixture, expected = PARITY_FIXTURES[pass_id]
        findings = run_lint(
            FIXTURES / fixture / "violation", select=[pass_id]
        )
        assert len(findings) == expected
        assert all(f.pass_id == pass_id for f in findings)

    def test_reordered_struct_names_both_lines(self):
        findings = run_lint(
            FIXTURES / "kernel_abi" / "violation", select=["kernel-abi"]
        )
        reorder = [f for f in findings if "field #0" in f.message]
        assert len(reorder) == 1
        # The finding names the Python field and the C line it disagrees
        # with — the reviewer can jump to both sides of the contract.
        assert "_mlpsim_kernel.c:" in reorder[0].message
        assert reorder[0].path == CKERNEL

    def test_constant_drift_names_both_sides(self):
        findings = run_lint(
            FIXTURES / "kernel_constants" / "violation",
            select=["kernel-constants"],
        )
        messages = "\n".join(f.message for f in findings)
        assert "OP_STORE" in messages
        assert "INH_COUNT" in messages
        assert "ST_DEFER" in messages

    def test_schema_change_without_bump_is_the_one_finding(self):
        findings = run_lint(
            FIXTURES / "schema_version" / "violation",
            select=["schema-version"],
        )
        assert len(findings) == 1
        assert "COLUMNAR_SCHEMA_VERSION is still 1" in findings[0].message


def _real_tree(tmp_path):
    """A minimal tree of *real* sources the parity passes read."""
    for relpath in _PARITY_SOURCES:
        dst = tmp_path / relpath
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(REPO_ROOT / relpath, dst)
    return tmp_path


def _edit(tmp_path, relpath, old, new, count=1):
    path = tmp_path / relpath
    text = path.read_text()
    assert text.count(old) >= count, f"{old!r} not found in {relpath}"
    # Mutating a throwaway fixture copy — torn-write durability is
    # irrelevant, the tree dies with tmp_path.
    path.write_text(text.replace(old, new, count))  # reprolint: disable=atomic-writes


class TestRealTreeMutations:
    """Acceptance: each single-site mutation yields exactly one finding."""

    SELECT = ["kernel-abi", "kernel-constants", "schema-version"]

    def test_unmutated_copy_is_clean(self, tmp_path):
        assert run_lint(_real_tree(tmp_path), select=self.SELECT) == []

    def test_mutated_define_value(self, tmp_path):
        root = _real_tree(tmp_path)
        _edit(root, C_KERNEL, "#define OP_LOAD 1", "#define OP_LOAD 9")
        findings = run_lint(root, select=self.SELECT)
        assert len(findings) == 1
        assert findings[0].pass_id == "kernel-constants"
        assert "OP_LOAD" in findings[0].message
        assert "_mlpsim_kernel.c:" in findings[0].message

    def test_reordered_ctypes_fields(self, tmp_path):
        root = _real_tree(tmp_path)
        _edit(
            root, CKERNEL,
            '("rob", ctypes.c_int64),\n        ("iw", ctypes.c_int64),',
            '("iw", ctypes.c_int64),\n        ("rob", ctypes.c_int64),',
        )
        findings = run_lint(root, select=self.SELECT)
        assert len(findings) == 1
        assert findings[0].pass_id == "kernel-abi"
        assert "field #0" in findings[0].message

    def test_dropped_payload_column_without_bump(self, tmp_path):
        root = _real_tree(tmp_path)
        _edit(root, PAYLOAD_SCHEMA_PATH, '    ("is_memop", np.bool_),\n', "")
        findings = run_lint(root, select=self.SELECT)
        assert len(findings) == 1
        assert findings[0].pass_id == "schema-version"
        assert "COLUMNAR_SCHEMA_VERSION is still 1" in findings[0].message

    def test_version_bump_without_regeneration(self, tmp_path):
        root = _real_tree(tmp_path)
        _edit(root, PAYLOAD_SCHEMA_PATH,
              "COLUMNAR_SCHEMA_VERSION = 1", "COLUMNAR_SCHEMA_VERSION = 2")
        findings = run_lint(root, select=self.SELECT)
        assert len(findings) == 1
        assert findings[0].pass_id == "schema-version"
        assert "manifest pins 1" in findings[0].message


def _git(root, *args):
    subprocess.run(
        ["git", "-C", str(root),
         "-c", "user.email=fixture@example.invalid",
         "-c", "user.name=fixture", *args],
        check=True, capture_output=True,
    )


def _git_tree(tmp_path):
    """A committed git work tree holding the real pinned sources."""
    root = _real_tree(tmp_path)
    manifest_dst = root / MANIFEST_PATH
    manifest_dst.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(REPO_ROOT / MANIFEST_PATH, manifest_dst)
    _git(root, "init", "-q")
    _git(root, "add", "-A")
    _git(root, "commit", "-qm", "seed")
    return root


class TestManifestUpdate:
    def test_refuses_outside_a_git_tree(self, tmp_path):
        _real_tree(tmp_path)
        with pytest.raises(ManifestUpdateError, match="git"):
            update_manifest(tmp_path)

    def test_refuses_on_unrelated_dirty_file(self, tmp_path):
        root = _git_tree(tmp_path)
        # Dirtying a throwaway git tree on purpose; durability is moot.
        (root / "src" / "repro" / "core" / "mlpsim.py").write_text(  # reprolint: disable=atomic-writes
            (root / "src" / "repro" / "core" / "mlpsim.py").read_text()
            + "\n# drive-by\n"
        )
        with pytest.raises(ManifestUpdateError, match="dirty tree"):
            update_manifest(root)

    def test_clean_tree_is_idempotent(self, tmp_path):
        root = _git_tree(tmp_path)
        result = update_manifest(root)
        assert result["changed"] is False
        assert result["oracle_sha256"] == ORACLE_SHA256
        assert result["cyclesim_oracle_sha256"] == CYCLESIM_ORACLE_SHA256
        assert result["payload_schema_sha256"] == PAYLOAD_SCHEMA_SHA256

    def test_regenerates_a_stale_manifest_atomically(self, tmp_path):
        root = _git_tree(tmp_path)
        # A dirty manifest is an *allowed* dirty path: regenerating it
        # is the whole point of the command (throwaway tree, plain
        # write is fine).
        (root / MANIFEST_PATH).write_text("# stale placeholder\n")  # reprolint: disable=atomic-writes
        result = update_manifest(root)
        assert result["changed"] is True
        content = (root / MANIFEST_PATH).read_text()
        assert ORACLE_SHA256 in content
        assert CYCLESIM_ORACLE_SHA256 in content
        assert PAYLOAD_SCHEMA_SHA256 in content
        # Byte-identical to the checked-in manifest: the template and
        # the real file cannot drift apart unnoticed.
        assert content == (REPO_ROOT / MANIFEST_PATH).read_text()
        # No temp-file droppings from the atomic replace.
        leftovers = list((root / MANIFEST_PATH).parent.glob(".manifest-*"))
        assert leftovers == []

    def test_schema_edit_plus_manifest_is_allowed_dirty(self, tmp_path):
        root = _git_tree(tmp_path)
        _edit(root, PAYLOAD_SCHEMA_PATH,
              '    ("is_memop", np.bool_),\n', "")
        result = update_manifest(root)
        assert result["changed"] is True
        assert result["payload_schema_sha256"] != PAYLOAD_SCHEMA_SHA256

    def test_refuses_when_columns_cannot_be_extracted(self, tmp_path):
        root = _git_tree(tmp_path)
        _edit(root, PAYLOAD_SCHEMA_PATH, "PLAN_COLUMNS", "OTHER_COLUMNS",
              count=1)
        with pytest.raises(ManifestUpdateError, match="PLAN_COLUMNS"):
            update_manifest(root)

    def test_cli_flag_regenerates_and_reports(self, tmp_path, capsys):
        root = _git_tree(tmp_path)
        # Throwaway tree; durability is moot.
        (root / MANIFEST_PATH).write_text("# stale placeholder\n")  # reprolint: disable=atomic-writes
        code = main(["lint", "--manifest-update", "--root", str(root)])
        out = capsys.readouterr().out
        assert code == 0
        assert "regenerated" in out
        assert ORACLE_SHA256 in out or ORACLE_SHA256 in \
            (root / MANIFEST_PATH).read_text()

    def test_cli_flag_exits_two_on_dirty_tree(self, tmp_path, capsys):
        root = _git_tree(tmp_path)
        # Throwaway tree; durability is moot.
        (root / "stray.txt").write_text("uncommitted\n")  # reprolint: disable=atomic-writes
        code = main(["lint", "--manifest-update", "--root", str(root)])
        err = capsys.readouterr().err
        assert code == 2
        assert "dirty tree" in err
