"""Property-based robustness tests for the workload generators.

The generators expose many tuning knobs; whatever a user sets them to,
the resulting trace must stay structurally valid: exact length, fixed
static code (stable PC -> opcode mapping), events only where they can
occur, and the whole simulation pipeline must run on it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MachineConfig
from repro.core.mlpsim import simulate
from repro.trace.annotate import annotate
from repro.workloads.database import DatabaseWorkload
from repro.workloads.specjbb import SpecJBBWorkload
from repro.workloads.specweb import SpecWebWorkload
from repro.workloads.streaming import StreamingWorkload


def _assert_structurally_valid(trace, length):
    assert len(trace) == length
    mapping = {}
    for pc, op in zip(trace.pc.tolist(), trace.op.tolist()):
        assert mapping.setdefault(pc, op) == op, hex(pc)


def _assert_simulates(trace):
    annotated = annotate(trace)
    result = simulate(annotated, MachineConfig.named("16C"), start=0)
    if result.epochs:
        assert result.mlp >= 1.0


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    calls=st.tuples(st.integers(1, 6), st.integers(6, 12)),
    depth=st.tuples(st.integers(1, 3), st.integers(3, 6)),
    rows=st.tuples(st.integers(1, 3), st.integers(3, 7)),
    lock_p=st.floats(0.0, 1.0),
    spacing=st.integers(0, 40),
)
def test_database_generator_robust(seed, calls, depth, rows, lock_p, spacing):
    workload = DatabaseWorkload(
        seed=seed,
        calls_per_txn=calls,
        descent_depth=depth,
        rows_per_txn=rows,
        lock_probability=lock_p,
        row_spacing=spacing,
    )
    trace = workload.generate(4000)
    _assert_structurally_valid(trace, 4000)
    _assert_simulates(trace)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    cold_p=st.floats(0.0, 1.0),
    fields=st.tuples(st.integers(1, 3), st.integers(3, 6)),
    objects=st.tuples(st.integers(1, 2), st.integers(2, 4)),
    alloc_p=st.floats(0.0, 1.0),
)
def test_specjbb_generator_robust(seed, cold_p, fields, objects, alloc_p):
    workload = SpecJBBWorkload(
        seed=seed,
        cold_object_probability=cold_p,
        fields_per_object=fields,
        objects_per_txn=objects,
        alloc_probability=alloc_p,
    )
    trace = workload.generate(4000)
    _assert_structurally_valid(trace, 4000)
    _assert_simulates(trace)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    burst_p=st.floats(0.0, 1.0),
    segments=st.tuples(st.integers(1, 3), st.integers(3, 8)),
    extra=st.tuples(st.integers(0, 1), st.integers(1, 2)),
    pf=st.floats(0.0, 1.0),
    independent=st.floats(0.0, 1.0),
)
def test_specweb_generator_robust(seed, burst_p, segments, extra, pf,
                                  independent):
    workload = SpecWebWorkload(
        seed=seed,
        burst_probability=burst_p,
        burst_segments=segments,
        segment_extra_lines=extra,
        prefetch_fraction=pf,
        independent_burst_fraction=independent,
    )
    trace = workload.generate(4000)
    _assert_structurally_valid(trace, 4000)
    _assert_simulates(trace)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    chunk=st.tuples(st.integers(8, 32), st.integers(32, 128)),
    compute=st.integers(1, 6),
)
def test_streaming_generator_robust(seed, chunk, compute):
    workload = StreamingWorkload(
        seed=seed, chunk_iterations=chunk, compute_per_element=compute
    )
    trace = workload.generate(4000)
    _assert_structurally_valid(trace, 4000)
    _assert_simulates(trace)
