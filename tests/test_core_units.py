"""Unit tests for the smaller core data structures and helpers."""

import pytest

from repro.core.config import MachineConfig
from repro.core.epoch import Epoch, TriggerKind, epoch_sets
from repro.core.mlpsim import MLPSim
from repro.core.results import MLPResult
from repro.core.termination import FIGURE5_ORDER, Inhibitor, InhibitorCounts
from repro.cyclesim.metrics import CycleMetrics, OutstandingTracker
from repro.trace.stats import compute_stats, intermiss_distances
from repro.workloads.microbench import EXAMPLES


class TestEpoch:
    def test_requires_an_access(self):
        with pytest.raises(ValueError):
            Epoch(index=0, trigger=0, trigger_kind=TriggerKind.DMISS,
                  accesses=0, inhibitor=Inhibitor.MAXWIN)

    def test_repr_mentions_trigger_and_inhibitor(self):
        epoch = Epoch(index=1, trigger=5, trigger_kind=TriggerKind.IMISS,
                      accesses=2, inhibitor=Inhibitor.SERIALIZE,
                      members=[5, 6])
        text = repr(epoch)
        assert "i5" in text and "serialize" in text and "members" in text

    def test_epoch_sets_requires_members(self):
        epoch = Epoch(index=0, trigger=0, trigger_kind=TriggerKind.DMISS,
                      accesses=1, inhibitor=Inhibitor.END_OF_TRACE)
        with pytest.raises(ValueError, match="record_sets"):
            epoch_sets([epoch])


class TestInhibitorCounts:
    def test_fractions_sum_to_one(self):
        counts = InhibitorCounts()
        counts.record(Inhibitor.MAXWIN)
        counts.record(Inhibitor.SERIALIZE)
        counts.record(Inhibitor.SERIALIZE)
        fractions = counts.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions[Inhibitor.SERIALIZE] == pytest.approx(2 / 3)

    def test_end_of_trace_excluded(self):
        counts = InhibitorCounts()
        counts.record(Inhibitor.MAXWIN)
        counts.record(Inhibitor.END_OF_TRACE)
        assert counts.total() == 1
        assert counts.total(include_end_of_trace=True) == 2
        assert counts.fractions()[Inhibitor.MAXWIN] == pytest.approx(1.0)

    def test_extension_inhibitors_fold_into_maxwin(self):
        counts = InhibitorCounts()
        counts.record(Inhibitor.MSHR_LIMIT)
        counts.record(Inhibitor.STORE_BUFFER)
        counts.record(Inhibitor.RUNAHEAD_LIMIT)
        assert counts.fractions()[Inhibitor.MAXWIN] == pytest.approx(1.0)
        raw = counts.as_dict()
        assert raw[Inhibitor.MSHR_LIMIT] == 1
        assert raw[Inhibitor.MAXWIN] == 0

    def test_empty_fractions(self):
        fractions = InhibitorCounts().fractions()
        assert all(v == 0.0 for v in fractions.values())
        assert set(fractions) == set(FIGURE5_ORDER)

    def test_getitem(self):
        counts = InhibitorCounts()
        counts.record(Inhibitor.IMISS_START)
        assert counts[Inhibitor.IMISS_START] == 1
        assert counts[Inhibitor.MAXWIN] == 0


class TestMLPResult:
    def make(self, accesses=6, epochs=3, **kwargs):
        defaults = dict(
            workload="w",
            machine_label="64C",
            instructions=1000,
            accesses=accesses,
            epochs=epochs,
            dmiss_accesses=accesses,
            imiss_accesses=0,
            prefetch_accesses=0,
            inhibitors=InhibitorCounts(),
        )
        defaults.update(kwargs)
        return MLPResult(**defaults)

    def test_mlp(self):
        assert self.make().mlp == pytest.approx(2.0)
        assert self.make(epochs=0, accesses=0).mlp == 0.0

    def test_miss_rate(self):
        assert self.make().miss_rate_per_100 == pytest.approx(0.6)

    def test_store_mlp(self):
        result = self.make(store_accesses=8, store_epochs=2)
        assert result.store_mlp == pytest.approx(4.0)
        assert self.make().store_mlp == 0.0

    def test_summary(self):
        text = self.make().summary()
        assert "MLP=2.000" in text and "64C" in text


class TestOutstandingTracker:
    def test_integrates_piecewise(self):
        t = OutstandingTracker()
        t.add(0, 1)  # 1 outstanding from cycle 0
        t.add(10, 1)  # 2 outstanding from cycle 10
        t.add(30, -2)  # idle from cycle 30
        t.advance(50)
        assert t.nonzero_cycles == 30
        assert t.integral == 10 * 1 + 20 * 2
        assert t.count == 0

    def test_idle_time_not_counted(self):
        t = OutstandingTracker()
        t.advance(100)
        assert t.nonzero_cycles == 0
        t.add(100, 1)
        t.add(110, -1)
        assert t.nonzero_cycles == 10

    def test_negative_count_rejected(self):
        t = OutstandingTracker()
        with pytest.raises(RuntimeError):
            t.add(0, -1)


class TestCycleMetrics:
    def test_derived_quantities(self):
        metrics = CycleMetrics(workload="w", label="64C")
        metrics.instructions = 1000
        metrics.cycles = 2000
        metrics.offchip_accesses = 10
        metrics.nonzero_cycles = 500
        metrics.outstanding_integral = 750
        assert metrics.cpi == pytest.approx(2.0)
        assert metrics.ipc == pytest.approx(0.5)
        assert metrics.mlp == pytest.approx(1.5)
        assert metrics.miss_rate_per_100 == pytest.approx(1.0)

    def test_empty_metrics(self):
        metrics = CycleMetrics(workload="w", label="x")
        assert metrics.cpi == 0.0 and metrics.mlp == 0.0


class TestTraceStats:
    def test_intermiss_distances(self):
        assert list(intermiss_distances([3, 10, 11])) == [7, 1]
        assert len(intermiss_distances([5])) == 0

    def test_compute_stats_format(self, specjbb_annotated):
        ann = specjbb_annotated
        stats = compute_stats(ann.trace, dmiss_mask=ann.dmiss,
                              imiss_mask=ann.imiss)
        text = stats.format()
        assert "loads" in text and "off-chip" in text
        assert stats.dmisses > 0

    def test_compute_stats_without_masks(self, specjbb_annotated):
        stats = compute_stats(specjbb_annotated.trace)
        assert stats.dmisses == 0
        assert stats.mean_intermiss_distance == float("inf")


class TestMicrobench:
    def test_all_examples_build(self):
        for number, build in EXAMPLES.items():
            annotated = build()
            assert len(annotated.trace) >= 4, number
            assert annotated.dmiss.any(), number

    def test_examples_are_fresh_objects(self):
        a = EXAMPLES[1]()
        b = EXAMPLES[1]()
        assert a is not b

    def test_example_docstrings_cite_epoch_sets(self):
        for build in EXAMPLES.values():
            assert "epoch sets" in build.__doc__.lower()


class TestRecordSetsPlumbing:
    def test_runahead_records_trigger_members(self, database_annotated):
        result = MLPSim(
            MachineConfig.runahead_machine(), record_sets=True
        ).run(database_annotated)
        assert result.epoch_records
        for epoch in result.epoch_records[:20]:
            assert epoch.members is not None
            assert epoch.accesses == len(epoch.members)

    def test_ooo_member_counts_at_least_accesses(self, specweb_annotated):
        result = MLPSim(MachineConfig.named("64C"), record_sets=True).run(
            specweb_annotated
        )
        for epoch in result.epoch_records[:50]:
            # Executed members include every issuing instruction except
            # fetch misses (which are only fetched in their epoch).
            assert len(epoch.members) + epoch.accesses >= epoch.accesses
