"""Miniature columnar module whose payload schema matches the pin.

``PLAN_COLUMNS`` and the ``plan_payload`` extras below reproduce the
real module's column set exactly, so the fingerprint the
``schema-version`` pass computes here equals the one pinned in
``repro.lint.manifest`` — the fixture is clean by construction.
"""

import numpy as np

COLUMNAR_SCHEMA_VERSION = 1

PLAN_COLUMNS = (
    ("ops", np.int8),
    ("prod1", np.int32),
    ("prod2", np.int32),
    ("prod3", np.int32),
    ("memdep", np.int32),
    ("dmiss", np.bool_),
    ("imiss", np.bool_),
    ("mispred", np.bool_),
    ("pmiss", np.bool_),
    ("pfuseful", np.bool_),
    ("vp_ok", np.bool_),
    ("smiss", np.bool_),
    ("is_load", np.bool_),
    ("is_store", np.bool_),
    ("is_branch", np.bool_),
    ("is_memop", np.bool_),
    ("scalar_mask", np.bool_),
)


def plan_payload(plan):
    payload = {name: getattr(plan, name) for name, _ in PLAN_COLUMNS}
    payload["meta"] = np.asarray(
        [COLUMNAR_SCHEMA_VERSION, plan.start, plan.stop], dtype=np.int64
    )
    return payload
