"""Violating fixture: global RNG state, wall clock, set ordering."""

import random
import time

import numpy as np


def build(items):
    noise = random.random()
    more = np.random.rand(3)
    gen = np.random.default_rng()
    stamp = time.time()
    out = [noise, stamp, gen.random()] + more.tolist()
    for item in set(items):
        out.append(item)
    return out
