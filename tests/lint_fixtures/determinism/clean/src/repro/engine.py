"""Clean fixture: explicitly seeded RNGs, ordered iteration."""

import random

import numpy as np


def build(seed):
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    values = [rng.random() for _ in range(4)]
    values.extend(gen.integers(0, 10, size=4).tolist())
    for item in sorted(set(values)):
        yield item
