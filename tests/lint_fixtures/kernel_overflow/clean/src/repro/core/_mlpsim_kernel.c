/* Miniature kernel whose int32 accumulator is provably in width: the
 * assume caps it at 1 << 20, so the post-increment value stays far
 * below INT32_MAX. */
#include <stdint.h>

#define BATCH_MAGIC 7
#define INH_COUNT 4

int mlpsim_batch(int64_t n, const int8_t *ops)
{
    int32_t hot = 0;
    int64_t i;
    for (i = 0; i < n; i++) {
        /* certify: assume hot <= (1 << 20) -- the accumulator is reset
         * well before the cap in the full kernel; the fixture keeps
         * the invariant and the certifier proves the width from it */
        hot += ops[i];
    }
    (void)hot;
    return BATCH_MAGIC - BATCH_MAGIC;
}
