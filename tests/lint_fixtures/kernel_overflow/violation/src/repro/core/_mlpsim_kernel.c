/* Miniature kernel with one int32-overflowing accumulator: the
 * assumed invariant is itself wider than the int32 it caps, so the
 * post-increment value provably exceeds INT32_MAX — exactly one
 * kernel-overflow finding on the store. */
#include <stdint.h>

#define BATCH_MAGIC 7
#define INH_COUNT 4

int mlpsim_batch(int64_t n, const int8_t *ops)
{
    int64_t total = 0;
    int32_t hot = 0;
    int64_t i;
    for (i = 0; i < n; i++) {
        /* certify: assume total <= (1 << 29) -- at most n <= 1 << 26
         * iterations, each adding an ops value of at most 8 */
        total += ops[i];
        /* certify: assume hot <= (1 << 31) -- fixture defect: the cap
         * is wider than the int32 accumulator it claims to protect */
        hot += 1 << 20;
    }
    (void)total;
    (void)hot;
    return BATCH_MAGIC - BATCH_MAGIC;
}
