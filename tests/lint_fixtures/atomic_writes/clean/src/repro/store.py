"""Clean fixture: persistence goes through the atomic helpers."""

from repro.robustness.atomic import atomic_savez, atomic_write_text


def save_results(path, arrays):
    atomic_savez(path, **arrays)


def save_report(path, text):
    atomic_write_text(path, text)


def load_results(path):
    with open(path, "rb") as handle:
        return handle.read()
