"""Violating fixture: direct writes that bypass the atomic layer."""

import json

import numpy as np


def save_results(path, arrays):
    np.savez_compressed(path, **arrays)


def save_report(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)


def save_note(path, text):
    path.write_text(text)
