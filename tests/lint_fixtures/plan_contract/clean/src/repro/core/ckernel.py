"""Miniature ctypes driver: the validator call dominates the kernel.

``run_plan`` calls ``validate_plan_contract`` as an unconditional
top-level statement before the ``_kernel(...)`` invocation — the
dominance shape the ``plan-contract`` pass requires.
"""

from repro.core.columnar import validate_plan_contract


def _kernel(plan, configs):
    return 0


def run_plan(plan, configs):
    validate_plan_contract(plan, configs)
    return _kernel(plan, configs)
