"""Miniature plan builder whose contract matches the certified facts.

``PLAN_CONTRACT`` below is token-for-token the literal the real
builder declares, so it equals ``MLPSIM_PLAN_FACTS`` in
``repro.lint.certify.contracts`` and its fingerprint matches the
manifest pin; ``validate_plan_contract`` exists and is called by the
miniature driver (``ckernel.py``) before the kernel — the fixture is
clean by construction.  ``PLAN_COLUMNS``/``plan_payload`` reproduce
the real payload schema so the ``schema-version`` pass stays clean
too.
"""

import numpy as np

from repro.robustness.errors import InternalError

COLUMNAR_SCHEMA_VERSION = 1

PLAN_COLUMNS = (
    ("ops", np.int8),
    ("prod1", np.int32),
    ("prod2", np.int32),
    ("prod3", np.int32),
    ("memdep", np.int32),
    ("dmiss", np.bool_),
    ("imiss", np.bool_),
    ("mispred", np.bool_),
    ("pmiss", np.bool_),
    ("pfuseful", np.bool_),
    ("vp_ok", np.bool_),
    ("smiss", np.bool_),
    ("is_load", np.bool_),
    ("is_store", np.bool_),
    ("is_branch", np.bool_),
    ("is_memop", np.bool_),
    ("scalar_mask", np.bool_),
)

PLAN_CONTRACT = {
    "n_max": 1 << 26,
    "columns": {
        "ops": [0, 8],
        "prod1": [0, ["n", 0]],
        "prod2": [0, ["n", 0]],
        "prod3": [0, ["n", 0]],
        "memdep": [0, ["n", 0]],
        "dmiss": [0, 1],
        "imiss": [0, 1],
        "mispred": [0, 1],
        "pmiss": [0, 1],
        "pfuseful": [0, 1],
        "vp_ok": [0, 1],
        "smiss": [0, 1],
        "scalar_mask": [0, 1],
    },
    "config": {
        "rob": [1, 1 << 24],
        "iw": [1, 1 << 24],
        "fetch_buffer": [0, 1 << 24],
        "serializing": [0, 1],
        "load_in_order": [0, 1],
        "load_wait_staddr": [0, 1],
        "branch_in_order": [0, 1],
        "mshr_cap": [1, 1 << 30],
        "sb_cap": [0, 1 << 30],
        "slow_bp": [0, 1],
        "slow_bp_threshold": [0, 1 << 20],
    },
}


def plan_payload(plan):
    payload = {name: getattr(plan, name) for name, _ in PLAN_COLUMNS}
    payload["meta"] = np.asarray(
        [COLUMNAR_SCHEMA_VERSION, plan.start, plan.stop], dtype=np.int64
    )
    return payload


def validate_plan_contract(plan, configs):
    n = len(plan)
    if n > PLAN_CONTRACT["n_max"]:
        raise InternalError(
            f"plan region has {n} instructions; the kernel is certified"
            f" for at most {PLAN_CONTRACT['n_max']}"
        )
