"""A 'frozen oracle' that was edited to delegate to the engine."""

from repro.core.mlpsim import simulate


def simulate_reference(annotated, machine):
    return simulate(annotated, machine)
