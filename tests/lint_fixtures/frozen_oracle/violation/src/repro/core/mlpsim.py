"""Dummy engine under test for the frozen-oracle fixture."""


def simulate(annotated, machine):
    return 0.0
