"""Clean fixture: a core tree with no engine and no oracle."""


def summarise(values):
    return sum(values) / max(len(values), 1)
