"""Violating fixture: statements no control-flow path can reach."""


def after_return(x):
    return x * 2
    print("never printed")


def after_raise(message):
    raise ValueError(message)
    cleanup = True
    return cleanup


def spin_forever(queue):
    while True:
        queue.poll()
    return queue


def both_branches_return(flag):
    if flag:
        return "yes"
    else:
        return "no"
    return "unreachable"
