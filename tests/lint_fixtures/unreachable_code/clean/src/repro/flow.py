"""Clean fixture: every statement is reachable."""


def poll_until_ready(items):
    while True:
        if items:
            break
    return items


def pick(flag):
    if flag:
        return "yes"
    return "no"


def drain(queue):
    for item in queue:
        if item is None:
            continue
        yield item
