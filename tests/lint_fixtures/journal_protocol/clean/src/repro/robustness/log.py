"""Clean append-journal usage: write, flush, fsync, in order."""

import os


def append_record(path, line):
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def append_many(path, lines):
    with open(path, "a", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
