"""Broken append-journal usage: each function is one ordering bug."""

import os


def fsync_without_flush(path, line):
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)
        os.fsync(handle.fileno())
        handle.flush()
        os.fsync(handle.fileno())


def replay_through_append_handle(path):
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("x")
        handle.flush()
        os.fsync(handle.fileno())
        return handle.read()


def write_after_close(path, line):
    handle = open(path, "a", encoding="utf-8")
    handle.write(line)
    handle.flush()
    os.fsync(handle.fileno())
    handle.close()
    handle.write(line)


def forgets_fsync(path, line):
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
