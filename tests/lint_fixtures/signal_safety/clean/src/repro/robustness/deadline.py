"""Clean signal-handler discipline: the handler only raises."""

import signal


def arm(seconds, make_error):
    def _expired(signum, frame):
        raise make_error()

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    return previous


def disarm(previous):
    signal.alarm(0)
    signal.signal(signal.SIGALRM, previous)
