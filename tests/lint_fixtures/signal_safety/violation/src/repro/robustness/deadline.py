"""Broken signal handlers: locks, I/O and sleeps on the handler path."""

import signal
import threading
import time


def noisy_handler(signum, frame):
    print("deadline expired")


def _log_state():
    lock = threading.Lock()
    with lock:
        pass


def chatty_handler(signum, frame):
    _log_state()


def arm(seconds):
    signal.signal(signal.SIGALRM, noisy_handler)
    signal.signal(signal.SIGALRM, chatty_handler)
    signal.signal(signal.SIGALRM, lambda s, f: time.sleep(1))
    signal.alarm(seconds)
