/* Miniature kernel whose single subscript is provably in bounds:
 * `i` ranges over [0, n - 1] and the contract declares `ops` to be
 * exactly `n` elements long. */
#include <stdint.h>

#define BATCH_MAGIC 7
#define INH_COUNT 4

int mlpsim_batch(int64_t n, const int8_t *ops)
{
    int64_t total = 0;
    int64_t i;
    for (i = 0; i < n; i++) {
        /* certify: assume total <= (1 << 29) -- at most n <= 1 << 26
         * iterations, each adding an ops value of at most 8 */
        total += ops[i];
    }
    (void)total;
    return BATCH_MAGIC - BATCH_MAGIC;
}
