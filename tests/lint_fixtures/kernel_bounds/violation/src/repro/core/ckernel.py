"""Placeholder driver: the fixture exercises the C certifier only."""
