/* Miniature kernel with one off-by-one subscript: the loop runs
 * `i <= n`, so the final iteration reads `ops[n]` one past the
 * contracted length — exactly one kernel-bounds finding. */
#include <stdint.h>

#define BATCH_MAGIC 7
#define INH_COUNT 4

int mlpsim_batch(int64_t n, const int8_t *ops)
{
    int64_t total = 0;
    int64_t i;
    for (i = 0; i <= n; i++) {
        /* certify: assume total <= (1 << 29) -- at most n <= 1 << 26
         * iterations, each adding an ops value of at most 8 */
        total += ops[i];
    }
    (void)total;
    return BATCH_MAGIC - BATCH_MAGIC;
}
