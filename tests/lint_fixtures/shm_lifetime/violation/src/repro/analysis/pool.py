"""Broken shared-plan lifecycles: each function is one protocol bug."""

from multiprocessing import shared_memory

from repro.analysis.shm import (
    attach_plan,
    plan_is_published,
    publish_plan,
    unpublish_plan,
)


def leaky_sweep(plan, configs):
    handle = publish_plan(plan)
    count = 0
    for _config in configs:
        if plan_is_published(handle):
            count += 1
    return count


def use_after_release(plan):
    handle = publish_plan(plan)
    unpublish_plan(handle)
    attached = attach_plan(handle)
    attached.close()


def close_only_on_success(handle, flag):
    attached = attach_plan(handle)
    if flag:
        attached.close()


def forgotten_unlink(size):
    segment = shared_memory.SharedMemory(create=True, size=size)
    segment.close()
