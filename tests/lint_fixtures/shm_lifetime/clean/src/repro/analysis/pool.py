"""Clean shared-plan lifecycles: every acquisition reaches its release."""

from multiprocessing import shared_memory

from repro.analysis.shm import (
    attach_plan,
    plan_is_published,
    publish_plan,
    unpublish_plan,
)


def run_sweep(plan, configs):
    handle = publish_plan(plan)
    try:
        count = 0
        for _config in configs:
            if plan_is_published(handle):
                count += 1
    finally:
        unpublish_plan(handle)
    return count


def worker_body(handle):
    attached = attach_plan(handle)
    try:
        return attached.plan
    finally:
        attached.close()


def _teardown(handle):
    # A module-local release wrapper: calling it counts as the release.
    unpublish_plan(handle)


def publish_and_release(plan):
    handle = publish_plan(plan)
    try:
        return handle.kind
    finally:
        _teardown(handle)


def scratch_segment(size):
    segment = shared_memory.SharedMemory(create=True, size=size)
    try:
        segment.buf[:size] = bytes(size)
    finally:
        segment.close()
        segment.unlink()
