"""Violating fixture: bare stdlib exceptions at rejection sites."""


def check_size(size):
    if size <= 0:
        raise ValueError("size must be positive")


def check_state(state):
    if state is None:
        raise RuntimeError


def lookup(table, key):
    if key not in table:
        raise KeyError(f"unknown key {key!r}")
    return table[key]
