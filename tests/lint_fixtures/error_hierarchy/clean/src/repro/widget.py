"""Clean fixture: rejections use the ReproError hierarchy."""

from repro.robustness.errors import ConfigError, SimulationError


def check_size(size):
    if size <= 0:
        raise ConfigError("size must be positive")


def check_region(start, stop):
    if stop < start:
        raise SimulationError("empty region")


def abstract():
    raise NotImplementedError
