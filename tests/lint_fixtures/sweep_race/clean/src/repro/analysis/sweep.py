"""Clean fixture: workers return results; the parent aggregates.

The ``_prime`` initializer *does* set a module global, but that is the
sanctioned use: ``initializer=`` primes per-worker state and is exempt
by design.
"""

from concurrent.futures import ProcessPoolExecutor

_WORKER_CONFIG = None


def _prime(config):
    global _WORKER_CONFIG
    _WORKER_CONFIG = config


def run_one(label):
    scale = len(_WORKER_CONFIG or "")
    return len(label) * max(scale, 1)


def sweep(labels, config):
    results = {}
    with ProcessPoolExecutor(
        initializer=_prime, initargs=(config,)
    ) as pool:
        for label, value in zip(labels, pool.map(run_one, labels)):
            results[label] = value
    return results
