"""Violating fixture: pool workers mutating shared state."""

from concurrent.futures import ProcessPoolExecutor

RESULTS = {}
TOTALS = []


class Stats:
    count = 0


def record(label, value):
    TOTALS.append((label, value))


def run_one(label):
    value = len(label)
    RESULTS[label] = value
    Stats.count = Stats.count + 1
    record(label, value)
    return value


def sweep(labels):
    seen = []

    def collect(label):
        seen.append(label)

    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_one, label) for label in labels]
        list(pool.map(collect, labels))
    return [f.result() for f in futures]
