"""Clean fixture: every write handle is closed on every path."""

from contextlib import closing


def finally_closed(path, text):
    handle = open(path, "w")
    try:
        handle.write(text)
    finally:
        handle.close()


def with_managed(path, text):
    with open(path, "w") as handle:
        handle.write(text)


def wrapper_managed(path, text):
    with closing(open(path, "w")) as handle:
        handle.write(text)


def straight_line(path, text):
    handle = open(path, "w")
    handle.write(text)
    handle.close()
    return path
