"""Violating fixture: write handles leaked on some control-flow path.

Lives under ``src/repro/robustness/`` in the miniature tree because
the atomic-writes pass exempts that prefix — these fixtures exercise
resource-paths alone.
"""


def early_return_leak(path, text):
    handle = open(path, "w")
    if not text:
        return False
    handle.write(text)
    handle.close()
    return True


def handler_return_leak(path, payload):
    handle = open(path, "w")
    try:
        handle.write(payload.render())
    except AttributeError:
        return None
    handle.close()
    return path


def never_kept(path, text):
    open(path, "w").write(text)
