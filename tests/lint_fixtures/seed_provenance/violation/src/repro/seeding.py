"""Violating fixture: RNG seeds flowing from nondeterministic sources."""

import os
import random
import time

import numpy as np


def fresh_seed():
    return int(time.time()) % 100003


def stamped_rng():
    stamp = int(time.time())
    return np.random.default_rng(stamp)


def helper_seeded_rng():
    seed = fresh_seed()
    return np.random.default_rng(seed)


def entropy_seeded():
    noise = int.from_bytes(os.urandom(4), "little")
    random.seed(noise)


def direct_clock_rng():
    return np.random.default_rng(time.time_ns())
