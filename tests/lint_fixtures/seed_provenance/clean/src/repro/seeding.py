"""Clean fixture: seeds come from explicit configuration values."""

import random

import numpy as np

DEFAULT_SEED = 1234


def build_rng(seed):
    return np.random.default_rng(seed)


def seeded_stream(config_seed=DEFAULT_SEED):
    rng = random.Random(config_seed)
    return [rng.random() for _ in range(4)]


def offset_rng(offset):
    seed = DEFAULT_SEED + offset
    return np.random.default_rng(seed)
