"""Miniature inhibitor enum; definition order is the C array order."""

import enum


class Inhibitor(enum.Enum):
    MAXWIN = "maxwin"
    DEP_STORE = "dep_store"
