"""Miniature Python-side constant tables matched against the C defines."""

from repro.core.termination import Inhibitor

_EXPECTED_STATUSES = {
    "DONE": 0, "DEFER": 1,
}

INHIBITOR_ORDER = (Inhibitor.MAXWIN, Inhibitor.DEP_STORE)
