/* Miniature kernel whose constant tables match the Python enums. */
#include <stdint.h>

#define OP_ALU 0
#define OP_LOAD 1
#define OP_STORE 2

#define INH_MAXWIN 0
#define INH_DEP_STORE 1
#define INH_COUNT 2

#define NOT_EXECUTED (1 << 30)

#define ST_DONE 0
#define ST_DEFER 1

int mlpsim_batch(int64_t n, const int8_t *ops)
{
    (void)n; (void)ops;
    return OP_ALU + INH_MAXWIN + ST_DONE;
}
