"""Miniature opcode enum mirrored by the C kernel's OP_* defines."""

import enum


class OpClass(enum.IntEnum):
    ALU = 0
    LOAD = 1
    STORE = 2
