/* Miniature kernel whose constant tables match the Python enums. */
#include <stdint.h>

#define OP_ALU 0
#define OP_LOAD 1
#define OP_STORE 3

#define INH_MAXWIN 0
#define INH_DEP_STORE 1
#define INH_COUNT 3

#define NOT_EXECUTED (1 << 30)

#define ST_DONE 0
#define ST_DEFER 5

static int unused(void)
{
    return OP_ALU + INH_MAXWIN + ST_DONE;
}
