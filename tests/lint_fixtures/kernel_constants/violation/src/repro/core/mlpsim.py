"""Miniature engine module holding the shared sentinel."""

NOT_EXECUTED = 1 << 30
