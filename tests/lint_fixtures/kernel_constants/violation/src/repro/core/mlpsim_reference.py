"""Frozen reference implementation of the out-of-order epoch engine.

This is the straight-line per-instruction interpreter that
:mod:`repro.core.mlpsim` shipped with before its hot path was
restructured for speed (closure hoisting, inlined dependence checks and
bulk skipping of on-chip stretches).  It is kept verbatim for two jobs:

* **Correctness oracle** — the equivalence tests assert that the
  optimized engine returns bit-identical :class:`MLPResult`s on every
  workload and machine configuration, so any future hot-path change
  that drifts semantically is caught immediately.
* **Performance baseline** — the perf-regression harness
  (``benchmarks/test_perf_engine.py``) measures the optimized engine's
  speedup against this implementation and records it in
  ``benchmarks/results/BENCH_perf.json``.

Do not optimize this module; that is the whole point.  It models only
the conventional out-of-order machine (runahead has its own engine in
:mod:`repro.core.runahead`, which the optimization PR did not touch).
"""

from repro.core.config import BranchPolicy, LoadPolicy, SerializePolicy
from repro.core.depgraph import depgraph_for
from repro.core.epoch import Epoch, TriggerKind
from repro.core.mlpsim import NOT_EXECUTED, event_masks, resolve_region
from repro.core.results import MLPResult
from repro.core.termination import Inhibitor, InhibitorCounts
from repro.isa.opclass import OpClass

import numpy as np


def simulate_reference(annotated, machine, start=None, stop=None,
                       workload=None, record_sets=False):
    """Run the frozen per-instruction interpreter; see the module docstring.

    Raises
    ------
    repro.robustness.errors.SimulationError
        If *machine* is a runahead configuration (the reference covers
        only the conventional out-of-order engine) or the region is
        invalid.
    """
    from repro.robustness.errors import SimulationError
    from repro.robustness.validate import validate_annotated

    validate_annotated(annotated, check_events=False)
    if machine.runahead:
        raise SimulationError(
            "the reference engine models only the conventional"
            " out-of-order machine, not runahead"
        )
    trace = annotated.trace
    start, stop = resolve_region(annotated, start, stop)
    n = stop - start

    dmiss, imiss, mispred, pmiss, pfuseful, vp_ok = event_masks(
        annotated, machine, start, stop
    )
    imiss = list(imiss)  # mutated as fetch misses are serviced
    smiss = np.asarray(annotated.smiss[start:stop]).tolist()

    graph = depgraph_for(annotated, start, stop)
    prod1 = graph.prod1
    prod2 = graph.prod2
    prod3 = graph.prod3
    memdep = graph.memdep

    ops = trace.op[start:stop].tolist()

    ALU = int(OpClass.ALU)
    LOAD = int(OpClass.LOAD)
    STORE = int(OpClass.STORE)
    BRANCH = int(OpClass.BRANCH)
    PREFETCH = int(OpClass.PREFETCH)
    MEMBAR = int(OpClass.MEMBAR)
    NOP = int(OpClass.NOP)

    serializing = machine.issue.serialize_policy == SerializePolicy.SERIALIZING
    load_in_order = machine.issue.load_policy == LoadPolicy.IN_ORDER
    load_wait_staddr = machine.issue.load_policy == LoadPolicy.WAIT_STORE_ADDR
    branch_in_order = machine.issue.branch_policy == BranchPolicy.IN_ORDER
    iw_size = machine.issue_window
    rob_size = machine.rob
    fetch_buffer = machine.fetch_buffer
    mshr_cap = machine.max_outstanding or (1 << 30)
    sb_cap = machine.store_buffer if machine.store_buffer is not None else (1 << 30)
    slow_bp = machine.slow_branch_predictor
    slow_bp_threshold = int(machine.slow_bp_accuracy * 1024)

    # Per-instruction result availability, in epoch units.
    res_data = [NOT_EXECUTED] * n
    res_valid = [NOT_EXECUTED] * n

    deferred = []  # indices fetched but not executed, program order
    fetch_pos = 0
    epoch = 0

    epochs_recorded = 0
    total_accesses = 0
    dmiss_accesses = 0
    imiss_accesses = 0
    prefetch_accesses = 0
    store_accesses = 0
    store_epochs = 0
    inhibitors = InhibitorCounts()
    epoch_records = [] if record_sets else None

    def slow_bp_saves(i):
        """Does the slow unresolvable-branch predictor get this one right?

        Deterministic per dynamic instance, so runs are reproducible."""
        return slow_bp and ((i * 2654435761) >> 7) % 1024 < slow_bp_threshold

    while fetch_pos < n or deferred:
        epoch += 1
        accesses = 0
        e_dmiss = 0
        e_imiss = 0
        e_pmiss = 0
        e_smiss = 0
        inflight = 0  # MSHR occupancy: useful + store + useless accesses
        trigger_idx = None
        trigger_kind = None
        first_miss_idx = None  # oldest ROB-holding data miss this epoch
        members = [] if record_sets else None

        blocked_memop = False  # an older load/store has not issued (policy A)
        blocked_staddr = False  # an older store's address is unresolved (B)
        blocked_branch = False  # an older branch has not issued (in-order)
        events = []  # inhibitors in scan (= program) order; first wins
        new_deferred = []
        progress = False

        def deps(i):
            """(data, valid) availability over register + memory producers."""
            de = 0
            ve = 0
            p = prod1[i]
            if p >= 0:
                de = res_data[p]
                ve = res_valid[p]
            p = prod2[i]
            if p >= 0:
                d = res_data[p]
                if d > de:
                    de = d
                v = res_valid[p]
                if v > ve:
                    ve = v
            return de, ve

        def execute(i):
            """Attempt to execute instruction *i* in the current epoch.

            Returns ``"done"``, ``"defer"``, ``"stop-done"`` or
            ``"stop-defer"``; the stop variants terminate the scan.
            """
            nonlocal accesses, e_dmiss, e_pmiss, e_smiss, inflight
            nonlocal trigger_idx, trigger_kind
            nonlocal blocked_memop, blocked_staddr, blocked_branch
            nonlocal first_miss_idx, progress

            op = ops[i]

            if op == ALU:
                de, ve = deps(i)
                if de > epoch:
                    return "defer"
                progress = True
                res_data[i] = epoch
                res_valid[i] = ve if ve > epoch else epoch
                if members is not None:
                    members.append(i)
                return "done"

            if op == LOAD:
                de, ve = deps(i)
                m = memdep[i]
                if m >= 0:
                    d = res_data[m]
                    if d > de:
                        de = d
                    v = res_valid[m]
                    if v > ve:
                        ve = v
                if de > epoch:
                    blocked_memop = True
                    return "defer"
                if load_in_order and blocked_memop:
                    if dmiss[i]:
                        events.append(Inhibitor.MISSING_LOAD)
                    return "defer"
                if load_wait_staddr and blocked_staddr:
                    if dmiss[i]:
                        events.append(Inhibitor.DEP_STORE)
                    return "defer"
                if dmiss[i] and inflight >= mshr_cap:
                    events.append(Inhibitor.MSHR_LIMIT)
                    blocked_memop = True
                    return "defer"
                progress = True
                if dmiss[i]:
                    accesses += 1
                    e_dmiss += 1
                    inflight += 1
                    if trigger_idx is None:
                        trigger_idx = i
                        trigger_kind = TriggerKind.DMISS
                    if first_miss_idx is None:
                        first_miss_idx = i
                    res_data[i] = epoch if vp_ok[i] else epoch + 1
                    res_valid[i] = epoch + 1
                else:
                    res_data[i] = epoch
                    res_valid[i] = ve if ve > epoch else epoch
                if members is not None:
                    members.append(i)
                return "done"

            if op == STORE:
                ade, ave = deps(i)
                de = ade
                ve = ave
                p = prod3[i]
                if p >= 0:
                    d = res_data[p]
                    if d > de:
                        de = d
                    v = res_valid[p]
                    if v > ve:
                        ve = v
                if de > epoch:
                    blocked_memop = True
                    if ade > epoch:
                        blocked_staddr = True
                    return "defer"
                if smiss[i]:
                    if e_smiss >= sb_cap:
                        events.append(Inhibitor.STORE_BUFFER)
                        blocked_memop = True
                        return "defer"
                    if inflight >= mshr_cap:
                        events.append(Inhibitor.MSHR_LIMIT)
                        blocked_memop = True
                        return "defer"
                    e_smiss += 1
                    inflight += 1
                progress = True
                res_data[i] = epoch
                res_valid[i] = ve if ve > epoch else epoch
                if members is not None:
                    members.append(i)
                return "done"

            if op == BRANCH:
                de, ve = deps(i)
                can_issue = de <= epoch and not (branch_in_order and blocked_branch)
                if can_issue and mispred[i] and ve > epoch:
                    # Condition computed from an unvalidated predicted
                    # value: recovery must wait for the real data.
                    can_issue = False
                if can_issue:
                    progress = True
                    if members is not None:
                        members.append(i)
                    return "done"
                blocked_branch = True
                if mispred[i]:
                    if slow_bp_saves(i):
                        # The slow second-level predictor (Section 3.2.4
                        # extension) redirects fetch correctly; the
                        # branch merely waits in the window.
                        return "defer"
                    events.append(Inhibitor.MISPRED_BR)
                    return "stop-defer"
                return "defer"

            if op == PREFETCH:
                de, _ = deps(i)
                if de > epoch:
                    return "defer"
                if pmiss[i] and inflight >= mshr_cap:
                    events.append(Inhibitor.MSHR_LIMIT)
                    return "defer"
                progress = True
                if pmiss[i]:
                    inflight += 1
                if pmiss[i] and pfuseful[i]:
                    accesses += 1
                    e_pmiss += 1
                    if trigger_idx is None:
                        trigger_idx = i
                        trigger_kind = TriggerKind.PMISS
                if members is not None:
                    members.append(i)
                return "done"

            if op == NOP:
                progress = True
                if members is not None:
                    members.append(i)
                return "done"

            # Serializing instructions: CAS / LDSTUB / MEMBAR.
            de, ve = deps(i)
            p = prod3[i]
            if p >= 0:
                d = res_data[p]
                if d > de:
                    de = d
                v = res_valid[p]
                if v > ve:
                    ve = v
            if op != MEMBAR:
                m = memdep[i]
                if m >= 0:
                    d = res_data[m]
                    if d > de:
                        de = d
                    v = res_valid[m]
                    if v > ve:
                        ve = v

            if serializing:
                outstanding = bool(new_deferred) or trigger_idx is not None
                if outstanding or de > epoch:
                    events.append(Inhibitor.SERIALIZE)
                    if op == MEMBAR:
                        # The barrier commits with the drain at epoch end.
                        progress = True
                        res_data[i] = epoch + 1
                        res_valid[i] = epoch + 1
                        if members is not None:
                            members.append(i)
                        return "stop-done"
                    blocked_memop = True
                    return "stop-defer"
                # Pipeline already drained: the instruction issues now.
                progress = True
                if op == MEMBAR:
                    res_data[i] = epoch
                    res_valid[i] = epoch
                    if members is not None:
                        members.append(i)
                    return "done"
                return execute_atomic(i, ve)

            # Non-serializing policy (config E): atomics behave like an
            # ordinary load+store pair, barriers like NOPs.
            if op == MEMBAR:
                progress = True
                res_data[i] = epoch
                res_valid[i] = epoch
                if members is not None:
                    members.append(i)
                return "done"
            if de > epoch:
                blocked_memop = True
                return "defer"
            progress = True
            return execute_atomic(i, ve)

        def execute_atomic(i, ve):
            """Issue an executing CAS/LDSTUB (register + memory results)."""
            nonlocal accesses, e_dmiss, trigger_idx, trigger_kind
            nonlocal first_miss_idx, inflight
            if dmiss[i]:
                accesses += 1
                e_dmiss += 1
                inflight += 1
                if trigger_idx is None:
                    trigger_idx = i
                    trigger_kind = TriggerKind.DMISS
                if first_miss_idx is None:
                    first_miss_idx = i
                res_data[i] = epoch + 1
                res_valid[i] = epoch + 1
            else:
                res_data[i] = epoch
                res_valid[i] = ve if ve > epoch else epoch
            if members is not None:
                members.append(i)
            if serializing and dmiss[i]:
                # An atomic that leaves the chip holds younger
                # instructions at the drain until it completes.
                events.append(Inhibitor.SERIALIZE)
                return "stop-done"
            return "done"

        # ---- phase 1: deferred instructions, in program order --------------
        stop_scan = False
        fetch_stop = None  # None / "hard" / "soft" ("soft" allows buffering)
        for di in range(len(deferred)):
            i = deferred[di]
            status = execute(i)
            if status == "defer":
                new_deferred.append(i)
            elif status == "stop-defer":
                new_deferred.append(i)
                stop_scan = True
            elif status == "stop-done":
                stop_scan = True
            if stop_scan:
                new_deferred.extend(deferred[di + 1 :])
                # A dispatch-side stop (serializing drain) lets fetch run
                # on into the fetch buffer exactly as when the same stop
                # is reached from the fetch stream in phase 2; only a
                # mispredicted-branch stop freezes fetch itself.
                last_event = events[-1] if events else None
                if status == "stop-done" or last_event is Inhibitor.SERIALIZE:
                    fetch_stop = "soft"
                break

        # ---- phase 2: fetch --------------------------------------------------
        if not stop_scan:
            while fetch_pos < n:
                # Window constraints bind whenever older work is
                # uncompleted (a deferral or an outstanding data miss).
                oldest = new_deferred[0] if new_deferred else None
                if first_miss_idx is not None and (
                    oldest is None or first_miss_idx < oldest
                ):
                    oldest = first_miss_idx
                if oldest is not None and fetch_pos - oldest >= rob_size:
                    events.append(Inhibitor.MAXWIN)
                    fetch_stop = "soft"
                    break
                if len(new_deferred) >= iw_size:
                    events.append(Inhibitor.MAXWIN)
                    fetch_stop = "soft"
                    break

                i = fetch_pos
                if imiss[i]:
                    if inflight >= mshr_cap:
                        events.append(Inhibitor.MSHR_LIMIT)
                        fetch_stop = "hard"
                        break
                    accesses += 1
                    e_imiss += 1
                    inflight += 1
                    imiss[i] = False  # the line arrives; do not recount
                    if trigger_idx is None:
                        trigger_idx = i
                        trigger_kind = TriggerKind.IMISS
                        events.append(Inhibitor.IMISS_START)
                    else:
                        events.append(Inhibitor.IMISS_END)
                    new_deferred.append(i)
                    fetch_pos += 1
                    progress = True
                    fetch_stop = "hard"
                    break

                status = execute(i)
                fetch_pos += 1
                if status == "defer":
                    new_deferred.append(i)
                elif status == "stop-defer":
                    new_deferred.append(i)
                    last_event = events[-1] if events else None
                    fetch_stop = (
                        "soft" if last_event is Inhibitor.SERIALIZE else "hard"
                    )
                    break
                elif status == "stop-done":
                    fetch_stop = "soft"
                    break

        # ---- phase 3: fetch-buffer run-on past a dispatch-side stall --------
        if fetch_stop == "soft":
            buffered = 0
            while fetch_pos < n and buffered < fetch_buffer:
                i = fetch_pos
                if imiss[i]:
                    if inflight >= mshr_cap:
                        break
                    accesses += 1
                    e_imiss += 1
                    inflight += 1
                    imiss[i] = False
                    events.append(Inhibitor.IMISS_END)
                    new_deferred.append(i)
                    fetch_pos += 1
                    progress = True
                    break
                new_deferred.append(i)
                fetch_pos += 1
                buffered += 1
                if mispred[i]:
                    # Fetch past an (unexecuted) mispredicted branch is
                    # on the wrong path: nothing beyond it may be
                    # buffered or counted.
                    break

        deferred = new_deferred

        store_accesses += e_smiss
        if e_smiss:
            store_epochs += 1

        if accesses == 0 and e_smiss:
            # A store-only epoch: off-chip store traffic with no useful
            # (MLP-countable) access.  Record it for store-MLP purposes
            # but not as an MLP epoch.
            continue
        if accesses == 0:
            if not progress:
                where = deferred[0] + start if deferred else fetch_pos + start
                raise RuntimeError(
                    f"MLPsim made no progress in an epoch at instruction {where}"
                )
            continue  # pure on-chip stretch: not an epoch
        epochs_recorded += 1
        total_accesses += accesses
        dmiss_accesses += e_dmiss
        imiss_accesses += e_imiss
        prefetch_accesses += e_pmiss

        inhibitor = events[0] if events else Inhibitor.END_OF_TRACE
        inhibitors.record(inhibitor)

        if record_sets:
            epoch_records.append(
                Epoch(
                    index=epochs_recorded - 1,
                    trigger=trigger_idx + start,
                    trigger_kind=trigger_kind,
                    accesses=accesses,
                    inhibitor=inhibitor,
                    members=[m + start for m in members],
                )
            )

    return MLPResult(
        workload=workload or trace.name,
        machine_label=machine.label,
        instructions=n,
        accesses=total_accesses,
        epochs=epochs_recorded,
        dmiss_accesses=dmiss_accesses,
        imiss_accesses=imiss_accesses,
        prefetch_accesses=prefetch_accesses,
        store_accesses=store_accesses,
        store_epochs=store_epochs,
        inhibitors=inhibitors,
        epoch_records=epoch_records,
    )
