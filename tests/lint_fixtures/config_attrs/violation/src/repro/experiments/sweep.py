"""Violating fixture: misspelled config fields in a sweep grid."""

import dataclasses

from repro.core.config import MachineConfig
from repro.cyclesim.config import CycleSimConfig


def grid():
    base = MachineConfig.named("64C", robb=256)
    timing = CycleSimConfig.from_machine(base, miss_penalti=500)
    tweaked = dataclasses.replace(base, max_outstandingg=4)
    return [base, timing, tweaked]
