"""Clean fixture: config constructors name real dataclass fields."""

import dataclasses

from repro.core.config import MachineConfig
from repro.cyclesim.config import CycleSimConfig


def grid():
    base = MachineConfig.named("64C", rob=256, store_buffer=8)
    rae = MachineConfig.runahead_machine(max_runahead=512)
    perfect = dataclasses.replace(base, perfect_branch=True)
    timing = CycleSimConfig.from_machine(base, miss_penalty=500)
    return [base, rae, perfect, timing]
