"""Clean fixture: registry and exhibit modules agree."""

EXHIBITS = {
    "figure1": "repro.experiments.figure1",
}
