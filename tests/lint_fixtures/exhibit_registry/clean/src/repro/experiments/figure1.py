"""One registered exhibit with the required entry point."""


def run(trace_len=None):
    return "figure1"
