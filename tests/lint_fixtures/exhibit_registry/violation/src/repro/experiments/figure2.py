"""Exhibit module that exists on disk but is not registered."""


def run(trace_len=None):
    return "figure2"
