"""Registered exhibit that lost its run() entry point."""


def main(trace_len=None):
    return "figure1"
