"""Violating fixture: a stale registry."""

EXHIBITS = {
    "figure1": "repro.experiments.figure1",
    "ghost": "repro.experiments.figure9",
}
