"""Suppression fixture: one silenced violation, one live one."""


def check_legacy(size):
    if size <= 0:
        raise ValueError("kept for parity")  # reprolint: disable=error-hierarchy


def check_live(size):
    if size <= 0:
        raise ValueError("not suppressed")
