/* Miniature kernel whose ABI surface matches ckernel.py exactly. */
#include <stdint.h>

#define BATCH_MAGIC 7
#define INH_COUNT 4

typedef struct {
    int64_t rob;
    int64_t iw;
    int64_t mshr_cap;
} KernelConfig;

typedef struct {
    int64_t epochs;
    int64_t accesses;
    int64_t inhibitors[4];
    int64_t error_index;
} KernelResult;

int mlpsim_batch(int64_t n,
                 const int8_t *ops,
                 const KernelConfig *configs,
                 int64_t n_configs,
                 KernelResult *results)
{
    (void)n; (void)ops; (void)configs; (void)n_configs; (void)results;
    return BATCH_MAGIC - BATCH_MAGIC;
}
