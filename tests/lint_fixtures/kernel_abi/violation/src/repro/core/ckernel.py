"""Miniature ctypes binding that mirrors _mlpsim_kernel.c exactly."""

import ctypes


class _KernelConfig(ctypes.Structure):
    _fields_ = [
        ("rob", ctypes.c_int64),
        ("iw", ctypes.c_int64),
        ("mshr_cap", ctypes.c_int64),
    ]


class _KernelResult(ctypes.Structure):
    _fields_ = [
        ("epochs", ctypes.c_int64),
        ("accesses", ctypes.c_int64),
        ("inhibitors", ctypes.c_int64 * 4),
        ("error_index", ctypes.c_int64),
    ]


def bind(lib):
    fn = lib.mlpsim_batch
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.c_int64,
        ctypes.c_void_p,
        ctypes.POINTER(_KernelConfig),
        ctypes.c_int64,
        ctypes.POINTER(_KernelResult),
    ]
    return fn
