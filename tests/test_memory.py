"""Unit and property tests for the memory hierarchy substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import AccessLevel, Hierarchy, HierarchyConfig
from repro.memory.mshr import MSHRFile
from repro.memory.tlb import TLB


def tiny_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig(size_bytes=size, associativity=assoc, line_bytes=line))


class TestCacheConfig:
    def test_geometry(self):
        cfg = CacheConfig(size_bytes=32 * 1024, associativity=4)
        assert cfg.num_sets == 128
        assert cfg.line_shift == 6

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, associativity=2, line_bytes=48)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 64 * 2, associativity=2, line_bytes=64)


class TestCache:
    def test_miss_then_hit(self):
        c = tiny_cache()
        assert not c.access(0x1000)
        assert c.access(0x1000)
        assert c.access(0x1004)  # same line
        assert c.hits == 2 and c.misses == 1

    def test_lru_eviction(self):
        # 2-way: fill a set with two lines, touch the first, add a third:
        # the second (LRU) must be evicted.
        c = tiny_cache(size=2 * 64 * 8, assoc=2)  # 8 sets
        stride = 8 * 64  # same-set stride
        a, b, d = 0, stride, 2 * stride
        c.access(a)
        c.access(b)
        c.access(a)  # a is MRU
        c.access(d)  # evicts b
        assert c.probe(a)
        assert not c.probe(b)
        assert c.probe(d)

    def test_probe_does_not_mutate(self):
        c = tiny_cache()
        c.access(0)
        hits, misses = c.hits, c.misses
        assert c.probe(0)
        assert not c.probe(1 << 20)
        assert (c.hits, c.misses) == (hits, misses)

    def test_fill_installs_without_counting(self):
        c = tiny_cache()
        c.fill(0x2000)
        assert c.accesses == 0
        assert c.access(0x2000)

    def test_invalidate(self):
        c = tiny_cache()
        c.access(0x40)
        assert c.invalidate(0x40)
        assert not c.invalidate(0x40)
        assert not c.probe(0x40)

    def test_flush_and_occupancy(self):
        c = tiny_cache()
        for i in range(5):
            c.access(i * 64)
        assert c.occupancy() == 5
        c.flush()
        assert c.occupancy() == 0

    def test_miss_ratio(self):
        c = tiny_cache()
        c.access(0)
        c.access(0)
        assert c.miss_ratio == 0.5
        c.reset_stats()
        assert c.miss_ratio == 0.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
def test_cache_occupancy_bounded_property(line_ids):
    """Occupancy never exceeds capacity; re-access of a resident line hits."""
    c = tiny_cache(size=4 * 64 * 4, assoc=4)  # 16 lines capacity
    capacity = 16
    for line in line_ids:
        c.access(line * 64)
        assert c.occupancy() <= capacity
    # Whatever probe says is consistent with an immediate access.
    for line in sorted(set(line_ids)):
        resident = c.probe(line * 64)
        assert c.access(line * 64) == resident


class _MRUListCache:
    """Reference model: the pre-optimization MRU-ordered-list cache.

    ``repro.memory.cache.Cache`` replaced per-set MRU lists with a
    per-set age counter; this model keeps the original representation
    so the property below can prove the two agree on *every* hit/miss
    outcome and on the exact eviction order.
    """

    def __init__(self, num_sets, assoc, line_shift=6):
        self._sets = [[] for _ in range(num_sets)]
        self._mask = num_sets - 1
        self._shift = line_shift
        self._assoc = assoc

    def access(self, addr):
        line = addr >> self._shift
        ways = self._sets[line & self._mask]
        if line in ways:
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            return True, None
        ways.insert(0, line)
        victim = ways.pop() if len(ways) > self._assoc else None
        return False, victim


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["access", "fill", "invalidate"]),
            st.integers(0, 127),
        ),
        min_size=1,
        max_size=300,
    )
)
def test_age_counter_matches_mru_list_eviction_order(ops):
    """The age-counter LRU evicts exactly what the MRU list would.

    Every access outcome (hit/miss) and every victim choice must match
    the reference model, op for op — the representation change is pure
    mechanism.  Evictions are observed as residency lost across an
    access that did not invalidate the line.
    """
    num_sets, assoc = 4, 4
    c = tiny_cache(size=num_sets * assoc * 64, assoc=assoc)
    model = _MRUListCache(num_sets, assoc)
    resident = set()
    for op, line_id in ops:
        addr = line_id * 64
        if op == "invalidate":
            was_resident = addr >> 6 in resident
            assert c.invalidate(addr) == was_resident
            resident.discard(addr >> 6)
            ways = model._sets[(addr >> 6) & model._mask]
            if addr >> 6 in ways:
                ways.remove(addr >> 6)
            continue
        hit, victim = model.access(addr)
        if op == "access":
            assert c.access(addr) == hit
        else:
            c.fill(addr)  # same replacement path, no stat counting
        resident.add(addr >> 6)
        if victim is not None:
            resident.discard(victim)
            assert not c.probe(victim * 64)
        # Full residency agreement, not just the victim just chosen.
        for line in resident:
            assert c.probe(line * 64)
    assert c.occupancy() == len(resident)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 200), min_size=1, max_size=100))
def test_fully_associative_set_is_true_lru(addresses):
    """With one set, the cache keeps exactly the most recent lines."""
    assoc = 8
    c = tiny_cache(size=assoc * 64, assoc=assoc)
    seen = []
    for a in addresses:
        line = a * 64
        c.access(line)
        if line in seen:
            seen.remove(line)
        seen.append(line)
    expected = seen[-assoc:]
    for line in expected:
        assert c.probe(line)


class TestTLB:
    def test_hit_after_miss(self):
        tlb = TLB(entries=4, page_bytes=8192)
        assert not tlb.access(0x10000)
        assert tlb.access(0x10010)  # same page
        assert tlb.misses == 1 and tlb.hits == 1

    def test_lru_capacity(self):
        tlb = TLB(entries=2, page_bytes=8192)
        tlb.access(0 * 8192)
        tlb.access(1 * 8192)
        tlb.access(0 * 8192)  # refresh page 0
        tlb.access(2 * 8192)  # evicts page 1
        assert tlb.access(0 * 8192)
        assert not tlb.access(1 * 8192)

    def test_page_size_power_of_two(self):
        with pytest.raises(ValueError):
            TLB(page_bytes=5000)

    def test_miss_ratio(self):
        tlb = TLB()
        assert tlb.miss_ratio == 0.0
        tlb.access(0)
        assert tlb.miss_ratio == 1.0


class TestMSHR:
    def test_allocate_and_merge(self):
        m = MSHRFile()
        done = m.allocate(0x1000, 500)
        assert done == 500
        # Same line merges onto the existing completion.
        assert m.allocate(0x1010, 900) == 500
        assert m.outstanding() == 1
        assert m.merges == 1

    def test_retire(self):
        m = MSHRFile()
        m.allocate(0x1000, 100)
        m.allocate(0x2000, 200)
        assert m.retire_complete(150) == [0x1000 >> 6]
        assert m.outstanding() == 1
        assert m.next_completion() == 200

    def test_capacity(self):
        m = MSHRFile(capacity=1)
        m.allocate(0, 10)
        assert m.is_full()
        with pytest.raises(RuntimeError):
            m.allocate(0x1000, 20)

    def test_lookup(self):
        m = MSHRFile()
        assert m.lookup(0x40) is None
        m.allocate(0x40, 77)
        assert m.lookup(0x7F) == 77  # same line


class TestHierarchy:
    def test_default_matches_paper(self):
        h = Hierarchy()
        assert h.config.l1i.size_bytes == 32 * 1024
        assert h.config.l1d.size_bytes == 32 * 1024
        assert h.config.l2.size_bytes == 2 * 1024 * 1024
        assert h.config.tlb_entries == 2048

    def test_miss_goes_offchip_once(self):
        h = Hierarchy()
        assert h.access_data(0x5000_0000) == AccessLevel.OFFCHIP
        assert h.access_data(0x5000_0000) == AccessLevel.L1
        assert h.offchip_accesses == 1

    def test_l2_hit_after_l1_eviction(self):
        h = Hierarchy()
        target = 0x1000
        assert h.access_data(target) == AccessLevel.OFFCHIP
        # Evict from the (32KB, 4-way) L1 by filling its set.
        l1_sets = h.config.l1d.num_sets
        for way in range(8):
            h.access_data(target + (way + 1) * l1_sets * 64)
        assert h.access_data(target) == AccessLevel.L2

    def test_shared_l2_serves_instructions(self):
        h = Hierarchy()
        pc = 0x0040_0000
        assert h.access_instruction(pc) == AccessLevel.OFFCHIP
        assert h.access_instruction(pc) == AccessLevel.L1

    def test_fill_data_prevents_miss(self):
        h = Hierarchy()
        h.fill_data(0x7000)
        assert h.access_data(0x7000) == AccessLevel.L1
        assert h.offchip_accesses == 0

    def test_with_l2_size(self):
        cfg = HierarchyConfig().with_l2_size(512 * 1024)
        assert cfg.l2.size_bytes == 512 * 1024
        assert cfg.l1d.size_bytes == 32 * 1024
        assert cfg.cache_key() != HierarchyConfig().cache_key()

    def test_reset_stats(self):
        h = Hierarchy()
        h.access_data(0)
        h.access_instruction(0)
        h.reset_stats()
        assert h.offchip_accesses == 0
        assert h.l1d.accesses == 0
