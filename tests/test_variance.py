"""Tests for the seed-robustness analysis."""

import pytest

from repro.analysis.variance import SeedSweep, mlp_seed_sweep, seed_sweep
from repro.core.config import MachineConfig


class TestSeedSweep:
    def test_statistics(self):
        sweep = SeedSweep(label="x", seeds=(1, 2, 3), values=(1.0, 2.0, 3.0))
        assert sweep.mean == pytest.approx(2.0)
        assert sweep.minimum == 1.0 and sweep.maximum == 3.0
        assert sweep.stddev == pytest.approx(1.0)
        assert sweep.relative_spread == pytest.approx(1.0)
        assert "spread" in sweep.summary()

    def test_single_value(self):
        sweep = SeedSweep(label="x", seeds=(1,), values=(2.0,))
        assert sweep.stddev == 0.0
        assert sweep.relative_spread == 0.0

    def test_seed_sweep_calls_metric_per_seed(self):
        seen = []

        def metric(seed):
            seen.append(seed)
            return float(seed)

        sweep = seed_sweep(metric, (3, 5), label="m")
        assert seen == [3, 5]
        assert sweep.values == (3.0, 5.0)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            seed_sweep(lambda s: 0.0, ())


class TestMLPSeedSweep:
    def test_mlp_is_stable_across_seeds(self):
        sweep = mlp_seed_sweep(
            "specjbb2000",
            MachineConfig.named("64C"),
            seeds=(1234, 7),
            trace_len=40_000,
        )
        assert all(v >= 1.0 for v in sweep.values)
        assert sweep.relative_spread < 0.35  # short traces, loose band
        assert "specjbb2000" in sweep.label
