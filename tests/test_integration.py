"""Integration tests: the paper's headline shapes on calibrated traces.

These assert the qualitative results of the evaluation section
(Section 5) on the session-scoped synthetic workloads — the same claims
EXPERIMENTS.md documents quantitatively.
"""

import dataclasses

import pytest

from repro.core.config import MachineConfig
from repro.core.inorder import simulate_stall_on_use
from repro.core.limits import limit_configs
from repro.core.mlpsim import simulate
from repro.core.termination import Inhibitor


class TestSection53:
    """Traditional microarchitecture features."""

    def test_ooo_beats_inorder(self, all_annotated):
        """64C improves MLP over stall-on-use (paper: 12-30%)."""
        for name, ann in all_annotated.items():
            ooo = simulate(ann, MachineConfig.named("64C")).mlp
            sou = simulate_stall_on_use(ann).mlp
            assert ooo > sou, name

    def test_mlp_grows_with_window(self, database_annotated):
        mlps = [
            simulate(database_annotated, MachineConfig.named(f"{s}C")).mlp
            for s in (16, 64, 256)
        ]
        assert mlps[0] < mlps[1] < mlps[2]

    def test_constraint_relaxation_matters_more_at_large_windows(
        self, specjbb_annotated
    ):
        def gain(size):
            a = simulate(specjbb_annotated, MachineConfig.named(f"{size}A")).mlp
            e = simulate(specjbb_annotated, MachineConfig.named(f"{size}E")).mlp
            return e - a

        assert gain(256) > gain(16)

    def test_serialization_dominates_jbb_at_large_windows(
        self, specjbb_annotated
    ):
        """Figure 5: the serializing constraint is SPECjbb2000's largest
        inhibitor under configs A-D at 64+ entries."""
        result = simulate(specjbb_annotated, MachineConfig.named("128D"))
        breakdown = result.inhibitor_breakdown()
        assert breakdown[Inhibitor.SERIALIZE] == max(breakdown.values())

    def test_imiss_triggers_present_for_db_and_web_only(self, all_annotated):
        shares = {}
        for name, ann in all_annotated.items():
            result = simulate(ann, MachineConfig.named("64C"))
            shares[name] = result.inhibitor_breakdown()[Inhibitor.IMISS_START]
        assert shares["database"] > 0.05
        assert shares["specweb99"] > 0.05
        assert shares["specjbb2000"] < 0.02

    def test_rob_decoupling_helps(self, all_annotated):
        """Figure 6: a 4x ROB behind a 64-entry window buys MLP."""
        for name, ann in all_annotated.items():
            coupled = simulate(ann, MachineConfig.named("64D")).mlp
            decoupled = simulate(
                ann, MachineConfig.named("64D", rob=256)
            ).mlp
            assert decoupled >= coupled, name
        db = all_annotated["database"]
        gain = (
            simulate(db, MachineConfig.named("64D", rob=256)).mlp
            / simulate(db, MachineConfig.named("64D")).mlp
        )
        assert gain > 1.05  # paper: +16%


class TestSection54:
    """Runahead execution and value prediction."""

    def test_runahead_beats_conventional_everywhere(self, all_annotated):
        rae = MachineConfig.runahead_machine()
        for name, ann in all_annotated.items():
            conventional = simulate(ann, MachineConfig.named("64D")).mlp
            runahead = simulate(ann, rae).mlp
            assert runahead > conventional * 1.2, name

    def test_jbb_gains_most_from_runahead(self, all_annotated):
        """Figure 8: +102% for SPECjbb2000, the largest of the three."""
        gains = {}
        for name, ann in all_annotated.items():
            base = simulate(ann, MachineConfig.named("64D")).mlp
            gains[name] = simulate(ann, MachineConfig.runahead_machine()).mlp / base
        assert gains["specjbb2000"] == max(gains.values())

    def test_runahead_matches_inf_window(self, all_annotated):
        """Figure 8: RAE ~= the 2048-entry config-E machine."""
        for name, ann in all_annotated.items():
            rae = simulate(ann, MachineConfig.runahead_machine()).mlp
            inf = simulate(ann, MachineConfig.named("2048E")).mlp
            assert rae == pytest.approx(inf, rel=0.2), name

    def test_value_prediction_pays_most_with_runahead(self, database_annotated):
        """Figure 9: VP gains are largest on the RAE machine."""
        def vp_gain(machine):
            base = simulate(database_annotated, machine).mlp
            with_vp = simulate(
                database_annotated,
                dataclasses.replace(machine, value_prediction=True),
            ).mlp
            return with_vp / base

        conventional = vp_gain(MachineConfig.named("64D"))
        runahead = vp_gain(MachineConfig.runahead_machine())
        assert runahead >= conventional


class TestSection56:
    """The limit study."""

    def test_perfection_never_hurts(self, database_annotated):
        grid = limit_configs(runahead=True)
        base = simulate(database_annotated, grid[0][1]).mlp
        for _label, machine in grid[1:]:
            assert simulate(database_annotated, machine).mlp >= base - 1e-9

    def test_perfect_ifetch_useless_for_jbb(self, specjbb_annotated):
        rae = MachineConfig.runahead_machine()
        base = simulate(specjbb_annotated, rae).mlp
        perfi = simulate(
            specjbb_annotated, dataclasses.replace(rae, perfect_ifetch=True)
        ).mlp
        assert perfi == pytest.approx(base, rel=0.05)

    def test_perfect_ifetch_helps_db_and_web(self, all_annotated):
        rae = MachineConfig.runahead_machine()
        for name in ("database", "specweb99"):
            ann = all_annotated[name]
            base = simulate(ann, rae).mlp
            perfi = simulate(
                ann, dataclasses.replace(rae, perfect_ifetch=True)
            ).mlp
            assert perfi > base * 1.1, name

    def test_vp_and_bp_compose(self, specjbb_annotated):
        """Figure 10: VP+BP together unlock more than either alone —
        they remove *different* window terminators (a correctly
        predicted value is unvalidated and cannot resolve a mispredicted
        branch)."""
        rae = MachineConfig.runahead_machine()
        base = simulate(specjbb_annotated, rae).mlp
        vp = simulate(
            specjbb_annotated, dataclasses.replace(rae, perfect_value=True)
        ).mlp
        bp = simulate(
            specjbb_annotated, dataclasses.replace(rae, perfect_branch=True)
        ).mlp
        both = simulate(
            specjbb_annotated,
            dataclasses.replace(rae, perfect_value=True, perfect_branch=True),
        ).mlp
        assert both > max(vp, bp)
        assert both - base > 0.6 * ((vp - base) + (bp - base))

    def test_headroom_above_runahead_is_large(self, all_annotated):
        """Paper: +134%/+215%/+57% for RAE.perfVP.perfBP over RAE."""
        rae = MachineConfig.runahead_machine()
        limit = dataclasses.replace(
            rae, perfect_value=True, perfect_branch=True
        )
        # The paper's gains: database +134%, SPECjbb2000 +215%,
        # SPECweb99 +57%; our scaled traces show the same ordering with
        # a smaller web gain.
        floors = {"database": 1.4, "specjbb2000": 1.4, "specweb99": 1.15}
        for name, ann in all_annotated.items():
            gain = simulate(ann, limit).mlp / simulate(ann, rae).mlp
            assert gain > floors[name], name
