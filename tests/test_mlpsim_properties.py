"""Property-based tests for MLPsim invariants.

Random small traces (with random miss/mispredict placements) are run
through the engine under several machine configurations; the invariants
asserted are consequences of the epoch model itself:

* conservation: every useful off-chip event is counted exactly once;
* MLP is accesses/epochs and at least 1;
* epoch sets never overlap and only contain in-range indices;
* relaxing issue constraints (A -> C -> E) never reduces MLP;
* growing the ROB (at fixed issue window) never reduces MLP;
* runahead is at least as good as the same-trace in-order machine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MachineConfig
from repro.core.inorder import simulate_stall_on_miss, simulate_stall_on_use
from repro.core.mlpsim import simulate
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


@st.composite
def random_annotated_trace(draw):
    """A random short trace with consistently placed events."""
    n = draw(st.integers(5, 60))
    b = TraceBuilder("random")
    kinds = []
    pc = 0x1000
    for _i in range(n):
        kind = draw(
            st.sampled_from(
                ["alu", "load", "store", "branch", "prefetch", "membar", "cas"]
            )
        )
        kinds.append(kind)
        dst = draw(st.integers(1, 12))
        src = draw(st.integers(0, 12))
        addr = 64 * draw(st.integers(0, 15))
        if kind == "alu":
            b.add_alu(pc, dst=dst, src1=src, src2=draw(st.integers(0, 12)))
        elif kind == "load":
            b.add_load(pc, dst=dst, addr=addr, src1=src)
        elif kind == "store":
            b.add_store(pc, addr=addr, data_src=dst, src1=src)
        elif kind == "branch":
            b.add_branch(pc, taken=draw(st.booleans()), target=pc + 4, src1=src)
        elif kind == "prefetch":
            b.add_prefetch(pc, addr=addr, src1=src)
        elif kind == "membar":
            b.add_membar(pc)
        else:
            b.add_cas(pc, dst=dst, addr=addr, src1=src, data_src=src)
        pc += 4

    dmiss_at = [
        i
        for i, k in enumerate(kinds)
        if k in ("load", "cas") and draw(st.booleans())
    ]
    mispred_at = [
        i for i, k in enumerate(kinds) if k == "branch" and draw(st.booleans())
    ]
    pmiss_at = [
        i for i, k in enumerate(kinds) if k == "prefetch" and draw(st.booleans())
    ]
    imiss_at = [i for i in range(n) if draw(st.integers(0, 9)) == 0]
    vp_correct_at = [i for i in dmiss_at if draw(st.booleans())]
    return manual_annotation(
        b.build(),
        dmiss_at=dmiss_at,
        imiss_at=imiss_at,
        mispred_at=mispred_at,
        pmiss_at=pmiss_at,
        vp_correct_at=vp_correct_at,
    )


def expected_accesses(ann):
    return (
        int(np.count_nonzero(ann.dmiss))
        + int(np.count_nonzero(ann.imiss))
        + int(np.count_nonzero(ann.pfuseful))
    )


MACHINES = [
    MachineConfig.named("4A"),
    MachineConfig.named("8C"),
    MachineConfig.named("64C"),
    MachineConfig.named("16D", rob=64),
    MachineConfig.named("64E"),
    MachineConfig.runahead_machine(max_runahead=64),
]


@settings(max_examples=120, deadline=None)
@given(random_annotated_trace())
def test_event_conservation(ann):
    """Every useful off-chip event is counted exactly once, under every
    machine (including runahead)."""
    expected = expected_accesses(ann)
    for machine in MACHINES:
        result = simulate(ann, machine)
        assert result.accesses == expected
        assert (
            result.dmiss_accesses
            + result.imiss_accesses
            + result.prefetch_accesses
            == expected
        )


@settings(max_examples=120, deadline=None)
@given(random_annotated_trace())
def test_mlp_definition_and_bounds(ann):
    for machine in MACHINES:
        result = simulate(ann, machine)
        if result.epochs:
            assert result.mlp == pytest.approx(result.accesses / result.epochs)
            assert result.mlp >= 1.0
        else:
            assert result.accesses == 0


@settings(max_examples=80, deadline=None)
@given(random_annotated_trace())
def test_epoch_sets_are_disjoint_and_in_range(ann):
    result = simulate(ann, MachineConfig.named("8C"), record_sets=True)
    seen = set()
    for epoch in result.epoch_records:
        for member in epoch.members:
            assert 0 <= member < len(ann.trace)
            assert member not in seen
            seen.add(member)


@settings(max_examples=150, deadline=None)
@given(random_annotated_trace())
def test_issue_constraint_relaxation_is_monotone(ann):
    """Configs impose strictly weaker constraints A -> C -> E."""
    mlp_a = simulate(ann, MachineConfig.named("32A")).mlp
    mlp_c = simulate(ann, MachineConfig.named("32C")).mlp
    mlp_e = simulate(ann, MachineConfig.named("32E")).mlp
    assert mlp_a <= mlp_c + 1e-9
    assert mlp_c <= mlp_e + 1e-9


def test_fetch_buffer_never_runs_past_a_mispredicted_branch():
    """Regression for a bug hypothesis found.

    Trace: missing load; CAS; mispredicted branch dependent on the
    load; then an instruction-fetch miss.  The CAS drain is a
    dispatch-side stop, so the fetch buffer runs on — but everything
    past the unexecuted mispredicted branch is the wrong path, so the
    fetch miss behind it must NOT be absorbed into the epoch (an early
    engine version did absorb it, which made removing the serializing
    constraint *lower* MLP — a non-physical inversion).
    """
    b = TraceBuilder("serialize-vs-e")
    b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # Dmiss
    b.add_cas(0x104, dst=3, addr=0x1000, src1=1, data_src=4)
    b.add_branch(0x108, taken=True, target=0x200, src1=2)  # unresolvable
    b.add_alu(0x200, dst=4, src1=1)  # Imiss (correct path)
    ann = manual_annotation(
        b.build(), dmiss_at=[0], imiss_at=[3], mispred_at=[2]
    )
    serialized = simulate(ann, MachineConfig.named("32C"), record_sets=True)
    relaxed = simulate(ann, MachineConfig.named("32E"))
    assert serialized.epochs == 2  # the Imiss is NOT absorbed
    assert serialized.accesses == 2
    assert relaxed.epochs == 2
    assert serialized.mlp <= relaxed.mlp + 1e-9


@settings(max_examples=80, deadline=None)
@given(random_annotated_trace())
def test_bigger_rob_is_monotone(ann):
    small = simulate(ann, MachineConfig.named("8C", rob=8, fetch_buffer=0)).mlp
    big = simulate(ann, MachineConfig.named("8C", rob=64, fetch_buffer=0)).mlp
    assert small <= big + 1e-9


@settings(max_examples=60, deadline=None)
@given(random_annotated_trace())
def test_runahead_not_worse_than_stall_on_miss(ann):
    rae = simulate(ann, MachineConfig.runahead_machine(max_runahead=128)).mlp
    som = simulate_stall_on_miss(ann).mlp
    assert rae >= som - 1e-9


@settings(max_examples=60, deadline=None)
@given(random_annotated_trace())
def test_stall_on_use_not_worse_than_stall_on_miss(ann):
    sou = simulate_stall_on_use(ann).mlp
    som = simulate_stall_on_miss(ann).mlp
    assert sou >= som - 1e-9


@settings(max_examples=60, deadline=None)
@given(random_annotated_trace())
def test_perfect_switches_never_reduce_accessible_work(ann):
    """Perfect BP/VP never reduce MLP; perfect I-fetch removes the
    I-miss accesses but never increases the number of epochs."""
    base = simulate(ann, MachineConfig.named("32D"))
    perf_bp = simulate(
        ann, MachineConfig.named("32D", perfect_branch=True)
    )
    perf_vp = simulate(ann, MachineConfig.named("32D", perfect_value=True))
    assert perf_bp.mlp >= base.mlp - 1e-9
    assert perf_vp.mlp >= base.mlp - 1e-9
    perf_i = simulate(ann, MachineConfig.named("32D", perfect_ifetch=True))
    assert perf_i.epochs <= base.epochs
