"""Lifecycle of zero-copy plan publication (``repro.analysis.shm``).

A published plan is parent-owned: whatever the workers do — finish,
raise, or die by SIGKILL — the segment must survive until the parent
unlinks it, and the parent must unlink it exactly once on every exit
path of the batched parallel sweep.  Leaked segments accumulate in
``/dev/shm`` until reboot, and a worker-side unlink (Python's
``resource_tracker`` default) would yank the mapping out from under
sibling workers, so both directions of the contract matter.
"""

import os
import signal

import multiprocessing

import numpy as np
import pytest

import repro.analysis.parallel as parallel
import repro.analysis.shm as shm
from repro.core.columnar import PLAN_COLUMNS, plan_for
from repro.core.config import MachineConfig
from repro.robustness.errors import SimulationError, TraceFormatError


def _grid():
    return [
        (f"64{policy}", MachineConfig.named(f"64{policy}"))
        for policy in "ABC"
    ] + [("64D-pb", MachineConfig.named("64D", perfect_branch=True))]


@pytest.fixture
def plan(specjbb_annotated):
    return plan_for(specjbb_annotated, MachineConfig.named("64C"))


class TestPublishAttach:
    def test_round_trip_is_exact_and_zero_copy(self, plan):
        handle = shm.publish_plan(plan)
        try:
            attached = shm.attach_plan(handle)
            try:
                checks = []
                for name, _ in PLAN_COLUMNS:
                    view = getattr(attached.plan, name)
                    checks.append((
                        name,
                        np.array_equal(getattr(plan, name), view),
                        # Views alias the shared buffer, not copies.
                        not view.flags.owndata,
                    ))
                span = (attached.plan.start, attached.plan.stop)
                del view  # drop the buffer reference before closing
            finally:
                attached.close()
            for name, equal, aliased in checks:
                assert equal and aliased, name
            assert span == (plan.start, plan.stop)
        finally:
            shm.unpublish_plan(handle)

    def test_unpublish_removes_segment_and_is_idempotent(self, plan):
        handle = shm.publish_plan(plan)
        assert shm.plan_is_published(handle)
        shm.unpublish_plan(handle)
        assert not shm.plan_is_published(handle)
        shm.unpublish_plan(handle)  # second release must not raise
        shm.unpublish_plan(None)    # nor a no-op handle

    def test_attach_after_unpublish_raises_loudly(self, plan):
        handle = shm.publish_plan(plan)
        shm.unpublish_plan(handle)
        with pytest.raises(TraceFormatError):
            # Use-after-release is the behaviour under test here.
            shm.attach_plan(handle)  # reprolint: disable=shm-lifetime

    def test_file_fallback_round_trips(self, plan, monkeypatch):
        """With shared memory unavailable the spill file path engages,
        is memory-mapped on attach, and unlinks on unpublish."""
        def no_shm(*args, **kwargs):
            raise OSError("shm exhausted")  # reprolint: disable=error-hierarchy

        monkeypatch.setattr(shm, "_publish_shm", no_shm)
        handle = shm.publish_plan(plan)
        try:
            assert handle.kind == "file"
            assert os.path.exists(handle.name)
            attached = shm.attach_plan(handle)
            try:
                assert np.array_equal(attached.plan.ops, plan.ops)
            finally:
                attached.close()
        finally:
            shm.unpublish_plan(handle)
        assert not os.path.exists(handle.name)


def _attach_and_die(handle, barrier):
    """Worker body for the SIGKILL test: map the plan, then die hard."""
    # Deliberately never closed: the SIGKILL below must find the
    # attachment live to prove a dead worker cannot unlink the segment.
    attached = shm.attach_plan(handle)  # reprolint: disable=shm-lifetime
    assert attached.plan is not None
    barrier.wait()
    os.kill(os.getpid(), signal.SIGKILL)


class TestWorkerDeath:
    def test_sigkilled_worker_does_not_unlink(self, plan):
        """A worker that dies mid-attach must not tear the segment
        down (resource-tracker unregistration) — and the parent's
        ``unpublish_plan`` afterwards must."""
        handle = shm.publish_plan(plan)
        try:
            ctx = multiprocessing.get_context("fork")
            barrier = ctx.Barrier(2)
            worker = ctx.Process(
                target=_attach_and_die, args=(handle, barrier)
            )
            worker.start()
            barrier.wait()
            worker.join(timeout=30)
            assert worker.exitcode == -signal.SIGKILL
            assert shm.plan_is_published(handle), \
                "worker death must not unlink the parent's segment"
        finally:
            shm.unpublish_plan(handle)
        assert not shm.plan_is_published(handle)


def _published_handles(monkeypatch):
    """Record every handle the sweep publishes (without disturbing it)."""
    handles = []
    real_publish = shm.publish_plan

    def recording_publish(plan):
        handle = real_publish(plan)
        handles.append(handle)
        return handle

    monkeypatch.setattr(shm, "publish_plan", recording_publish)
    return handles


def _failing_chunk(handle, chunk, workload):
    raise RuntimeError("worker exploded")  # reprolint: disable=error-hierarchy


def _suicidal_chunk(handle, chunk, workload):
    os.kill(os.getpid(), signal.SIGKILL)


class TestSweepLifecycle:
    def test_success_path_unlinks_everything(self, specjbb_annotated,
                                             monkeypatch):
        handles = _published_handles(monkeypatch)
        results = parallel.batched_parallel_sweep(
            specjbb_annotated, _grid(), "specjbb2000",
            progress=None, jobs=2,
        )
        assert results is not None and len(results) == len(_grid())
        assert handles, "sweep should have published at least one plan"
        assert all(not shm.plan_is_published(h) for h in handles)

    def test_failure_path_unlinks_everything(self, specjbb_annotated,
                                             monkeypatch):
        handles = _published_handles(monkeypatch)
        monkeypatch.setattr(parallel, "_run_plan_chunk", _failing_chunk)
        with pytest.raises(SimulationError) as excinfo:
            parallel.batched_parallel_sweep(
                specjbb_annotated, _grid(), "specjbb2000",
                progress=None, jobs=2,
            )
        assert "worker exploded" in str(excinfo.value)
        assert handles
        assert all(not shm.plan_is_published(h) for h in handles)

    def test_sigkilled_worker_path_unlinks_everything(
            self, specjbb_annotated, monkeypatch):
        handles = _published_handles(monkeypatch)
        monkeypatch.setattr(parallel, "_run_plan_chunk", _suicidal_chunk)
        with pytest.raises(SimulationError):
            parallel.batched_parallel_sweep(
                specjbb_annotated, _grid(), "specjbb2000",
                progress=None, jobs=2,
            )
        assert handles
        assert all(not shm.plan_is_published(h) for h in handles)


class TestSharding:
    def test_chunks_sized_by_cost_and_balanced(self):
        pairs = [(str(i), None) for i in range(30)]
        # Cheap configs coalesce (bounded by the even split) ...
        cheap = parallel.shard_pairs(pairs, 0.001, jobs=4)
        assert [p for chunk in cheap for p in chunk] == pairs
        assert max(len(c) for c in cheap) <= 8  # ceil(30/4)
        # ... expensive configs go one per chunk.
        costly = parallel.shard_pairs(pairs, 10.0, jobs=4)
        assert all(len(c) == 1 for c in costly)
        assert parallel.shard_pairs([], 0.1, jobs=4) == []

    def test_journal_receives_incremental_results(self, specjbb_annotated,
                                                  tmp_path):
        from repro.robustness.journal import SweepJournal

        journal_path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(str(journal_path))
        journal.initialize("specjbb2000", 1234, None)
        parallel.batched_parallel_sweep(
            specjbb_annotated, _grid(), "specjbb2000",
            progress=None, jobs=2, journal=journal, seed=1234,
        )
        contents = journal_path.read_text()
        # Every config the pool ran (all but the calibration one, which
        # the parent measures in-process) was flushed as it completed.
        for label, _ in _grid()[1:]:
            assert label in contents
