"""Tests for the markdown report generator."""

import pytest

from repro.experiments.common import Exhibit, clear_caches
from repro.experiments.report import (
    _exhibit_markdown,
    build_report,
    write_report,
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestMarkdownRendering:
    def test_table_structure(self):
        exhibit = Exhibit(
            name="T",
            title="demo",
            tables=[("sub", ["a", "b"], [["x", 1.25], [None, 2.0]])],
            notes=["watch out"],
        )
        text = _exhibit_markdown(exhibit)
        assert "## T: demo" in text
        assert "**sub**" in text
        assert "| a | b |" in text
        assert "| x | 1.250 |" in text
        assert "|  | 2.000 |" in text  # None renders empty
        assert "* watch out" in text

    def test_float_format_respected(self):
        exhibit = Exhibit(
            name="T", title="t",
            tables=[(None, ["v"], [[0.125]])],
            float_format="+.1%",
        )
        assert "+12.5%" in _exhibit_markdown(exhibit)


class TestBuildReport:
    def test_selected_exhibits_only(self):
        seen = []
        text = build_report(
            exhibit_names=["table5"], trace_len=15000,
            progress=seen.append,
        )
        assert seen == ["table5"]
        assert "# Reproduction report" in text
        assert "In-Order Issue" in text
        assert "15000 instructions" in text

    def test_write_report(self, tmp_path):
        path = tmp_path / "r.md"
        text = write_report(
            path, exhibit_names=["table5"], trace_len=15000
        )
        assert path.read_text() == text


class TestCLIReport:
    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main(["report", "table5", "-n", "15000", "-o", str(out)])
        assert code == 0
        assert out.exists()
        assert "In-Order" in out.read_text()
