"""Process-level chaos tests for supervised sweeps.

Each test injects a deterministic process fault — a SIGKILLed pool
worker, a hung config, a supervisor crash mid-journal-write, a
corrupted disk-cache entry — and proves the supervised sweep still
produces results *bit-identical* to a clean serial run.  That is the
central robustness claim of ``repro.robustness.supervisor``: because
MLPsim is a pure function of ``(annotated, machine)``, no amount of
retrying, worker replacement, serial degradation or journal resume may
change a single field of a single result.

Journals are written under ``REPRO_CHAOS_JOURNAL_DIR`` when set (CI
uploads that directory as an artifact on failure) and the pytest tmp
path otherwise.
"""

import dataclasses
import logging
import os

import pytest

from repro.analysis.sweep import sweep
from repro.core.config import MachineConfig
from repro.robustness.errors import InjectedCrash
from repro.robustness.faults import ProcessFaultPlan, corrupt_cache_entries
from repro.robustness.supervisor import SupervisorPolicy, supervised_sweep

GRID_SPECS = ("16A", "64C", "64E", "128C")

#: Fast retries so chaos runs stay quick; a real campaign would use the
#: default half-second base.
POLICY = SupervisorPolicy(
    max_retries=2, backoff_base=0.01, config_timeout=60.0
)


def _grid():
    return [(spec, MachineConfig.named(spec)) for spec in GRID_SPECS]


def _result_fields(result):
    fields = dataclasses.asdict(result)
    fields["inhibitors"] = result.inhibitors.as_dict()
    return fields


@pytest.fixture(scope="module")
def chaos_annotated():
    """Small trace: chaos tests re-simulate configs across processes."""
    from repro.trace.annotate import annotate
    from repro.workloads import generate_trace

    return annotate(generate_trace("specjbb2000", 12_000))


@pytest.fixture(scope="module")
def clean_serial(chaos_annotated):
    """The fault-free serial sweep every chaos run must reproduce."""
    return sweep(chaos_annotated, _grid(), jobs=1)


@pytest.fixture
def journal_dir(tmp_path):
    """Journal location; CI points this at an artifact directory."""
    override = os.environ.get("REPRO_CHAOS_JOURNAL_DIR")
    if override:
        os.makedirs(override, exist_ok=True)
        return override
    return str(tmp_path)


def _assert_bit_identical(supervised, baseline):
    assert supervised.labels() == baseline.labels()
    for label in baseline.labels():
        assert _result_fields(supervised.results[label]) == \
            _result_fields(baseline.results[label]), label


class TestPoolWorkerDeath:
    def test_sigkilled_worker_is_replaced(self, chaos_annotated,
                                          clean_serial, journal_dir):
        """SIGKILL one worker mid-sweep: the grid must still finish,
        bit-identical to serial, with the death visible in the stats."""
        result = supervised_sweep(
            chaos_annotated, _grid(), seed=1234, jobs=2,
            journal_path=os.path.join(journal_dir, "kill.jsonl"),
            policy=POLICY,
            fault_plan=ProcessFaultPlan.parse("kill:64C@1"),
        )
        assert result.complete
        assert result.worker_replacements >= 1
        _assert_bit_identical(result, clean_serial)

    def test_hung_worker_is_killed_and_retried(self, chaos_annotated,
                                               clean_serial, journal_dir):
        policy = SupervisorPolicy(
            max_retries=2, backoff_base=0.01, config_timeout=1.5
        )
        result = supervised_sweep(
            chaos_annotated, _grid(), seed=1234, jobs=2,
            journal_path=os.path.join(journal_dir, "hang.jsonl"),
            policy=policy,
            fault_plan=ProcessFaultPlan.parse("hang:64E@1"),
        )
        assert result.complete
        assert result.worker_replacements >= 1
        # Retried successfully after the timeout kill, not quarantined.
        assert result.quarantined == []
        _assert_bit_identical(result, clean_serial)

    def test_collapsing_pool_degrades_to_serial(self, chaos_annotated,
                                                clean_serial, journal_dir):
        """With zero tolerance for worker deaths, the first SIGKILL
        must hand the remaining grid to the serial backend — and the
        results still match."""
        policy = SupervisorPolicy(
            max_retries=2, backoff_base=0.01, config_timeout=60.0,
            pool_failure_limit=0,
        )
        result = supervised_sweep(
            chaos_annotated, _grid(), seed=1234, jobs=2,
            journal_path=os.path.join(journal_dir, "degrade.jsonl"),
            policy=policy,
            fault_plan=ProcessFaultPlan.parse("kill:16A@1"),
        )
        assert result.complete
        assert result.degraded_to_serial
        assert result.worker_replacements == 1
        _assert_bit_identical(result, clean_serial)

    def test_pool_quarantines_poison_config(self, chaos_annotated,
                                            clean_serial, journal_dir):
        """A config that kills its worker on every attempt is dead-
        lettered; the rest of the grid completes bit-identical."""
        result = supervised_sweep(
            chaos_annotated, _grid(), seed=1234, jobs=2,
            journal_path=os.path.join(journal_dir, "poison.jsonl"),
            policy=POLICY,
            fault_plan=ProcessFaultPlan.parse("kill:64C"),
        )
        assert not result.complete
        assert [q.label for q in result.quarantined] == ["64C"]
        assert result.worker_replacements == POLICY.attempts_allowed
        survivors = [s for s in GRID_SPECS if s != "64C"]
        assert result.labels() == survivors
        for label in survivors:
            assert _result_fields(result.results[label]) == \
                _result_fields(clean_serial.results[label]), label


class TestCrashResumeEquivalence:
    def test_faulted_resumed_sweep_matches_clean_serial(
            self, chaos_annotated, clean_serial, journal_dir):
        """The headline chaos scenario: a pool sweep suffers a worker
        SIGKILL, a hung config *and* a supervisor crash mid-journal-
        write; resuming completes the grid bit-identical to a clean
        serial run, re-executing only what the journal lost."""
        journal_path = os.path.join(journal_dir, "combined.jsonl")
        policy = SupervisorPolicy(
            max_retries=2, backoff_base=0.01, config_timeout=1.5
        )
        plan = ProcessFaultPlan.parse(
            "kill:16A@1 hang:64C@1 crash-journal:64E@1"
        )
        with pytest.raises(InjectedCrash):
            supervised_sweep(
                chaos_annotated, _grid(), seed=1234, jobs=2,
                journal_path=journal_path, policy=policy, fault_plan=plan,
            )
        resumed = supervised_sweep(
            chaos_annotated, _grid(), seed=1234, jobs=2,
            journal_path=journal_path, resume=True, policy=policy,
        )
        assert resumed.complete
        # The crash hit a result record, so at least that config (and
        # anything not yet journalled) re-executes; everything restored
        # plus everything re-run covers the grid exactly.  (How many
        # results were durable before the crash depends on pool
        # completion order, so only the split's total is asserted.)
        assert resumed.resumed + resumed.executed == len(GRID_SPECS)
        assert resumed.executed >= 1
        _assert_bit_identical(resumed, clean_serial)

    def test_interrupted_serial_sweep_resumes_incrementally(
            self, chaos_annotated, clean_serial, journal_dir):
        """Kill the supervisor after two configs; ``--resume`` restores
        them from the journal and runs only the remaining two."""
        journal_path = os.path.join(journal_dir, "interrupt.jsonl")
        with pytest.raises(InjectedCrash):
            supervised_sweep(
                chaos_annotated, _grid(), seed=1234, jobs=1,
                journal_path=journal_path, policy=POLICY,
                fault_plan=ProcessFaultPlan.parse("crash-journal:64E@1"),
            )
        resumed = supervised_sweep(
            chaos_annotated, _grid(), seed=1234, jobs=1,
            journal_path=journal_path, resume=True, policy=POLICY,
        )
        assert resumed.resumed == 2 and resumed.executed == 2
        _assert_bit_identical(resumed, clean_serial)


class TestCacheCorruption:
    def test_corrupt_cache_entry_quarantined_and_regenerated(
            self, tmp_path, monkeypatch, caplog):
        """A damaged disk-cache archive must be moved to quarantine/
        with a logged warning, then transparently regenerated."""
        from repro.experiments import common

        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
        common.clear_caches()
        first = common.get_annotated("specjbb2000", trace_len=8_000)
        archives = [
            entry for entry in os.listdir(cache)
            if entry.startswith("annotated-")
        ]
        assert archives, "sweep should have spilled a cache entry"

        corrupted = corrupt_cache_entries(str(cache), fault="truncate")
        assert corrupted
        common.clear_caches()  # force the disk-cache read path
        with caplog.at_level(logging.WARNING, logger="repro.cache"):
            again = common.get_annotated("specjbb2000", trace_len=8_000)

        # Regenerated, not crashed — and identical to the original.
        assert (again.trace.addr == first.trace.addr).all()
        # The damaged file moved to the quarantine dir (the fresh
        # regeneration then re-spills a clean archive at the old path).
        quarantine = cache / common.QUARANTINE_DIRNAME
        assert quarantine.is_dir()
        assert archives[0] in os.listdir(quarantine)
        assert any(
            "corrupt annotation cache entry" in record.message
            for record in caplog.records
        )
        common.clear_caches()
