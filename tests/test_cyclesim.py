"""Tests for the cycle-accurate simulator and its agreement with MLPsim."""

import pytest

from repro.core.config import MachineConfig
from repro.core.mlpsim import simulate
from repro.cyclesim import CycleSimConfig, CycleSimulator, run_cyclesim
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


def config(label="64C", penalty=1000, **overrides):
    return CycleSimConfig.from_machine(
        MachineConfig.named(label), miss_penalty=penalty, **overrides
    )


def alu_block(n=32):
    b = TraceBuilder("alu")
    pc = 0x100
    for k in range(n):
        b.add_alu(pc, dst=2 + (k % 4), src1=1)
        pc += 4
    return manual_annotation(b.build())


class TestTiming:
    def test_alu_throughput_bounded_by_width(self):
        ann = alu_block(64)
        metrics = run_cyclesim(ann, config())
        # 4-wide machine on independent ALUs: CPI near 0.25 plus the
        # pipeline fill; certainly below 1.
        assert metrics.cpi < 1.0
        assert metrics.instructions == 64

    def test_single_miss_costs_roughly_the_penalty(self):
        b = TraceBuilder("one-miss")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_alu(0x104, dst=3, src1=2)  # dependent
        ann = manual_annotation(b.build(), dmiss_at=[0])
        metrics = run_cyclesim(ann, config(penalty=500))
        assert 500 <= metrics.cycles <= 560

    def test_perfect_l2_removes_offchip_time(self):
        b = TraceBuilder("perf")
        for k in range(8):
            b.add_load(0x100 + 4 * k, dst=2, addr=0x8000 + 0x1000 * k, src1=2)
        ann = manual_annotation(b.build(), dmiss_at=list(range(8)))
        real = run_cyclesim(ann, config(penalty=1000))
        perf = run_cyclesim(ann, config(penalty=1000, perfect_l2=True))
        assert perf.cycles < real.cycles / 5
        assert perf.offchip_accesses == 0

    def test_dependent_chain_serialises_in_time(self):
        b = TraceBuilder("chain")
        for k in range(3):
            b.add_load(0x100 + 4 * k, dst=2, addr=0x8000 + 0x1000 * k, src1=2)
        ann = manual_annotation(b.build(), dmiss_at=[0, 1, 2])
        metrics = run_cyclesim(ann, config(penalty=400))
        assert metrics.cycles >= 3 * 400
        assert metrics.mlp == pytest.approx(1.0, abs=0.05)

    def test_independent_misses_overlap_in_time(self):
        b = TraceBuilder("overlap")
        for k in range(4):
            b.add_load(0x100 + 4 * k, dst=2 + k, addr=0x8000 + 0x1000 * k,
                       src1=1)
        ann = manual_annotation(b.build(), dmiss_at=list(range(4)))
        metrics = run_cyclesim(ann, config(penalty=400))
        assert metrics.cycles < 2 * 400
        assert metrics.mlp > 3.5


class TestStructures:
    def test_rob_limits_overlap(self):
        # Misses spaced 16 apart; a 16-entry ROB serialises them.
        b = TraceBuilder("rob")
        pc = 0x100
        dmiss = []
        for m in range(3):
            dmiss.append(len(b._cols["op"]))
            b.add_load(pc, dst=8, addr=0x8000 + 0x1000 * m, src1=1)
            pc += 4
            for _ in range(15):
                b.add_alu(pc, dst=20, src1=1)
                pc += 4
        ann = manual_annotation(b.build(), dmiss_at=dmiss)
        small = run_cyclesim(ann, config("16C", penalty=500))
        big = run_cyclesim(ann, config("64C", penalty=500))
        assert big.mlp > small.mlp + 0.5

    def test_mshr_merges_same_line(self):
        b = TraceBuilder("merge")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_load(0x104, dst=3, addr=0x8008, src1=1)  # same line
        ann = manual_annotation(b.build(), dmiss_at=[0, 1])
        metrics = run_cyclesim(ann, config(penalty=300))
        assert metrics.offchip_accesses == 1
        assert metrics.cycles < 400

    def test_serializing_drain(self):
        b = TraceBuilder("drain")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        b.add_cas(0x104, dst=3, addr=0x1000, src1=1, data_src=4)
        b.add_load(0x108, dst=5, addr=0x9000, src1=1)  # miss
        ann = manual_annotation(b.build(), dmiss_at=[0, 2])
        metrics = run_cyclesim(ann, config("64C", penalty=400))
        # The CAS forces the two misses into disjoint epochs in time.
        assert metrics.cycles >= 800
        assert metrics.mlp == pytest.approx(1.0, abs=0.05)

    def test_mispredicted_dependent_branch_blocks_fetch(self):
        b = TraceBuilder("mispred")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        b.add_branch(0x104, taken=True, target=0x200, src1=2)
        b.add_load(0x200, dst=3, addr=0x9000, src1=1)  # miss
        ann = manual_annotation(b.build(), dmiss_at=[0, 2], mispred_at=[1])
        metrics = run_cyclesim(ann, config(penalty=400))
        assert metrics.cycles >= 800


class TestPolicies:
    def _example4(self):
        b = TraceBuilder("ex4")
        b.add_load(0x100, dst=2, addr=0x8008, src1=1)
        b.add_load(0x104, dst=3, addr=0x9000, src1=2)
        b.add_load(0x108, dst=4, addr=0x8108, src1=1)
        b.add_store(0x10C, addr=0x9000, data_src=5, src1=3)
        b.add_load(0x110, dst=6, addr=0x8388, src1=1)
        return manual_annotation(b.build(), dmiss_at=[0, 1, 2, 4])

    def test_policy_ordering_matches_paper_example(self):
        mlps = {
            c: run_cyclesim(self._example4(), config(f"64{c}", 1000)).mlp
            for c in "ABC"
        }
        # A and B tie on this example (both split it into epochs of
        # 2+1+1 accesses); C overlaps i1/i3/i5 and clearly wins.
        assert mlps["A"] <= mlps["B"] < mlps["C"]

    def test_runahead_rejected(self):
        with pytest.raises(ValueError):
            CycleSimConfig.from_machine(MachineConfig.runahead_machine())

    def test_validation(self):
        with pytest.raises(ValueError):
            CycleSimConfig(miss_penalty=5)  # below L2 latency
        with pytest.raises(ValueError):
            CycleSimConfig(issue_window=64, rob=32)


class TestEventSkipping:
    """The event-skip fast path must be invisible: cycle-by-cycle
    ticking and stall-skipping give byte-identical results."""

    @pytest.mark.parametrize(
        "label,penalty", [("32C", 500), ("64A", 300), ("16B", 400)]
    )
    def test_skip_equals_tick(self, label, penalty):
        from repro.trace.annotate import annotate
        from repro.workloads import generate_trace

        ann = annotate(generate_trace("specjbb2000", 9000))
        machine = MachineConfig.named(label)
        skip = run_cyclesim(
            ann, CycleSimConfig.from_machine(machine, miss_penalty=penalty)
        )
        tick = run_cyclesim(
            ann,
            CycleSimConfig.from_machine(
                machine, miss_penalty=penalty, event_skip=False
            ),
        )
        assert skip.cycles == tick.cycles
        assert skip.offchip_accesses == tick.offchip_accesses
        assert skip.outstanding_integral == tick.outstanding_integral
        assert skip.nonzero_cycles == tick.nonzero_cycles


class TestAgreementWithMLPsim:
    """The Table 3 property: cyclesim MLP approaches MLPsim MLP as the
    off-chip latency grows."""

    @pytest.mark.parametrize("letter", ["A", "B", "C"])
    def test_convergence_on_database(self, database_annotated, letter):
        machine = MachineConfig.named(f"64{letter}")
        mlpsim = simulate(database_annotated, machine).mlp
        gaps = []
        for penalty in (200, 1000):
            cyc = run_cyclesim(
                database_annotated,
                CycleSimConfig.from_machine(machine, miss_penalty=penalty),
            ).mlp
            gaps.append(abs(cyc - mlpsim) / mlpsim)
        assert gaps[1] <= gaps[0] + 1e-6  # longer latency agrees better
        assert gaps[1] < 0.06

    def test_cpi_sanity_on_workload(self, specjbb_annotated):
        sim = CycleSimulator(config("64C", penalty=1000))
        metrics = sim.run(specjbb_annotated)
        assert metrics.cpi > 1.0
        assert metrics.ipc == pytest.approx(1.0 / metrics.cpi)
        assert 0 < metrics.miss_rate_per_100 < 5
        assert "CPI" in metrics.summary()


class TestCPIStack:
    def test_stack_sums_to_cpi(self, database_annotated):
        metrics = run_cyclesim(
            database_annotated, config("64C", penalty=1000)
        )
        stack = metrics.cpi_stack()
        assert sum(stack.values()) == pytest.approx(metrics.cpi)
        assert sum(metrics.stall_cycles.values()) == metrics.cycles

    def test_memory_dominates_memory_bound_workload(self, database_annotated):
        metrics = run_cyclesim(
            database_annotated, config("64C", penalty=1000)
        )
        stack = metrics.cpi_stack()
        assert stack["memory"] == max(stack.values())

    def test_perfect_l2_shrinks_memory_share(self, database_annotated):
        real = run_cyclesim(database_annotated, config("64C", penalty=1000))
        perf = run_cyclesim(
            database_annotated, config("64C", penalty=1000, perfect_l2=True)
        )
        assert perf.cpi_stack()["memory"] < real.cpi_stack()["memory"] / 5

    def test_drain_appears_with_serializing_work(self, specjbb_annotated):
        metrics = run_cyclesim(
            specjbb_annotated, config("64C", penalty=1000)
        )
        assert metrics.cpi_stack()["drain"] > 0

    def test_stack_identical_with_and_without_skipping(self):
        from repro.trace.annotate import annotate
        from repro.workloads import generate_trace

        ann = annotate(generate_trace("specweb99", 9000))
        skip = run_cyclesim(ann, config("32C", penalty=400))
        tick = run_cyclesim(
            ann, config("32C", penalty=400, event_skip=False)
        )
        assert dict(skip.stall_cycles) == dict(tick.stall_cycles)

    def test_format(self, specweb_annotated):
        metrics = run_cyclesim(specweb_annotated, config("64C", penalty=200))
        assert "CPI" in metrics.format_cpi_stack()
