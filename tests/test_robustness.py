"""Unit tests for the robustness subsystem and its CLI surfacing.

Covers the exception hierarchy's contract (ReproError subclasses that
stay ``ValueError``-compatible and carry path/field diagnostics), the
three validator layers, atomic file replacement, configuration
validation, and the argparse-style one-line errors the CLI emits for
malformed machine specs.
"""

import numpy as np
import pytest

from repro.robustness.atomic import (
    atomic_savez,
    atomic_write,
    atomic_write_text,
)
from repro.robustness.errors import (
    ConfigError,
    ExhibitTimeout,
    ReproError,
    SimulationError,
    TraceFormatError,
)
from repro.robustness.validate import (
    validate_annotated,
    validate_archive_columns,
    validate_trace,
)
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


def _trace():
    b = TraceBuilder("unit")
    b.add_load(0x100, dst=1, addr=0x8000, src1=2)
    b.add_alu(0x104, dst=2, src1=1)
    b.add_branch(0x108, taken=True, target=0x100, src1=2)
    return b.build()


class TestErrorHierarchy:
    def test_subclassing(self):
        for cls in (TraceFormatError, ConfigError, SimulationError):
            assert issubclass(cls, ReproError)
            assert issubclass(cls, ValueError)
        assert issubclass(ExhibitTimeout, SimulationError)

    def test_message_carries_path_and_field(self):
        error = TraceFormatError("boom", path="/x/t.npz", field="addr")
        assert error.path == "/x/t.npz"
        assert error.field == "addr"
        assert "/x/t.npz" in str(error)
        assert "'addr'" in str(error)
        assert "boom" in str(error)

    def test_message_without_context(self):
        assert str(ConfigError("plain message")) == "plain message"

    def test_top_level_exports(self):
        import repro

        assert repro.ReproError is ReproError
        assert repro.TraceFormatError is TraceFormatError
        assert repro.validate_trace is validate_trace
        assert repro.validate_annotated is validate_annotated


class TestValidateTrace:
    def test_valid_trace_returned(self):
        trace = _trace()
        assert validate_trace(trace) is trace

    def test_bad_opcode_rejected(self):
        trace = _trace()
        op = np.asarray(trace.op).copy()
        op[0] = 99
        cols = dict(trace.columns())
        cols["op"] = op
        from repro.trace.trace import Trace

        with pytest.raises(TraceFormatError, match="99") as excinfo:
            validate_trace(Trace(cols))
        assert excinfo.value.field == "op"

    @pytest.mark.parametrize("column,value", [
        ("dst", 64), ("src1", -2), ("src3", 4096),
    ])
    def test_out_of_range_register_rejected(self, column, value):
        trace = _trace()
        bad = np.asarray(getattr(trace, column)).copy()
        bad[0] = value
        cols = dict(trace.columns())
        cols[column] = bad
        from repro.trace.trace import Trace

        with pytest.raises(TraceFormatError) as excinfo:
            validate_trace(Trace(cols))
        assert excinfo.value.field == column


class TestValidateArchiveColumns:
    def _payload(self):
        trace = _trace()
        return {name: np.asarray(col) for name, col in
                trace.columns().items()}

    def test_missing_column(self):
        payload = self._payload()
        del payload["pc"]
        with pytest.raises(TraceFormatError, match="missing") as excinfo:
            validate_archive_columns(payload)
        assert excinfo.value.field == "pc"

    def test_unknown_column(self):
        payload = self._payload()
        payload["junk"] = np.zeros(3)
        with pytest.raises(TraceFormatError, match="unknown") as excinfo:
            validate_archive_columns(payload)
        assert excinfo.value.field == "junk"

    def test_annotation_masks_tolerated_for_plain_trace(self):
        payload = self._payload()
        payload["ann_dmiss"] = np.zeros(3, dtype=bool)
        validate_archive_columns(payload)  # annotated archive, plain load

    def test_wrong_dtype(self):
        payload = self._payload()
        payload["addr"] = payload["addr"].astype(np.float64)
        with pytest.raises(TraceFormatError, match="dtype") as excinfo:
            validate_archive_columns(payload)
        assert excinfo.value.field == "addr"

    def test_unequal_lengths(self):
        payload = self._payload()
        payload["pc"] = payload["pc"][:-1]
        with pytest.raises(TraceFormatError, match="unequal"):
            validate_archive_columns(payload)


class TestValidateAnnotated:
    def test_valid_annotation_returned(self):
        annotated = manual_annotation(_trace(), dmiss_at=[0])
        assert validate_annotated(annotated) is annotated

    def test_wrong_mask_dtype_rejected(self):
        annotated = manual_annotation(_trace(), dmiss_at=[0])
        annotated.dmiss = annotated.dmiss.astype(np.int8)
        with pytest.raises(TraceFormatError, match="dtype") as excinfo:
            validate_annotated(annotated)
        assert excinfo.value.field == "dmiss"

    def test_wrong_mask_length_rejected(self):
        annotated = manual_annotation(_trace(), dmiss_at=[0])
        annotated.imiss = annotated.imiss[:-1]
        with pytest.raises(TraceFormatError, match="length"):
            validate_annotated(annotated)

    def test_bad_vp_code_rejected(self):
        annotated = manual_annotation(_trace(), dmiss_at=[0])
        vp = annotated.vp_outcome.copy()
        vp[0] = 7
        annotated.vp_outcome = vp
        with pytest.raises(TraceFormatError, match="7") as excinfo:
            validate_annotated(annotated)
        assert excinfo.value.field == "vp_outcome"

    def test_bad_measure_start_rejected(self):
        annotated = manual_annotation(_trace(), dmiss_at=[0])
        annotated.measure_start = 99
        with pytest.raises(TraceFormatError, match="measure_start"):
            validate_annotated(annotated)

    def test_event_consistency_optional(self):
        # A hand-placed dmiss on an ALU instruction: fine structurally
        # (the simulators accept it), rejected by the loader contract.
        annotated = manual_annotation(_trace(), dmiss_at=[1])
        validate_annotated(annotated, check_events=False)
        with pytest.raises(TraceFormatError) as excinfo:
            validate_annotated(annotated, check_events=True)
        assert excinfo.value.field == "dmiss"


class TestAtomicWrite:
    def test_success_replaces_and_cleans_up(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failure_preserves_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "keep me")
        with pytest.raises(RuntimeError):
            with atomic_write(path, "w") as handle:
                handle.write("partial")
                raise RuntimeError("interrupted")  # reprolint: disable=error-hierarchy
        assert path.read_text() == "keep me"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failure_without_existing_file(self, tmp_path):
        path = tmp_path / "never.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(path, "w") as handle:
                handle.write("partial")
                raise RuntimeError("interrupted")  # reprolint: disable=error-hierarchy
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_atomic_savez_is_loadable_npz(self, tmp_path):
        path = tmp_path / "arrays.npz"
        atomic_savez(path, a=np.arange(4), b=np.ones(2))
        with np.load(path) as archive:
            assert list(archive["a"]) == [0, 1, 2, 3]


class TestConfigErrors:
    def test_unknown_machine_label(self):
        from repro.core.config import MachineConfig

        with pytest.raises(ConfigError, match="machine label"):
            MachineConfig.named("Z")

    def test_non_integer_size(self):
        from repro.core.config import MachineConfig

        with pytest.raises(ConfigError):
            MachineConfig.named("xxC")

    def test_unknown_override_lists_valid_options(self):
        from repro.core.config import MachineConfig

        with pytest.raises(ConfigError, match="valid options") as excinfo:
            MachineConfig.named("64C", robb=256)
        assert excinfo.value.field == "robb"

    def test_unknown_issue_letter(self):
        from repro.core.config import IssueConfig

        with pytest.raises(ConfigError, match="issue"):
            IssueConfig.from_letter("Q")

    def test_get_annotated_rejects_zero_trace_len(self):
        from repro.experiments.common import get_annotated

        with pytest.raises(ConfigError, match="positive") as excinfo:
            get_annotated("database", trace_len=0)
        assert excinfo.value.field == "trace_len"

    @pytest.mark.parametrize("bad", [-5, 1.5, "4000", True])
    def test_get_annotated_rejects_non_positive_int(self, bad):
        from repro.experiments.common import get_annotated

        with pytest.raises(ConfigError):
            get_annotated("database", trace_len=bad)


class TestCliMachineSpecErrors:
    """Malformed specs exit with code 2 and a one-line error message."""

    @pytest.mark.parametrize("spec", [
        "64C:rob=abc",          # non-numeric option value
        "64C/robXYZ",           # non-integer ROB suffix
        "64Q",                  # unknown issue letter
        "ZZZ",                  # unknown machine name
        "64C:bogus_option=1",   # unknown option name
        "64C:rob",              # option without a value
        "SOM",                  # in-order name in the OoO slot
    ])
    def test_bad_spec_exits_2(self, spec, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "database", "-n", "2000", "-m", spec])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.count("\n") == 1  # one line, argparse style

    def test_parse_machine_raises_config_error(self):
        from repro.cli import _parse_machine

        with pytest.raises(ConfigError, match="64C:rob=abc"):
            _parse_machine("64C:rob=abc")
        with pytest.raises(ValueError):  # compatibility alias
            _parse_machine("64C/robXYZ")

    def test_good_specs_still_parse(self):
        from repro.cli import _parse_machine

        assert _parse_machine("64C").rob == 64
        assert _parse_machine("64D/rob256").rob == 256
        assert _parse_machine("RAE").runahead
        assert _parse_machine("64C:store_buffer=8").store_buffer == 8


class TestSimulationErrors:
    def test_bad_region_is_simulation_error(self):
        from repro.core.config import MachineConfig
        from repro.core.mlpsim import simulate

        annotated = manual_annotation(_trace(), dmiss_at=[0])
        with pytest.raises(SimulationError, match="region"):
            simulate(annotated, MachineConfig(), start=2, stop=1)

    def test_simulate_validates_annotation_structure(self):
        from repro.core.config import MachineConfig
        from repro.core.mlpsim import simulate

        annotated = manual_annotation(_trace(), dmiss_at=[0])
        annotated.dmiss = annotated.dmiss[:-1]
        with pytest.raises(TraceFormatError, match="length"):
            simulate(annotated, MachineConfig())
