"""Unit tests for the branch prediction substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.frontend import BranchKind, BranchPredictor
from repro.branch.gshare import GshareGPredictor
from repro.branch.perfect import PerfectBranchPredictor
from repro.branch.ras import ReturnAddressStack


class TestGshare:
    def test_learns_constant_direction(self):
        # After enough all-taken updates the global history saturates to
        # all-ones, the index stabilises, and the prediction locks in.
        g = GshareGPredictor(entries=1024)
        pc = 0x400
        for _ in range(50):
            g.update(pc, True)
        assert g.predict(pc)

    def test_counter_saturation(self):
        # A single contrary outcome weakens but does not flip a
        # saturated 2-bit counter (checked at the pre-update index,
        # because the update itself shifts the global history).
        g = GshareGPredictor(entries=256)
        pc = 0x80
        for _ in range(50):
            g.update(pc, True)
        index = g._index(pc)
        assert g._counters[index] == 3
        g.update(pc, False)
        assert g._counters[index] == 2  # still predicts taken

    def test_history_shifts(self):
        g = GshareGPredictor(entries=256)
        g.update(0, True)
        g.update(0, False)
        g.update(0, True)
        assert g.history & 0b111 == 0b101

    def test_learns_alternating_pattern_via_history(self):
        g = GshareGPredictor(entries=4096)
        pc = 0x1234
        outcome = True
        correct = 0
        for i in range(400):
            predicted = g.predict_and_update(pc, outcome)
            if i >= 200 and predicted == outcome:
                correct += 1
            outcome = not outcome
        # With history the alternating pattern becomes fully predictable.
        assert correct >= 190

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            GshareGPredictor(entries=1000)


class TestBTB:
    def test_lookup_after_update(self):
        btb = BranchTargetBuffer(entries=64, associativity=4)
        btb.update(0x100, 0x900)
        assert btb.lookup(0x100) == 0x900
        assert btb.lookup(0x104) is None

    def test_target_overwrite(self):
        btb = BranchTargetBuffer(entries=64)
        btb.update(0x100, 0x900)
        btb.update(0x100, 0xA00)
        assert btb.lookup(0x100) == 0xA00

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=8, associativity=2)  # 4 sets
        stride = 4 * 4  # same-set pc stride (pc>>2 indexes)
        a, b, c = 0x100, 0x100 + stride, 0x100 + 2 * stride
        btb.update(a, 1)
        btb.update(b, 2)
        btb.lookup(a)  # refresh a
        btb.update(c, 3)  # evicts b
        assert btb.lookup(a) == 1
        assert btb.lookup(b) is None
        assert btb.lookup(c) == 3

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, associativity=4)


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x104)
        ras.push(0x204)
        assert ras.pop() == 0x204
        assert ras.pop() == 0x104
        assert ras.pop() is None

    def test_overflow_wraps(self):
        ras = ReturnAddressStack(depth=2)
        for addr in (1, 2, 3):
            ras.push(addr)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was overwritten

    def test_peek(self):
        ras = ReturnAddressStack(depth=2)
        assert ras.peek() is None
        ras.push(9)
        assert ras.peek() == 9
        assert len(ras) == 1

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)


class TestFrontend:
    def test_biased_branch_becomes_predictable(self):
        fe = BranchPredictor(gshare_entries=4096, btb_entries=64)
        pc, target = 0x100, 0x300
        for _ in range(50):
            fe.observe(pc, taken=True, target=target)
        # Once warm (history and BTB trained), predictions are perfect.
        late = [fe.observe(pc, taken=True, target=target) for _ in range(20)]
        assert not any(late)

    def test_target_change_is_misprediction(self):
        fe = BranchPredictor(gshare_entries=4096, btb_entries=64)
        pc = 0x100
        for _ in range(20):
            fe.observe(pc, taken=True, target=0x300)
        assert fe.observe(pc, taken=True, target=0x999)
        assert fe.stats.target_mispredictions >= 1

    def test_not_taken_needs_no_target(self):
        fe = BranchPredictor(gshare_entries=4096, btb_entries=64)
        pc = 0x200
        for _ in range(20):
            fe.observe(pc, taken=False, target=0)
        assert not fe.observe(pc, taken=False, target=0)

    def test_return_uses_ras(self):
        fe = BranchPredictor(gshare_entries=4096, btb_entries=64)
        call_pc, return_pc = 0x100, 0x500
        fe.observe(call_pc, taken=True, target=0x500 - 0x100, kind=BranchKind.CALL)
        # The return target is the call's fall-through.
        mispredicted = fe.observe(
            return_pc, taken=True, target=call_pc + 4, kind=BranchKind.RETURN
        )
        assert not mispredicted

    def test_stats_accumulate(self):
        fe = BranchPredictor(gshare_entries=256, btb_entries=64)
        for i in range(10):
            fe.observe(0x100 + 8 * i, taken=bool(i % 2), target=0x40)
        assert fe.stats.branches == 10
        assert 0.0 <= fe.stats.accuracy <= 1.0


class TestPerfect:
    def test_never_mispredicts(self):
        p = PerfectBranchPredictor()
        for i in range(20):
            assert not p.observe(0x100, taken=bool(i % 3), target=i)
        assert p.stats.branches == 20
        assert p.stats.accuracy == 1.0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.booleans(), min_size=50, max_size=300))
def test_gshare_beats_random_on_biased_streams(outcomes):
    """On a heavily biased stream gshare must beat 60% accuracy."""
    # Bias the stream strongly taken.
    stream = [True] * (3 * len(outcomes)) + outcomes
    g = GshareGPredictor(entries=1024)
    correct = 0
    for outcome in stream:
        correct += g.predict_and_update(0x40, outcome) == outcome
    taken_rate = sum(stream) / len(stream)
    assert correct / len(stream) >= min(0.6, taken_rate - 0.1)
