"""Structural tests for the ablation harnesses."""

import pytest

from repro.experiments.ablations import ABLATIONS, run_ablation
from repro.experiments.common import clear_caches

SMALL = 30000


@pytest.fixture(scope="module", autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def test_registry():
    assert set(ABLATIONS) == {
        "mshr",
        "store_buffer",
        "slow_bp",
        "runahead_distance",
        "hw_prefetch",
        "intro_contrast",
    }
    with pytest.raises(ValueError):
        run_ablation("nonsense")


def test_mshr_sweep_monotone():
    ex = run_ablation("mshr", trace_len=SMALL, sizes=(1, 4, None))
    for row in ex.table(0):
        series = row[2:]
        for a, b in zip(series, series[1:]):
            assert a <= b + 1e-9
        assert series[0] == pytest.approx(1.0, abs=0.08)


def test_store_buffer_sweep(trace_len=SMALL):
    ex = run_ablation("store_buffer", trace_len=SMALL, sizes=(1, None))
    for _, _headers, rows in ex.tables:
        finite, infinite = rows[0], rows[-1]
        assert finite[1] <= infinite[1] + 1e-9  # MLP never helped by a cap
        assert finite[2] <= 1.0 + 1e-9  # 1-entry SB: store MLP <= 1
        assert infinite[4] == 0  # infinite SB never blocks


def test_slow_bp_sweep_bounded_by_perfect():
    ex = run_ablation("slow_bp", trace_len=SMALL, accuracies=(0.0, 1.0))
    for row in ex.table(0):
        base, full, perfect = row[1], row[2], row[3]
        assert base <= full + 1e-9
        assert full <= perfect + 1e-9


def test_runahead_distance_monotone():
    ex = run_ablation(
        "runahead_distance", trace_len=SMALL, distances=(64, 256, 1024)
    )
    for row in ex.table(0):
        series = row[1:]
        for a, b in zip(series, series[1:]):
            assert a <= b + 1e-9


def test_hw_prefetch_structure():
    ex = run_ablation("hw_prefetch", trace_len=SMALL)
    rows = ex.table(0)
    assert len(rows) == 6  # 3 workloads x 2 prefetchers
    for row in rows:
        assert row[3] <= row[2] * 1.2  # prefetching rarely adds misses
        assert 0.0 <= row[5] <= 1.0  # accuracy is a fraction


def test_intro_contrast_shows_the_gap():
    ex = run_ablation("intro_contrast", trace_len=SMALL)
    rows = {row[0]: row for row in ex.table(0)}
    assert rows["streaming"][1] > 0.85  # stride coverage
    for name in ("Database", "SPECjbb2000"):
        assert rows[name][1] < 0.3
