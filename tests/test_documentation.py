"""Documentation enforcement: every public item carries a docstring.

The library's contract includes doc comments on every public module,
class, function and method.  This test walks the installed package and
fails on any public item without one, so documentation debt cannot
accumulate silently.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) == module.__name__:
                yield name, obj


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in _iter_modules():
        for name, obj in _public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"public items without docstrings: {missing}"


def test_every_public_method_has_a_docstring():
    missing = []
    for module in _iter_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_") or not inspect.isfunction(member):
                    continue
                if not inspect.getdoc(member):
                    missing.append(f"{module.__name__}.{cls_name}.{name}")
    assert not missing, f"public methods without docstrings: {missing}"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
