"""Tests for the kernel-certification layer of reprolint.

Covers the three certify passes (``kernel-bounds``,
``kernel-overflow``, ``plan-contract``) over their fixture pairs, and
the acceptance mutations run against copies of the *real* kernel and
plan-builder sources: one off-by-one subscript bound, one
accumulator-width narrowing, one contract-range change without a
manifest regeneration — each must yield exactly one finding carrying
the witness interval the abstract interpreter computed.
"""

import pathlib
import shutil

import pytest

from repro.lint import run_lint

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"
REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: pass id -> (fixture directory, expected finding count in violation/)
CERTIFY_FIXTURES = {
    "kernel-bounds": ("kernel_bounds", 1),
    "kernel-overflow": ("kernel_overflow", 1),
    "plan-contract": ("plan_contract", 1),
}

MLPSIM_KERNEL = "src/repro/core/_mlpsim_kernel.c"
CYCLESIM_KERNEL = "src/repro/cyclesim/_cyclesim_kernel.c"
COLUMNAR = "src/repro/core/columnar.py"
CYCLE_PLAN = "src/repro/cyclesim/plan.py"

#: Everything the three certify passes read, copied verbatim from the
#: real tree so mutation tests exercise the production contract.
_CERTIFY_SOURCES = (
    MLPSIM_KERNEL,
    CYCLESIM_KERNEL,
    COLUMNAR,
    CYCLE_PLAN,
    "src/repro/core/ckernel.py",
    "src/repro/cyclesim/ckernel.py",
)


class TestCertifyFixtures:
    @pytest.mark.parametrize("pass_id", sorted(CERTIFY_FIXTURES))
    def test_clean_fixture_has_no_findings(self, pass_id):
        root = FIXTURES / CERTIFY_FIXTURES[pass_id][0] / "clean"
        assert run_lint(root) == []

    @pytest.mark.parametrize("pass_id", sorted(CERTIFY_FIXTURES))
    def test_violation_fixture_is_flagged(self, pass_id):
        fixture, expected = CERTIFY_FIXTURES[pass_id]
        findings = run_lint(
            FIXTURES / fixture / "violation", select=[pass_id]
        )
        assert len(findings) == expected
        assert all(f.pass_id == pass_id for f in findings)

    def test_bounds_finding_carries_witness_interval(self):
        """The off-by-one fixture's finding states the interval the
        interpreter derived for the index and the buffer length it
        exceeds — the proof obligation, not just a location."""
        (finding,) = run_lint(
            FIXTURES / "kernel_bounds" / "violation",
            select=["kernel-bounds"],
        )
        assert "ops[i]" in finding.message
        assert "index in [0, n]" in finding.message
        assert "length n" in finding.message

    def test_overflow_finding_carries_witness_interval(self):
        (finding,) = run_lint(
            FIXTURES / "kernel_overflow" / "violation",
            select=["kernel-overflow"],
        )
        assert "hot" in finding.message
        assert "value in [1048576, 2148532224]" in finding.message
        assert "exceeds int32" in finding.message

    def test_contract_drift_names_the_entry(self):
        (finding,) = run_lint(
            FIXTURES / "plan_contract" / "violation",
            select=["plan-contract"],
        )
        assert finding.path == COLUMNAR
        assert "columns.dmiss" in finding.message
        assert "[0, 2]" in finding.message


def _real_tree(tmp_path):
    """A minimal tree of *real* sources the certify passes read."""
    for relpath in _CERTIFY_SOURCES:
        dst = tmp_path / relpath
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(REPO_ROOT / relpath, dst)
    return tmp_path


def _edit(tmp_path, relpath, old, new, count=1):
    path = tmp_path / relpath
    text = path.read_text()
    assert text.count(old) >= count, f"{old!r} not found in {relpath}"
    # Mutating a throwaway fixture copy — torn-write durability is
    # irrelevant, the tree dies with tmp_path.
    path.write_text(text.replace(old, new, count))  # reprolint: disable=atomic-writes


class TestRealTreeMutations:
    """Acceptance: each single-site mutation yields exactly one finding."""

    SELECT = ["kernel-bounds", "kernel-overflow", "plan-contract"]

    def test_unmutated_copy_is_clean(self, tmp_path):
        assert run_lint(_real_tree(tmp_path), select=self.SELECT) == []

    def test_off_by_one_subscript_bound(self, tmp_path):
        """Widening one loop bound in the cyclesim kernel un-proves
        exactly the subscript that loop guards."""
        root = _real_tree(tmp_path)
        _edit(root, CYCLESIM_KERNEL, "b < HASH_SIZE", "b <= HASH_SIZE")
        findings = run_lint(root, select=self.SELECT)
        assert len(findings) == 1
        assert findings[0].pass_id == "kernel-bounds"
        assert findings[0].path == CYCLESIM_KERNEL
        assert "hash_head[b]" in findings[0].message
        assert "index in [0, 32768]" in findings[0].message
        assert "length 32768" in findings[0].message

    def test_narrowed_accumulator_width(self, tmp_path):
        """Retyping one int64 result counter as int32 un-proves the
        width of exactly its increment."""
        root = _real_tree(tmp_path)
        _edit(root, MLPSIM_KERNEL, "int64_t epochs;", "int32_t epochs;")
        findings = run_lint(root, select=self.SELECT)
        assert len(findings) == 1
        assert findings[0].pass_id == "kernel-overflow"
        assert findings[0].path == MLPSIM_KERNEL
        assert "epochs" in findings[0].message
        assert "exceeds int32" in findings[0].message

    def test_contract_range_change_without_manifest_regen(self, tmp_path):
        """Editing one PLAN_CONTRACT range is caught before the manifest
        fingerprint even enters: the literal no longer equals the facts
        the kernel proof assumed."""
        root = _real_tree(tmp_path)
        _edit(root, COLUMNAR, '"ops": [0, 8],', '"ops": [0, 9],')
        findings = run_lint(root, select=self.SELECT)
        assert len(findings) == 1
        assert findings[0].pass_id == "plan-contract"
        assert findings[0].path == COLUMNAR
        assert "columns.ops" in findings[0].message
        assert "[0, 9]" in findings[0].message

    def test_validator_no_longer_dominates(self, tmp_path):
        """Moving the validator call behind a condition breaks the
        dominance proof even though the call still exists."""
        root = _real_tree(tmp_path)
        _edit(
            root, "src/repro/core/ckernel.py",
            "    validate_plan_contract(plan, configs)",
            "    if len(plan) > 1000:\n"
            "        validate_plan_contract(plan, configs)",
        )
        findings = run_lint(root, select=self.SELECT)
        assert len(findings) == 1
        assert findings[0].pass_id == "plan-contract"
        assert findings[0].path == "src/repro/core/ckernel.py"
        assert "not" in findings[0].message
        assert "dominated" in findings[0].message
