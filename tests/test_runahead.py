"""Semantics tests for the runahead engine (paper Section 3.5)."""

import pytest

from repro.core.config import MachineConfig
from repro.core.mlpsim import simulate
from repro.core.termination import Inhibitor
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


def rae(max_runahead=2048, **overrides):
    return MachineConfig.runahead_machine(max_runahead=max_runahead, **overrides)


def run(ann, machine=None, record=True):
    return simulate(ann, machine or rae(), record_sets=record)


class TestBasics:
    def test_independent_misses_overlap_across_huge_distances(self):
        b = TraceBuilder("wide")
        pc = 0x100
        dmiss = []
        for m in range(4):
            dmiss.append(len(b._cols["op"]))
            b.add_load(pc, dst=8, addr=0x8000 + 0x1000 * m, src1=1)
            pc += 4
            for _ in range(200):  # far beyond any realistic issue window
                b.add_alu(pc, dst=20, src1=1)
                pc += 4
        ann = manual_annotation(b.build(), dmiss_at=dmiss)
        result = run(ann)
        assert result.epochs == 1
        assert result.mlp == pytest.approx(4.0)

    def test_max_runahead_bounds_the_epoch(self):
        b = TraceBuilder("limited")
        b.add_load(0x100, dst=8, addr=0x8000, src1=1)
        pc = 0x104
        for _ in range(100):
            b.add_alu(pc, dst=20, src1=1)
            pc += 4
        b.add_load(pc, dst=9, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[0, 101])
        near = run(ann, rae(max_runahead=256))
        assert near.epochs == 1
        far = run(ann, rae(max_runahead=32))
        assert far.epochs == 2
        assert far.epoch_records[0].inhibitor == Inhibitor.RUNAHEAD_LIMIT

    def test_serializing_instructions_are_ignored(self):
        b = TraceBuilder("rae-cas")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_cas(0x104, dst=3, addr=0x1000, src1=1, data_src=4)
        b.add_membar(0x108)
        b.add_load(0x10C, dst=5, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[0, 3])
        result = run(ann)
        assert result.epochs == 1  # the CAS/MEMBAR do not split the epoch

    def test_each_miss_serviced_once(self):
        # After the flush, re-executed loads hit on runahead prefetches.
        b = TraceBuilder("once")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_load(0x104, dst=3, addr=0x9000, src1=1)
        b.add_load(0x108, dst=4, addr=0xA000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[0, 1, 2])
        result = run(ann)
        assert result.accesses == 3
        assert result.epochs == 1


class TestPoisoning:
    def test_dependent_chain_is_not_parallelised(self):
        b = TraceBuilder("rae-chain")
        pc = 0x100
        for level in range(3):
            b.add_load(pc, dst=2, addr=0x8000 + 0x1000 * level, src1=2)
            pc += 4
        ann = manual_annotation(b.build(), dmiss_at=[0, 1, 2])
        result = run(ann)
        assert result.epochs == 3  # addresses are poisoned level by level
        assert result.mlp == pytest.approx(1.0)

    def test_value_prediction_unpoisons_the_chain(self):
        b = TraceBuilder("rae-vp")
        pc = 0x100
        for level in range(3):
            b.add_load(pc, dst=2, addr=0x8000 + 0x1000 * level, src1=2)
            pc += 4
        ann = manual_annotation(
            b.build(), dmiss_at=[0, 1, 2], vp_correct_at=[0, 1, 2]
        )
        result = run(ann, rae(value_prediction=True))
        assert result.epochs == 1
        assert result.mlp == pytest.approx(3.0)

    def test_poisoned_store_poisons_forwarded_load(self):
        b = TraceBuilder("rae-store")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # trigger (poisoned)
        b.add_store(0x104, addr=0x9000, data_src=2, src1=1)  # dead store
        b.add_load(0x108, dst=3, addr=0x9000, src1=1)  # stale forwarded
        b.add_load(0x10C, dst=4, addr=0xA000, src1=3)  # addr poisoned
        ann = manual_annotation(b.build(), dmiss_at=[0, 3])
        result = run(ann)
        assert result.epochs == 2  # the last miss cannot be prefetched

    def test_poisoned_mispredicted_branch_stops_runahead(self):
        b = TraceBuilder("rae-branch")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # trigger
        b.add_branch(0x104, taken=True, target=0x200, src1=2)  # poisoned
        b.add_load(0x200, dst=3, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[0, 2], mispred_at=[1])
        result = run(ann)
        assert result.epochs == 2
        assert result.epoch_records[0].inhibitor == Inhibitor.MISPRED_BR

    def test_clean_mispredicted_branch_does_not_stop(self):
        b = TraceBuilder("rae-okbranch")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_branch(0x104, taken=True, target=0x200, src1=1)  # clean cond
        b.add_load(0x200, dst=3, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[0, 2], mispred_at=[1])
        result = run(ann)
        assert result.epochs == 1

    def test_unvalidated_prediction_still_blocks_recovery(self):
        # Correct VP makes the branch computable but not recoverable.
        b = TraceBuilder("rae-vp-branch")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_branch(0x104, taken=True, target=0x200, src1=2)
        b.add_load(0x200, dst=3, addr=0x9000, src1=1)
        ann = manual_annotation(
            b.build(), dmiss_at=[0, 2], mispred_at=[1], vp_correct_at=[0]
        )
        result = run(ann, rae(value_prediction=True))
        assert result.epochs == 2
        # ... but perfect branch prediction on top removes the cut.
        combined = run(
            ann, rae(value_prediction=True, perfect_branch=True)
        )
        assert combined.epochs == 1


class TestFetchSide:
    def test_imiss_stops_runahead(self):
        b = TraceBuilder("rae-imiss")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # trigger
        b.add_alu(0x104, dst=3, src1=1)  # fetch-misses
        b.add_load(0x108, dst=4, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[0, 2], imiss_at=[1])
        result = run(ann)
        # Epoch 1 overlaps the trigger with the I-fetch; the last load
        # needs its own epoch (fetch was blocked).
        assert [e.accesses for e in result.epoch_records] == [2, 1]
        assert result.epoch_records[0].inhibitor == Inhibitor.IMISS_END

    def test_imiss_trigger_is_isolated(self):
        b = TraceBuilder("rae-imiss-start")
        b.add_alu(0x100, dst=3, src1=1)  # fetch-misses
        b.add_load(0x104, dst=4, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[1], imiss_at=[0])
        result = run(ann)
        assert result.epochs == 2
        assert result.epoch_records[0].inhibitor == Inhibitor.IMISS_START

    def test_perfect_ifetch_removes_imiss_epochs(self):
        b = TraceBuilder("rae-perfi")
        b.add_alu(0x100, dst=3, src1=1)
        b.add_load(0x104, dst=4, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[1], imiss_at=[0])
        result = run(ann, rae(perfect_ifetch=True))
        assert result.epochs == 1
        assert result.imiss_accesses == 0


class TestPrefetches:
    def test_prefetch_joins_the_next_epoch(self):
        b = TraceBuilder("rae-pf")
        b.add_prefetch(0x100, addr=0x9000, src1=1)
        for k in range(8):
            b.add_alu(0x104 + 4 * k, dst=20, src1=1)
        b.add_load(0x124, dst=2, addr=0x8000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[9], pmiss_at=[0])
        result = run(ann)
        assert result.epochs == 1
        assert result.epoch_records[0].accesses == 2

    def test_distant_prefetch_forms_its_own_epoch(self):
        b = TraceBuilder("rae-pf-far")
        b.add_prefetch(0x100, addr=0x9000, src1=1)
        pc = 0x104
        for _k in range(80):
            b.add_alu(pc, dst=20, src1=1)
            pc += 4
        b.add_load(pc, dst=2, addr=0x8000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[81], pmiss_at=[0])
        result = run(ann, rae(max_runahead=32))
        assert result.epochs == 2

    def test_runahead_reaches_prefetches_ahead(self):
        b = TraceBuilder("rae-pf-ahead")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # trigger
        b.add_prefetch(0x104, addr=0x9000, src1=1)  # clean address
        ann = manual_annotation(b.build(), dmiss_at=[0], pmiss_at=[1])
        result = run(ann)
        assert result.epoch_records[0].accesses == 2

    def test_rae_matches_inf_window_on_workloads(self, specjbb_annotated):
        """Figure 8's observation: RAE ~= a 2048-entry config-E machine."""
        rae_result = simulate(specjbb_annotated, rae())
        inf_result = simulate(
            specjbb_annotated, MachineConfig.named("2048E")
        )
        assert rae_result.mlp == pytest.approx(inf_result.mlp, rel=0.15)
