"""Tests for reprolint: framework, every pass, suppression, CLI.

Each pass gets a pair of miniature project trees under
``tests/lint_fixtures/<pass>/`` — one ``clean`` (zero findings from
*any* pass) and one ``violation`` (known findings from the pass under
test).  The fixture trees mirror the real repository layout
(``src/repro/...``), which is exactly what
:class:`repro.lint.framework.Project` walks.
"""

import json
import pathlib
import shutil

import pytest

from repro.cli import main
from repro.lint import run_lint
from repro.lint.framework import registered_passes
from repro.lint.manifest import ORACLE_PATH
from repro.robustness.errors import ConfigError

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"
REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: pass id -> (fixture directory, expected finding count in violation/)
PASS_FIXTURES = {
    "error-hierarchy": ("error_hierarchy", 3),
    "atomic-writes": ("atomic_writes", 4),
    "determinism": ("determinism", 5),
    "frozen-oracle": ("frozen_oracle", 2),
    "config-attrs": ("config_attrs", 3),
    "exhibit-registry": ("exhibit_registry", 3),
    "sweep-race": ("sweep_race", 4),
    "seed-provenance": ("seed_provenance", 4),
    "resource-paths": ("resource_paths", 3),
    "unreachable-code": ("unreachable_code", 4),
}


#: Passes added by the parity/typestate layers; their fixture pairs are
#: driven by test_lint_parity.py and test_lint_typestate.py instead.
PARITY_PASSES = frozenset({
    "kernel-abi", "kernel-constants", "schema-version",
})
TYPESTATE_PASSES = frozenset({
    "shm-lifetime", "journal-protocol", "signal-safety",
})
#: Passes added by the kernel-certification layer; their fixture pairs
#: are driven by test_lint_certify.py.
CERTIFY_PASSES = frozenset({
    "kernel-bounds", "kernel-overflow", "plan-contract",
})


class TestRegistry:
    def test_all_nineteen_passes_registered(self):
        assert set(registered_passes()) == (
            set(PASS_FIXTURES) | PARITY_PASSES | TYPESTATE_PASSES
            | CERTIFY_PASSES
        )

    def test_unknown_select_rejected(self):
        with pytest.raises(ConfigError, match="unknown lint pass"):
            run_lint(REPO_ROOT, select=["no-such-pass"])

    def test_bad_root_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no Python modules"):
            run_lint(tmp_path)


class TestPassFixtures:
    @pytest.mark.parametrize("pass_id", sorted(PASS_FIXTURES))
    def test_clean_fixture_has_no_findings(self, pass_id):
        root = FIXTURES / PASS_FIXTURES[pass_id][0] / "clean"
        assert run_lint(root) == []

    @pytest.mark.parametrize("pass_id", sorted(PASS_FIXTURES))
    def test_violation_fixture_is_flagged(self, pass_id):
        fixture, expected = PASS_FIXTURES[pass_id]
        findings = run_lint(
            FIXTURES / fixture / "violation", select=[pass_id]
        )
        assert len(findings) == expected
        assert all(f.pass_id == pass_id for f in findings)
        assert all(f.line >= 1 and f.path.startswith("src/repro")
                   for f in findings)

    def test_select_isolates_passes(self):
        """--select runs only the named passes: the determinism fixture's
        violations are invisible to a run selecting another pass."""
        root = FIXTURES / "determinism" / "violation"
        assert run_lint(root, select=["error-hierarchy"]) == []
        assert len(run_lint(root, select=["determinism"])) == 5

    def test_violation_details_error_hierarchy(self):
        findings = run_lint(
            FIXTURES / "error_hierarchy" / "violation",
            select=["error-hierarchy"],
        )
        assert [f.line for f in findings] == [6, 11, 16]
        assert "ValueError" in findings[0].message
        assert "RuntimeError" in findings[1].message
        assert "KeyError" in findings[2].message

    def test_violation_details_exhibit_registry(self):
        findings = run_lint(
            FIXTURES / "exhibit_registry" / "violation",
            select=["exhibit-registry"],
        )
        messages = "\n".join(f.message for f in findings)
        assert "defines no" in messages            # figure1 lost run()
        assert "does not exist" in messages        # ghost entry
        assert "is not registered" in messages     # figure2 on disk


class TestSuppression:
    ROOT = FIXTURES / "suppression"

    def test_disable_comment_silences_one_line(self):
        findings = run_lint(self.ROOT, select=["error-hierarchy"])
        assert len(findings) == 1  # only the unsuppressed raise
        assert findings[0].line == 11

    def test_disable_all_keyword(self, tmp_path):
        source = (self.ROOT / "src/repro/widget.py").read_text()
        target = tmp_path / "src" / "repro" / "widget.py"
        target.parent.mkdir(parents=True)
        target.write_text(  # reprolint: disable=atomic-writes
            source.replace("disable=error-hierarchy", "disable=all")
        )
        findings = run_lint(tmp_path, select=["error-hierarchy"])
        assert [f.line for f in findings] == [11]


class TestFrozenOracle:
    def _tree_with_oracle(self, tmp_path, mutate=None):
        target = tmp_path / ORACLE_PATH
        target.parent.mkdir(parents=True)
        source = (REPO_ROOT / ORACLE_PATH).read_text()
        if mutate is not None:
            source = mutate(source)
        target.write_text(source)  # reprolint: disable=atomic-writes
        return tmp_path

    def test_verbatim_oracle_matches_manifest(self, tmp_path):
        """The pinned hash in repro.lint.manifest matches the real file."""
        root = self._tree_with_oracle(tmp_path)
        assert run_lint(root, select=["frozen-oracle"]) == []

    def test_any_modification_fails(self, tmp_path):
        root = self._tree_with_oracle(
            tmp_path, mutate=lambda s: s + "\n# drive-by tweak\n"
        )
        findings = run_lint(root, select=["frozen-oracle"])
        assert len(findings) == 1
        assert "pinned" in findings[0].message

    def test_deleting_the_oracle_fails(self, tmp_path):
        engine = tmp_path / "src/repro/core/mlpsim.py"
        engine.parent.mkdir(parents=True)
        engine.write_text("def simulate():\n    return 0.0\n")  # reprolint: disable=atomic-writes
        findings = run_lint(tmp_path, select=["frozen-oracle"])
        assert len(findings) == 1
        assert "missing" in findings[0].message


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        root = FIXTURES / "error_hierarchy" / "clean"
        assert main(["lint", "--root", str(root)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violations_exit_nonzero_with_findings(self, capsys):
        root = FIXTURES / "error_hierarchy" / "violation"
        code = main([
            "lint", "--root", str(root), "--select", "error-hierarchy",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "src/repro/widget.py:6: [error-hierarchy]" in out
        assert "3 finding(s)" in out

    def test_json_format_is_structured(self, capsys):
        root = FIXTURES / "atomic_writes" / "violation"
        code = main([
            "lint", "--root", str(root), "--format", "json",
            "--select", "atomic-writes",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 4
        assert {f["pass"] for f in payload} == {"atomic-writes"}
        assert all(
            set(f) == {"path", "line", "pass", "severity", "message"}
            for f in payload
        )

    def test_comma_separated_select(self, capsys):
        root = FIXTURES / "determinism" / "violation"
        code = main([
            "lint", "--root", str(root),
            "--select", "determinism,error-hierarchy",
        ])
        assert code == 1
        assert "5 finding(s)" in capsys.readouterr().out

    def test_unknown_pass_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--select", "bogus", "--root", str(REPO_ROOT)])
        assert excinfo.value.code == 2
        assert "unknown lint pass" in capsys.readouterr().err

    def test_list_passes(self, capsys):
        """--list shows every pass with its default severity AND its
        description, so the listing documents what failing means."""
        assert main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        for pass_id, cls in registered_passes().items():
            matching = [line for line in out.splitlines()
                        if line.startswith(pass_id)]
            assert len(matching) == 1, pass_id
            line = matching[0]
            assert cls.severity.value in line.split()
            assert cls.description in line


class TestFrameworkDetails:
    def test_every_file_parsed_exactly_once(self):
        """The shared AST/extract cache means no pass re-parses a file:
        every (file, parse-kind) ledger entry is exactly 1 even with
        all nineteen passes running — including both C parse kinds
        (the declaration extract and the full statement-level unit)."""
        stats = {}
        run_lint(FIXTURES / "plan_contract" / "clean", stats=stats)
        assert stats["parse_counts"], "parse ledger is empty"
        repeated = {
            key: count for key, count in stats["parse_counts"].items()
            if count != 1
        }
        assert repeated == {}
        kinds = {kind for _, kind in stats["parse_counts"]}
        assert kinds == {"py", "c-extract", "c-unit"}
        assert stats["files_parsed"] == len(
            {relpath for relpath, _ in stats["parse_counts"]}
        )

    def test_stats_reports_every_pass_wall_time(self):
        stats = {}
        run_lint(
            FIXTURES / "error_hierarchy" / "clean",
            select=["error-hierarchy", "determinism"], stats=stats,
        )
        entries = {entry["id"]: entry for entry in stats["passes"]}
        assert set(entries) == {"error-hierarchy", "determinism"}
        assert all(entry["seconds"] >= 0 for entry in entries.values())
        assert all(entry["findings"] == 0 for entry in entries.values())

    def test_parse_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")  # reprolint: disable=atomic-writes
        findings = run_lint(tmp_path)
        assert len(findings) == 1
        assert findings[0].pass_id == "parse"

    def test_findings_sorted_and_formatted(self):
        findings = run_lint(
            FIXTURES / "determinism" / "violation", select=["determinism"]
        )
        assert findings == sorted(findings)
        line = findings[0].format()
        assert line.startswith("src/repro/engine.py:")
        assert "[determinism] error:" in line

    def test_fixture_trees_stay_isolated(self, tmp_path):
        """A fixture copied elsewhere lints identically (findings carry
        root-relative paths, not absolute ones)."""
        src = FIXTURES / "error_hierarchy" / "violation"
        dst = tmp_path / "copy"
        shutil.copytree(src, dst)
        assert run_lint(dst, select=["error-hierarchy"]) == run_lint(
            src, select=["error-hierarchy"]
        )
