"""Semantics tests for the in-order machines (paper Section 3.3 / Table 5)."""

import pytest

from repro.core.inorder import (
    InOrderPolicy,
    simulate_inorder,
    simulate_stall_on_miss,
    simulate_stall_on_use,
)
from repro.core.termination import Inhibitor
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


def two_independent_misses():
    b = TraceBuilder("two")
    b.add_load(0x100, dst=2, addr=0x8000, src1=1)
    b.add_load(0x104, dst=3, addr=0x9000, src1=1)
    b.add_alu(0x108, dst=4, src1=2)  # first use of miss data
    return manual_annotation(b.build(), dmiss_at=[0, 1])


class TestStallOnMiss:
    def test_misses_never_overlap(self):
        result = simulate_stall_on_miss(two_independent_misses())
        assert result.epochs == 2
        assert result.mlp == pytest.approx(1.0)

    def test_prefetch_overlaps_the_following_miss(self):
        b = TraceBuilder("som-pf")
        b.add_prefetch(0x100, addr=0x9000, src1=1)
        b.add_load(0x104, dst=2, addr=0x8000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[1], pmiss_at=[0])
        result = simulate_stall_on_miss(ann)
        assert result.epochs == 1
        assert result.mlp == pytest.approx(2.0)

    def test_useless_prefetch_ignored(self):
        b = TraceBuilder("som-useless")
        b.add_prefetch(0x100, addr=0x9000, src1=1)
        b.add_load(0x104, dst=2, addr=0x8000, src1=1)
        ann = manual_annotation(
            b.build(), dmiss_at=[1], pmiss_at=[0], useless_prefetches=[0]
        )
        result = simulate_stall_on_miss(ann)
        assert result.accesses == 1

    def test_following_imiss_overlaps(self):
        # Fetch runs ahead while issue drains at the stall.
        b = TraceBuilder("som-imiss")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # stall here
        b.add_alu(0x104, dst=3, src1=1)  # fetch-misses just behind
        ann = manual_annotation(b.build(), dmiss_at=[0], imiss_at=[1])
        result = simulate_stall_on_miss(ann)
        assert result.epochs == 1
        assert result.accesses == 2

    def test_lookahead_stops_at_mispredicted_branch(self):
        b = TraceBuilder("som-wrongpath")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_branch(0x104, taken=True, target=0x200, src1=2)  # mispredicted
        b.add_alu(0x200, dst=3, src1=1)  # fetch-misses, but wrong path
        ann = manual_annotation(
            b.build(), dmiss_at=[0], imiss_at=[2], mispred_at=[1]
        )
        result = simulate_stall_on_miss(ann)
        assert result.epochs == 2  # the imiss is its own epoch

    def test_stale_prefetch_is_its_own_epoch(self):
        b = TraceBuilder("som-stale")
        b.add_prefetch(0x100, addr=0x9000, src1=1)
        pc = 0x104
        for _ in range(50):
            b.add_alu(pc, dst=20, src1=1)
            pc += 4
        b.add_load(pc, dst=2, addr=0x8000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[51], pmiss_at=[0])
        result = simulate_inorder(
            ann, InOrderPolicy.STALL_ON_MISS, overlap_window=20
        )
        assert result.epochs == 2


class TestStallOnUse:
    def test_independent_misses_overlap_until_first_use(self):
        result = simulate_stall_on_use(two_independent_misses())
        assert result.epochs == 1
        assert result.mlp == pytest.approx(2.0)

    def test_use_terminates_the_window(self):
        b = TraceBuilder("sou-use")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_alu(0x104, dst=4, src1=2)  # immediate use: stall
        b.add_load(0x108, dst=3, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[0, 2])
        result = simulate_stall_on_use(ann)
        assert result.epochs == 2
        assert result.epoch_records is None  # record_sets defaults off
        detailed = simulate_stall_on_use(ann, record_sets=True)
        assert detailed.epoch_records[0].inhibitor == Inhibitor.MISSING_LOAD

    def test_store_data_counts_as_use(self):
        b = TraceBuilder("sou-store")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_store(0x104, addr=0x9000, data_src=2, src1=1)  # uses r2
        b.add_load(0x108, dst=3, addr=0xA000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[0, 2])
        result = simulate_stall_on_use(ann)
        assert result.epochs == 2

    def test_overwrite_clears_outstanding(self):
        b = TraceBuilder("sou-overwrite")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss into r2
        b.add_alu(0x104, dst=2, src1=1)  # overwrites r2 (no use)
        b.add_alu(0x108, dst=4, src1=2)  # reads the *new* r2
        b.add_load(0x10C, dst=3, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[0, 3])
        result = simulate_stall_on_use(ann)
        assert result.epochs == 1  # never stalls: both misses overlap

    def test_atomic_drains(self):
        b = TraceBuilder("sou-cas")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_cas(0x104, dst=3, addr=0x1000, src1=1, data_src=4)
        b.add_load(0x108, dst=5, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[0, 2])
        result = simulate_stall_on_use(ann, record_sets=True)
        assert result.epochs == 2
        assert result.epoch_records[0].inhibitor == Inhibitor.SERIALIZE

    def test_membar_with_nothing_outstanding_is_free(self):
        b = TraceBuilder("sou-membar")
        b.add_membar(0x100)
        b.add_load(0x104, dst=2, addr=0x8000, src1=1)
        b.add_load(0x108, dst=3, addr=0x9000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[1, 2])
        result = simulate_stall_on_use(ann)
        assert result.epochs == 1


class TestOrderings:
    def test_sou_at_least_som_on_workloads(self, all_annotated):
        for ann in all_annotated.values():
            som = simulate_stall_on_miss(ann).mlp
            sou = simulate_stall_on_use(ann).mlp
            assert sou >= som - 1e-9

    def test_in_order_mlp_is_modest(self, all_annotated):
        """Table 5: in-order MLP sits close to 1 (1.00-1.13 paper)."""
        for ann in all_annotated.values():
            som = simulate_stall_on_miss(ann).mlp
            assert 1.0 <= som < 1.3

    def test_event_conservation(self, specweb_annotated):
        import numpy as np

        ann = specweb_annotated
        start, stop = ann.measured_region()
        expected = (
            int(np.count_nonzero(ann.dmiss[start:stop]))
            + int(np.count_nonzero(ann.imiss[start:stop]))
            + int(np.count_nonzero(ann.pfuseful[start:stop]))
        )
        for simulator in (simulate_stall_on_miss, simulate_stall_on_use):
            assert simulator(ann).accesses == expected
