"""Tests for the synthetic workload generators and their calibration."""

import numpy as np
import pytest

from repro.trace.annotate import annotate
from repro.trace.stats import compute_stats
from repro.workloads import PAPER_WORKLOADS, WORKLOADS, generate_trace, get_workload
from repro.workloads.calibration import PAPER_TARGETS, check_calibration
from repro.workloads.codegen import CodeFootprint, build_template


class TestRegistry:
    def test_registry_contents(self):
        from repro.workloads import PAPER_WORKLOADS

        assert set(PAPER_WORKLOADS) == {
            "database", "specjbb2000", "specweb99"
        }
        assert set(WORKLOADS) == set(PAPER_WORKLOADS) | {"streaming"}

    def test_get_workload(self):
        w = get_workload("database", seed=7)
        assert w.name == "database"
        assert w.seed == 7

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_workload("spice")


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_same_seed_same_trace(self, name):
        a = generate_trace(name, 5000, seed=42)
        b = generate_trace(name, 5000, seed=42)
        assert a == b

    def test_different_seed_differs(self):
        a = generate_trace("database", 5000, seed=1)
        b = generate_trace("database", 5000, seed=2)
        assert a != b

    def test_exact_length(self):
        for n in (1000, 12345):
            assert len(generate_trace("specjbb2000", n)) == n

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_same_seed_byte_identical_archive(self, name, tmp_path):
        """Two builds of the same workload serialise to identical bytes.

        Stronger than trace equality: it proves the whole RNG flow goes
        through the explicitly seeded ``random.Random(seed)`` generator
        (no module-level randomness, as the ``determinism`` lint pass
        enforces statically) and that nothing nondeterministic — dict
        churn, timestamps, set ordering — leaks into the archive.
        """
        from repro.trace.io import save_trace

        path_a = tmp_path / "a.npz"
        path_b = tmp_path / "b.npz"
        save_trace(generate_trace(name, 5000, seed=42), path_a)
        save_trace(generate_trace(name, 5000, seed=42), path_b)
        assert path_a.read_bytes() == path_b.read_bytes()


class TestStaticCodeDiscipline:
    """Every dynamic instruction must replay at a stable static address
    with a stable opcode — the property that makes the I-caches and
    predictors see a real program."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_pc_to_op_mapping_is_stable(self, name):
        trace = generate_trace(name, 20000)
        mapping = {}
        ops = trace.op.tolist()
        pcs = trace.pc.tolist()
        for pc, op in zip(pcs, ops):
            assert mapping.setdefault(pc, op) == op, hex(pc)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_static_footprint_is_bounded(self, name):
        trace = generate_trace(name, 20000)
        static = len(set(trace.pc.tolist()))
        assert static < len(trace) / 3  # heavy code reuse


class TestInstructionMix:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_mix_is_plausible(self, name):
        trace = generate_trace(name, 30000)
        stats = compute_stats(trace)
        assert 0.10 < stats.load_fraction < 0.45
        assert 0.03 < stats.store_fraction < 0.25
        assert 0.08 < stats.branch_fraction < 0.35

    def test_jbb_has_the_most_serialization(self):
        fractions = {}
        for name in WORKLOADS:
            stats = compute_stats(generate_trace(name, 30000))
            fractions[name] = stats.serializing_fraction
        assert fractions["specjbb2000"] > fractions["database"]
        assert fractions["specjbb2000"] > fractions["specweb99"]
        assert fractions["specjbb2000"] > 0.004  # paper: >0.6% CASA alone

    def test_web_has_prefetches(self):
        stats = compute_stats(generate_trace("specweb99", 30000))
        assert stats.prefetch_fraction > 0
        for name in ("database", "specjbb2000"):
            assert compute_stats(generate_trace(name, 30000)).prefetch_fraction == 0


class TestCalibration:
    """Loose bands around the paper's published characteristics; the
    precise values are recorded in EXPERIMENTS.md."""

    def band(self, measured, target, factor):
        assert target / factor <= measured <= target * factor, (
            measured,
            target,
        )

    @pytest.mark.parametrize("name", sorted(PAPER_WORKLOADS))
    def test_miss_rate_band(self, name, all_annotated):
        # Calibration targets the 400k benchmark length; the shorter
        # test traces carry first-touch transients, hence the wide band.
        ann = all_annotated[name]
        report = check_calibration(ann.trace, ann)
        self.band(report.measured_miss_rate, report.target_miss_rate, 3.0)

    def test_ordering_of_miss_rates(self, all_annotated):
        rates = {
            name: check_calibration(ann.trace, ann).measured_miss_rate
            for name, ann in all_annotated.items()
        }
        assert rates["database"] > rates["specjbb2000"]
        assert rates["database"] > rates["specweb99"]

    def test_imiss_presence(self, all_annotated):
        db = check_calibration(
            all_annotated["database"].trace, all_annotated["database"]
        )
        jbb = check_calibration(
            all_annotated["specjbb2000"].trace, all_annotated["specjbb2000"]
        )
        assert db.measured_imiss_per_100 > 0.02
        assert jbb.measured_imiss_per_100 < 0.01  # paper: no I-miss problem

    @pytest.mark.parametrize("name", sorted(PAPER_WORKLOADS))
    def test_vp_accuracy_band(self, name, all_annotated):
        ann = all_annotated[name]
        report = check_calibration(ann.trace, ann)
        assert (
            0.4 * report.target_vp_correct
            <= report.measured_vp_correct
            <= 2.0 * report.target_vp_correct
        )

    def test_db_has_best_value_locality(self, all_annotated):
        corrects = {
            name: check_calibration(ann.trace, ann).measured_vp_correct
            for name, ann in all_annotated.items()
        }
        assert corrects["database"] == max(corrects.values())

    def test_unknown_workload_rejected(self):
        trace = generate_trace("database", 2000)
        trace.name = "mystery"
        with pytest.raises(ValueError):
            check_calibration(trace)

    def test_report_formats(self, database_annotated):
        report = check_calibration(
            database_annotated.trace, database_annotated
        )
        text = report.format()
        assert "miss rate" in text and "VP correct" in text

    def test_targets_complete(self):
        for name in PAPER_WORKLOADS:
            target = PAPER_TARGETS[name]
            assert target.mlp_64c >= 1.0
            assert target.mlp_stall_on_use >= target.mlp_stall_on_miss


class TestCodegen:
    def test_template_mix(self):
        import random

        ops = build_template(random.Random(3), 200, load_fraction=0.3)
        kinds = [op[0] for op in ops]
        assert 0.15 < kinds.count("load") / len(kinds) < 0.45
        assert "branch" in kinds

    def test_branch_skips_stay_in_bounds(self):
        import random

        for seed in range(5):
            ops = build_template(random.Random(seed), 50)
            for pos, op in enumerate(ops):
                if op[0] == "branch":
                    assert pos + op[1] < len(ops)

    def test_footprint_layout(self):
        import random

        fp = CodeFootprint(random.Random(1), num_functions=10, body_length=20)
        bases = [f.base_pc for f in fp.functions]
        assert bases == sorted(bases)
        assert all(b % 64 == 0 for b in bases)
        assert fp.footprint_bytes > 0

    def test_template_pool_shares_bodies(self):
        import random

        fp = CodeFootprint(
            random.Random(1), num_functions=20, body_length=20, template_pool=4
        )
        distinct = {id(f.ops) for f in fp.functions}
        assert len(distinct) == 4


class TestStreamingContrast:
    """The scientific contrast case (paper Section 1): regular, dense,
    prefetchable misses — everything the commercial workloads are not."""

    def test_no_serialization_no_imisses(self):
        trace = generate_trace("streaming", 30000)
        stats = compute_stats(trace)
        assert stats.serializing_fraction == 0.0
        ann = annotate(trace)
        start, _ = ann.measured_region()
        assert int(np.count_nonzero(ann.imiss[start:])) <= 2

    def test_dense_regular_misses(self):
        ann = annotate(generate_trace("streaming", 30000))
        assert ann.l2_load_miss_rate_per_100() > 1.0

    def test_stride_prefetcher_covers_it(self):
        from repro.memory.prefetcher import StridePrefetcher, run_prefetch_study

        trace = generate_trace("streaming", 40000)
        study = run_prefetch_study(trace, StridePrefetcher(degree=4))
        assert study.coverage > 0.9  # vs <25% on the commercial workloads

    def test_high_mlp_without_tricks(self):
        from repro.core.config import MachineConfig
        from repro.core.inorder import simulate_stall_on_use
        from repro.core.mlpsim import simulate

        ann = annotate(generate_trace("streaming", 30000))
        assert simulate_stall_on_use(ann).mlp > 1.5
        assert simulate(ann, MachineConfig.named("64C")).mlp > 1.8
