"""Tests for the future-work extensions the paper names in Section 7
and Section 3.2.4: finite MSHRs, finite store buffers / store MLP, and
the slow unresolvable-branch predictor."""

import pytest

from repro.core.config import MachineConfig
from repro.core.mlpsim import MLPSim, simulate
from repro.core.termination import Inhibitor
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


def run(ann, label="64C", record=True, **overrides):
    return MLPSim(MachineConfig.named(label, **overrides),
                  record_sets=record).run(ann)


def independent_misses(count):
    b = TraceBuilder("burst")
    for k in range(count):
        b.add_load(0x100 + 4 * k, dst=8 + (k % 4), addr=0x8000 + 0x1000 * k,
                   src1=1)
    return manual_annotation(b.build(), dmiss_at=list(range(count)))


class TestMSHRLimit:
    def test_cap_bounds_epoch_mlp(self):
        ann = independent_misses(8)
        unlimited = run(ann)
        assert unlimited.mlp == pytest.approx(8.0)
        capped = run(ann, max_outstanding=2)
        assert capped.mlp == pytest.approx(2.0)
        assert capped.accesses == 8  # conservation still holds

    def test_cap_of_one_serialises(self):
        ann = independent_misses(4)
        result = run(ann, max_outstanding=1)
        assert result.epochs == 4
        assert result.epoch_records[0].inhibitor == Inhibitor.MSHR_LIMIT

    def test_cap_reported_as_maxwin_in_figure5(self):
        ann = independent_misses(4)
        result = run(ann, max_outstanding=1)
        breakdown = result.inhibitor_breakdown()
        assert breakdown[Inhibitor.MAXWIN] > 0.9
        assert result.inhibitors.as_dict()[Inhibitor.MSHR_LIMIT] == 3

    def test_imiss_respects_cap(self):
        b = TraceBuilder("imiss-cap")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)
        b.add_alu(0x104, dst=3, src1=1)  # fetch-misses
        ann = manual_annotation(b.build(), dmiss_at=[0], imiss_at=[1])
        capped = run(ann, max_outstanding=1)
        assert capped.epochs == 2  # the fetch miss waits for an MSHR
        assert capped.accesses == 2

    def test_runahead_respects_cap(self):
        ann = independent_misses(8)
        rae = simulate(
            ann,
            MachineConfig.runahead_machine(max_outstanding=2),
        )
        assert rae.mlp <= 2.0 + 1e-9
        assert rae.accesses == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(max_outstanding=0)

    def test_mlp_monotone_in_cap(self, database_annotated):
        mlps = [
            simulate(
                database_annotated,
                MachineConfig.named("64C", max_outstanding=cap),
            ).mlp
            for cap in (1, 2, 4, 8)
        ]
        for a, b in zip(mlps, mlps[1:]):
            assert a <= b + 1e-9
        assert mlps[0] == pytest.approx(1.0)


class TestStoreBuffer:
    def _store_trace(self, stores):
        b = TraceBuilder("stores")
        pc = 0x100
        smiss = []
        for k in range(stores):
            smiss.append(len(b._cols["op"]))
            b.add_store(pc, addr=0x8000 + 0x1000 * k, data_src=2, src1=1)
            pc += 4
        b.add_load(pc, dst=3, addr=0x9000 + 0x8000 * stores, src1=1)
        return manual_annotation(b.build(), dmiss_at=[stores], smiss_at=smiss)

    def test_store_mlp_measured(self):
        result = run(self._store_trace(4))
        assert result.store_accesses == 4
        assert result.store_epochs >= 1
        assert result.store_mlp >= 1.0

    def test_infinite_buffer_never_blocks(self):
        result = run(self._store_trace(6))
        assert result.store_mlp == pytest.approx(6.0)

    def test_finite_buffer_limits_store_mlp(self):
        result = run(self._store_trace(6), store_buffer=2)
        assert result.store_mlp <= 2.0 + 1e-9
        assert result.store_accesses == 6
        assert result.inhibitors.as_dict()[Inhibitor.STORE_BUFFER] > 0

    def test_store_misses_do_not_count_toward_mlp(self):
        result = run(self._store_trace(4))
        assert result.accesses == 1  # only the load

    def test_full_buffer_blocks_younger_loads_under_policy_a(self):
        b = TraceBuilder("sb-policy")
        b.add_store(0x100, addr=0x8000, data_src=2, src1=1)
        b.add_store(0x104, addr=0x9000, data_src=2, src1=1)
        b.add_load(0x108, dst=3, addr=0xA000, src1=1)
        ann = manual_annotation(b.build(), dmiss_at=[2], smiss_at=[0, 1])
        ordered = run(ann, "64A", store_buffer=1)
        free = run(ann, "64A")
        # With one SB entry the second store defers, and policy A then
        # blocks the missing load behind it for an epoch.
        assert ordered.epochs >= free.epochs

    def test_workload_store_traffic_reported(self, specjbb_annotated):
        result = simulate(specjbb_annotated, MachineConfig.named("64C"))
        assert result.store_accesses > 0
        assert result.store_mlp >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(store_buffer=-1)


class TestSlowBranchPredictor:
    def _branchy(self):
        b = TraceBuilder("slowbp")
        b.add_load(0x100, dst=2, addr=0x8000, src1=1)  # miss
        b.add_branch(0x104, taken=True, target=0x200, src1=2)  # unresolvable
        b.add_load(0x200, dst=3, addr=0x9000, src1=1)  # miss
        return manual_annotation(
            b.build(), dmiss_at=[0, 2], mispred_at=[1]
        )

    def test_perfect_slow_predictor_removes_termination(self):
        base = run(self._branchy())
        assert base.epochs == 2
        saved = run(
            self._branchy(),
            slow_branch_predictor=True,
            slow_bp_accuracy=1.0,
        )
        assert saved.epochs == 1

    def test_zero_accuracy_is_baseline(self):
        base = run(self._branchy())
        useless = run(
            self._branchy(),
            slow_branch_predictor=True,
            slow_bp_accuracy=0.0,
        )
        assert useless.epochs == base.epochs

    def test_deterministic(self, database_annotated):
        machine = MachineConfig.named(
            "64C", slow_branch_predictor=True, slow_bp_accuracy=0.7
        )
        a = simulate(database_annotated, machine)
        b = simulate(database_annotated, machine)
        assert a.mlp == b.mlp and a.epochs == b.epochs

    def test_mlp_monotone_in_accuracy(self, database_annotated):
        mlps = []
        for accuracy in (0.0, 0.5, 1.0):
            machine = MachineConfig.named(
                "64C",
                slow_branch_predictor=True,
                slow_bp_accuracy=accuracy,
            )
            mlps.append(simulate(database_annotated, machine).mlp)
        assert mlps[0] <= mlps[1] + 0.02  # hash noise tolerance
        assert mlps[1] <= mlps[2] + 0.02
        assert mlps[2] > mlps[0]

    def test_works_with_runahead(self, database_annotated):
        base = simulate(
            database_annotated, MachineConfig.runahead_machine()
        ).mlp
        saved = simulate(
            database_annotated,
            MachineConfig.runahead_machine(
                slow_branch_predictor=True, slow_bp_accuracy=1.0
            ),
        ).mlp
        perfbp = simulate(
            database_annotated,
            MachineConfig.runahead_machine(perfect_branch=True),
        ).mlp
        assert base < saved <= perfbp + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(slow_bp_accuracy=1.5)

    def test_label_mentions_extensions(self):
        m = MachineConfig.named(
            "64C",
            max_outstanding=8,
            store_buffer=16,
            slow_branch_predictor=True,
        )
        assert "mshr8" in m.label and "sb16" in m.label and "slowBP" in m.label
