"""Serial/parallel sweep equivalence and the process-pool backend.

The contract of ``sweep(..., jobs=N)`` is that parallelism is purely an
execution detail: results, label order, and progress callbacks must be
indistinguishable from the serial backend, and a failing worker must
surface as a :class:`SimulationError` naming the configuration label
that failed.
"""

import dataclasses

import pytest

import repro.analysis.parallel as parallel
from repro.analysis.parallel import resolve_jobs
from repro.analysis.sweep import sweep
from repro.core.config import MachineConfig
from repro.robustness.errors import ConfigError, SimulationError

GRID_SPECS = ("16A", "64A", "64C", "64E", "128C")


def _grid():
    return [(spec, MachineConfig.named(spec)) for spec in GRID_SPECS]


def _result_fields(result):
    """Every MLPResult field, with inhibitor counts expanded."""
    fields = dataclasses.asdict(result)
    fields["inhibitors"] = result.inhibitors.as_dict()
    return fields


class TestSerialParallelEquivalence:
    def test_identical_results_across_workloads(self, all_annotated):
        """jobs=4 must match jobs=1 label-for-label on all workloads."""
        for name, annotated in all_annotated.items():
            serial = sweep(annotated, _grid(), jobs=1)
            parallel_run = sweep(annotated, _grid(), jobs=4)
            assert parallel_run.labels() == serial.labels(), name
            for label in serial.labels():
                assert _result_fields(parallel_run.results[label]) == \
                    _result_fields(serial.results[label]), (name, label)

    def test_progress_preserves_grid_order(self, specjbb_annotated):
        seen = []
        result = sweep(specjbb_annotated, _grid(), jobs=4,
                       progress=seen.append)
        assert seen == list(GRID_SPECS)
        assert result.labels() == list(GRID_SPECS)

    def test_env_var_selects_parallel_backend(self, specjbb_annotated,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        via_env = sweep(specjbb_annotated, _grid())
        serial = sweep(specjbb_annotated, _grid(), jobs=1)
        for label in serial.labels():
            assert _result_fields(via_env.results[label]) == \
                _result_fields(serial.results[label])


class _ExplodingMachine:
    """A picklable stand-in that breaks inside the worker.

    It survives the submit-side pickle but has none of the attributes
    ``simulate`` needs, so the failure happens in the worker process —
    exactly the path the label-carrying error wrapper must cover.
    """

    runahead = False


class TestWorkerFailure:
    def test_error_names_failing_label(self, specjbb_annotated):
        grid = _grid()[:2] + [("broken-config", _ExplodingMachine())] \
            + _grid()[2:]
        with pytest.raises(SimulationError) as excinfo:
            sweep(specjbb_annotated, grid, jobs=4)
        assert "broken-config" in str(excinfo.value)
        assert excinfo.value.field == "broken-config"
        # Failure diagnostics carry the attempt count and elapsed time,
        # so a one-line message places the failure in a long campaign.
        assert "attempt 1" in str(excinfo.value)
        assert "after " in str(excinfo.value)

    def test_spawn_spill_path(self, specjbb_annotated, monkeypatch):
        """Forkless platforms spill the trace to a .npz the workers
        load; the results must still match serial (regression: the
        spill used to call save_annotated with swapped arguments)."""
        import multiprocessing

        real_get_context = multiprocessing.get_context

        def no_fork(method=None):
            if method == "fork":
                # Mimics multiprocessing's own missing-start-method error.
                raise ValueError("cannot find context for 'fork'")  # reprolint: disable=error-hierarchy
            return real_get_context(method)

        monkeypatch.setattr(
            parallel.multiprocessing, "get_context", no_fork
        )
        grid = _grid()[:2]
        serial = sweep(specjbb_annotated, grid, jobs=1)
        spawned = sweep(specjbb_annotated, grid, jobs=2)
        for label in serial.labels():
            assert _result_fields(spawned.results[label]) == \
                _result_fields(serial.results[label])

    def test_serial_fallback_when_no_pool(self, specjbb_annotated,
                                          monkeypatch):
        """If no pool can be created the sweep silently runs serially."""
        monkeypatch.setattr(parallel, "_make_pool",
                            lambda annotated, jobs: (None, None))
        serial = sweep(specjbb_annotated, _grid(), jobs=1)
        fallback = sweep(specjbb_annotated, _grid(), jobs=4)
        for label in serial.labels():
            assert _result_fields(fallback.results[label]) == \
                _result_fields(serial.results[label])


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        assert resolve_jobs(None) == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(2) == 2

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_empty_env_var_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert resolve_jobs() == 1

    def test_zero_means_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_junk_env_var_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigError):
            resolve_jobs()

    def test_negative_raises(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-2)

    def test_non_integer_raises(self):
        with pytest.raises(ConfigError):
            resolve_jobs(2.5)
        with pytest.raises(ConfigError):
            resolve_jobs(True)


class TestRelativeBaselineGuard:
    def test_zero_mlp_baseline_raises_with_label(self):
        """A degenerate baseline must raise, not map everything to 0."""
        from repro.analysis.sweep import SweepResult

        class _Zero:
            mlp = 0.0

        class _Fine:
            mlp = 2.0

        result = SweepResult(
            workload="synthetic",
            results={"dead-baseline": _Zero(), "ok": _Fine()},
        )
        with pytest.raises(SimulationError) as excinfo:
            result.relative("dead-baseline")
        assert "dead-baseline" in str(excinfo.value)

    def test_nonzero_baseline_still_works(self, specjbb_annotated):
        grid = {
            "base": MachineConfig.named("64C"),
            "big": MachineConfig.named("256C"),
        }
        rel = sweep(specjbb_annotated, grid).relative("base")
        assert rel["base"] == pytest.approx(1.0)
