"""Tests for the terminal chart renderers."""

import pytest

from repro.analysis.charts import bar_chart, line_chart


class TestLineChart:
    def test_basic_rendering(self):
        text = line_chart(
            [16, 64, 256],
            {"A": [1.0, 1.2, 1.4], "E": [1.1, 1.4, 1.8]},
            title="demo",
        )
        assert "demo" in text
        assert "o=A" in text and "+=E" in text
        assert "16" in text and "256" in text
        assert "1.80" in text and "1.00" in text

    def test_extremes_placed_at_edges(self):
        text = line_chart([0, 1], {"s": [0.0, 10.0]}, height=6, width=10)
        lines = text.splitlines()
        plot = [line for line in lines if "|" in line]
        # Max value on the top row, min on the bottom row.
        assert "o" in plot[0]
        assert "o" in plot[-1]

    def test_none_values_skipped(self):
        text = line_chart([1, 2, 3], {"s": [1.0, None, 2.0]})
        assert text.count("o") >= 2

    def test_flat_series_does_not_crash(self):
        text = line_chart([1, 2], {"s": [5.0, 5.0]})
        assert "o" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1], {"s": [None]})

    def test_fixed_width(self):
        text = line_chart([1, 2, 3], {"s": [1, 2, 3]}, width=30, height=5)
        plot_lines = [ln for ln in text.splitlines() if "|" in ln]
        assert len(plot_lines) == 5
        assert all(len(ln) == len(plot_lines[0]) for ln in plot_lines)


class TestBarChart:
    def test_basic_rendering(self):
        text = bar_chart(
            [("db", [("base", 1.0), ("rae", 2.0)])],
            title="bars",
        )
        assert "bars" in text and "db:" in text
        assert "1.00" in text and "2.00" in text

    def test_bars_scale_to_peak(self):
        text = bar_chart([("g", [("half", 1.0), ("full", 2.0)])], width=20)
        lines = [ln for ln in text.splitlines() if "|" in ln]
        full = lines[1].count("#")
        half = lines[0].count("#")
        assert full >= 19  # the peak fills the row (within rounding)
        assert abs(half - full / 2) <= 1.5

    def test_zero_value_has_no_bar(self):
        text = bar_chart([("g", [("zero", 0.0), ("one", 1.0)])])
        zero_line = next(ln for ln in text.splitlines() if "zero" in ln)
        assert "#" not in zero_line

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([("g", [])])

    def test_multiple_groups(self):
        text = bar_chart(
            [
                ("first", [("a", 1.0)]),
                ("second", [("b", 3.0)]),
            ]
        )
        assert "first:" in text and "second:" in text
