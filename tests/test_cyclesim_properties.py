"""Property-based tests for the cycle-accurate simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MachineConfig
from repro.cyclesim import CycleSimConfig, run_cyclesim
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


@st.composite
def random_trace_events(draw):
    """A random short trace plus its event placements, unassembled.

    Returned as ``(trace, dmiss_at, imiss_at, mispred_at)`` so
    properties can build *variant* annotations of the same trace
    (e.g. the perfect-branch-prediction twin with ``mispred_at=[]``).
    """
    n = draw(st.integers(4, 40))
    b = TraceBuilder("random")
    kinds = []
    pc = 0x1000
    for _i in range(n):
        kind = draw(
            st.sampled_from(
                ["alu", "load", "store", "branch", "prefetch", "membar", "cas"]
            )
        )
        kinds.append(kind)
        dst = draw(st.integers(1, 10))
        src = draw(st.integers(0, 10))
        addr = 64 * draw(st.integers(0, 12))
        if kind == "alu":
            b.add_alu(pc, dst=dst, src1=src)
        elif kind == "load":
            b.add_load(pc, dst=dst, addr=addr, src1=src)
        elif kind == "store":
            b.add_store(pc, addr=addr, data_src=dst, src1=src)
        elif kind == "branch":
            b.add_branch(pc, taken=draw(st.booleans()), target=pc + 4, src1=src)
        elif kind == "prefetch":
            b.add_prefetch(pc, addr=addr, src1=src)
        elif kind == "membar":
            b.add_membar(pc)
        else:
            b.add_cas(pc, dst=dst, addr=addr, src1=src, data_src=src)
        pc += 4
    dmiss_at = [
        i
        for i, k in enumerate(kinds)
        if k in ("load", "cas") and draw(st.booleans())
    ]
    mispred_at = [
        i for i, k in enumerate(kinds) if k == "branch" and draw(st.booleans())
    ]
    imiss_at = [i for i in range(n) if draw(st.integers(0, 9)) == 0]
    return b.build(), dmiss_at, imiss_at, mispred_at


@st.composite
def random_annotated_trace(draw):
    """A random short trace with consistently placed events."""
    trace, dmiss_at, imiss_at, mispred_at = draw(random_trace_events())
    return manual_annotation(
        trace, dmiss_at=dmiss_at, imiss_at=imiss_at, mispred_at=mispred_at
    )


CONFIGS = [
    CycleSimConfig.from_machine(MachineConfig.named("8A"), miss_penalty=200),
    CycleSimConfig.from_machine(MachineConfig.named("16C"), miss_penalty=350),
]


@settings(max_examples=80, deadline=None)
@given(random_annotated_trace())
def test_everything_commits_and_time_is_sane(ann):
    for config in CONFIGS:
        metrics = run_cyclesim(ann, config, start=0)
        n = len(ann.trace)
        assert metrics.instructions == n
        # At least as long as the commit-width bound, at most the fully
        # serialised worst case (every instruction takes a full miss,
        # plus pipeline depth).
        assert metrics.cycles >= n / config.commit_width
        assert metrics.cycles <= (n + 2) * (config.miss_penalty + 64)
        # The CPI stack covers every cycle exactly once.
        assert sum(metrics.stall_cycles.values()) == metrics.cycles


@settings(max_examples=60, deadline=None)
@given(random_annotated_trace())
def test_event_skip_equivalence_property(ann):
    """Skipping stalled stretches never changes any observable."""
    config = CONFIGS[1]
    skip = run_cyclesim(ann, config, start=0)
    import dataclasses

    tick = run_cyclesim(
        ann, dataclasses.replace(config, event_skip=False), start=0
    )
    assert skip.cycles == tick.cycles
    assert skip.offchip_accesses == tick.offchip_accesses
    assert skip.outstanding_integral == tick.outstanding_integral
    assert dict(skip.stall_cycles) == dict(tick.stall_cycles)


@settings(max_examples=50, deadline=None)
@given(random_annotated_trace())
def test_mlp_at_least_one_when_misses_exist(ann):
    metrics = run_cyclesim(ann, CONFIGS[0], start=0)
    if metrics.offchip_accesses:
        assert metrics.mlp >= 1.0 - 1e-9
    else:
        assert metrics.mlp == 0.0


#: ROB sizes of the monotonicity ladder (issue window pinned at 8, so
#: only the reorder depth varies step to step).
ROB_LADDER = (8, 16, 32, 64)


@settings(max_examples=60, deadline=None)
@given(random_annotated_trace())
def test_cpi_non_increasing_as_rob_grows(ann):
    """A deeper reorder buffer never costs cycles.

    With the MSHR file unbounded, extra ROB entries can only let more
    instructions past a stalled head — exposing more overlap, never
    creating a new structural hazard.  Instruction count is fixed, so
    comparing raw cycles compares CPI.
    """
    import dataclasses

    base = CycleSimConfig.from_machine(
        MachineConfig.named("8C"), miss_penalty=300
    )
    cycles = [
        run_cyclesim(ann, dataclasses.replace(base, rob=rob), start=0).cycles
        for rob in ROB_LADDER
    ]
    for smaller, larger in zip(cycles, cycles[1:]):
        assert larger <= smaller, cycles


@settings(max_examples=60, deadline=None)
@given(random_trace_events())
def test_perfect_branch_prediction_never_hurts(events):
    """Stripping every misprediction never increases cycles.

    A misprediction only inserts redirect bubbles and refetch delay in
    this trace-driven pipeline; removing them all (the perfect-BP twin
    of the same trace) must yield CPI no worse than the real run.
    """
    trace, dmiss_at, imiss_at, mispred_at = events
    real = manual_annotation(
        trace, dmiss_at=dmiss_at, imiss_at=imiss_at, mispred_at=mispred_at
    )
    perfect = manual_annotation(
        trace, dmiss_at=dmiss_at, imiss_at=imiss_at, mispred_at=[]
    )
    for config in CONFIGS:
        real_cycles = run_cyclesim(real, config, start=0).cycles
        perfect_cycles = run_cyclesim(perfect, config, start=0).cycles
        assert perfect_cycles <= real_cycles, config


@settings(max_examples=50, deadline=None, derandomize=True)
@given(random_annotated_trace())
def test_offchip_count_invariant_across_latencies(ann):
    """The off-chip access count does not depend on the latency knob.

    Which accesses leave the chip is decided at annotation time by the
    timing-free hierarchy model; the latency knob shifts *when* misses
    overlap, not which lines miss.  MSHR merge windows do widen with
    latency, but stall-dominated timing stretches proportionally, and
    empirically (1500 randomized trials plus every real workload on
    the Table 3 grid) the allocation count is *exactly* invariant — so
    this pins equality, not a weakened monotone bound.  Derandomized:
    the claim is empirical rather than structural, and a deterministic
    example set keeps it from ever flaking in CI.
    """
    counts = {
        run_cyclesim(
            ann,
            CycleSimConfig.from_machine(
                MachineConfig.named("16C"), miss_penalty=latency
            ),
            start=0,
        ).offchip_accesses
        for latency in (100, 300, 800)
    }
    assert len(counts) == 1, counts


@settings(max_examples=40, deadline=None)
@given(random_annotated_trace())
def test_longer_latency_never_speeds_things_up(ann):
    short = run_cyclesim(
        ann,
        CycleSimConfig.from_machine(MachineConfig.named("16C"),
                                    miss_penalty=100),
        start=0,
    )
    long_ = run_cyclesim(
        ann,
        CycleSimConfig.from_machine(MachineConfig.named("16C"),
                                    miss_penalty=800),
        start=0,
    )
    assert long_.cycles >= short.cycles
