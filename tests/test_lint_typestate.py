"""Tests for the typestate protocol layer of reprolint.

Covers the three protocol passes (``shm-lifetime``,
``journal-protocol``, ``signal-safety``) over their fixture pairs, the
engine semantics the passes rely on (escape analysis, interrupted
exception edges, finally-path precision, witness paths), and the
delete-a-release acceptance scenario.
"""

import ast
import pathlib
import shutil
import textwrap

import pytest

from repro.lint import run_lint
from repro.lint.flow.typestate import check_module_scopes
from repro.lint.passes.journal_protocol import JournalProtocolSpec
from repro.lint.passes.shm_lifetime import ShmLifetimeSpec

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"

#: pass id -> (fixture directory, expected finding count in violation/)
TYPESTATE_FIXTURES = {
    "shm-lifetime": ("shm_lifetime", 4),
    "journal-protocol": ("journal_protocol", 4),
    "signal-safety": ("signal_safety", 3),
}


def _shm_findings(source):
    tree = ast.parse(textwrap.dedent(source))
    return list(check_module_scopes(tree, ShmLifetimeSpec()))


def _journal_findings(source):
    tree = ast.parse(textwrap.dedent(source))
    return list(check_module_scopes(tree, JournalProtocolSpec()))


class TestTypestateFixtures:
    @pytest.mark.parametrize("pass_id", sorted(TYPESTATE_FIXTURES))
    def test_clean_fixture_has_no_findings(self, pass_id):
        root = FIXTURES / TYPESTATE_FIXTURES[pass_id][0] / "clean"
        assert run_lint(root) == []

    @pytest.mark.parametrize("pass_id", sorted(TYPESTATE_FIXTURES))
    def test_violation_fixture_is_flagged(self, pass_id):
        fixture, expected = TYPESTATE_FIXTURES[pass_id]
        findings = run_lint(
            FIXTURES / fixture / "violation", select=[pass_id]
        )
        assert len(findings) == expected
        assert all(f.pass_id == pass_id for f in findings)

    def test_shm_leak_names_the_cfg_path(self):
        findings = run_lint(
            FIXTURES / "shm_lifetime" / "violation",
            select=["shm-lifetime"],
        )
        leaks = [f for f in findings if "leaking path" in f.message]
        assert leaks
        # At least one leak names concrete line numbers of the path.
        assert any("lines " in f.message and "-> exit" in f.message
                   for f in leaks)

    def test_journal_violation_details(self):
        findings = run_lint(
            FIXTURES / "journal_protocol" / "violation",
            select=["journal-protocol"],
        )
        messages = "\n".join(f.message for f in findings)
        assert "fsync before flush" in messages
        assert "write after close" in messages
        assert "write-only" in messages        # read through append handle
        assert "not durable" in messages       # scope exit without fsync

    def test_signal_findings_name_the_registration(self):
        findings = run_lint(
            FIXTURES / "signal_safety" / "violation",
            select=["signal-safety"],
        )
        assert all("registered at line" in f.message for f in findings)


class TestDeleteARelease:
    """Acceptance: deleting an unpublish call yields exactly one finding."""

    def test_deleting_the_unpublish_is_one_finding(self, tmp_path):
        src = FIXTURES / "shm_lifetime" / "clean"
        shutil.copytree(src, tmp_path / "tree")
        module = tmp_path / "tree" / "src" / "repro" / "analysis" / "pool.py"
        text = module.read_text()
        assert text.count("        unpublish_plan(handle)") == 1
        # Mutating a throwaway fixture copy; durability is moot.
        module.write_text(text.replace(  # reprolint: disable=atomic-writes
            "        unpublish_plan(handle)", "        pass", 1
        ))
        findings = run_lint(tmp_path / "tree", select=["shm-lifetime"])
        assert len(findings) == 1
        finding = findings[0]
        assert "never reaches unpublish_plan()" in finding.message
        assert "leaking path" in finding.message


class TestShmSpecSemantics:
    def test_acquisition_that_raises_does_not_burden_the_handler(self):
        # The interrupted edge out of the publish carries the
        # pre-acquisition state: nothing was bound, nothing to release.
        assert _shm_findings('''
            def f(plan):
                try:
                    handle = publish_plan(plan)
                except ValueError:
                    return None
                unpublish_plan(handle)
        ''') == []

    def test_exception_path_that_skips_the_release_is_a_leak(self):
        findings = _shm_findings('''
            def f(plan, step):
                handle = publish_plan(plan)
                try:
                    step()
                except ValueError:
                    return None
                unpublish_plan(handle)
        ''')
        assert len(findings) == 1
        lineno, message = findings[0]
        assert lineno == 3  # reported at the acquisition
        assert "never reaches unpublish_plan" in message

    def test_release_inside_finally_holds_on_exception_paths(self):
        # The finally's continuation edge carries the *post*-release
        # state: the unpublish ran even while an exception propagated.
        assert _shm_findings('''
            def f(plan, step):
                handle = publish_plan(plan)
                try:
                    attached = attach_plan(handle)
                    try:
                        step(attached.plan)
                    finally:
                        attached.close()
                finally:
                    unpublish_plan(handle)
        ''') == []

    def test_container_store_escapes_ownership(self):
        # handles[key] = publish_plan(...) — the real sweep's pattern:
        # ownership moved into the container, released elsewhere.
        assert _shm_findings('''
            def f(plans, handles):
                for key, plan in plans.items():
                    handles[key] = publish_plan(plan)
        ''') == []

    def test_bare_name_argument_escapes_ownership(self):
        assert _shm_findings('''
            def f(plan, spawn):
                handle = publish_plan(plan)
                spawn(handle)
        ''') == []

    def test_pure_attribute_read_does_not_escape(self):
        findings = _shm_findings('''
            def f(plan):
                handle = publish_plan(plan)
                return handle.kind
        ''')
        assert len(findings) == 1  # the leak is still seen through it

    def test_attach_after_unpublish_is_a_violation(self):
        findings = _shm_findings('''
            def f(plan):
                handle = publish_plan(plan)
                unpublish_plan(handle)
                attach_plan(handle)
        ''')
        assert len(findings) == 1
        lineno, message = findings[0]
        assert lineno == 5
        assert "attach" in message and "released" in message

    def test_release_wrapper_counts_via_summaries(self):
        assert _shm_findings('''
            def _cleanup(handle):
                unpublish_plan(handle)

            def f(plan):
                handle = publish_plan(plan)
                try:
                    return handle.kind
                finally:
                    _cleanup(handle)
        ''') == []


class TestJournalSpecSemantics:
    def test_exception_between_write_and_fsync_is_the_crash_model(self):
        # include_exceptional=False: the torn-tail path is what replay
        # discards, not a finding.
        assert _journal_findings('''
            import os

            def f(path, render):
                with open(path, "a") as handle:
                    handle.write(render())
                    handle.flush()
                    os.fsync(handle.fileno())
        ''') == []

    def test_fsync_through_fileno_is_recognised(self):
        findings = _journal_findings('''
            import os

            def f(path, line):
                with open(path, "a") as handle:
                    handle.write(line)
                    handle.flush()
        ''')
        assert len(findings) == 1
        _lineno, message = findings[0]
        assert "os.fsync()" in message

    def test_write_mode_opens_are_out_of_scope(self):
        # "w"-mode handles are not append journals; atomic-writes owns
        # that territory.
        assert _journal_findings('''
            def f(path, line):
                with open(path, "w") as handle:
                    handle.write(line)
        ''') == []

    def test_double_fsync_is_legal(self):
        assert _journal_findings('''
            import os

            def f(path, line):
                handle = open(path, "a")
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
                os.fsync(handle.fileno())
                handle.close()
        ''') == []
