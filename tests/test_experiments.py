"""Structural tests for the per-exhibit harnesses.

These run every exhibit on a deliberately small trace and check the
*structure* of the output (rows, headers, internal consistency).  The
paper-shape assertions on calibrated traces live in
``test_integration.py``; the full-size runs live in ``benchmarks/``.
"""

import pytest

from repro.experiments import EXHIBITS, run_exhibit
from repro.experiments.common import (
    Exhibit,
    WORKLOAD_NAMES,
    clear_caches,
    default_trace_len,
    get_annotated,
)

SMALL = 30000


@pytest.fixture(scope="module", autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestCommon:
    def test_default_trace_len_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "55000")
        assert default_trace_len() == 55000

    def test_annotation_memoised(self):
        a = get_annotated("specjbb2000", SMALL)
        b = get_annotated("specjbb2000", SMALL)
        assert a is b

    def test_l2_size_splits_cache_key(self):
        a = get_annotated("specjbb2000", SMALL)
        b = get_annotated("specjbb2000", SMALL, l2_bytes=512 * 1024)
        assert a is not b

    def test_exhibit_formatting(self):
        ex = Exhibit(
            name="X",
            title="t",
            tables=[("sub", ["a"], [[1.0]])],
            notes=["note"],
        )
        text = ex.format()
        assert "== X: t ==" in text
        assert "note" in text
        assert ex.table(0) == [[1.0]]

    def test_unknown_exhibit(self):
        with pytest.raises(ValueError):
            run_exhibit("figure99")


class TestExhibitStructure:
    def test_registry_covers_all_paper_exhibits(self):
        assert set(EXHIBITS) == {
            "table1",
            "figure2",
            "table3",
            "table4",
            "table5",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9_table6",
            "figure10",
            "figure11",
        }

    def test_table1(self):
        ex = run_exhibit("table1", trace_len=SMALL, latencies=(200,))
        rows = ex.table(0)
        assert len(rows) == 3  # one latency x three workloads
        for row in rows:
            cpi, on_chip, off_chip = row[2], row[3], row[4]
            assert cpi == pytest.approx(on_chip + off_chip)
            assert row[6] >= 1.0  # MLP
            assert 0.0 <= row[7] <= 1.0  # Overlap_CM

    def test_figure2(self):
        ex = run_exhibit("figure2", trace_len=SMALL)
        rows = ex.table(0)
        for row in rows:
            assert 0.0 <= row[2] <= 1.0 and 0.0 <= row[3] <= 1.0
        # Cumulative curves are monotone per workload.
        for name in ("Database",):
            series = [r[2] for r in rows if r[0] == name]
            assert series == sorted(series)

    def test_table3(self):
        ex = run_exhibit(
            "table3", trace_len=SMALL, sizes=(32,), configs="AC",
            latencies=(200, 1000),
        )
        rows = ex.table(0)
        assert len(rows) == 6
        for row in rows:
            cyc200, cyc1000, mlpsim = row[3], row[4], row[5]
            assert abs(cyc1000 - mlpsim) <= abs(cyc200 - mlpsim) + 0.02

    def test_table4(self):
        ex = run_exhibit("table4", trace_len=SMALL, configs="AC")
        rows = ex.table(0)
        for row in rows:
            measured = row[-1]
            for estimate in row[2:-1]:
                assert estimate == pytest.approx(measured, rel=0.08)

    def test_table5(self):
        ex = run_exhibit("table5", trace_len=SMALL)
        for row in ex.table(0):
            som, sou, ooo = row[1], row[2], row[3]
            assert 1.0 <= som <= sou

    def test_figure4(self):
        ex = run_exhibit("figure4", trace_len=SMALL, sizes=(16, 64),
                         configs="ACE")
        assert len(ex.tables) == 3  # one block per workload
        for _, headers, rows in ex.tables:
            assert headers[0] == "ROB/IW"
            for row in rows:
                # Config aggressiveness is monotone left to right.
                assert row[1] <= row[2] + 1e-9 <= row[3] + 2e-9
            # Window size is monotone within a config.
            assert rows[0][1] <= rows[1][1] + 1e-9

    def test_figure5(self):
        ex = run_exhibit("figure5", trace_len=SMALL, sizes=(64,), configs="ACE")
        for _, _headers, rows in ex.tables:
            for row in rows:
                fractions = row[1:]
                assert all(0.0 <= f <= 1.0 for f in fractions)
                assert sum(fractions) == pytest.approx(1.0, abs=1e-6)

    def test_figure6(self):
        ex = run_exhibit("figure6", trace_len=SMALL, iw_sizes=(16,),
                         configs="CE")
        for _, _headers, rows in ex.tables:
            for row in rows[:-1]:  # skip the INF row
                series = [v for v in row[1:] if v is not None]
                for a, b in zip(series, series[1:]):
                    assert a <= b + 1e-9  # more ROB never hurts

    def test_figure7(self):
        sizes = (512 * 1024, 2 * 1024 * 1024)
        ex = run_exhibit("figure7", trace_len=SMALL, l2_sizes=sizes)
        rows = ex.table(0)
        assert len(rows) == 6  # MLP + miss-rate row per workload
        for row in rows:
            if row[1] == "miss/100":
                assert row[2] >= row[3] - 1e-9  # misses fall with L2 size

    def test_figure8(self):
        ex = run_exhibit("figure8", trace_len=SMALL, max_runahead=512)
        for row in ex.table(0):
            rob64, rob256, rae = row[1], row[2], row[3]
            assert rob64 <= rob256 + 1e-9
            assert rae >= rob64 - 1e-9

    def test_figure9_table6(self):
        ex = run_exhibit("figure9_table6", trace_len=SMALL, max_runahead=512)
        table6 = ex.table(0)
        for row in table6:
            assert sum(row[1:]) == pytest.approx(1.0, abs=1e-6)
        figure9 = ex.table(1)
        for row in figure9:
            assert all(gain >= -1e-9 for gain in row[1:])

    def test_figure10(self):
        ex = run_exhibit("figure10", trace_len=SMALL)
        for _, _headers, rows in ex.tables:
            for row in rows:
                base = row[1]
                for value in row[2:-1]:
                    assert value >= base - 1e-9  # perfection never hurts

    def test_figure11(self):
        ex = run_exhibit("figure11", trace_len=SMALL)
        rows = ex.table(0)
        assert len(rows) == len(WORKLOAD_NAMES)
        headers = ex.tables[0][1]
        rae_index = headers.index("RAE") - 1
        for row in rows:
            assert row[1 + rae_index - 0] == row[headers.index("RAE")]
            assert row[headers.index("RAE")] > -0.5
