"""Tests for the analysis helpers: clustering, sweeps, tables."""

import numpy as np
import pytest

from repro.analysis.clustering import (
    clustering_curves,
    cumulative_intermiss_distribution,
    uniform_intermiss_distribution,
)
from repro.analysis.sweep import sweep
from repro.analysis.tables import format_table
from repro.core.config import MachineConfig
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


class TestClusteringMath:
    def test_empirical_cdf(self):
        misses = np.array([0, 2, 4, 104])
        dist = cumulative_intermiss_distribution(misses, [1, 2, 10, 100])
        # Gaps are [2, 2, 100].
        assert dist == pytest.approx([0, 2 / 3, 2 / 3, 1.0])

    def test_uniform_model_is_geometric(self):
        dist = uniform_intermiss_distribution(10.0, [1, 10, 100])
        assert dist[0] == pytest.approx(0.1)
        assert dist[1] == pytest.approx(1 - 0.9**10)
        assert dist[2] > 0.999

    def test_no_misses(self):
        assert cumulative_intermiss_distribution([], [1, 2]).tolist() == [0, 0]

    def test_clustered_trace_diverges_from_uniform(self):
        # Misses in tight bursts separated by long gaps.
        b = TraceBuilder("bursty")
        pc = 0x100
        dmiss = []
        index = 0
        for _burst in range(6):
            for _k in range(5):
                dmiss.append(index)
                b.add_load(pc, dst=2, addr=0x8000 + 64 * index, src1=1)
                pc += 4
                index += 1
            for _ in range(200):
                b.add_alu(pc, dst=3, src1=1)
                pc += 4
                index += 1
        ann = manual_annotation(b.build(), dmiss_at=dmiss)
        curves = clustering_curves(ann)
        assert curves.divergence() > 0.3
        # At distance 2 the observed probability is already ~0.8
        # (4 of every 5 gaps are 1), far above the uniform model.
        idx = int(np.searchsorted(curves.distances, 2))
        assert curves.observed[idx] > curves.uniform[idx] + 0.3
        assert "mean inter-miss" in curves.format()

    def test_uniform_trace_matches_uniform_model(self):
        # Deterministically spaced misses: the observed CDF is a step
        # at the fixed gap; check broad agreement at the tails only.
        b = TraceBuilder("even")
        pc = 0x100
        dmiss = []
        for k in range(40):
            dmiss.append(len(b._cols["op"]))
            b.add_load(pc, dst=2, addr=0x8000 + 64 * k, src1=1)
            pc += 4
            for _ in range(20):
                b.add_alu(pc, dst=3, src1=1)
                pc += 4
        ann = manual_annotation(b.build(), dmiss_at=dmiss)
        curves = clustering_curves(ann)
        idx = int(np.searchsorted(curves.distances, 1000))
        assert curves.observed[idx] == pytest.approx(1.0)
        assert curves.uniform[idx] == pytest.approx(1.0, abs=1e-6)

    def test_workload_clustering_beats_uniform(self, specweb_annotated):
        """The Figure 2 claim on the synthetic workloads."""
        curves = clustering_curves(specweb_annotated)
        assert curves.divergence() > 0.1


class TestSweep:
    def test_sweep_runs_grid(self, specjbb_annotated):
        grid = [
            ("64A", MachineConfig.named("64A")),
            ("64E", MachineConfig.named("64E")),
        ]
        result = sweep(specjbb_annotated, grid)
        assert result.labels() == ["64A", "64E"]
        assert result.mlp("64E") >= result.mlp("64A")
        series = result.series()
        assert series[0][0] == "64A"

    def test_relative(self, specjbb_annotated):
        grid = {
            "base": MachineConfig.named("64C"),
            "big": MachineConfig.named("256C"),
        }
        result = sweep(specjbb_annotated, grid)
        rel = result.relative("base")
        assert rel["base"] == pytest.approx(1.0)
        assert rel["big"] >= 1.0

    def test_progress_callback(self, specjbb_annotated):
        seen = []
        sweep(
            specjbb_annotated,
            [("one", MachineConfig.named("16A"))],
            progress=seen.append,
        )
        assert seen == ["one"]


class TestTables:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 22.25]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert "1.500" in text and "22.250" in text

    def test_none_renders_empty(self):
        text = format_table(["a", "b"], [["x", None]])
        assert text.splitlines()[-1].strip().startswith("x")

    def test_custom_float_format(self):
        text = format_table(["v"], [[0.123456]], float_format=".1%")
        assert "12.3%" in text
