"""Unit tests for the value predictors (Table 6 machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vpred.last_value import LastValuePredictor, ValuePredictorStats
from repro.vpred.perfect import PerfectValuePredictor


class TestLastValue:
    def test_confidence_ramp(self):
        p = LastValuePredictor(entries=256)
        pc = 0x100
        assert p.observe(pc, 7) == "no_predict"  # allocate (conf 1)
        assert p.observe(pc, 7) == "no_predict"  # conf 1 -> 2
        assert p.observe(pc, 7) == "correct"  # confident now
        assert p.observe(pc, 7) == "correct"

    def test_value_change_resets_confidence(self):
        p = LastValuePredictor(entries=256)
        pc = 0x100
        for _ in range(4):
            p.observe(pc, 7)
        assert p.observe(pc, 9) == "wrong"
        # After the change, confidence is rebuilt before predicting.
        assert p.observe(pc, 9) == "no_predict"
        assert p.observe(pc, 9) == "no_predict"
        assert p.observe(pc, 9) == "correct"

    def test_tag_conflict_evicts(self):
        p = LastValuePredictor(entries=64)
        a = 0x100
        b = a + 64 * 4  # same index, different tag
        for _ in range(3):
            p.observe(a, 7)
        p.observe(b, 5)  # evicts a's entry
        assert p.observe(a, 7) == "no_predict"

    def test_distinct_sites_are_independent(self):
        p = LastValuePredictor(entries=1024)
        for _ in range(3):
            p.observe(0x100, 1)
            p.observe(0x104, 2)
        assert p.observe(0x100, 1) == "correct"
        assert p.observe(0x104, 2) == "correct"

    def test_stats_shape(self):
        p = LastValuePredictor(entries=256)
        for _ in range(5):
            p.observe(0x40, 3)
        correct, wrong, nopred = p.stats.rates()
        assert abs(correct + wrong + nopred - 1.0) < 1e-12
        assert p.stats.lookups == 5
        assert "correct" in p.stats.format()

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            LastValuePredictor(entries=1000)

    def test_empty_stats(self):
        stats = ValuePredictorStats()
        assert stats.rates() == (0.0, 0.0, 1.0)


class TestPerfect:
    def test_always_correct(self):
        p = PerfectValuePredictor()
        for value in (1, 2, 3):
            assert p.observe(0x100, value) == "correct"
        assert p.stats.correct == 3

    def test_predict_unsupported(self):
        with pytest.raises(NotImplementedError):
            PerfectValuePredictor().predict(0x100)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=10, max_size=200))
def test_never_predicts_unseen_value(values):
    """A last-value predictor can only ever predict a previously seen
    value, so 'correct' requires the value to equal its predecessor."""
    p = LastValuePredictor(entries=64)
    pc = 0x200
    previous = None
    for v in values:
        outcome = p.observe(pc, v)
        if outcome == "correct":
            assert v == previous
        previous = v


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 50))
def test_constant_stream_accuracy(n):
    """A constant value stream is predicted after the confidence ramp."""
    p = LastValuePredictor(entries=64)
    outcomes = [p.observe(0x80, 42) for _ in range(n)]
    assert outcomes[:2] == ["no_predict"] * min(2, n)
    assert all(o == "correct" for o in outcomes[2:])
