"""The paper's worked Examples 1-5, asserted verbatim (Section 3).

These are the ground truth the epoch-model implementation was fixed
against: the paper lists the exact epoch sets (and for Examples 1-3 the
MLP) of five small instruction sequences under specific machine
configurations.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.epoch import epoch_sets
from repro.core.mlpsim import MLPSim
from repro.core.termination import Inhibitor
from repro.workloads.microbench import (
    example_1,
    example_2,
    example_3,
    example_4,
    example_5,
)


def run(annotated, label, **overrides):
    machine = MachineConfig.named(label, **overrides)
    return MLPSim(machine, record_sets=True).run(annotated)


class TestExample1:
    """Issue window / ROB size of four terminates the window at i4."""

    def test_epoch_sets_and_mlp(self):
        result = run(example_1(), "4C")
        assert epoch_sets(result.epoch_records) == [[0, 3], [1, 2, 4]]
        assert result.mlp == pytest.approx(1.5)
        assert result.epochs == 2
        assert result.accesses == 3

    def test_first_epoch_limited_by_window(self):
        result = run(example_1(), "4C")
        assert result.epoch_records[0].inhibitor == Inhibitor.MAXWIN

    def test_larger_window_overlaps_the_independent_miss(self):
        # With an 8-entry window i5 joins the first epoch.
        result = run(example_1(), "8C")
        assert epoch_sets(result.epoch_records) == [[0, 3, 4], [1, 2]]
        assert result.mlp == pytest.approx(2 / 1.5, rel=0.2)


class TestExample2:
    """A MEMBAR drains the pipeline and terminates the window."""

    def test_epoch_sets_and_mlp(self):
        result = run(example_2(), "64C")
        assert epoch_sets(result.epoch_records) == [[0, 1], [2, 3, 4]]
        assert result.mlp == pytest.approx(1.5)

    def test_serialize_inhibitor(self):
        result = run(example_2(), "64C")
        assert result.epoch_records[0].inhibitor == Inhibitor.SERIALIZE

    def test_config_e_removes_the_serialization(self):
        # Non-serializing MEMBAR: the independent i5 now overlaps with
        # i1 in the first epoch; only i4's true data dependence on i1
        # (via i3) still splits the epochs.
        result = run(example_2(), "64E")
        assert epoch_sets(result.epoch_records) == [[0, 1, 4], [2, 3]]
        assert result.mlp == pytest.approx(1.5)
        assert result.epoch_records[0].inhibitor != Inhibitor.SERIALIZE


class TestExample3:
    """Instruction-fetch miss, then an unresolvable mispredicted branch."""

    def test_epoch_sets_and_mlp(self):
        result = run(example_3(), "64C")
        # The paper writes {i1, i2*}, {i2, i3}, {i4, i5} with i2 only
        # fetched in epoch 1; our epoch sets record executions.
        assert epoch_sets(result.epoch_records) == [[0], [1, 2], [3, 4]]
        assert result.mlp == pytest.approx(4 / 3)

    def test_access_counts_per_epoch(self):
        result = run(example_3(), "64C")
        assert [e.accesses for e in result.epoch_records] == [2, 1, 1]

    def test_inhibitors(self):
        result = run(example_3(), "64C")
        assert result.epoch_records[0].inhibitor == Inhibitor.IMISS_END
        assert result.epoch_records[1].inhibitor == Inhibitor.MISPRED_BR

    def test_imiss_access_is_counted_once(self):
        result = run(example_3(), "64C")
        assert result.imiss_accesses == 1
        assert result.dmiss_accesses == 3


class TestExample4:
    """Load issue policies (Table 2 configs A, B, C)."""

    @pytest.mark.parametrize(
        "config,expected",
        [
            ("A", [[0], [1, 2], [3, 4]]),
            ("B", [[0, 2], [1], [3, 4]]),
            ("C", [[0, 2, 4], [1]]),
        ],
    )
    def test_epoch_sets(self, config, expected):
        result = run(example_4(), f"64{config}")
        assert epoch_sets(result.epoch_records) == expected

    def test_policy_a_charges_missing_load(self):
        result = run(example_4(), "64A")
        assert result.epoch_records[0].inhibitor == Inhibitor.MISSING_LOAD

    def test_policy_b_charges_dep_store(self):
        result = run(example_4(), "64B")
        assert result.epoch_records[0].inhibitor == Inhibitor.DEP_STORE

    def test_mlp_ordering_a_to_c(self):
        mlps = [run(example_4(), f"64{c}").mlp for c in "ABC"]
        assert mlps[0] <= mlps[1] <= mlps[2]

    def test_config_c_counts_all_accesses(self):
        result = run(example_4(), "64C")
        assert result.accesses == 4
        assert result.mlp == pytest.approx(2.0)  # {i1,i3,i5}=3, {i2}=1


class TestExample5:
    """Branch issue policies (in-order vs out-of-order branches)."""

    def test_in_order_branches(self):
        result = run(example_5(), "64C")
        assert epoch_sets(result.epoch_records) == [[0], [1, 2, 3]]
        assert result.epoch_records[0].inhibitor == Inhibitor.MISPRED_BR

    def test_out_of_order_branches(self):
        result = run(example_5(), "64D")
        assert epoch_sets(result.epoch_records) == [[0, 2, 3]]
        assert result.accesses == 2
        assert result.mlp == pytest.approx(2.0)

    def test_d_beats_c(self):
        assert run(example_5(), "64D").mlp > run(example_5(), "64C").mlp
