"""Tests for machine configuration (Table 2) and the dependence graph."""

import pytest

from repro.core.config import (
    BranchPolicy,
    IssueConfig,
    LoadPolicy,
    MachineConfig,
    SerializePolicy,
)
from repro.core.depgraph import build_depgraph, depgraph_for
from repro.trace.annotate import manual_annotation
from repro.trace.builder import TraceBuilder


class TestIssueConfig:
    def test_table2_definitions(self):
        a = IssueConfig.from_letter("A")
        assert a.load_policy == LoadPolicy.IN_ORDER
        assert a.branch_policy == BranchPolicy.IN_ORDER
        assert a.serialize_policy == SerializePolicy.SERIALIZING
        b = IssueConfig.from_letter("B")
        assert b.load_policy == LoadPolicy.WAIT_STORE_ADDR
        c = IssueConfig.from_letter("C")
        assert c.load_policy == LoadPolicy.SPECULATIVE
        assert c.branch_policy == BranchPolicy.IN_ORDER
        d = IssueConfig.from_letter("D")
        assert d.branch_policy == BranchPolicy.OUT_OF_ORDER
        assert d.serialize_policy == SerializePolicy.SERIALIZING
        e = IssueConfig.from_letter("E")
        assert e.serialize_policy == SerializePolicy.NON_SERIALIZING

    def test_all_returns_five_in_order(self):
        names = [cfg.name for cfg in IssueConfig.all()]
        assert names == ["A", "B", "C", "D", "E"]

    def test_lowercase_accepted(self):
        assert IssueConfig.from_letter("c").name == "C"

    def test_unknown_letter(self):
        with pytest.raises(ValueError):
            IssueConfig.from_letter("Z")


class TestMachineConfig:
    def test_paper_default(self):
        m = MachineConfig()
        assert m.issue.name == "C"
        assert m.issue_window == 64
        assert m.rob == 64
        assert m.fetch_buffer == 32
        assert not m.runahead

    def test_named(self):
        m = MachineConfig.named("128D")
        assert m.issue_window == 128 and m.rob == 128
        assert m.issue.name == "D"
        assert m.label == "128D"

    def test_named_with_overrides(self):
        m = MachineConfig.named("64D", rob=256)
        assert m.rob == 256
        assert m.label == "64D/rob256"

    def test_rob_cannot_be_smaller_than_window(self):
        with pytest.raises(ValueError):
            MachineConfig.named("64C", rob=32)

    def test_runahead_machine(self):
        m = MachineConfig.runahead_machine(max_runahead=512)
        assert m.runahead and m.max_runahead == 512
        assert "RAE" in m.label

    def test_label_extras(self):
        m = MachineConfig.named(
            "64D", value_prediction=True, perfect_branch=True
        )
        assert "VP" in m.label and "perfBP" in m.label

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            MachineConfig(issue_window=0, rob=0)
        with pytest.raises(ValueError):
            MachineConfig(max_runahead=0)


class TestDepGraph:
    def build(self):
        b = TraceBuilder("dep")
        b.add_alu(0x100, dst=2, src1=1)  # i0 writes r2
        b.add_load(0x104, dst=3, addr=0x8000, src1=2)  # i1 reads r2
        b.add_alu(0x108, dst=2, src1=3)  # i2 rewrites r2
        b.add_load(0x10C, dst=4, addr=0x9000, src1=2)  # i3 reads new r2
        b.add_store(0x110, addr=0x9000, data_src=4, src1=2)  # i4
        b.add_load(0x114, dst=5, addr=0x9000, src1=1)  # i5: memdep on i4
        b.add_load(0x118, dst=6, addr=0xA000, src1=1)  # i6: no memdep
        return b.build()

    def test_register_renaming(self):
        g = build_depgraph(self.build(), 0, 7)
        assert g.prod1[1] == 0  # i1's address from i0
        assert g.prod1[3] == 2  # i3 sees the *newer* r2
        assert g.prod1[0] == -1  # no producer in region

    def test_store_data_producer(self):
        g = build_depgraph(self.build(), 0, 7)
        assert g.prod3[4] == 3  # store data r4 from i3

    def test_memory_dependence(self):
        g = build_depgraph(self.build(), 0, 7)
        assert g.memdep[5] == 4  # i5 loads what i4 stored
        assert g.memdep[6] == -1
        assert g.memdep[3] == -1  # load *before* the store

    def test_region_relative(self):
        g = build_depgraph(self.build(), 2, 7)
        # Producers outside the region are -1 (architected state).
        assert g.prod1[1] == 0  # i3 in region coords: producer i2 -> 0
        assert g.prod1[0] == -1  # i2's source was written before region

    def test_zero_register_has_no_producer(self):
        b = TraceBuilder("zero")
        b.add_alu(0x100, dst=0, src1=1)
        b.add_alu(0x104, dst=2, src1=0)
        g = build_depgraph(b.build(), 0, 2)
        assert g.prod1[1] == -1

    def test_cas_is_both_load_and_store(self):
        b = TraceBuilder("atomic")
        b.add_store(0x100, addr=0x40, data_src=2, src1=1)
        b.add_cas(0x104, dst=3, addr=0x40, src1=1, data_src=2)
        b.add_load(0x108, dst=4, addr=0x40, src1=1)
        g = build_depgraph(b.build(), 0, 3)
        assert g.memdep[1] == 0  # the CAS reads the store
        assert g.memdep[2] == 1  # the load reads the CAS

    def test_caching_on_annotated(self):
        trace = self.build()
        ann = manual_annotation(trace)
        g1 = depgraph_for(ann, 0, len(trace))
        g2 = depgraph_for(ann, 0, len(trace))
        assert g1 is g2
        g3 = depgraph_for(ann, 1, len(trace))
        assert g3 is not g1
