"""Unit tests for the trace container, builder and I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instruction import Instruction
from repro.isa.opclass import OpClass
from repro.trace.builder import TraceBuilder, trace_from_instructions
from repro.trace.io import FORMAT_VERSION, load_trace, save_trace
from repro.trace.trace import Trace


def small_trace():
    b = TraceBuilder("unit")
    b.add_alu(0x100, dst=1, src1=2, src2=3)
    b.add_load(0x104, dst=4, addr=0x8000, src1=1, value=42)
    b.add_store(0x108, addr=0x8008, data_src=4, src1=1)
    b.add_branch(0x10C, taken=True, target=0x200, src1=4)
    b.add_prefetch(0x200, addr=0x9000, src1=1)
    b.add_cas(0x204, dst=5, addr=0xA000, src1=1, data_src=4)
    b.add_ldstub(0x208, dst=6, addr=0xA040, src1=1)
    b.add_membar(0x20C)
    b.add_nop(0x210)
    return b.build()


class TestBuilder:
    def test_length_tracks_appends(self):
        b = TraceBuilder()
        assert len(b) == 0
        b.add_nop(0)
        b.add_nop(4)
        assert len(b) == 2

    def test_build_roundtrips_fields(self):
        t = small_trace()
        assert len(t) == 9
        load = t.instruction(1)
        assert load.op == OpClass.LOAD
        assert load.dst == 4
        assert load.addr == 0x8000
        assert load.value == 42
        branch = t.instruction(3)
        assert branch.taken and branch.target == 0x200
        cas = t.instruction(5)
        assert cas.op == OpClass.CAS and cas.src3 == 4

    def test_trace_from_instructions(self):
        insns = [
            Instruction(op=OpClass.ALU, pc=0, dst=1, src1=2),
            Instruction(op=OpClass.LOAD, pc=4, dst=2, src1=1, addr=64),
        ]
        t = trace_from_instructions(insns, name="x")
        assert len(t) == 2
        assert list(t.instructions()) == insns


class TestTrace:
    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="missing columns"):
            Trace({"op": np.zeros(1, dtype=np.int8)})

    def test_unequal_lengths_rejected(self):
        t = small_trace()
        cols = t.columns()
        cols = {k: np.asarray(v) for k, v in cols.items()}
        cols["pc"] = cols["pc"][:-1]
        with pytest.raises(ValueError, match="unequal"):
            Trace(cols)

    def test_columns_are_read_only(self):
        t = small_trace()
        with pytest.raises(ValueError):
            t.op[0] = 3

    def test_masks(self):
        t = small_trace()
        assert list(np.nonzero(t.memory_mask())[0]) == [1, 2, 4, 5, 6]
        assert list(np.nonzero(t.load_like_mask())[0]) == [1, 5, 6]
        assert list(np.nonzero(t.branch_mask())[0]) == [3]
        assert list(np.nonzero(t.serializing_mask())[0]) == [5, 6, 7]

    def test_opclass_counts(self):
        counts = small_trace().opclass_counts()
        assert counts[OpClass.LOAD] == 1
        assert counts[OpClass.MEMBAR] == 1
        assert sum(counts.values()) == 9

    def test_slice(self):
        t = small_trace()
        s = t.slice(1, 4)
        assert len(s) == 3
        assert s.instruction(0) == t.instruction(1)

    def test_equality(self):
        assert small_trace() == small_trace()
        other = small_trace().slice(0, 5)
        assert small_trace() != other


class TestIO:
    def test_roundtrip(self, tmp_path):
        t = small_trace()
        path = tmp_path / "t.npz"
        save_trace(t, path)
        loaded = load_trace(path)
        assert loaded == t
        assert loaded.name == t.name

    def test_version_check(self, tmp_path):
        t = small_trace()
        path = tmp_path / "t.npz"
        save_trace(t, path)
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["__version__"] = np.asarray([FORMAT_VERSION + 1])
        np.savez_compressed(path, **payload)  # reprolint: disable=atomic-writes
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_non_trace_archive_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez_compressed(path, junk=np.zeros(3))  # reprolint: disable=atomic-writes
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from([OpClass.ALU, OpClass.LOAD, OpClass.STORE]),
            st.integers(0, 63),
            st.integers(0, 1 << 40),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_builder_roundtrip_property(entries):
    """Whatever goes into the builder comes back out of the trace."""
    b = TraceBuilder("prop")
    for i, (op, reg, addr) in enumerate(entries):
        if op == OpClass.ALU:
            b.add_alu(4 * i, dst=reg, src1=reg)
        elif op == OpClass.LOAD:
            b.add_load(4 * i, dst=reg, addr=addr, src1=reg)
        else:
            b.add_store(4 * i, addr=addr, data_src=reg, src1=reg)
    t = b.build()
    assert len(t) == len(entries)
    for i, (op, _reg, addr) in enumerate(entries):
        insn = t.instruction(i)
        assert insn.op == op
        assert insn.pc == 4 * i
        if op != OpClass.ALU:
            assert insn.addr == addr


class TestAnnotatedIO:
    def _annotated(self):
        from repro.trace.annotate import annotate

        return annotate(small_trace())

    def test_roundtrip(self, tmp_path):
        import numpy as np

        from repro.trace.io import load_annotated, save_annotated

        ann = self._annotated()
        path = tmp_path / "a.npz"
        save_annotated(ann, path)
        loaded = load_annotated(path)
        assert loaded.trace == ann.trace
        for field in ("dmiss", "imiss", "mispred", "pmiss", "pfuseful",
                      "vp_outcome", "smiss"):
            assert np.array_equal(getattr(loaded, field), getattr(ann, field))
        assert loaded.measure_start == ann.measure_start

    def test_loaded_annotation_simulates_identically(self, tmp_path):
        from repro.core.config import MachineConfig
        from repro.core.mlpsim import simulate
        from repro.trace.io import load_annotated, save_annotated

        ann = self._annotated()
        path = tmp_path / "a.npz"
        save_annotated(ann, path)
        loaded = load_annotated(path)
        machine = MachineConfig.named("16C")
        a = simulate(ann, machine, start=0)
        b = simulate(loaded, machine, start=0)
        assert (a.mlp, a.epochs, a.accesses) == (b.mlp, b.epochs, b.accesses)

    def test_plain_trace_archive_rejected(self, tmp_path):
        import pytest as _pytest

        from repro.trace.io import load_annotated

        path = tmp_path / "t.npz"
        save_trace(small_trace(), path)
        with _pytest.raises(ValueError, match="annotated"):
            load_annotated(path)
