"""Config-batched columnar engine vs. the frozen reference interpreter.

The batched engine (:mod:`repro.core.batched`) — compiled kernel when a
C toolchain is present, vectorised NumPy fallback otherwise — replaces
N scalar replays of a sweep with one pass per event-mask group over a
shared columnar plan.  The refactor is only admissible if every result
is **bit-identical** to ``mlpsim_reference.simulate_reference``, the
verbatim pre-optimization oracle, across the paper's whole grid axis:
window sizes x issue policies A-E x perfect-* switches, plus the
structure-limit families (MSHRs, store buffer, slow branch predictor,
value prediction).

Both engine tiers are pinned: the suite runs once against whatever tier
the host resolves (kernel, normally) and once with the kernel forcibly
disabled so the NumPy fallback's own envelope is exercised.
"""

import dataclasses

import pytest

import repro.core.ckernel as ckernel
from repro.core.batched import (
    batched_supported,
    simulate_batch,
    simulate_batched,
)
from repro.core.config import MachineConfig
from repro.core.mlpsim_reference import simulate_reference

#: The paper's grid axis: every window size crossed with every Table 2
#: issue policy.
FULL_GRID = [
    f"{window}{policy}"
    for window in (16, 32, 64, 128, 256, 512)
    for policy in "ABCDE"
]

#: Every perfect-* switch combination on the default window.
PERFECT_GRID = [
    ("64C" + "".join(tag for tag, on in
                     zip(("-pi", "-pb", "-pv"), combo) if on),
     dict(zip(("perfect_ifetch", "perfect_branch", "perfect_value"),
              combo)))
    for combo in [(i, b, v) for i in (False, True)
                  for b in (False, True) for v in (False, True)]
    if any(combo)
]

#: Structure-limit and predictor families the kernel special-cases.
LIMIT_GRID = [
    ("64C-mshr4", {"max_outstanding": 4}),
    ("64C-mshr1", {"max_outstanding": 1}),
    ("64A-sb2", {"store_buffer": 2}),
    ("64B-sb1", {"store_buffer": 1}),
    ("64C-vp", {"value_prediction": True}),
    ("64D-slowbp", {"slow_branch_predictor": True,
                    "slow_bp_accuracy": 0.9}),
    ("64E-slowbp", {"slow_branch_predictor": True,
                    "slow_bp_accuracy": 0.5}),
]


def _result_fields(result):
    fields = dataclasses.asdict(result)
    fields["inhibitors"] = result.inhibitors.as_dict()
    return fields


def _machine(label, overrides=None):
    base = label.split("-")[0]
    return MachineConfig.named(base, **(overrides or {}))


@pytest.fixture
def no_kernel(monkeypatch):
    """Pin the NumPy fallback tier (as if no C toolchain existed)."""
    monkeypatch.setattr(ckernel, "_probed", True)
    monkeypatch.setattr(ckernel, "_kernel", None)
    monkeypatch.setattr(
        ckernel, "_kernel_error",
        RuntimeError("kernel disabled for test"),  # reprolint: disable=error-hierarchy
    )


class TestFullGridKernel:
    def test_window_policy_grid_bit_identical(self, specjbb_annotated):
        """All 30 window x policy configs, one batch vs. the oracle."""
        grid = [(label, _machine(label)) for label in FULL_GRID]
        batch = simulate_batch(
            specjbb_annotated, grid, workload="specjbb2000"
        )
        assert list(batch) == [label for label, _ in grid]
        for label, machine in grid:
            oracle = simulate_reference(
                specjbb_annotated, machine, workload="specjbb2000"
            )
            assert _result_fields(batch[label]) == \
                _result_fields(oracle), label

    def test_perfect_switches_bit_identical(self, database_annotated):
        grid = [(label, _machine("64C", overrides))
                for label, overrides in PERFECT_GRID]
        batch = simulate_batch(database_annotated, grid,
                               workload="database")
        for label, machine in grid:
            oracle = simulate_reference(database_annotated, machine,
                                        workload="database")
            assert _result_fields(batch[label]) == \
                _result_fields(oracle), label

    def test_structure_limits_bit_identical(self, specweb_annotated):
        grid = [(label, _machine(label, overrides))
                for label, overrides in LIMIT_GRID]
        batch = simulate_batch(specweb_annotated, grid,
                               workload="specweb99")
        for label, machine in grid:
            oracle = simulate_reference(specweb_annotated, machine,
                                        workload="specweb99")
            assert _result_fields(batch[label]) == \
                _result_fields(oracle), label

    def test_cross_workload_spot_checks(self, all_annotated):
        for label in ("16A", "64C", "256E", "64B"):
            machine = _machine(label)
            for name, annotated in all_annotated.items():
                fast = simulate_batched(annotated, machine, workload=name)
                oracle = simulate_reference(annotated, machine,
                                            workload=name)
                assert _result_fields(fast) == _result_fields(oracle), \
                    (name, label)


class TestNumpyFallback:
    """The vectorised NumPy tier must hold the same oracle contract."""

    def test_grid_bit_identical_without_kernel(self, specjbb_annotated,
                                               no_kernel):
        assert not ckernel.kernel_available()
        labels = [f"{w}{p}" for w in (16, 64, 256) for p in "ABCDE"]
        grid = [(label, _machine(label)) for label in labels]
        batch = simulate_batch(specjbb_annotated, grid,
                               workload="specjbb2000")
        for label, machine in grid:
            oracle = simulate_reference(specjbb_annotated, machine,
                                        workload="specjbb2000")
            assert _result_fields(batch[label]) == \
                _result_fields(oracle), label

    def test_value_prediction_delegates_cleanly(self, specjbb_annotated,
                                                no_kernel):
        """Outside the fallback envelope the scalar engine takes over
        and the result still matches the oracle bit for bit."""
        machine = MachineConfig.named("64C", value_prediction=True)
        assert not batched_supported(machine)
        fast = simulate_batched(specjbb_annotated, machine,
                                workload="specjbb2000")
        oracle = simulate_reference(specjbb_annotated, machine,
                                    workload="specjbb2000")
        assert _result_fields(fast) == _result_fields(oracle)

    def test_kernel_vs_fallback_same_results(self, database_annotated,
                                             monkeypatch):
        """Both tiers agree with each other, not just with the oracle
        (guards against the suite accidentally testing one tier twice).
        """
        if not ckernel.kernel_available():
            pytest.skip("no C toolchain: only one tier exists here")
        grid = [(label, _machine(label)) for label in ("32A", "64C", "128E")]
        with_kernel = simulate_batch(database_annotated, grid,
                                     workload="database")
        monkeypatch.setattr(ckernel, "_kernel", None)
        monkeypatch.setattr(
            ckernel, "_kernel_error",
            RuntimeError("kernel disabled for test"),  # reprolint: disable=error-hierarchy
        )
        without = simulate_batch(database_annotated, grid,
                                 workload="database")
        for label, _ in grid:
            assert _result_fields(with_kernel[label]) == \
                _result_fields(without[label]), label


class TestEngineSelection:
    def test_runahead_rejected_from_batched_envelope(self):
        machine = MachineConfig.named("64C", runahead=True)
        assert not batched_supported(machine)

    def test_record_sets_rejected(self):
        assert not batched_supported(MachineConfig.named("64C"),
                                     record_sets=True)

    def test_sweep_engine_parity(self, specweb_annotated):
        """``sweep(engine=...)`` routes are label-for-label identical."""
        from repro.analysis.sweep import sweep

        grid = [(label, _machine(label)) for label in ("64A", "64C", "64E")]
        scalar = sweep(specweb_annotated, grid, engine="scalar")
        batched = sweep(specweb_annotated, grid, engine="batched")
        auto = sweep(specweb_annotated, grid, engine="auto")
        for label, _ in grid:
            want = _result_fields(scalar.results[label])
            assert _result_fields(batched.results[label]) == want, label
            assert _result_fields(auto.results[label]) == want, label

    def test_unknown_engine_rejected(self, specweb_annotated):
        from repro.analysis.sweep import sweep
        from repro.robustness.errors import ConfigError

        with pytest.raises(ConfigError):
            sweep(specweb_annotated, [("64C", _machine("64C"))],
                  engine="gpu")
