"""Optimized cycle simulator vs. the frozen reference simulator.

``repro.cyclesim.simulator`` gained an event-driven fast path (wakeup
memoisation, a FIFO completion wheel, precomputed per-instruction
tables, a compiled batch kernel); ``repro.cyclesim.simulator_reference``
is the verbatim pre-optimization simulator kept as the correctness
oracle, SHA-pinned in the reprolint manifest.  Every optimization must
be behaviour-preserving: full :class:`CycleMetrics` equality — cycles,
access counters, MLP integrals and the whole CPI stack — across the
paper's validation grid (Table 3: ROB {32,64,128} x policies A-C x
latencies {200,500,1000}) on every workload.
"""

import dataclasses

import pytest

from repro.core.config import MachineConfig
from repro.cyclesim import CycleSimConfig, run_cyclesim
from repro.cyclesim.ckernel import kernel_available
from repro.cyclesim.plan import cycle_plan_for
from repro.cyclesim.simulator import run_cycle_pairs
from repro.cyclesim.simulator_reference import (
    run_cyclesim as run_cyclesim_reference,
)
from repro.robustness.errors import ConfigError

#: Instructions per equivalence run: long enough to exercise deep MSHR
#: merging, redirects and serializing drains on every workload, short
#: enough that 81 reference runs stay test-suite friendly.
REGION = 30000

SIZES = (32, 64, 128)
POLICIES = "ABC"
LATENCIES = (200, 500, 1000)


def _grid():
    for size in SIZES:
        for letter in POLICIES:
            for latency in LATENCIES:
                yield CycleSimConfig.from_machine(
                    MachineConfig.named(f"{size}{letter}"),
                    miss_penalty=latency,
                )


def _fields(metrics):
    return dataclasses.asdict(metrics)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("letter", POLICIES)
def test_grid_bit_identical_interpreter(all_annotated, size, letter):
    """The pure-Python tier matches the oracle on the full Table 3 grid."""
    machine = MachineConfig.named(f"{size}{letter}")
    for latency in LATENCIES:
        config = CycleSimConfig.from_machine(machine, miss_penalty=latency)
        for name, annotated in all_annotated.items():
            stop = min(annotated.measure_start + REGION,
                       len(annotated.trace))
            fast = run_cyclesim(
                annotated, config, stop=stop, engine="python"
            )
            oracle = run_cyclesim_reference(annotated, config, stop=stop)
            assert _fields(fast) == _fields(oracle), (name, size, letter,
                                                      latency)


@pytest.mark.skipif(
    not kernel_available(), reason="no C compiler for the cyclesim kernel"
)
def test_grid_bit_identical_kernel(all_annotated):
    """The compiled batch kernel matches the oracle on the full grid."""
    pairs = [(f"cfg{i}", config) for i, config in enumerate(_grid())]
    for name, annotated in all_annotated.items():
        stop = min(annotated.measure_start + REGION,
                   len(annotated.trace))
        plan = cycle_plan_for(annotated, None, stop)
        batch = run_cycle_pairs(plan, pairs, name)
        for label, config in pairs:
            oracle = run_cyclesim_reference(
                annotated, config, stop=stop, workload=name
            )
            assert _fields(batch[label]) == _fields(oracle), (name, label)


def test_perfect_l2_and_event_skip_tiers(database_annotated):
    """The off-grid knobs (perfect L2, cycle-by-cycle clock) match too."""
    stop = min(database_annotated.measure_start + 8000,
               len(database_annotated.trace))
    machine = MachineConfig.named("64C")
    for overrides in (
        {"perfect_l2": True},
        {"event_skip": False},
        {"perfect_l2": True, "event_skip": False},
    ):
        config = CycleSimConfig.from_machine(
            machine, miss_penalty=500, **overrides
        )
        oracle = run_cyclesim_reference(database_annotated, config,
                                        stop=stop)
        for engine in ("python", "auto"):
            fast = run_cyclesim(
                database_annotated, config, stop=stop, engine=engine
            )
            assert _fields(fast) == _fields(oracle), (overrides, engine)


def test_labels_match_reference(database_annotated):
    """Metric labels (config rendering) survive the rewrite unchanged."""
    stop = min(database_annotated.measure_start + 4000,
               len(database_annotated.trace))
    config = CycleSimConfig.from_machine(
        MachineConfig.named("32A"), miss_penalty=200, perfect_l2=True
    )
    fast = run_cyclesim(database_annotated, config, stop=stop)
    oracle = run_cyclesim_reference(database_annotated, config, stop=stop)
    assert fast.label == oracle.label
    assert fast.workload == oracle.workload


def test_unknown_engine_rejected(database_annotated):
    with pytest.raises(ConfigError):
        run_cyclesim(
            database_annotated, CycleSimConfig(), engine="vectorized"
        )
