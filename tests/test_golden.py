"""Golden regression values.

Everything in this library is deterministic in (seed, trace length), so
the key reproduction numbers are pinned here within a small tolerance.
These are NOT correctness assertions — they are tripwires: an
unintentional behaviour change anywhere in the pipeline (generator,
annotation, engines) will move one of them.

If you change behaviour *intentionally* (generator tuning, a modeling
fix), re-measure with::

    python -m pytest tests/test_golden.py --tb=short

and update the table below in the same commit, noting why.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.inorder import simulate_stall_on_miss, simulate_stall_on_use
from repro.core.mlpsim import simulate

#: (workload, machine factory, expected MLP) at seed 1234, length 120k
#: (the conftest default).  Tolerance is 1%: tight enough to catch any
#: semantic change, loose enough for float-ordering noise.
GOLDEN_MLP = [
    ("database", lambda: MachineConfig.named("64C"), 1.2810),
    ("database", lambda: MachineConfig.runahead_machine(), 2.0377),
    ("specjbb2000", lambda: MachineConfig.named("64C"), 1.1373),
    ("specjbb2000", lambda: MachineConfig.runahead_machine(), 3.0299),
    ("specweb99", lambda: MachineConfig.named("64C"), 1.4183),
    ("specweb99", lambda: MachineConfig.runahead_machine(), 1.9550),
]


@pytest.mark.parametrize("workload,machine,expected", GOLDEN_MLP)
def test_golden_mlp(workload, machine, expected, all_annotated, trace_len):
    if trace_len != 120_000:
        pytest.skip("golden values are pinned at the default trace length")
    result = simulate(all_annotated[workload], machine())
    assert result.mlp == pytest.approx(expected, rel=0.01), (
        f"{workload}/{machine().label}: measured {result.mlp:.4f};"
        " if this change is intentional, update GOLDEN_MLP"
    )


GOLDEN_INORDER = [
    ("database", simulate_stall_on_miss, 1.0189),
    ("database", simulate_stall_on_use, 1.1629),
    ("specweb99", simulate_stall_on_miss, 1.0743),
]


@pytest.mark.parametrize("workload,simulator,expected", GOLDEN_INORDER)
def test_golden_inorder(workload, simulator, expected, all_annotated,
                        trace_len):
    if trace_len != 120_000:
        pytest.skip("golden values are pinned at the default trace length")
    result = simulator(all_annotated[workload])
    assert result.mlp == pytest.approx(expected, rel=0.01)


def test_golden_event_counts(database_annotated, trace_len):
    """The annotation pipeline's event counts at the default seed."""
    if trace_len != 120_000:
        pytest.skip("golden values are pinned at the default trace length")
    assert database_annotated.num_offchip() == 1133
    assert int(database_annotated.imiss.sum()) == 577
