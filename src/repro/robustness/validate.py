"""Validators for traces, annotations and their on-disk archives.

Three layers of checking, from raw bytes to model-level invariants:

1. :func:`validate_archive_columns` — a loaded ``.npz`` payload has
   exactly the expected keys, with the expected dtypes and equal
   lengths (catches truncation artifacts, dropped/extra columns, dtype
   corruption and NaN injection, which forces a float dtype);
2. :func:`validate_trace` — a constructed
   :class:`~repro.trace.trace.Trace` holds only in-range values:
   opcodes that name real :class:`~repro.isa.opclass.OpClass` members
   and register operands inside the architectural file;
3. :func:`validate_annotated` — an annotated trace is internally
   consistent: masks are boolean and trace-length, ``vp_outcome``
   uses only the defined codes, ``measure_start`` is in range, and
   (when ``check_events`` is set) every event mask marks only
   instructions of a class that can raise that event.

All rejections raise :class:`~repro.robustness.errors.TraceFormatError`
naming the file and field at fault.
"""

import numpy as np

from repro.isa.opclass import OpClass
from repro.isa.registers import NUM_REGS, REG_NONE
from repro.robustness.errors import TraceFormatError

#: Register-operand columns, bounded by the architectural register file.
_REGISTER_COLUMNS = ("dst", "src1", "src2", "src3")

#: Valid ``vp_outcome`` codes: n/a, correct, wrong, no-predict.
_VP_CODES = (-1, 0, 1, 2)


def _column_dtypes():
    """Expected numpy dtype per trace column."""
    # Imported lazily: repro.trace's package __init__ pulls in io.py,
    # which imports this module — a top-level import would be circular.
    from repro.trace.trace import COLUMNS

    return {name: np.dtype(dtype) for name, dtype in COLUMNS}


def validate_archive_columns(payload, path=None, annotation_fields=()):
    """Check a raw archive *payload* (mapping of name to array).

    Parameters
    ----------
    payload:
        Mapping of column name to numpy array, excluding the
        ``__version__`` / ``__name__`` metadata entries.
    path:
        File the payload came from, for diagnostics.
    annotation_fields:
        Extra ``ann_*`` mask names that must also be present (used by
        the annotated-trace loader); an empty tuple checks a plain
        trace archive.

    Raises
    ------
    TraceFormatError
        On a missing column, an unknown column, a wrong dtype, or
        unequal column lengths.
    """
    expected = _column_dtypes()
    for name in annotation_fields:
        expected[name] = (
            np.dtype(np.int8) if name == "ann_vp_outcome"
            else np.dtype(np.bool_)
        )
    for name in expected:
        if name not in payload:
            raise TraceFormatError(
                "required column is missing from the archive",
                path=path, field=name,
            )
    for name in payload:
        if name not in expected:
            # A plain-trace load may be pointed at an annotated
            # archive; its extra masks are legitimate, not corruption.
            if not annotation_fields and name.startswith("ann_"):
                continue
            raise TraceFormatError(
                "archive contains an unknown column",
                path=path, field=name,
            )
    lengths = {}
    for name, want in expected.items():
        array = payload[name]
        have = np.asarray(array).dtype
        if have != want:
            raise TraceFormatError(
                f"column has dtype {have}, expected {want}",
                path=path, field=name,
            )
        lengths[name] = len(array)
    if len(set(lengths.values())) > 1:
        raise TraceFormatError(
            f"columns have unequal lengths: {sorted(set(lengths.values()))}",
            path=path, field=None,
        )


def validate_trace(trace, path=None):
    """Check that *trace* holds only in-range opcode/register values.

    Column presence, dtypes and equal lengths are already enforced by
    the :class:`~repro.trace.trace.Trace` constructor; this adds the
    value-range invariants that a corrupt archive could still violate.

    Raises
    ------
    TraceFormatError
        Naming the offending column.
    """
    op = np.asarray(trace.op)
    valid_ops = np.asarray([int(o) for o in OpClass], dtype=op.dtype)
    if op.size and not np.isin(op, valid_ops).all():
        bad = int(op[~np.isin(op, valid_ops)][0])
        raise TraceFormatError(
            f"opcode {bad} is not a valid OpClass value",
            path=path, field="op",
        )
    for name in _REGISTER_COLUMNS:
        column = np.asarray(getattr(trace, name))
        if column.size and (
            int(column.min()) < REG_NONE or int(column.max()) >= NUM_REGS
        ):
            raise TraceFormatError(
                f"register operand outside [{REG_NONE}, {NUM_REGS})",
                path=path, field=name,
            )
    return trace


def _event_consistency(annotated, path):
    """Event masks may only mark instructions that can raise the event."""
    trace = annotated.trace
    checks = (
        ("dmiss", trace.load_like_mask(),
         "marks an instruction that does not read data memory"),
        ("pmiss", np.asarray(trace.op) == int(OpClass.PREFETCH),
         "marks a non-prefetch instruction"),
        ("pfuseful", np.asarray(annotated.pmiss),
         "marks a prefetch that did not leave the chip"),
        ("mispred", trace.branch_mask(),
         "marks a non-branch instruction"),
        ("smiss", np.asarray(trace.op) == int(OpClass.STORE),
         "marks a non-store instruction"),
    )
    for name, allowed, message in checks:
        mask = np.asarray(getattr(annotated, name))
        if bool((mask & ~allowed).any()):
            index = int(np.nonzero(mask & ~allowed)[0][0])
            raise TraceFormatError(
                f"{message} (first at index {index})",
                path=path, field=name,
            )


def validate_annotated(annotated, path=None, check_events=True):
    """Check an annotated trace's structural and event invariants.

    Parameters
    ----------
    annotated:
        The :class:`~repro.trace.annotate.AnnotatedTrace` to check.
    path:
        Source file, for diagnostics.
    check_events:
        When True (the loader/annotator default), also require each
        event mask to mark only instructions of a class that can raise
        the event.  The simulators pass False: hand-built test
        annotations deliberately place events freely, and the
        structural checks alone make simulation safe.

    Raises
    ------
    TraceFormatError
        Naming the offending mask.
    """
    from repro.trace.io import ANNOTATION_FIELDS

    n = len(annotated.trace)
    for name in ANNOTATION_FIELDS:
        mask = np.asarray(getattr(annotated, name))
        want = np.dtype(np.int8) if name == "vp_outcome" else np.dtype(np.bool_)
        if mask.dtype != want:
            raise TraceFormatError(
                f"annotation mask has dtype {mask.dtype}, expected {want}",
                path=path, field=name,
            )
        if len(mask) != n:
            raise TraceFormatError(
                f"annotation mask length {len(mask)} != trace length {n}",
                path=path, field=name,
            )
    vp = np.asarray(annotated.vp_outcome)
    if vp.size and not np.isin(vp, np.asarray(_VP_CODES, dtype=vp.dtype)).all():
        bad = int(vp[~np.isin(vp, np.asarray(_VP_CODES, dtype=vp.dtype))][0])
        raise TraceFormatError(
            f"vp_outcome code {bad} is not one of {_VP_CODES}",
            path=path, field="vp_outcome",
        )
    measure_start = annotated.measure_start
    if not 0 <= int(measure_start) <= n:
        raise TraceFormatError(
            f"measure_start {measure_start} outside [0, {n}]",
            path=path, field="measure_start",
        )
    if check_events:
        _event_consistency(annotated, path)
    return annotated
