"""The structured exception hierarchy for input rejection.

All validation failures raise a :class:`ReproError` subclass carrying
the offending file (``path``) and field (``field``) so that a rejected
input is diagnosable from the one-line message alone.  The concrete
classes double-inherit from :class:`ValueError`, the builtin they
replace, so callers that predate
the hierarchy — and the published API contract that malformed traces
raise ``ValueError`` — keep working unchanged.

========================  =====================================
Class                     Raised for
========================  =====================================
:class:`TraceFormatError` malformed trace / annotation archives
:class:`ConfigError`      invalid machine or experiment configs
:class:`SimulationError`  invalid simulator invocations
:class:`ExhibitTimeout`   an exhibit exceeding its time budget
:class:`SweepTimeout`     a sweep config exceeding its attempt budget
:class:`JournalError`     a corrupt or mismatched sweep journal
:class:`InternalError`    violated internal simulator invariants
:class:`InjectedFault`    a worker fault injected by the chaos harness
:class:`InjectedCrash`    a supervisor crash injected by the harness
========================  =====================================

The ``error-hierarchy`` lint pass (``repro lint``) enforces that every
``raise`` in ``src/repro`` uses one of these classes.
"""


class ReproError(Exception):
    """Root of the reproduction's input-rejection hierarchy.

    Parameters
    ----------
    message:
        Human-readable description of the rejection.
    path:
        Optional file the bad input came from; rendered as a prefix.
    field:
        Optional column / mask / option name at fault; rendered in the
        message so tests (and humans) can pinpoint the corruption.
    """

    def __init__(self, message, *, path=None, field=None):
        self.path = str(path) if path is not None else None
        self.field = field
        parts = []
        if self.path is not None:
            parts.append(self.path)
        if field is not None:
            parts.append(f"field {field!r}")
        prefix = ": ".join(parts)
        super().__init__(f"{prefix}: {message}" if prefix else message)


class TraceFormatError(ReproError, ValueError):
    """A trace or annotation archive is structurally invalid.

    Raised for missing/unknown columns, wrong dtypes, unequal column
    lengths, out-of-range register or opcode values, inconsistent event
    masks, version skew, and unreadable archives.  Inherits
    :class:`ValueError` for backward compatibility with the original
    ad-hoc errors.
    """


class ConfigError(ReproError, ValueError):
    """A machine spec or experiment configuration is invalid.

    Raised for malformed ``--machine`` specs, unknown configuration
    fields, and out-of-range experiment parameters (e.g. a
    non-positive trace length).
    """


class SimulationError(ReproError, ValueError):
    """A simulator was invoked on an invalid region or input."""


class ExhibitTimeout(SimulationError):
    """An exhibit exceeded its per-exhibit wall-clock budget."""


class SweepTimeout(SimulationError):
    """One sweep configuration exceeded its per-attempt time budget.

    Raised (serial backend) or recorded as an attempt failure (pool
    backend) by the supervised sweep layer; the supervisor retries the
    configuration with backoff and quarantines it when the attempt
    budget is exhausted.
    """


class JournalError(ReproError, ValueError):
    """A sweep journal is unusable for resumption.

    Raised for a journal whose metadata names a different sweep than
    the one being resumed (wrong workload, seed or trace length), for
    corruption anywhere except the final — possibly torn — record, and
    for results that cannot be journalled (epoch records attached).
    A *torn tail* is never an error: the last record of a journal cut
    short by a crash is silently discarded on replay.
    """


class InjectedFault(SimulationError):
    """A deliberate worker-level failure from the chaos harness.

    The process-fault plan (``repro.robustness.faults.ProcessFaultPlan``)
    raises this inside a sweep worker for ``fail:`` entries; the
    supervisor must treat it exactly like any organic worker failure
    (retry, back off, quarantine).
    """


class InjectedCrash(ReproError, RuntimeError):
    """A deliberate parent-process crash from the chaos harness.

    Raised in the *supervisor* process by ``crash-journal:`` fault-plan
    entries, after a torn journal record has been flushed — modelling a
    SIGKILL of the whole sweep mid-journal-write.  It deliberately does
    not inherit :class:`ValueError`: nothing in the library may catch
    and absorb it, so it propagates like the crash it simulates.
    """


class InternalError(ReproError, RuntimeError):
    """A simulator's internal consistency check failed.

    Raised for states that indicate a bug or an unsimulatable input
    rather than a rejectable argument: an engine making no forward
    progress (livelock), the cycle simulator deadlocking, a resource
    count going negative, an MSHR allocation with no free entry.
    Inherits :class:`RuntimeError` — the builtin these checks raised
    before the hierarchy — so existing callers keep working unchanged.
    """
