"""The structured exception hierarchy for input rejection.

All validation failures raise a :class:`ReproError` subclass carrying
the offending file (``path``) and field (``field``) so that a rejected
input is diagnosable from the one-line message alone.  The concrete
classes double-inherit from :class:`ValueError`, the builtin they
replace, so callers that predate
the hierarchy — and the published API contract that malformed traces
raise ``ValueError`` — keep working unchanged.

========================  =====================================
Class                     Raised for
========================  =====================================
:class:`TraceFormatError` malformed trace / annotation archives
:class:`ConfigError`      invalid machine or experiment configs
:class:`SimulationError`  invalid simulator invocations
:class:`ExhibitTimeout`   an exhibit exceeding its time budget
:class:`InternalError`    violated internal simulator invariants
========================  =====================================

The ``error-hierarchy`` lint pass (``repro lint``) enforces that every
``raise`` in ``src/repro`` uses one of these classes.
"""


class ReproError(Exception):
    """Root of the reproduction's input-rejection hierarchy.

    Parameters
    ----------
    message:
        Human-readable description of the rejection.
    path:
        Optional file the bad input came from; rendered as a prefix.
    field:
        Optional column / mask / option name at fault; rendered in the
        message so tests (and humans) can pinpoint the corruption.
    """

    def __init__(self, message, *, path=None, field=None):
        self.path = str(path) if path is not None else None
        self.field = field
        parts = []
        if self.path is not None:
            parts.append(self.path)
        if field is not None:
            parts.append(f"field {field!r}")
        prefix = ": ".join(parts)
        super().__init__(f"{prefix}: {message}" if prefix else message)


class TraceFormatError(ReproError, ValueError):
    """A trace or annotation archive is structurally invalid.

    Raised for missing/unknown columns, wrong dtypes, unequal column
    lengths, out-of-range register or opcode values, inconsistent event
    masks, version skew, and unreadable archives.  Inherits
    :class:`ValueError` for backward compatibility with the original
    ad-hoc errors.
    """


class ConfigError(ReproError, ValueError):
    """A machine spec or experiment configuration is invalid.

    Raised for malformed ``--machine`` specs, unknown configuration
    fields, and out-of-range experiment parameters (e.g. a
    non-positive trace length).
    """


class SimulationError(ReproError, ValueError):
    """A simulator was invoked on an invalid region or input."""


class ExhibitTimeout(SimulationError):
    """An exhibit exceeded its per-exhibit wall-clock budget."""


class InternalError(ReproError, RuntimeError):
    """A simulator's internal consistency check failed.

    Raised for states that indicate a bug or an unsimulatable input
    rather than a rejectable argument: an engine making no forward
    progress (livelock), the cycle simulator deadlocking, a resource
    count going negative, an MSHR allocation with no free entry.
    Inherits :class:`RuntimeError` — the builtin these checks raised
    before the hierarchy — so existing callers keep working unchanged.
    """
