"""Robustness layer: structured errors, input validation, atomic I/O.

Every entry point of the reproduction — trace/annotation archives, the
machine-spec parser, the simulators and the exhibit harnesses — trusts
its inputs to be well-formed.  This package makes that trust explicit
and enforced:

* :mod:`repro.robustness.errors` — the :class:`ReproError` exception
  hierarchy that all input rejections raise, carrying the offending
  file and field so failures are diagnosable without a traceback;
* :mod:`repro.robustness.validate` — validators for raw archives,
  traces and annotated traces (column presence, dtypes, value ranges,
  event-mask consistency);
* :mod:`repro.robustness.atomic` — write-temp-then-rename persistence,
  so an interrupted save never leaves a corrupt file at the
  destination path;
* :mod:`repro.robustness.faults` — a deterministic fault-injection
  harness: data-corruption faults for ``.npz`` archives (used by
  ``tests/test_fault_injection.py`` to prove every loader rejects bad
  input loudly instead of crashing or silently mis-simulating) and
  process-level faults (:class:`ProcessFaultPlan`: kill/hang/fail a
  sweep worker, crash the supervisor mid-journal-write) driving the
  chaos suite in ``tests/test_chaos.py``;
* :mod:`repro.robustness.journal` — the append-only, fsynced sweep
  journal that makes interrupted sweeps resumable;
* :mod:`repro.robustness.supervisor` — crash-safe supervised sweep
  execution (per-config timeouts, retry with exponential backoff,
  dead-letter quarantine, worker replacement, serial degradation).
  Imported lazily — ``from repro.robustness.supervisor import
  supervised_sweep`` — because it pulls in the sweep/engine stack.

See ``docs/ROBUSTNESS.md`` for the full contract.
"""

from repro.robustness.atomic import atomic_savez, atomic_write, atomic_write_text
from repro.robustness.errors import (
    ConfigError,
    ExhibitTimeout,
    InjectedCrash,
    InjectedFault,
    InternalError,
    JournalError,
    ReproError,
    SimulationError,
    SweepTimeout,
    TraceFormatError,
)
from repro.robustness.faults import (
    FAULTS,
    ProcessFaultPlan,
    corrupt_cache_entries,
    inject_fault,
    tear_journal,
)
from repro.robustness.journal import SweepJournal, config_key
from repro.robustness.validate import (
    validate_annotated,
    validate_archive_columns,
    validate_trace,
)

__all__ = [
    "ReproError",
    "TraceFormatError",
    "ConfigError",
    "SimulationError",
    "ExhibitTimeout",
    "SweepTimeout",
    "JournalError",
    "InternalError",
    "InjectedFault",
    "InjectedCrash",
    "validate_trace",
    "validate_annotated",
    "validate_archive_columns",
    "atomic_write",
    "atomic_write_text",
    "atomic_savez",
    "FAULTS",
    "inject_fault",
    "ProcessFaultPlan",
    "tear_journal",
    "corrupt_cache_entries",
    "SweepJournal",
    "config_key",
]
