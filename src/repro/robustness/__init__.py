"""Robustness layer: structured errors, input validation, atomic I/O.

Every entry point of the reproduction — trace/annotation archives, the
machine-spec parser, the simulators and the exhibit harnesses — trusts
its inputs to be well-formed.  This package makes that trust explicit
and enforced:

* :mod:`repro.robustness.errors` — the :class:`ReproError` exception
  hierarchy that all input rejections raise, carrying the offending
  file and field so failures are diagnosable without a traceback;
* :mod:`repro.robustness.validate` — validators for raw archives,
  traces and annotated traces (column presence, dtypes, value ranges,
  event-mask consistency);
* :mod:`repro.robustness.atomic` — write-temp-then-rename persistence,
  so an interrupted save never leaves a corrupt file at the
  destination path;
* :mod:`repro.robustness.faults` — a deterministic fault-injection
  harness that corrupts ``.npz`` archives in controlled ways, used by
  ``tests/test_fault_injection.py`` to prove every loader rejects bad
  input loudly instead of crashing or silently mis-simulating.

See ``docs/ROBUSTNESS.md`` for the full contract.
"""

from repro.robustness.atomic import atomic_savez, atomic_write, atomic_write_text
from repro.robustness.errors import (
    ConfigError,
    ExhibitTimeout,
    InternalError,
    ReproError,
    SimulationError,
    TraceFormatError,
)
from repro.robustness.faults import FAULTS, inject_fault
from repro.robustness.validate import (
    validate_annotated,
    validate_archive_columns,
    validate_trace,
)

__all__ = [
    "ReproError",
    "TraceFormatError",
    "ConfigError",
    "SimulationError",
    "ExhibitTimeout",
    "InternalError",
    "validate_trace",
    "validate_annotated",
    "validate_archive_columns",
    "atomic_write",
    "atomic_write_text",
    "atomic_savez",
    "FAULTS",
    "inject_fault",
]
