"""Crash-safe supervised sweep execution.

``repro.analysis.parallel`` (PR 2) made sweeps fast; this module makes
them survivable.  A supervised sweep wraps both sweep backends — the
serial loop and a self-managed worker pool — in a supervision layer
that assumes *everything* can fail mid-flight:

* every dispatch and completion is journalled (append-only, fsynced —
  :mod:`repro.robustness.journal`), so an interrupted sweep resumes
  re-executing only configurations the journal marks unfinished;
* each configuration attempt runs under an optional wall-clock budget;
  a hung config is SIGKILLed out of its worker (pool) or SIGALRMed
  (serial) and retried with bounded exponential backoff;
* a worker killed from outside (SIGKILL, the OOM killer) is detected,
  its in-flight configuration re-queued, and a replacement spawned —
  the grid keeps draining;
* a configuration that keeps failing is moved to a dead-letter
  *quarantine* after ``max_retries`` retries and reported at the end,
  fail-soft — one poison config cannot sink the campaign;
* a pool that keeps collapsing (too many worker replacements) degrades
  to the serial backend for the remaining work.

The pool here is deliberately *not* ``ProcessPoolExecutor``: the
executor cannot kill a single hung worker without abandoning the whole
pool, and a ``BrokenProcessPool`` discards every queued future.  The
supervisor manages ``multiprocessing`` processes directly — one task
in flight per worker, a shared result queue, per-worker task queues —
which is exactly the control needed to time out, kill and replace one
worker while the rest keep simulating.  Trace sharing reuses the PR 2
protocol (:func:`repro.analysis.parallel.share_annotated`): fork
inherits the annotated trace copy-on-write; spawn platforms load a
one-time ``.npz`` spill.

Determinism: MLPsim is a pure function of ``(annotated, machine)``, so
retries, worker replacement, resume-from-journal and serial
degradation all produce results bit-identical to a clean serial sweep
— ``tests/test_chaos.py`` proves it under injected process faults.
"""

import collections
import contextlib
import dataclasses
import os
import queue as queue_module
import signal
import threading
import time

from repro.analysis.parallel import (
    resolve_jobs,
    share_annotated,
    unshare_annotated,
)
from repro.analysis.sweep import SweepResult
from repro.robustness.errors import ConfigError, SweepTimeout
from repro.robustness.faults import ProcessFaultPlan
from repro.robustness.journal import (
    SweepJournal,
    config_key,
    result_from_payload,
)

#: How long the pool loop blocks on the result queue per iteration;
#: also the granularity of deadline/death checks.
_POLL_SECONDS = 0.05

#: Grace period for joining a worker we just killed.
_KILL_JOIN_SECONDS = 5.0


@contextlib.contextmanager
def wall_clock_deadline(seconds, make_error):
    """Raise ``make_error(seconds)`` if the body runs past *seconds*.

    SIGALRM-based, so it engages only on platforms that have it and in
    the main thread; elsewhere the body runs unbounded (callers must
    fail-soft on ordinary exceptions regardless).  Nesting is safe: a
    suspended outer deadline is re-armed with its remaining budget when
    the inner one exits.
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise make_error(seconds)

    previous = signal.signal(signal.SIGALRM, _expired)
    outer_remaining, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    started = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_remaining:
            resumed = outer_remaining - (time.monotonic() - started)
            signal.setitimer(signal.ITIMER_REAL, max(resumed, 1e-6))


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """Retry, timeout and degradation policy for one supervised sweep.

    ``max_retries`` is the number of *re*-executions after the first
    attempt, so a config runs at most ``max_retries + 1`` times before
    quarantine.  ``config_timeout`` bounds one attempt's wall-clock
    seconds (``None`` = unbounded: hangs are then unrecoverable, so
    long campaigns should always set one).  Backoff before retry *n*
    is ``min(backoff_cap, backoff_base * 2**(n-1))`` seconds —
    deterministic, no jitter, keeping chaos runs reproducible.
    ``pool_failure_limit`` is how many worker replacements (deaths or
    timeout kills) the pool tolerates before degrading the remaining
    grid to the serial backend.
    """

    max_retries: int = 2
    config_timeout: float = None
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    pool_failure_limit: int = 16

    def __post_init__(self):
        if not isinstance(self.max_retries, int) \
                or isinstance(self.max_retries, bool) or self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be a non-negative integer,"
                f" got {self.max_retries!r}",
                field="max_retries",
            )
        if self.config_timeout is not None and not self.config_timeout > 0:
            raise ConfigError(
                f"config_timeout must be positive or None,"
                f" got {self.config_timeout!r}",
                field="config_timeout",
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigError(
                "backoff_base and backoff_cap must be non-negative",
                field="backoff_base",
            )
        if not isinstance(self.pool_failure_limit, int) \
                or self.pool_failure_limit < 0:
            raise ConfigError(
                f"pool_failure_limit must be a non-negative integer,"
                f" got {self.pool_failure_limit!r}",
                field="pool_failure_limit",
            )

    @property
    def attempts_allowed(self):
        return self.max_retries + 1

    def backoff_delay(self, failed_attempts):
        """Seconds to wait before the next attempt."""
        if not self.backoff_base:
            return 0.0
        return min(
            self.backoff_cap,
            self.backoff_base * (2.0 ** (failed_attempts - 1)),
        )


@dataclasses.dataclass
class QuarantinedConfig:
    """One dead-lettered grid point of a supervised sweep."""

    label: str
    key: str
    attempts: int
    error: str

    def describe(self):
        """One human-readable line for the quarantine report."""
        return (
            f"{self.label}: quarantined after {self.attempts}"
            f" attempt(s); last error: {self.error}"
        )


@dataclasses.dataclass
class SupervisedSweepResult(SweepResult):
    """A :class:`SweepResult` plus the supervision outcome.

    ``results`` holds every configuration that finished (restored from
    the journal or executed this run) in grid order; quarantined
    configurations are absent from it and listed in ``quarantined``.
    """

    quarantined: list = dataclasses.field(default_factory=list)
    resumed: int = 0            #: configs restored from the journal
    executed: int = 0           #: configs simulated in this run
    worker_replacements: int = 0
    degraded_to_serial: bool = False

    @property
    def complete(self):
        """True when every grid point produced a result."""
        return not self.quarantined

    def quarantine_report(self):
        """One line per dead-lettered config (empty string when none)."""
        return "\n".join(q.describe() for q in self.quarantined)


class _Task:
    """Parent-side bookkeeping for one grid point."""

    __slots__ = ("index", "label", "machine", "key", "attempts",
                 "not_before", "last_error")

    def __init__(self, index, label, machine, key, attempts=0):
        self.index = index
        self.label = label
        self.machine = machine
        self.key = key
        self.attempts = attempts
        self.not_before = 0.0
        self.last_error = None


class _Worker:
    """Parent-side handle for one pool worker process."""

    __slots__ = ("id", "process", "task_queue", "task", "deadline",
                 "started")

    def __init__(self, worker_id, process, task_queue):
        self.id = worker_id
        self.process = process
        self.task_queue = task_queue
        self.task = None
        self.deadline = None
        self.started = None


def _simulate_config(annotated, machine, workload):
    """Run one grid point, dispatching on the config's engine family.

    A supervised sweep carries either MLPsim
    :class:`~repro.core.config.MachineConfig` entries or cyclesim
    :class:`~repro.cyclesim.config.CycleSimConfig` entries; both ride
    the same journal, retry and quarantine machinery.
    """
    from repro.core.mlpsim import simulate
    from repro.cyclesim.config import CycleSimConfig
    from repro.cyclesim.simulator import run_cyclesim

    if isinstance(machine, CycleSimConfig):
        return run_cyclesim(annotated, machine, workload=workload)
    return simulate(annotated, machine, workload=workload)


def _worker_main(worker_id, task_queue, result_queue, spill_path,
                 fault_spec, workload):
    """Sweep worker loop: take a task, simulate, return the result.

    Runs in a child process.  The annotated trace arrives either
    copy-on-write through the module global (fork) or from the spilled
    archive (spawn).  The fault plan re-parses from its spec string so
    chaos schedules survive any start method.  A ``None`` task is the
    shutdown sentinel.
    """
    from repro.analysis import parallel

    if spill_path is not None:
        from repro.trace.io import load_annotated

        annotated = load_annotated(spill_path)
    else:
        annotated = parallel._WORKER_ANNOTATED
    plan = ProcessFaultPlan.parse(fault_spec)
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_index, label, machine, attempt = item
        try:
            plan.apply_in_worker(label, attempt)
            result = _simulate_config(annotated, machine, workload)
        except Exception as exc:
            result_queue.put(
                (worker_id, task_index, False,
                 f"{type(exc).__name__}: {exc}")
            )
        else:
            result_queue.put((worker_id, task_index, True, result))


class _SweepState:
    """Mutable run state shared by the pool and serial executors."""

    def __init__(self, policy, plan, journal, progress, workload):
        self.policy = policy
        self.plan = plan
        self.journal = journal
        self.progress = progress
        self.workload = workload
        self.results = {}          # label -> MLPResult (executed this run)
        self.quarantined = []      # QuarantinedConfig
        self.worker_replacements = 0

    def journal_attempt(self, task):
        if self.journal is not None:
            self.journal.record_attempt(task.key, task.label, task.attempts)

    def complete(self, task, result, elapsed):
        if self.journal is not None:
            self.journal.record_result(
                task.key, task.label, task.attempts, round(elapsed, 3),
                result,
            )
        self.results[task.label] = result
        if self.progress is not None:
            self.progress(task.label)

    def fail(self, task, error, elapsed):
        """Record one failed attempt; True when the task may retry."""
        message = (
            f"{error} (config {task.label!r}, attempt {task.attempts}"
            f" of {self.policy.attempts_allowed},"
            f" after {elapsed:.1f}s)"
        )
        task.last_error = message
        if self.journal is not None:
            self.journal.record_failure(
                task.key, task.label, task.attempts, round(elapsed, 3),
                message,
            )
        if task.attempts >= self.policy.attempts_allowed:
            if self.journal is not None:
                self.journal.record_quarantine(
                    task.key, task.label, task.attempts, message
                )
            self.quarantined.append(QuarantinedConfig(
                label=task.label, key=task.key, attempts=task.attempts,
                error=message,
            ))
            return False
        task.not_before = (
            time.monotonic() + self.policy.backoff_delay(task.attempts)
        )
        return True


def _run_serial(annotated, tasks, state):
    """Drain *tasks* in grid order on the serial backend."""
    policy = state.policy
    for task in tasks:
        while True:
            delay = task.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            task.attempts += 1
            state.journal_attempt(task)
            started = time.monotonic()
            try:
                with wall_clock_deadline(
                    policy.config_timeout,
                    lambda seconds, label=task.label: SweepTimeout(
                        f"config exceeded its {seconds:g}s attempt"
                        " budget",
                        field=label,
                    ),
                ):
                    # Inside the deadline: a fault-injected hang models
                    # the simulation hanging, so SIGALRM must cover it.
                    state.plan.apply_serial(task.label, task.attempts)
                    result = _simulate_config(
                        annotated, task.machine, state.workload
                    )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                elapsed = time.monotonic() - started
                if not state.fail(
                    task, f"{type(exc).__name__}: {exc}", elapsed
                ):
                    break
            else:
                state.complete(task, result, time.monotonic() - started)
                break


def _spawn_worker(ctx, worker_id, result_queue, spill_path, state):
    task_queue = ctx.SimpleQueue()
    process = ctx.Process(
        target=_worker_main,
        args=(worker_id, task_queue, result_queue, spill_path,
              state.plan.spec, state.workload),
        daemon=True,
    )
    process.start()
    return _Worker(worker_id, process, task_queue)


def _shutdown_pool(workers):
    """Stop every worker: sentinel the living, kill the stubborn."""
    for worker in workers.values():
        if worker.process.is_alive():
            try:
                worker.task_queue.put(None)
            except (OSError, ValueError):
                pass
    for worker in workers.values():
        worker.process.join(timeout=0.5)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=_KILL_JOIN_SECONDS)


def _run_pool(annotated, tasks, state, n_jobs):
    """Drain *tasks* on a supervised worker pool.

    Returns the tasks still unfinished when the pool degrades (too
    many worker replacements) or cannot be built at all; the caller
    finishes them serially.  An empty return means the pool drained
    everything (completions and quarantines both count as finished).
    """
    policy = state.policy
    ctx, spill_path = share_annotated(annotated)
    if ctx is None:
        return tasks
    result_queue = ctx.Queue()
    workers = {}
    next_worker_id = 0
    waiting = collections.deque(tasks)
    inflight = {}  # task.index -> _Task
    try:
        try:
            for _ in range(min(n_jobs, len(tasks))):
                workers[next_worker_id] = _spawn_worker(
                    ctx, next_worker_id, result_queue, spill_path, state
                )
                next_worker_id += 1
        except OSError:
            return list(waiting)

        def _recover(worker, error, elapsed):
            """Handle a dead/hung worker: requeue or quarantine its task."""
            task = worker.task
            worker.task = None
            state.worker_replacements += 1
            del workers[worker.id]
            if task is not None:
                inflight.pop(task.index, None)
                if state.fail(task, error, elapsed):
                    waiting.append(task)

        while waiting or inflight:
            now = time.monotonic()
            # Dispatch ready tasks to idle workers, grid order first.
            idle = [w for w in workers.values() if w.task is None]
            for worker in idle:
                task = None
                for _ in range(len(waiting)):
                    candidate = waiting.popleft()
                    if candidate.not_before <= now:
                        task = candidate
                        break
                    waiting.append(candidate)  # still backing off
                if task is None:
                    break
                task.attempts += 1
                state.journal_attempt(task)
                worker.task = task
                worker.started = now
                worker.deadline = (
                    now + policy.config_timeout
                    if policy.config_timeout is not None else None
                )
                inflight[task.index] = task
                worker.task_queue.put(
                    (task.index, task.label, task.machine, task.attempts)
                )
            # Collect one completion (or time out and police the pool).
            try:
                worker_id, task_index, ok, payload = result_queue.get(
                    timeout=_POLL_SECONDS
                )
            except queue_module.Empty:
                pass
            else:
                task = inflight.pop(task_index, None)
                worker = workers.get(worker_id)
                if worker is not None and worker.task is not None \
                        and worker.task.index == task_index:
                    elapsed = time.monotonic() - worker.started
                    worker.task = None
                    worker.deadline = None
                else:
                    elapsed = 0.0
                if task is not None:
                    if ok:
                        state.complete(task, payload, elapsed)
                    elif state.fail(task, payload, elapsed):
                        waiting.append(task)
            # Police the pool: dead workers and blown deadlines.
            now = time.monotonic()
            for worker in list(workers.values()):
                if not worker.process.is_alive():
                    elapsed = now - worker.started if worker.started else 0.0
                    exitcode = worker.process.exitcode
                    _recover(
                        worker,
                        f"worker process died (exit code {exitcode})",
                        elapsed,
                    )
                elif worker.deadline is not None and now > worker.deadline:
                    worker.process.kill()
                    worker.process.join(timeout=_KILL_JOIN_SECONDS)
                    _recover(
                        worker,
                        f"SweepTimeout: config exceeded its"
                        f" {policy.config_timeout:g}s attempt budget"
                        " (worker killed)",
                        now - worker.started,
                    )
            if state.worker_replacements > policy.pool_failure_limit:
                # The pool keeps dying; hand the rest to the serial
                # backend rather than thrash respawning workers.
                remaining = list(waiting) + list(inflight.values())
                waiting.clear()
                inflight.clear()
                return remaining
            # Respawn up to the worker budget while work remains.
            while len(workers) < min(n_jobs, len(waiting) + len(inflight)):
                try:
                    workers[next_worker_id] = _spawn_worker(
                        ctx, next_worker_id, result_queue, spill_path,
                        state,
                    )
                    next_worker_id += 1
                except OSError:
                    remaining = list(waiting) + list(inflight.values())
                    waiting.clear()
                    inflight.clear()
                    return remaining
        return []
    finally:
        _shutdown_pool(workers)
        result_queue.close()
        result_queue.join_thread()
        unshare_annotated(spill_path)


def supervised_sweep(annotated, machines, workload=None, seed=None,
                     trace_len=None, jobs=None, journal_path=None,
                     resume=False, policy=None, progress=None,
                     fault_plan=None):
    """Run a machine grid under crash-safe supervision.

    Parameters mirror :func:`repro.analysis.sweep.sweep` plus:

    seed, trace_len:
        Workload identity folded into each config's journal key
        (defaults: ``None`` and ``len(annotated.trace)``).  Pass the
        same values when resuming — the journal meta check enforces it.
    journal_path:
        JSON-lines journal location.  Without it the sweep is still
        supervised (timeouts, retries, quarantine, worker replacement)
        but not resumable.
    resume:
        Replay an existing journal first and re-execute only
        configurations it marks unfinished.  With ``resume=False`` an
        existing journal file is truncated and the sweep starts over.
    policy:
        A :class:`SupervisorPolicy` (default: 2 retries, no timeout).
    fault_plan:
        A :class:`~repro.robustness.faults.ProcessFaultPlan` for chaos
        testing; defaults to ``REPRO_PROCESS_FAULTS`` (normally empty).

    Returns a :class:`SupervisedSweepResult`; quarantined configs are
    reported there, fail-soft, rather than raised.  ``progress`` fires
    per completed label — in grid order on the serial backend, in
    completion order on the pool.
    """
    policy = policy if policy is not None else SupervisorPolicy()
    plan = fault_plan if fault_plan is not None \
        else ProcessFaultPlan.from_env()
    if hasattr(machines, "items"):
        machines = machines.items()
    pairs = list(machines)
    name = workload or annotated.trace.name
    if trace_len is None:
        trace_len = len(annotated.trace)
    labels = [label for label, _ in pairs]
    if len(set(labels)) != len(labels):
        raise ConfigError(
            "sweep grid has duplicate labels; every grid point needs a"
            " unique label for journalling",
            field="machines",
        )
    tasks = [
        _Task(index, label, machine,
              config_key(name, seed, trace_len, machine))
        for index, (label, machine) in enumerate(pairs)
    ]

    journal = None
    restored = {}
    prior_quarantine = []
    if journal_path is not None:
        journal = SweepJournal(journal_path)
        if plan is not None and not plan.empty:
            journal.tear_hook = (
                lambda record: record.get("type") == "result"
                and plan.should_crash_journal(
                    record.get("label"), record.get("attempt")
                )
            )
        if resume and os.path.exists(journal.path):
            journal_state = journal.check_meta(name, seed, trace_len)
            for task in tasks:
                task.attempts = journal_state.attempts.get(task.key, 0)
                if task.key in journal_state.results:
                    restored[task.label] = result_from_payload(
                        journal_state.results[task.key]
                    )
                elif task.key in journal_state.quarantined:
                    dead = journal_state.quarantined[task.key]
                    prior_quarantine.append(QuarantinedConfig(
                        label=task.label, key=task.key,
                        attempts=dead["attempts"], error=dead["error"],
                    ))
        else:
            journal.initialize(name, seed, trace_len)

    finished_labels = set(restored)
    finished_labels.update(q.label for q in prior_quarantine)
    pending = [t for t in tasks if t.label not in finished_labels]

    state = _SweepState(policy, plan, journal, progress, name)
    state.quarantined.extend(prior_quarantine)

    degraded = False
    if pending:
        n_jobs = min(resolve_jobs(jobs), len(pending))
        if n_jobs > 1:
            leftover = _run_pool(annotated, pending, state, n_jobs)
            if leftover:
                degraded = True
                leftover.sort(key=lambda task: task.index)
                _run_serial(annotated, leftover, state)
        else:
            _run_serial(annotated, pending, state)

    ordered = {}
    for task in tasks:
        if task.label in restored:
            ordered[task.label] = restored[task.label]
        elif task.label in state.results:
            ordered[task.label] = state.results[task.label]
    return SupervisedSweepResult(
        workload=name,
        results=ordered,
        quarantined=state.quarantined,
        resumed=len(restored),
        executed=len(state.results),
        worker_replacements=state.worker_replacements,
        degraded_to_serial=degraded,
    )
