"""Append-only sweep journal: crash-safe checkpointing for sweeps.

A supervised sweep (:mod:`repro.robustness.supervisor`) records every
dispatch, completion, failure and quarantine decision in a JSON-lines
journal.  The journal is the sweep's write-ahead log: each record is
one ``json.dumps`` line appended, flushed and fsynced before the
supervisor acts on it, so after a crash — of a worker, of the
supervisor itself, or of the whole machine — replaying the journal
reconstructs exactly which configurations finished and which must run
again.

Crash model.  A record is either fully durable or it is the *torn
tail*: the final line of the file, cut short mid-write.  Replay
silently discards a torn tail (that attempt simply re-executes);
corruption anywhere earlier means the file is not one of our journals
and raises :class:`~repro.robustness.errors.JournalError`.  Because
results restored from the journal are JSON round-trips of
:class:`~repro.core.results.MLPResult` (ints and shortest-repr floats,
both of which round-trip exactly), a resumed sweep is bit-identical to
one that ran straight through.

Record types::

    {"type": "meta", "version": 1, "workload": ..., "seed": ...,
     "trace_len": ...}
    {"type": "attempt", "key": ..., "label": ..., "attempt": N}
    {"type": "result", "key": ..., "label": ..., "attempt": N,
     "elapsed": S, "result": {...}}
    {"type": "failure", "key": ..., "label": ..., "attempt": N,
     "elapsed": S, "error": "..."}
    {"type": "quarantine", "key": ..., "label": ..., "attempts": N,
     "error": "..."}

``key`` is :func:`config_key`: the SHA-256 content hash of
``(workload, seed, trace_len, machine-config)``, so a journal entry
survives label renames and never matches a different grid point.
"""

import dataclasses
import enum
import hashlib
import json
import os

from repro.core.results import MLPResult
from repro.core.termination import InhibitorCounts
from repro.robustness.errors import InjectedCrash, JournalError

#: Journal format version; bump on incompatible schema changes.
JOURNAL_VERSION = 1

#: MLPResult fields journalled verbatim (ints and strings).
_RESULT_SCALARS = (
    "workload", "machine_label", "instructions", "accesses", "epochs",
    "dmiss_accesses", "imiss_accesses", "prefetch_accesses",
    "store_accesses", "store_epochs",
)

#: CycleMetrics fields journalled verbatim (ints and strings).  A
#: cyclesim payload is marked ``"kind": "cyclesim"``; payloads without
#: the marker are MLPResults (journals written before the cycle tier
#: joined the sweep backend replay unchanged).
_CYCLE_RESULT_SCALARS = (
    "workload", "label", "instructions", "cycles", "offchip_accesses",
    "dmiss_accesses", "imiss_accesses", "prefetch_accesses",
    "nonzero_cycles", "outstanding_integral",
)


def _canonical(value):
    """Project *value* onto JSON-stable primitives, recursively.

    Dataclasses become sorted field dicts, enums their ``name`` — the
    canonical form feeding :func:`config_key`, so two equal machine
    configurations always hash identically.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(val) for key, val in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise JournalError(
        f"cannot canonicalise {type(value).__name__} for a config key",
        field=type(value).__name__,
    )


def config_key(workload, seed, trace_len, machine):
    """Content hash identifying one grid point of one sweep.

    The key is a pure function of what determines the simulation's
    output — the workload identity ``(workload, seed, trace_len)`` and
    the full machine configuration — so journal entries are immune to
    label renames and grid reordering.
    """
    blob = json.dumps(
        {
            "workload": workload,
            "seed": seed,
            "trace_len": trace_len,
            "machine": _canonical(machine),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_to_payload(result):
    """Project an :class:`MLPResult` or :class:`CycleMetrics` onto a
    JSON-safe dict.

    Raises
    ------
    JournalError
        If an MLPResult carries ``epoch_records`` (per-epoch member
        sets from ``record_sets=True`` runs) — those are debugging
        payloads a sweep never produces and the journal does not
        persist.
    """
    # Imported lazily: repro.robustness loads during repro.core.config,
    # before the cyclesim package (which needs core.config) can exist.
    from repro.cyclesim.metrics import STALL_CATEGORIES, CycleMetrics

    if isinstance(result, CycleMetrics):
        payload = {
            name: getattr(result, name) for name in _CYCLE_RESULT_SCALARS
        }
        payload["kind"] = "cyclesim"
        payload["stall_cycles"] = {
            category: result.stall_cycles.get(category, 0)
            for category in STALL_CATEGORIES
        }
        return payload
    if result.epoch_records is not None:
        raise JournalError(
            "results with epoch_records cannot be journalled"
            " (sweeps never record epoch sets)",
            field="epoch_records",
        )
    payload = {name: getattr(result, name) for name in _RESULT_SCALARS}
    payload["inhibitors"] = {
        inhibitor.value: count
        for inhibitor, count in result.inhibitors.as_dict().items()
    }
    return payload


def result_from_payload(payload):
    """Rebuild the exact result object a payload came from.

    Dispatches on the ``"kind"`` marker: ``"cyclesim"`` payloads
    restore :class:`CycleMetrics`, unmarked payloads restore
    :class:`MLPResult` (every journal written before the marker
    existed).  All persisted fields are ints and strings, so the
    round-trip is exact and a resumed sweep stays bit-identical.
    """
    if payload.get("kind") == "cyclesim":
        from repro.cyclesim.metrics import STALL_CATEGORIES, CycleMetrics

        try:
            scalars = {
                name: payload[name] for name in _CYCLE_RESULT_SCALARS
            }
            stall_cycles = {
                category: int(payload["stall_cycles"][category])
                for category in STALL_CATEGORIES
            }
        except (KeyError, TypeError) as exc:
            raise JournalError(
                f"journalled cyclesim result is missing field {exc}",
                field="result",
            ) from None
        return CycleMetrics(stall_cycles=stall_cycles, **scalars)
    try:
        scalars = {name: payload[name] for name in _RESULT_SCALARS}
        inhibitors = InhibitorCounts.from_dict(payload["inhibitors"])
    except (KeyError, TypeError) as exc:
        raise JournalError(
            f"journalled result is missing field {exc}", field="result"
        ) from None
    return MLPResult(inhibitors=inhibitors, epoch_records=None, **scalars)


@dataclasses.dataclass
class JournalState:
    """Everything replay reconstructs from a journal file."""

    meta: dict
    results: dict = dataclasses.field(default_factory=dict)
    #: key -> result payload (JSON dict; decode with result_from_payload)
    attempts: dict = dataclasses.field(default_factory=dict)
    #: key -> highest attempt number journalled (dispatched or finished)
    quarantined: dict = dataclasses.field(default_factory=dict)
    #: key -> {"label", "attempts", "error"} dead-letter records
    labels: dict = dataclasses.field(default_factory=dict)
    #: key -> last label seen (diagnostics only; keys are authoritative)
    torn_tail: bool = False
    #: True when the final record was cut short and discarded

    def finished(self, key):
        """A finished key needs no re-execution on resume."""
        return key in self.results or key in self.quarantined


class SweepJournal:
    """Appender/replayer for one sweep journal file.

    Appends open the file per record (``"a"``), write one complete
    line, flush and fsync: the journal survives any crash with at most
    one torn trailing record.  The optional :attr:`tear_hook` is the
    chaos harness's entry point — when it returns true for a record,
    the journal writes only a prefix of the line and raises
    :class:`~repro.robustness.errors.InjectedCrash`, simulating the
    supervisor dying mid-write.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self.tear_hook = None

    # -- writing ------------------------------------------------------

    def _append(self, record):
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        torn = self.tear_hook is not None and self.tear_hook(record)
        data = line[: max(1, len(line) // 2)] if torn else line + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if torn:
            raise InjectedCrash(
                "injected supervisor crash mid-journal-write"
                f" (record type {record.get('type')!r},"
                f" label {record.get('label')!r})",
                path=self.path,
                field=record.get("label"),
            )

    def initialize(self, workload, seed, trace_len):
        """Start a fresh journal (truncating any previous file)."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._append({
            "type": "meta",
            "version": JOURNAL_VERSION,
            "workload": workload,
            "seed": seed,
            "trace_len": trace_len,
        })

    def record_attempt(self, key, label, attempt):
        """Journal the dispatch of attempt *attempt* for config *key*."""
        self._append({
            "type": "attempt", "key": key, "label": label,
            "attempt": attempt,
        })

    def record_result(self, key, label, attempt, elapsed, result):
        """Journal a completed config with its full result payload."""
        self._append({
            "type": "result", "key": key, "label": label,
            "attempt": attempt, "elapsed": elapsed,
            "result": result_to_payload(result),
        })

    def record_failure(self, key, label, attempt, elapsed, error):
        """Journal one failed attempt (the config may still retry)."""
        self._append({
            "type": "failure", "key": key, "label": label,
            "attempt": attempt, "elapsed": elapsed, "error": str(error),
        })

    def record_quarantine(self, key, label, attempts, error):
        """Journal the dead-letter decision for a poison config."""
        self._append({
            "type": "quarantine", "key": key, "label": label,
            "attempts": attempts, "error": str(error),
        })

    # -- replaying ----------------------------------------------------

    def replay(self):
        """Reconstruct :class:`JournalState` from the file on disk.

        Raises
        ------
        JournalError
            If the file does not start with a matching meta record or
            any record *before the tail* fails to parse.  A torn tail
            is discarded, not raised.
        """
        with open(self.path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        lines = raw.split("\n")
        torn = False
        if lines and lines[-1] == "":
            lines.pop()  # cleanly terminated final record
        elif lines:
            lines.pop()  # unterminated: a torn trailing record
            torn = True
        records = []
        for index, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except ValueError:
                if index == len(lines) - 1:
                    torn = True  # torn mid-line, newline already present
                    break
                raise JournalError(
                    f"corrupt journal record at line {index + 1}",
                    path=self.path,
                ) from None
        if not records or records[0].get("type") != "meta":
            raise JournalError(
                "not a sweep journal (no meta record)", path=self.path
            )
        meta = records[0]
        if meta.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal version {meta.get('version')!r} is not the"
                f" supported version {JOURNAL_VERSION}",
                path=self.path, field="version",
            )
        state = JournalState(meta=meta, torn_tail=torn)
        for record in records[1:]:
            kind = record.get("type")
            key = record.get("key")
            if key is None:
                continue
            state.labels[key] = record.get("label")
            if kind == "attempt":
                attempt = int(record.get("attempt", 0))
                state.attempts[key] = max(state.attempts.get(key, 0), attempt)
            elif kind == "result":
                state.results[key] = record["result"]
                attempt = int(record.get("attempt", 0))
                state.attempts[key] = max(state.attempts.get(key, 0), attempt)
            elif kind == "failure":
                attempt = int(record.get("attempt", 0))
                state.attempts[key] = max(state.attempts.get(key, 0), attempt)
            elif kind == "quarantine":
                state.quarantined[key] = {
                    "label": record.get("label"),
                    "attempts": int(record.get("attempts", 0)),
                    "error": record.get("error", ""),
                }
        return state

    def check_meta(self, workload, seed, trace_len, state=None):
        """Verify a replayed journal belongs to this sweep.

        Raises :class:`JournalError` naming the mismatched field, so a
        ``--resume`` against the wrong journal fails loudly instead of
        silently skipping configurations that never ran.
        """
        state = state if state is not None else self.replay()
        expected = {
            "workload": workload, "seed": seed, "trace_len": trace_len,
        }
        for field, value in expected.items():
            found = state.meta.get(field)
            if found != value:
                raise JournalError(
                    f"journal was recorded for {field}={found!r}, but"
                    f" this sweep has {field}={value!r}; refusing to"
                    " resume from the wrong journal",
                    path=self.path, field=field,
                )
        return state
