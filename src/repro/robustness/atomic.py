"""Atomic file persistence: write-temp-then-rename.

Every archive and result file the reproduction writes goes through
these helpers.  The payload is written to a temporary sibling file and
moved into place with :func:`os.replace` (atomic on POSIX and Windows
within a filesystem), so an interrupted or failed write never leaves a
truncated file at the destination path — the destination either keeps
its previous content or receives the complete new content.
"""

import contextlib
import os
import tempfile

import numpy as np


@contextlib.contextmanager
def atomic_write(path, mode="wb"):
    """Context manager yielding a temp-file handle; renames on success.

    The temporary file is created next to *path* (same filesystem, so
    the final :func:`os.replace` is atomic), fsynced, and renamed over
    *path* only if the ``with`` body completes without raising.  On
    any failure the temporary file is removed and *path* is untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise


def atomic_write_text(path, text):
    """Atomically write *text* to *path* (temp file + rename)."""
    with atomic_write(path, "w") as handle:
        handle.write(text)


def atomic_savez(path, **arrays):
    """Atomically write a compressed ``.npz`` archive of *arrays*.

    Writing through a file handle (not a path) keeps numpy from
    appending its own ``.npz`` suffix to the temporary name, so the
    rename target is exact.
    """
    with atomic_write(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
