"""Deterministic fault injection for trace/annotation archives.

Each fault takes a valid ``.npz`` archive on disk and rewrites it with
one controlled corruption; the test suite then proves that every
loader rejects the damaged file with a diagnostic
:class:`~repro.robustness.errors.ReproError` instead of crashing with
a raw traceback or — worse — silently loading wrong data and emitting
wrong MLP numbers.  All faults are pure functions of the input file
(no randomness), so failures reproduce exactly.

The registry :data:`FAULTS` maps fault names to injector callables;
:func:`inject_fault` dispatches by name.  Injectors that rewrite the
archive go through :mod:`repro.robustness.atomic`, so a fault file is
itself always completely written.
"""

import numpy as np

from repro.robustness.atomic import atomic_savez, atomic_write
from repro.robustness.errors import ConfigError

#: Version key used by the trace/annotation archive format.
_VERSION_KEY = "__version__"


def _load_payload(path):
    """Read every array of an ``.npz`` archive into a plain dict."""
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def truncate_archive(path, keep_fraction=0.5):
    """Cut the archive file to its first *keep_fraction* of bytes.

    Models a save interrupted by a crash or a partial copy: the zip
    central directory is lost, so the file is unreadable as an
    archive.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    keep = max(1, int(len(raw) * keep_fraction))
    with atomic_write(path, "wb") as handle:
        handle.write(raw[:keep])


def drop_column(path, column="addr"):
    """Remove one column from the archive entirely."""
    payload = _load_payload(path)
    payload.pop(column, None)
    atomic_savez(path, **payload)


def add_extra_column(path, column="bogus"):
    """Add an unknown column the format does not define."""
    payload = _load_payload(path)
    length = max((len(v) for v in payload.values() if v.ndim), default=1)
    payload[column] = np.zeros(length, dtype=np.int64)
    atomic_savez(path, **payload)


def corrupt_dtype(path, column="addr"):
    """Rewrite one column with a float dtype instead of its integer."""
    payload = _load_payload(path)
    payload[column] = np.asarray(payload[column], dtype=np.float64)
    atomic_savez(path, **payload)


def inject_nan(path, column="addr"):
    """Replace one column's first value with NaN.

    Integer columns cannot hold NaN, so the rewrite necessarily turns
    the column float — exactly what a buggy pandas/numpy round-trip
    of the archive would produce.
    """
    payload = _load_payload(path)
    column_values = np.asarray(payload[column], dtype=np.float64)
    if column_values.size:
        column_values[0] = np.nan
    payload[column] = column_values
    atomic_savez(path, **payload)


def out_of_range_register(path, column="src1", value=4096):
    """Set a register-operand entry far outside the register file."""
    payload = _load_payload(path)
    column_values = payload[column].copy()
    if column_values.size:
        column_values[0] = value
    payload[column] = column_values
    atomic_savez(path, **payload)


def skew_version(path, delta=1):
    """Bump the archive's format version past what the library knows."""
    payload = _load_payload(path)
    version = int(payload[_VERSION_KEY][0]) + delta
    payload[_VERSION_KEY] = np.asarray([version], dtype=np.int64)
    atomic_savez(path, **payload)


def corrupt_mask(path, field="ann_dmiss"):
    """Set an annotation mask everywhere, breaking event consistency.

    A data-miss mask that marks ALU instructions (which cannot access
    memory) is the canonical silent-wrong-MLP corruption: the epoch
    engine would happily count the phantom misses.
    """
    payload = _load_payload(path)
    payload[field] = np.ones_like(payload[field])
    atomic_savez(path, **payload)


#: Registry of fault names to injector callables.
FAULTS = {
    "truncate": truncate_archive,
    "drop_column": drop_column,
    "extra_column": add_extra_column,
    "wrong_dtype": corrupt_dtype,
    "nan": inject_nan,
    "out_of_range_register": out_of_range_register,
    "version_skew": skew_version,
    "corrupt_mask": corrupt_mask,
}


def inject_fault(path, fault, **options):
    """Apply the named *fault* to the archive at *path*.

    Raises
    ------
    ConfigError
        If *fault* is not a registered fault name.
    """
    try:
        injector = FAULTS[fault]
    except KeyError:
        raise ConfigError(
            f"unknown fault {fault!r}; expected one of {sorted(FAULTS)}",
            field=fault,
        ) from None
    injector(path, **options)
