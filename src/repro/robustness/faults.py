"""Deterministic fault injection: data corruption and process faults.

**Data-corruption faults** (PR 1) take a valid ``.npz`` archive on
disk and rewrite it with one controlled corruption; the test suite
then proves that every loader rejects the damaged file with a
diagnostic :class:`~repro.robustness.errors.ReproError` instead of
crashing with a raw traceback or — worse — silently loading wrong data
and emitting wrong MLP numbers.  The registry :data:`FAULTS` maps
fault names to injector callables; :func:`inject_fault` dispatches by
name.  Injectors that rewrite the archive go through
:mod:`repro.robustness.atomic`, so a fault file is itself always
completely written.

**Process-level faults** extend the harness to the supervised sweep
layer: a :class:`ProcessFaultPlan` (parsed from a spec string or the
``REPRO_PROCESS_FAULTS`` environment variable) deterministically
kills a sweep worker with SIGKILL at a named configuration, hangs it,
raises an injected failure, or crashes the supervisor itself mid-
journal-write.  The chaos suite (``tests/test_chaos.py``) uses these
to prove that a sweep under injected process faults finishes with
results bit-identical to a clean serial run.  All faults are pure
functions of their spec (no randomness), so failures reproduce
exactly.
"""

import dataclasses
import os
import signal
import time

import numpy as np

from repro.robustness.atomic import atomic_savez, atomic_write
from repro.robustness.errors import ConfigError, InjectedFault

#: Version key used by the trace/annotation archive format.
_VERSION_KEY = "__version__"


def _load_payload(path):
    """Read every array of an ``.npz`` archive into a plain dict."""
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def truncate_archive(path, keep_fraction=0.5):
    """Cut the archive file to its first *keep_fraction* of bytes.

    Models a save interrupted by a crash or a partial copy: the zip
    central directory is lost, so the file is unreadable as an
    archive.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    keep = max(1, int(len(raw) * keep_fraction))
    with atomic_write(path, "wb") as handle:
        handle.write(raw[:keep])


def drop_column(path, column="addr"):
    """Remove one column from the archive entirely."""
    payload = _load_payload(path)
    payload.pop(column, None)
    atomic_savez(path, **payload)


def add_extra_column(path, column="bogus"):
    """Add an unknown column the format does not define."""
    payload = _load_payload(path)
    length = max((len(v) for v in payload.values() if v.ndim), default=1)
    payload[column] = np.zeros(length, dtype=np.int64)
    atomic_savez(path, **payload)


def corrupt_dtype(path, column="addr"):
    """Rewrite one column with a float dtype instead of its integer."""
    payload = _load_payload(path)
    payload[column] = np.asarray(payload[column], dtype=np.float64)
    atomic_savez(path, **payload)


def inject_nan(path, column="addr"):
    """Replace one column's first value with NaN.

    Integer columns cannot hold NaN, so the rewrite necessarily turns
    the column float — exactly what a buggy pandas/numpy round-trip
    of the archive would produce.
    """
    payload = _load_payload(path)
    column_values = np.asarray(payload[column], dtype=np.float64)
    if column_values.size:
        column_values[0] = np.nan
    payload[column] = column_values
    atomic_savez(path, **payload)


def out_of_range_register(path, column="src1", value=4096):
    """Set a register-operand entry far outside the register file."""
    payload = _load_payload(path)
    column_values = payload[column].copy()
    if column_values.size:
        column_values[0] = value
    payload[column] = column_values
    atomic_savez(path, **payload)


def skew_version(path, delta=1):
    """Bump the archive's format version past what the library knows."""
    payload = _load_payload(path)
    version = int(payload[_VERSION_KEY][0]) + delta
    payload[_VERSION_KEY] = np.asarray([version], dtype=np.int64)
    atomic_savez(path, **payload)


def corrupt_mask(path, field="ann_dmiss"):
    """Set an annotation mask everywhere, breaking event consistency.

    A data-miss mask that marks ALU instructions (which cannot access
    memory) is the canonical silent-wrong-MLP corruption: the epoch
    engine would happily count the phantom misses.
    """
    payload = _load_payload(path)
    payload[field] = np.ones_like(payload[field])
    atomic_savez(path, **payload)


#: Registry of fault names to injector callables.
FAULTS = {
    "truncate": truncate_archive,
    "drop_column": drop_column,
    "extra_column": add_extra_column,
    "wrong_dtype": corrupt_dtype,
    "nan": inject_nan,
    "out_of_range_register": out_of_range_register,
    "version_skew": skew_version,
    "corrupt_mask": corrupt_mask,
}


def inject_fault(path, fault, **options):
    """Apply the named *fault* to the archive at *path*.

    Raises
    ------
    ConfigError
        If *fault* is not a registered fault name.
    """
    try:
        injector = FAULTS[fault]
    except KeyError:
        raise ConfigError(
            f"unknown fault {fault!r}; expected one of {sorted(FAULTS)}",
            field=fault,
        ) from None
    injector(path, **options)


# ---------------------------------------------------------------------
# Process-level faults (sweep supervision chaos harness)
# ---------------------------------------------------------------------

#: Fault kinds a :class:`ProcessFaultPlan` understands.
PROCESS_FAULT_KINDS = ("kill", "hang", "fail", "crash-journal")

#: How long a hung worker sleeps; the supervisor's per-config timeout
#: is expected to SIGKILL it (pool) or SIGALRM out of it (serial) long
#: before this elapses.
_HANG_SECONDS = 3600.0

#: Environment variable carrying the default fault spec.
FAULT_ENV = "REPRO_PROCESS_FAULTS"


@dataclasses.dataclass(frozen=True)
class ProcessFaultPlan:
    """A deterministic schedule of process-level faults.

    A plan is parsed from a whitespace/comma-separated spec of
    ``kind:label[@attempt]`` entries, e.g.::

        "kill:64A@1 hang:64C@1 crash-journal:64E@1 fail:128C"

    * ``kill`` — the worker running *label* SIGKILLs itself before
      simulating (models an OOM kill);
    * ``hang`` — the worker sleeps instead of simulating (models a
      livelocked or far-memory-stalled config);
    * ``fail`` — the worker raises :class:`InjectedFault` (an organic
      in-worker exception; also honoured by the serial backend);
    * ``crash-journal`` — the *supervisor* tears the journal record for
      *label* mid-write and dies (models a crash of the whole sweep).

    ``@attempt`` scopes an entry to one attempt number (1-based);
    omitting it fires the fault on every attempt — a poison config the
    supervisor must quarantine.  The plan is carried as its canonical
    spec string so it crosses process boundaries under any start
    method.
    """

    spec: str = ""
    entries: tuple = ()

    @classmethod
    def parse(cls, spec):
        """Parse a spec string (empty or ``None`` → the empty plan)."""
        entries = []
        for part in (spec or "").replace(",", " ").split():
            kind, _, rest = part.partition(":")
            if kind not in PROCESS_FAULT_KINDS or not rest:
                raise ConfigError(
                    f"bad process-fault entry {part!r}; expected"
                    f" kind:label[@attempt] with kind one of"
                    f" {PROCESS_FAULT_KINDS}",
                    field=part,
                )
            label, _, attempt = rest.partition("@")
            if attempt:
                try:
                    attempt = int(attempt)
                except ValueError:
                    raise ConfigError(
                        f"bad process-fault entry {part!r}: attempt"
                        f" {attempt!r} is not an integer",
                        field=part,
                    ) from None
            else:
                attempt = None
            entries.append((kind, label, attempt))
        canonical = " ".join(
            f"{kind}:{label}" + (f"@{attempt}" if attempt else "")
            for kind, label, attempt in entries
        )
        return cls(spec=canonical, entries=tuple(entries))

    @classmethod
    def from_env(cls):
        """The plan named by ``REPRO_PROCESS_FAULTS`` (usually empty)."""
        return cls.parse(os.environ.get(FAULT_ENV, ""))

    @property
    def empty(self):
        return not self.entries

    def _matches(self, kind, label, attempt):
        return any(
            entry_kind == kind and entry_label == label
            and (entry_attempt is None or entry_attempt == attempt)
            for entry_kind, entry_label, entry_attempt in self.entries
        )

    def should_crash_journal(self, label, attempt):
        """True when the supervisor must die journalling this record."""
        return self._matches("crash-journal", label, attempt)

    def apply_in_worker(self, label, attempt):
        """Fire any worker-scoped fault for (*label*, *attempt*).

        Called inside a sweep worker process right before simulating.
        ``kill`` entries SIGKILL the worker (no cleanup, like the OOM
        killer); ``hang`` entries sleep far past any sane per-config
        timeout; ``fail`` entries raise :class:`InjectedFault`.
        """
        if self._matches("kill", label, attempt):
            os.kill(os.getpid(), signal.SIGKILL)
        if self._matches("hang", label, attempt):
            time.sleep(_HANG_SECONDS)
        if self._matches("fail", label, attempt):
            raise InjectedFault(
                f"injected worker fault for config {label!r}"
                f" (attempt {attempt})",
                field=label,
            )

    def apply_serial(self, label, attempt):
        """Fire faults for the serial backend (which *is* the parent).

        ``kill`` entries are skipped — SIGKILLing the serial backend
        would kill the supervisor itself, which is what
        ``crash-journal`` models explicitly; ``hang`` and ``fail``
        behave as in workers (the serial per-config SIGALRM deadline
        recovers the hang).
        """
        if self._matches("hang", label, attempt):
            time.sleep(_HANG_SECONDS)
        if self._matches("fail", label, attempt):
            raise InjectedFault(
                f"injected worker fault for config {label!r}"
                f" (attempt {attempt})",
                field=label,
            )


def tear_journal(path, drop_bytes=16):
    """Cut the final *drop_bytes* bytes off a sweep journal.

    Models a supervisor crash mid-journal-write from the *outside* (the
    in-process variant is a ``crash-journal`` plan entry): the final
    record loses its tail, and replay must discard exactly that record
    and nothing else.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    keep = max(1, len(raw) - int(drop_bytes))
    with atomic_write(path, "wb") as handle:
        handle.write(raw[:keep])


def corrupt_cache_entries(directory, fault="truncate"):
    """Apply *fault* to every annotation archive in a disk cache dir.

    Returns the paths corrupted.  The chaos suite uses this to prove
    the annotation cache quarantines damage and regenerates instead of
    crashing or silently reusing bad data.
    """
    corrupted = []
    if not os.path.isdir(directory):
        return corrupted
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("annotated-") and entry.endswith(".npz"):
            path = os.path.join(directory, entry)
            inject_fault(path, fault)
            corrupted.append(path)
    return corrupted
