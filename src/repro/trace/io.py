"""Binary trace and annotation persistence.

Traces round-trip through numpy ``.npz`` archives: one array per column
plus a small metadata record.  Annotated traces (trace + event masks)
round-trip the same way, so the expensive cache/predictor pass can be
done once and shared.  Both formats are versioned so stale cached files
are rejected rather than silently misread.

Robustness contract (see ``docs/ROBUSTNESS.md``):

* all writes are atomic (temp file + rename via
  :mod:`repro.robustness.atomic`), so an interrupted save never leaves
  a partial archive at the destination;
* all loads validate the archive strictly — unreadable files, version
  skew, missing/unknown columns, wrong dtypes, unequal lengths,
  out-of-range values and inconsistent event masks all raise
  :class:`~repro.robustness.errors.TraceFormatError` naming the file
  and the field at fault.
"""

import zipfile

import numpy as np

from repro.robustness.atomic import atomic_savez
from repro.robustness.errors import TraceFormatError
from repro.robustness.validate import (
    validate_annotated,
    validate_archive_columns,
    validate_trace,
)
from repro.trace.trace import COLUMNS, Trace

#: Bump when the column schema changes.
FORMAT_VERSION = 1

#: Event masks persisted for an annotated trace.
ANNOTATION_FIELDS = (
    "dmiss", "pmiss", "pfuseful", "imiss", "mispred", "vp_outcome", "smiss"
)

#: Archive keys that carry metadata rather than column data.
_METADATA_KEYS = ("__version__", "__name__", "ann_measure_start")


def save_trace(trace, path):
    """Atomically write *trace* to *path* as a compressed ``.npz``."""
    payload = {name: getattr(trace, name) for name, _ in COLUMNS}
    payload["__version__"] = np.asarray([FORMAT_VERSION], dtype=np.int64)
    payload["__name__"] = np.asarray([trace.name], dtype=np.str_)
    atomic_savez(path, **payload)


def _read_archive(path, kind):
    """Read every array of the archive at *path*, or reject it loudly."""
    try:
        with np.load(path, allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}
    except TraceFormatError:
        raise
    except (zipfile.BadZipFile, ValueError, EOFError, KeyError, OSError) as error:
        raise TraceFormatError(
            f"unreadable {kind} archive ({error})", path=path
        ) from error


def _check_version(payload, path, kind):
    """Reject non-archives and format-version skew."""
    if "__version__" not in payload:
        raise TraceFormatError(
            f"not a repro {kind} archive (no version record)",
            path=path, field="__version__",
        )
    version = int(payload["__version__"][0])
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"{kind} format version mismatch: file has {version},"
            f" library expects {FORMAT_VERSION}",
            path=path, field="__version__",
        )


def load_trace(path):
    """Read a trace previously written by :func:`save_trace`.

    Raises
    ------
    TraceFormatError
        If the archive is unreadable, has a different format version,
        is missing a column, contains an unknown column, or holds
        out-of-range values.  (A :class:`ValueError` handler keeps
        working: the error subclasses it.)
    """
    payload = _read_archive(path, "trace")
    _check_version(payload, path, "trace")
    name = str(payload["__name__"][0]) if "__name__" in payload else "trace"
    columns = {
        key: value
        for key, value in payload.items()
        if key not in _METADATA_KEYS
    }
    validate_archive_columns(columns, path=path)
    trace = Trace(
        {col: columns[col] for col, _ in COLUMNS}, name=name
    )
    return validate_trace(trace, path=path)


def save_annotated(annotated, path):
    """Atomically write an :class:`AnnotatedTrace` to *path*.

    The annotation's hierarchy/predictor configuration is not persisted
    (only its results are); the loader restores a default
    :class:`AnnotationConfig` as a placeholder.
    """
    payload = {name: getattr(annotated.trace, name) for name, _ in COLUMNS}
    for field in ANNOTATION_FIELDS:
        payload[f"ann_{field}"] = getattr(annotated, field)
    payload["ann_measure_start"] = np.asarray(
        [annotated.measure_start], dtype=np.int64
    )
    payload["__version__"] = np.asarray([FORMAT_VERSION], dtype=np.int64)
    payload["__name__"] = np.asarray([annotated.trace.name], dtype=np.str_)
    atomic_savez(path, **payload)


def load_annotated(path):
    """Read an annotated trace written by :func:`save_annotated`.

    Raises
    ------
    TraceFormatError
        Under the same strict-validation contract as
        :func:`load_trace`, plus event-mask consistency: a mask that
        marks instructions which cannot raise its event (e.g. a data
        miss on an ALU op) is rejected rather than silently skewing
        MLP results.
    """
    from repro.trace.annotate import AnnotatedTrace, AnnotationConfig

    payload = _read_archive(path, "annotated-trace")
    _check_version(payload, path, "annotated-trace")
    if "ann_measure_start" not in payload:
        raise TraceFormatError(
            "not a repro annotated-trace archive (no measure-start record)",
            path=path, field="ann_measure_start",
        )
    name = str(payload["__name__"][0]) if "__name__" in payload else "trace"
    columns = {
        key: value
        for key, value in payload.items()
        if key not in _METADATA_KEYS
    }
    validate_archive_columns(
        columns,
        path=path,
        annotation_fields=tuple(f"ann_{f}" for f in ANNOTATION_FIELDS),
    )
    trace = Trace({col: columns[col] for col, _ in COLUMNS}, name=name)
    validate_trace(trace, path=path)
    fields = {
        field: columns[f"ann_{field}"] for field in ANNOTATION_FIELDS
    }
    annotated = AnnotatedTrace(
        trace=trace,
        measure_start=int(payload["ann_measure_start"][0]),
        config=AnnotationConfig(),
        **fields,
    )
    return validate_annotated(annotated, path=path, check_events=True)
