"""Binary trace and annotation persistence.

Traces round-trip through numpy ``.npz`` archives: one array per column
plus a small metadata record.  Annotated traces (trace + event masks)
round-trip the same way, so the expensive cache/predictor pass can be
done once and shared.  Both formats are versioned so stale cached files
are rejected rather than silently misread.
"""

import numpy as np

from repro.trace.trace import COLUMNS, Trace

#: Bump when the column schema changes.
FORMAT_VERSION = 1

#: Event masks persisted for an annotated trace.
ANNOTATION_FIELDS = (
    "dmiss", "pmiss", "pfuseful", "imiss", "mispred", "vp_outcome", "smiss"
)


def save_trace(trace, path):
    """Write *trace* to *path* as a compressed ``.npz`` archive."""
    payload = {name: getattr(trace, name) for name, _ in COLUMNS}
    payload["__version__"] = np.asarray([FORMAT_VERSION], dtype=np.int64)
    payload["__name__"] = np.asarray([trace.name], dtype=np.str_)
    np.savez_compressed(path, **payload)


def load_trace(path):
    """Read a trace previously written by :func:`save_trace`.

    Raises
    ------
    ValueError
        If the archive is missing columns or has a different format
        version.
    """
    with np.load(path, allow_pickle=False) as archive:
        if "__version__" not in archive:
            raise ValueError(f"{path} is not a repro trace archive")
        version = int(archive["__version__"][0])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"trace format version mismatch: file has {version},"
                f" library expects {FORMAT_VERSION}"
            )
        name = str(archive["__name__"][0])
        columns = {col: archive[col] for col, _ in COLUMNS if col in archive}
    return Trace(columns, name=name)


def save_annotated(annotated, path):
    """Write an :class:`~repro.trace.annotate.AnnotatedTrace` to *path*.

    The annotation's hierarchy/predictor configuration is not persisted
    (only its results are); the loader restores a default
    :class:`AnnotationConfig` as a placeholder.
    """
    payload = {name: getattr(annotated.trace, name) for name, _ in COLUMNS}
    for field in ANNOTATION_FIELDS:
        payload[f"ann_{field}"] = getattr(annotated, field)
    payload["ann_measure_start"] = np.asarray(
        [annotated.measure_start], dtype=np.int64
    )
    payload["__version__"] = np.asarray([FORMAT_VERSION], dtype=np.int64)
    payload["__name__"] = np.asarray([annotated.trace.name], dtype=np.str_)
    np.savez_compressed(path, **payload)


def load_annotated(path):
    """Read an annotated trace written by :func:`save_annotated`."""
    from repro.trace.annotate import AnnotatedTrace, AnnotationConfig

    with np.load(path, allow_pickle=False) as archive:
        if "__version__" not in archive or "ann_measure_start" not in archive:
            raise ValueError(f"{path} is not a repro annotated-trace archive")
        version = int(archive["__version__"][0])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"annotation format version mismatch: file has {version},"
                f" library expects {FORMAT_VERSION}"
            )
        name = str(archive["__name__"][0])
        columns = {col: archive[col] for col, _ in COLUMNS}
        fields = {
            field: archive[f"ann_{field}"] for field in ANNOTATION_FIELDS
        }
        measure_start = int(archive["ann_measure_start"][0])
    return AnnotatedTrace(
        trace=Trace(columns, name=name),
        measure_start=measure_start,
        config=AnnotationConfig(),
        **fields,
    )
