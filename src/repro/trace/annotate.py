"""The annotation pipeline: from a raw trace to MLPsim's input.

MLPsim (Section 4.1) consumes a trace in which every instruction is
already classified by its microarchitecture-dependent events:

* ``dmiss``  — load-like instruction whose data access left the chip;
* ``pmiss``  — software prefetch that left the chip;
* ``pfuseful`` — off-chip prefetch whose line was later consumed by a
  demand access (the paper counts only *useful* prefetches toward MLP);
* ``imiss``  — instruction whose fetch left the chip;
* ``mispred`` — mispredicted branch (gshare + BTB + RAS front end);
* ``vp_outcome`` — last-value-predictor outcome for each missing load
  (Table 6's Correct / Wrong / No-Predict split);
* ``smiss`` — store whose write-allocate access left the chip.

Store misses are simulated (they allocate cache lines) but are *not*
off-chip accesses for MLP: the paper's definition covers instruction
fetches, loads and prefetches, and explicitly defers "store MLP" to
future work — which the ``smiss`` mask and the finite-store-buffer
machine extension implement.

The pipeline mirrors the paper's methodology of warming the caches on a
prefix of the trace (Section 4.2): annotations are produced for the whole
trace and :attr:`AnnotatedTrace.measure_start` marks where statistics
collection should begin.
"""

import dataclasses

import numpy as np

from repro.branch.frontend import BranchPredictor
from repro.isa.opclass import OpClass
from repro.memory.hierarchy import AccessLevel, Hierarchy, HierarchyConfig
from repro.vpred.last_value import LastValuePredictor

_VP_NA = -1
_VP_CORRECT = 0
_VP_WRONG = 1
_VP_NOPREDICT = 2

#: Map from LastValuePredictor.observe() outcome strings to codes.
VP_OUTCOME_CODES = {
    "correct": _VP_CORRECT,
    "wrong": _VP_WRONG,
    "no_predict": _VP_NOPREDICT,
}


@dataclasses.dataclass(frozen=True)
class AnnotationConfig:
    """Parameters of the annotation pass."""

    hierarchy: HierarchyConfig = HierarchyConfig()
    warmup_fraction: float = 0.33
    gshare_entries: int = 64 * 1024
    btb_entries: int = 16 * 1024
    ras_depth: int = 16
    vp_entries: int = 16 * 1024

    def cache_key(self):
        """Hashable identity for annotation memoisation."""
        return (
            self.hierarchy.cache_key(),
            self.warmup_fraction,
            self.gshare_entries,
            self.btb_entries,
            self.ras_depth,
            self.vp_entries,
        )


@dataclasses.dataclass
class AnnotatedTrace:
    """A trace plus per-instruction microarchitectural event marks."""

    trace: "repro.trace.trace.Trace"
    dmiss: np.ndarray
    pmiss: np.ndarray
    pfuseful: np.ndarray
    imiss: np.ndarray
    mispred: np.ndarray
    vp_outcome: np.ndarray
    smiss: np.ndarray
    measure_start: int
    config: AnnotationConfig

    def __len__(self):
        return len(self.trace)

    @property
    def offchip_mask(self):
        """Instructions that initiate a *useful* off-chip access."""
        return self.dmiss | self.pfuseful | self.imiss

    def num_offchip(self, start=None):
        """Count useful off-chip accesses from *start* (default: measured)."""
        start = self.measure_start if start is None else start
        return int(np.count_nonzero(self.offchip_mask[start:]))

    def miss_rate_per_100(self):
        """Useful off-chip accesses per 100 measured instructions."""
        measured = len(self) - self.measure_start
        if not measured:
            return 0.0
        return 100.0 * self.num_offchip() / measured

    def l2_load_miss_rate_per_100(self):
        """Off-chip *data* (load) misses per 100 measured instructions.

        This is the "L2 Miss Rate (per 100 insts)" column of Table 1.
        """
        measured = len(self) - self.measure_start
        if not measured:
            return 0.0
        misses = int(np.count_nonzero(self.dmiss[self.measure_start :]))
        return 100.0 * misses / measured

    def measured_region(self):
        """Return (start, stop) indices of the measured region."""
        return self.measure_start, len(self)


def manual_annotation(trace, dmiss_at=(), imiss_at=(), mispred_at=(),
                      pmiss_at=(), useless_prefetches=(), vp_correct_at=(),
                      smiss_at=(), measure_start=0):
    """Build an :class:`AnnotatedTrace` with explicitly placed events.

    This bypasses the cache/predictor pipeline entirely; it exists so the
    paper's worked examples (which *state* which instructions miss or
    mispredict) and targeted unit tests can drive MLPsim directly.
    Prefetches listed in *pmiss_at* are useful unless also listed in
    *useless_prefetches*.
    """
    n = len(trace)
    dmiss = np.zeros(n, dtype=bool)
    pmiss = np.zeros(n, dtype=bool)
    pfuseful = np.zeros(n, dtype=bool)
    imiss = np.zeros(n, dtype=bool)
    mispred = np.zeros(n, dtype=bool)
    vp_outcome = np.full(n, _VP_NA, dtype=np.int8)
    for i in dmiss_at:
        dmiss[i] = True
        vp_outcome[i] = _VP_NOPREDICT
    for i in vp_correct_at:
        vp_outcome[i] = _VP_CORRECT
    for i in imiss_at:
        imiss[i] = True
    for i in mispred_at:
        mispred[i] = True
    for i in pmiss_at:
        pmiss[i] = True
        pfuseful[i] = i not in set(useless_prefetches)
    smiss = np.zeros(n, dtype=bool)
    for i in smiss_at:
        smiss[i] = True
    return AnnotatedTrace(
        trace=trace,
        dmiss=dmiss,
        pmiss=pmiss,
        pfuseful=pfuseful,
        imiss=imiss,
        mispred=mispred,
        vp_outcome=vp_outcome,
        smiss=smiss,
        measure_start=measure_start,
        config=AnnotationConfig(),
    )


def annotate(trace, config=None, value_predictor=None, branch_predictor=None):
    """Run the memory hierarchy and predictors over *trace*.

    Parameters
    ----------
    trace:
        The raw :class:`~repro.trace.trace.Trace`.
    config:
        :class:`AnnotationConfig`; defaults to the paper's Section 5.1
        machine.
    value_predictor / branch_predictor:
        Injectable predictor instances (tests use these); fresh ones are
        built from *config* when omitted.

    Returns
    -------
    AnnotatedTrace

    Raises
    ------
    repro.robustness.errors.TraceFormatError
        If *trace* holds out-of-range opcodes or register operands
        (e.g. a corrupt archive loaded through an unvalidated path).
    """
    from repro.robustness.validate import validate_trace

    validate_trace(trace)
    config = config or AnnotationConfig()
    hierarchy = Hierarchy(config.hierarchy)
    branch_pred = branch_predictor or BranchPredictor(
        gshare_entries=config.gshare_entries,
        btb_entries=config.btb_entries,
        ras_depth=config.ras_depth,
    )
    value_pred = value_predictor or LastValuePredictor(entries=config.vp_entries)

    n = len(trace)
    dmiss = np.zeros(n, dtype=bool)
    pmiss = np.zeros(n, dtype=bool)
    pfuseful = np.zeros(n, dtype=bool)
    imiss = np.zeros(n, dtype=bool)
    mispred = np.zeros(n, dtype=bool)
    vp_outcome = np.full(n, _VP_NA, dtype=np.int8)
    smiss = np.zeros(n, dtype=bool)

    # Bind columns to fast local lists.
    ops = trace.op.tolist()
    pcs = trace.pc.tolist()
    addrs = trace.addr.tolist()
    takens = trace.taken.tolist()
    targets = trace.target.tolist()
    values = trace.value.tolist()
    src1s = trace.src1.tolist()
    src2s = trace.src2.tolist()

    line_shift = config.hierarchy.l2.line_shift
    access_insn = hierarchy.access_instruction
    access_data = hierarchy.access_data
    observe_branch = branch_pred.observe
    observe_value = value_pred.observe
    offchip = AccessLevel.OFFCHIP

    LOAD = int(OpClass.LOAD)
    STORE = int(OpClass.STORE)
    BRANCH = int(OpClass.BRANCH)
    PREFETCH = int(OpClass.PREFETCH)
    CAS = int(OpClass.CAS)
    LDSTUB = int(OpClass.LDSTUB)
    load_like = {LOAD, CAS, LDSTUB}

    # Lines brought on chip by an off-chip prefetch, awaiting a demand
    # consumer: line -> index of the prefetch instruction.
    prefetched_lines = {}

    previous_fetch_line = None
    for i in range(n):
        pc = pcs[i]
        fetch_line = pc >> line_shift
        if fetch_line != previous_fetch_line:
            if access_insn(pc) == offchip:
                imiss[i] = True
                prefetched_lines.pop(fetch_line, None)
            elif fetch_line in prefetched_lines:
                pfuseful[prefetched_lines.pop(fetch_line)] = True
            previous_fetch_line = fetch_line

        op = ops[i]
        if op in load_like:
            addr = addrs[i]
            if access_data(addr) == offchip:
                dmiss[i] = True
                prefetched_lines.pop(addr >> line_shift, None)
                vp_outcome[i] = VP_OUTCOME_CODES[observe_value(pc, values[i])]
            else:
                data_line = addr >> line_shift
                if data_line in prefetched_lines:
                    pfuseful[prefetched_lines.pop(data_line)] = True
        elif op == STORE:
            if access_data(addrs[i], is_write=True) == offchip:
                smiss[i] = True
        elif op == PREFETCH:
            addr = addrs[i]
            if access_data(addr) == offchip:
                pmiss[i] = True
                prefetched_lines[addr >> line_shift] = i
        elif op == BRANCH:
            if src1s[i] >= 0 or src2s[i] >= 0:
                mispred[i] = observe_branch(pc, takens[i], targets[i])
            # Unconditional direct transfers (no condition sources) never
            # mispredict: their real-code counterparts have static
            # targets.  The synthetic generators vary their targets to
            # express control randomness, which must not be charged to
            # the branch predictor.

    measure_start = int(n * config.warmup_fraction)
    return AnnotatedTrace(
        trace=trace,
        dmiss=dmiss,
        pmiss=pmiss,
        pfuseful=pfuseful,
        imiss=imiss,
        mispred=mispred,
        vp_outcome=vp_outcome,
        smiss=smiss,
        measure_start=measure_start,
        config=config,
    )
