"""Trace infrastructure: containers, builders, I/O, statistics, annotation.

A :class:`~repro.trace.trace.Trace` is a columnar (numpy-backed) dynamic
instruction stream.  Workload generators produce traces; the annotation
pipeline (:mod:`repro.trace.annotate`) runs the memory hierarchy, branch
predictor and value predictor over a trace to mark each instruction with
the microarchitecture-dependent events MLPsim consumes (off-chip data
miss, off-chip instruction-fetch miss, branch misprediction, value
prediction correctness, prefetch usefulness).
"""

from repro.trace.trace import Trace
from repro.trace.builder import TraceBuilder
from repro.trace.io import (
    load_annotated,
    load_trace,
    save_annotated,
    save_trace,
)
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.annotate import AnnotatedTrace, AnnotationConfig, annotate

__all__ = [
    "Trace",
    "TraceBuilder",
    "load_annotated",
    "load_trace",
    "save_annotated",
    "save_trace",
    "TraceStats",
    "compute_stats",
    "AnnotatedTrace",
    "AnnotationConfig",
    "annotate",
]
