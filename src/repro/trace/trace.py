"""Columnar dynamic-instruction-stream container.

Traces can reach millions of instructions, so instructions are stored as
parallel numpy arrays (structure-of-arrays) instead of per-instruction
Python objects.  :meth:`Trace.instruction` materialises a single
:class:`~repro.isa.instruction.Instruction` on demand for debugging and
tests; the simulators read the columns directly (converted to Python
lists, which are faster to index in tight interpreter loops).
"""

import numpy as np

from repro.isa.instruction import Instruction
from repro.isa.opclass import OpClass

#: Column names and dtypes of the trace format, in canonical order.
COLUMNS = (
    ("op", np.int8),
    ("pc", np.int64),
    ("dst", np.int16),
    ("src1", np.int16),
    ("src2", np.int16),
    ("src3", np.int16),
    ("addr", np.int64),
    ("taken", np.bool_),
    ("target", np.int64),
    ("value", np.int64),
)

_COLUMN_NAMES = tuple(name for name, _ in COLUMNS)


class Trace:
    """An immutable dynamic instruction stream.

    Parameters
    ----------
    columns:
        Mapping from column name to a numpy array; all columns must have
        identical length.  See :data:`COLUMNS` for the schema.
    name:
        Optional workload name carried for reporting.
    """

    def __init__(self, columns, name="trace"):
        from repro.robustness.errors import TraceFormatError

        missing = set(_COLUMN_NAMES) - set(columns)
        if missing:
            raise TraceFormatError(
                f"trace is missing columns: {sorted(missing)}",
                field=sorted(missing)[0],
            )
        lengths = {len(columns[c]) for c in _COLUMN_NAMES}
        if len(lengths) > 1:
            raise TraceFormatError(
                f"trace columns have unequal lengths: {lengths}"
            )
        self.name = name
        for col_name, dtype in COLUMNS:
            try:
                array = np.asarray(columns[col_name], dtype=dtype)
            except (ValueError, TypeError) as error:
                raise TraceFormatError(
                    f"column cannot be converted to {np.dtype(dtype)}:"
                    f" {error}",
                    field=col_name,
                ) from error
            array.setflags(write=False)
            setattr(self, col_name, array)

    def __len__(self):
        return len(self.op)

    def __eq__(self, other):
        if not isinstance(other, Trace):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, c), getattr(other, c))
            for c in _COLUMN_NAMES
        )

    def __repr__(self):
        return f"Trace(name={self.name!r}, length={len(self)})"

    def columns(self):
        """Return a dict of column name to (read-only) numpy array."""
        return {c: getattr(self, c) for c in _COLUMN_NAMES}

    def instruction(self, index):
        """Materialise the :class:`Instruction` at position *index*."""
        return Instruction(
            op=OpClass(int(self.op[index])),
            pc=int(self.pc[index]),
            dst=int(self.dst[index]),
            src1=int(self.src1[index]),
            src2=int(self.src2[index]),
            src3=int(self.src3[index]),
            addr=int(self.addr[index]),
            taken=bool(self.taken[index]),
            target=int(self.target[index]),
            value=int(self.value[index]),
        )

    def instructions(self):
        """Yield every instruction as an :class:`Instruction` object.

        Intended for tests and small traces; simulators should read the
        columns directly.
        """
        for i in range(len(self)):
            yield self.instruction(i)

    def slice(self, start, stop):
        """Return a new :class:`Trace` over instructions ``[start, stop)``."""
        cols = {c: getattr(self, c)[start:stop].copy() for c in _COLUMN_NAMES}
        return Trace(cols, name=f"{self.name}[{start}:{stop}]")

    # -- convenience views used across the code base ------------------------

    def memory_mask(self):
        """Boolean array marking instructions that access data memory."""
        return (
            (self.op == OpClass.LOAD)
            | (self.op == OpClass.STORE)
            | (self.op == OpClass.PREFETCH)
            | (self.op == OpClass.CAS)
            | (self.op == OpClass.LDSTUB)
        )

    def load_like_mask(self):
        """Boolean array marking instructions that read data memory."""
        return (
            (self.op == OpClass.LOAD)
            | (self.op == OpClass.CAS)
            | (self.op == OpClass.LDSTUB)
        )

    def branch_mask(self):
        """Boolean array marking control-transfer instructions."""
        return self.op == OpClass.BRANCH

    def serializing_mask(self):
        """Boolean array marking serializing instructions."""
        return (
            (self.op == OpClass.CAS)
            | (self.op == OpClass.LDSTUB)
            | (self.op == OpClass.MEMBAR)
        )

    def opclass_counts(self):
        """Return a dict mapping :class:`OpClass` to dynamic count."""
        values, counts = np.unique(np.asarray(self.op), return_counts=True)
        return {OpClass(int(v)): int(c) for v, c in zip(values, counts)}
