"""Imperative builder for traces.

Workload generators and tests construct traces instruction by
instruction through :class:`TraceBuilder`, which accumulates into Python
lists and converts to the columnar format once at :meth:`build` time.
The ``add_*`` helpers encode the operand conventions documented on
:class:`repro.isa.instruction.Instruction` so call sites stay readable.
"""

import numpy as np

from repro.isa.instruction import Instruction
from repro.isa.opclass import OpClass
from repro.isa.registers import REG_NONE
from repro.trace.trace import COLUMNS, Trace


class TraceBuilder:
    """Accumulates dynamic instructions and produces a :class:`Trace`."""

    def __init__(self, name="trace"):
        self.name = name
        self._cols = {name: [] for name, _ in COLUMNS}

    def __len__(self):
        return len(self._cols["op"])

    # -- generic -------------------------------------------------------------

    def add(self, instruction):
        """Append an :class:`Instruction` object."""
        self.add_raw(
            op=instruction.op,
            pc=instruction.pc,
            dst=instruction.dst,
            src1=instruction.src1,
            src2=instruction.src2,
            src3=instruction.src3,
            addr=instruction.addr,
            taken=instruction.taken,
            target=instruction.target,
            value=instruction.value,
        )

    def add_raw(
        self,
        op,
        pc,
        dst=REG_NONE,
        src1=REG_NONE,
        src2=REG_NONE,
        src3=REG_NONE,
        addr=0,
        taken=False,
        target=0,
        value=0,
    ):
        """Append one instruction from raw field values (no validation)."""
        cols = self._cols
        cols["op"].append(int(op))
        cols["pc"].append(pc)
        cols["dst"].append(dst)
        cols["src1"].append(src1)
        cols["src2"].append(src2)
        cols["src3"].append(src3)
        cols["addr"].append(addr)
        cols["taken"].append(taken)
        cols["target"].append(target)
        cols["value"].append(value)

    # -- typed helpers ---------------------------------------------------------

    def add_alu(self, pc, dst, src1=REG_NONE, src2=REG_NONE, value=0):
        """Append a register-to-register computation."""
        self.add_raw(OpClass.ALU, pc, dst=dst, src1=src1, src2=src2, value=value)

    def add_nop(self, pc):
        """Append a no-operation."""
        self.add_raw(OpClass.NOP, pc)

    def add_load(self, pc, dst, addr, src1=REG_NONE, src2=REG_NONE, value=0):
        """Append a load of *addr* into register *dst*.

        *src1*/*src2* are the registers the effective address was computed
        from (they create the address dependence).
        """
        self.add_raw(
            OpClass.LOAD, pc, dst=dst, src1=src1, src2=src2, addr=addr, value=value
        )

    def add_store(self, pc, addr, data_src, src1=REG_NONE, src2=REG_NONE, value=0):
        """Append a store of register *data_src* to *addr*."""
        self.add_raw(
            OpClass.STORE,
            pc,
            src1=src1,
            src2=src2,
            src3=data_src,
            addr=addr,
            value=value,
        )

    def add_branch(self, pc, taken, target, src1=REG_NONE, src2=REG_NONE):
        """Append a conditional branch with outcome *taken*."""
        self.add_raw(
            OpClass.BRANCH, pc, src1=src1, src2=src2, taken=taken, target=target
        )

    def add_prefetch(self, pc, addr, src1=REG_NONE):
        """Append a software prefetch of *addr*."""
        self.add_raw(OpClass.PREFETCH, pc, src1=src1, addr=addr)

    def add_cas(self, pc, dst, addr, src1=REG_NONE, data_src=REG_NONE, value=0):
        """Append a compare-and-swap (serializing atomic) on *addr*."""
        self.add_raw(
            OpClass.CAS,
            pc,
            dst=dst,
            src1=src1,
            src3=data_src,
            addr=addr,
            value=value,
        )

    def add_ldstub(self, pc, dst, addr, src1=REG_NONE, value=0):
        """Append an LDSTUB (serializing atomic) on *addr*."""
        self.add_raw(OpClass.LDSTUB, pc, dst=dst, src1=src1, addr=addr, value=value)

    def add_membar(self, pc):
        """Append a memory barrier."""
        self.add_raw(OpClass.MEMBAR, pc)

    # -- finalisation -----------------------------------------------------------

    def build(self):
        """Freeze the accumulated instructions into a :class:`Trace`."""
        arrays = {
            name: np.asarray(values, dtype=dtype)
            for (name, dtype), values in zip(COLUMNS, self._cols.values())
        }
        return Trace(arrays, name=self.name)


def trace_from_instructions(instructions, name="trace"):
    """Build a :class:`Trace` from an iterable of :class:`Instruction`."""
    builder = TraceBuilder(name=name)
    for instruction in instructions:
        builder.add(instruction)
    return builder.build()
