"""Trace statistics.

Covers the workload characterisation the paper reports: instruction mix,
dynamic serializing-instruction share (Section 3.2.2 notes CASA is >0.6%
of SPECjbb2000), off-chip miss rate per 100 instructions, and inter-miss
distances (the clustering analysis of Section 2.3 / Figure 2).
"""

import dataclasses

import numpy as np

from repro.isa.opclass import OpClass


@dataclasses.dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a (possibly annotated) trace."""

    name: str
    length: int
    opclass_counts: dict
    serializing_fraction: float
    branch_fraction: float
    load_fraction: float
    store_fraction: float
    prefetch_fraction: float
    dmisses: int
    imisses: int
    miss_rate_per_100: float
    mean_intermiss_distance: float

    def format(self):
        """Render the statistics as a small human-readable table."""
        lines = [
            f"trace {self.name}: {self.length} instructions",
            f"  loads {self.load_fraction:6.2%}   stores {self.store_fraction:6.2%}"
            f"   branches {self.branch_fraction:6.2%}",
            f"  prefetches {self.prefetch_fraction:6.2%}"
            f"   serializing {self.serializing_fraction:6.2%}",
            f"  off-chip: {self.dmisses} data misses, {self.imisses} fetch misses"
            f"  ({self.miss_rate_per_100:.2f} per 100 insts)",
            f"  mean inter-miss distance {self.mean_intermiss_distance:.1f} insts",
        ]
        return "\n".join(lines)


def intermiss_distances(miss_indices):
    """Return distances (in dynamic instructions) between consecutive misses.

    *miss_indices* is a sorted integer array of trace positions at which an
    off-chip access occurred.
    """
    indices = np.asarray(miss_indices, dtype=np.int64)
    if len(indices) < 2:
        return np.empty(0, dtype=np.int64)
    return np.diff(indices)


def compute_stats(trace, dmiss_mask=None, imiss_mask=None):
    """Compute :class:`TraceStats` for *trace*.

    *dmiss_mask*/*imiss_mask* are boolean arrays from the annotation
    pipeline; when omitted the off-chip statistics are reported as zero.
    """
    n = len(trace)
    counts = trace.opclass_counts()

    def frac(*ops):
        return sum(counts.get(op, 0) for op in ops) / n if n else 0.0

    if dmiss_mask is None:
        dmiss_mask = np.zeros(n, dtype=bool)
    if imiss_mask is None:
        imiss_mask = np.zeros(n, dtype=bool)
    dmisses = int(np.count_nonzero(dmiss_mask))
    imisses = int(np.count_nonzero(imiss_mask))
    total_misses = dmisses + imisses
    miss_indices = np.nonzero(np.asarray(dmiss_mask) | np.asarray(imiss_mask))[0]
    distances = intermiss_distances(miss_indices)
    mean_distance = float(distances.mean()) if len(distances) else float("inf")

    return TraceStats(
        name=trace.name,
        length=n,
        opclass_counts=counts,
        serializing_fraction=frac(OpClass.CAS, OpClass.LDSTUB, OpClass.MEMBAR),
        branch_fraction=frac(OpClass.BRANCH),
        load_fraction=frac(OpClass.LOAD, OpClass.CAS, OpClass.LDSTUB),
        store_fraction=frac(OpClass.STORE),
        prefetch_fraction=frac(OpClass.PREFETCH),
        dmisses=dmisses,
        imisses=imisses,
        miss_rate_per_100=100.0 * total_misses / n if n else 0.0,
        mean_intermiss_distance=mean_distance,
    )
