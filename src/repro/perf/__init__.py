"""Performance modeling: the paper's MLP-to-CPI equations (Section 2.2)."""

from repro.perf.cpi_model import (
    CPIBreakdown,
    cpi_breakdown,
    derive_overlap_cm,
    estimate_cpi,
    estimate_cycles,
    speedup,
)

__all__ = [
    "CPIBreakdown",
    "cpi_breakdown",
    "derive_overlap_cm",
    "estimate_cpi",
    "estimate_cycles",
    "speedup",
]
