"""The paper's performance equations (Section 2.2).

Equation 1 relates execution time to MLP::

    Cycles = Cycles_perf * (1 - Overlap_CM) + NumMisses * MissPenalty / MLP

and its per-instruction form (Equation 2)::

    CPI = CPI_perf * (1 - Overlap_CM) + MissRate * MissPenalty / MLP

where ``CPI_perf`` is the CPI with a perfect furthest on-chip cache,
``Overlap_CM`` is the fractional overlap of compute cycles with off-chip
cycles, ``MissRate`` is off-chip accesses per instruction, and ``MLP``
is the average memory-level parallelism.  The first term is the on-chip
CPI component, the second the off-chip component.

The paper's methodology (Section 5.2/Table 4): measure ``CPI`` and
``CPI_perf`` on the cycle-accurate simulator, *derive* ``Overlap_CM``
from Equation 2, then *estimate* the CPI of other configurations by
substituting their MLPsim-measured MLP and miss rate — accurate to
within 2% of the cycle simulator.
"""

import dataclasses
from repro.robustness.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class CPIBreakdown:
    """CPI decomposed into the two terms of Equation 2."""

    cpi: float
    cpi_perf: float
    on_chip: float
    off_chip: float
    overlap_cm: float
    miss_rate: float
    miss_penalty: float
    mlp: float

    def format_row(self):
        """One-line on-chip/off-chip decomposition rendering."""
        return (
            f"CPI={self.cpi:6.3f} = on-chip {self.on_chip:6.3f}"
            f" + off-chip {self.off_chip:6.3f}"
            f"  (Overlap_CM={self.overlap_cm:5.2f}, MLP={self.mlp:5.3f})"
        )


def _validate(miss_penalty, mlp):
    if miss_penalty <= 0:
        raise ConfigError("miss penalty must be positive")
    if mlp <= 0:
        raise ConfigError("MLP must be positive")


def estimate_cpi(cpi_perf, overlap_cm, miss_rate, miss_penalty, mlp):
    """Equation 2: estimate overall CPI from its components."""
    _validate(miss_penalty, mlp)
    return cpi_perf * (1.0 - overlap_cm) + miss_rate * miss_penalty / mlp


def estimate_cycles(cycles_perf, overlap_cm, num_misses, miss_penalty, mlp):
    """Equation 1: estimate total execution cycles."""
    _validate(miss_penalty, mlp)
    return cycles_perf * (1.0 - overlap_cm) + num_misses * miss_penalty / mlp


def derive_overlap_cm(cpi, cpi_perf, miss_rate, miss_penalty, mlp):
    """Solve Equation 2 for Overlap_CM given everything else.

    The result is clamped to [0, 1]: measurement noise can push the raw
    solution slightly outside the physically meaningful range (the
    paper's own Table 1 reports an Overlap_CM of 0.00 for SPECweb99 at
    1000 cycles for the same reason).
    """
    _validate(miss_penalty, mlp)
    if cpi_perf <= 0:
        raise ConfigError("CPI_perf must be positive")
    off_chip = miss_rate * miss_penalty / mlp
    overlap = 1.0 - (cpi - off_chip) / cpi_perf
    return min(1.0, max(0.0, overlap))


def cpi_breakdown(cpi, cpi_perf, miss_rate, miss_penalty, mlp):
    """Decompose a measured CPI into Table 1's columns.

    Returns a :class:`CPIBreakdown` with ``on_chip``/``off_chip``
    components and the derived ``Overlap_CM``.
    """
    overlap = derive_overlap_cm(cpi, cpi_perf, miss_rate, miss_penalty, mlp)
    off_chip = miss_rate * miss_penalty / mlp
    return CPIBreakdown(
        cpi=cpi,
        cpi_perf=cpi_perf,
        on_chip=cpi - off_chip,
        off_chip=off_chip,
        overlap_cm=overlap,
        miss_rate=miss_rate,
        miss_penalty=miss_penalty,
        mlp=mlp,
    )


def speedup(cpi_baseline, cpi_new):
    """Relative performance improvement of *cpi_new* over *cpi_baseline*.

    Expressed as the paper's Figure 11 percentages: 0.60 means "60%
    faster" (instructions per cycle ratio minus one).
    """
    if cpi_new <= 0 or cpi_baseline <= 0:
        raise ConfigError("CPI values must be positive")
    return cpi_baseline / cpi_new - 1.0
