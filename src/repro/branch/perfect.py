"""Perfect branch prediction for the limit study (Section 5.6).

Under perfect branch prediction no branch ever mispredicts, so the
*unresolvable mispredicted branch* window-termination condition
disappears entirely (the ``RAE.perfBP`` bars of Figure 10).
"""

from repro.branch.frontend import BranchKind, PredictorStats


class PerfectBranchPredictor:
    """Oracle predictor: every branch is predicted correctly."""

    def __init__(self):
        self.stats = PredictorStats()

    def observe(self, pc, taken, target, kind=BranchKind.CONDITIONAL):
        """Record the branch; always returns False (never mispredicted)."""
        del pc, taken, target, kind
        self.stats.branches += 1
        return False
