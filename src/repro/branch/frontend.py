"""The composed front-end branch predictor.

Combines gshare (direction), BTB (target) and RAS (returns) into the
single question the epoch model asks of every dynamic branch: *was it
mispredicted?*  A branch mispredicts when its predicted direction is
wrong, or when it is taken and the predicted target is absent or stale.
"""

import dataclasses
import enum

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GshareGPredictor
from repro.branch.ras import ReturnAddressStack


class BranchKind(enum.IntEnum):
    """How the front end should predict a branch's target."""

    CONDITIONAL = 0
    CALL = 1
    RETURN = 2


@dataclasses.dataclass
class PredictorStats:
    """Running accuracy counters."""

    branches: int = 0
    mispredictions: int = 0
    direction_mispredictions: int = 0
    target_mispredictions: int = 0

    @property
    def accuracy(self):
        if not self.branches:
            return 1.0
        return 1.0 - self.mispredictions / self.branches


class BranchPredictor:
    """gshare + BTB + RAS front end (paper Section 5.1 geometry)."""

    def __init__(
        self,
        gshare_entries=64 * 1024,
        btb_entries=16 * 1024,
        ras_depth=16,
    ):
        self.direction = GshareGPredictor(entries=gshare_entries)
        self.btb = BranchTargetBuffer(entries=btb_entries)
        self.ras = ReturnAddressStack(depth=ras_depth)
        self.stats = PredictorStats()

    def observe(self, pc, taken, target, kind=BranchKind.CONDITIONAL):
        """Predict, train on the actual outcome, and return mispredicted?

        Parameters mirror the trace columns: *taken* and *target* are the
        branch's architectural outcome.
        """
        self.stats.branches += 1

        if kind == BranchKind.RETURN:
            predicted_taken = True
            predicted_target = self.ras.pop()
        else:
            predicted_taken = self.direction.predict(pc)
            predicted_target = self.btb.lookup(pc)

        direction_wrong = predicted_taken != taken
        target_wrong = taken and not direction_wrong and predicted_target != target
        mispredicted = direction_wrong or target_wrong

        if direction_wrong:
            self.stats.direction_mispredictions += 1
        if target_wrong:
            self.stats.target_mispredictions += 1
        if mispredicted:
            self.stats.mispredictions += 1

        # Train.
        self.direction.update(pc, taken)
        if taken:
            self.btb.update(pc, target)
        if kind == BranchKind.CALL:
            self.ras.push(pc + 4)

        return mispredicted
