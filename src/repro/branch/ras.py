"""Return address stack.

A 16-entry circular stack predicting return targets.  Calls push their
fall-through address; returns pop.  Overflow wraps (oldest entry is
silently overwritten) and underflow predicts nothing, both standard
hardware behaviours.
"""

from repro.robustness.errors import ConfigError


class ReturnAddressStack:
    """Fixed-depth circular return address stack."""

    def __init__(self, depth=16):
        if depth <= 0:
            raise ConfigError("RAS depth must be positive")
        self.depth = depth
        self._stack = [None] * depth
        self._top = 0  # index of next free slot
        self._occupancy = 0

    def push(self, return_address):
        """Push the return address of a call."""
        self._stack[self._top] = return_address
        self._top = (self._top + 1) % self.depth
        if self._occupancy < self.depth:
            self._occupancy += 1

    def pop(self):
        """Pop the predicted return target; None if the stack is empty."""
        if self._occupancy == 0:
            return None
        self._top = (self._top - 1) % self.depth
        self._occupancy -= 1
        value = self._stack[self._top]
        self._stack[self._top] = None
        return value

    def peek(self):
        """Return the top entry without popping; None if empty."""
        if self._occupancy == 0:
            return None
        return self._stack[(self._top - 1) % self.depth]

    def __len__(self):
        return self._occupancy
