"""Branch-prediction substrate.

The paper's front end (Section 5.1): a 64K-entry gshare direction
predictor, a 16K-entry branch target buffer, and a 16-entry return
address stack.  Mispredicted branches matter to MLP only when they are
*unresolvable* — dependent on a missing load — in which case they
terminate the epoch window (Section 3.2.4).
"""

from repro.branch.gshare import GshareGPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.frontend import BranchKind, BranchPredictor, PredictorStats
from repro.branch.perfect import PerfectBranchPredictor

__all__ = [
    "GshareGPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "BranchKind",
    "BranchPredictor",
    "PredictorStats",
    "PerfectBranchPredictor",
]
