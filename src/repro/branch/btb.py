"""Branch target buffer.

A set-associative table mapping branch PCs to their most recent taken
target.  A taken branch whose target is absent or stale is a
misprediction even if its direction was predicted correctly.
"""

from repro.robustness.errors import ConfigError


class BranchTargetBuffer:
    """4-way set-associative BTB with LRU replacement."""

    def __init__(self, entries=16 * 1024, associativity=4):
        if entries % associativity:
            raise ConfigError("BTB entries must divide evenly into ways")
        num_sets = entries // associativity
        if num_sets & (num_sets - 1):
            raise ConfigError("BTB set count must be a power of two")
        self.entries = entries
        self._assoc = associativity
        self._set_mask = num_sets - 1
        # Each set: list of [tag, target] in MRU..LRU order.
        self._sets = [[] for _ in range(num_sets)]

    def _set_and_tag(self, pc):
        word = pc >> 2
        return self._sets[word & self._set_mask], word

    def lookup(self, pc):
        """Return the stored target for *pc*, or None on BTB miss."""
        ways, tag = self._set_and_tag(pc)
        for i, (stored_tag, target) in enumerate(ways):
            if stored_tag == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                return target
        return None

    def update(self, pc, target):
        """Record that *pc* most recently jumped to *target*."""
        ways, tag = self._set_and_tag(pc)
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                entry[1] = target
                if i:
                    ways.insert(0, ways.pop(i))
                return
        ways.insert(0, [tag, target])
        if len(ways) > self._assoc:
            ways.pop()
