"""Gshare direction predictor (McFarling).

A table of 2-bit saturating counters indexed by the branch PC XOR the
global branch-history register.  The paper's machine uses 64K entries,
i.e. a 16-bit index and 16 bits of global history.
"""

from repro.robustness.errors import ConfigError


class GshareGPredictor:
    """2-bit-counter gshare with configurable table size.

    Counters: 0/1 predict not-taken, 2/3 predict taken; initialised to 1
    (weakly not-taken).
    """

    def __init__(self, entries=64 * 1024):
        if entries & (entries - 1):
            raise ConfigError("gshare table size must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._history_bits = entries.bit_length() - 1
        self._history = 0
        self._counters = bytearray([1]) * entries

    def _index(self, pc):
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc):
        """Return the predicted direction (True = taken) for *pc*."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc, taken):
        """Train on the resolved outcome and shift the global history."""
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        else:
            if counter > 0:
                self._counters[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._mask

    def predict_and_update(self, pc, taken):
        """Convenience: predict, then train; returns the prediction."""
        prediction = self.predict(pc)
        self.update(pc, taken)
        return prediction

    @property
    def history(self):
        """The current global history register (for tests)."""
        return self._history
