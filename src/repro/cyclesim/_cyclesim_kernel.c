/* Compiled cycle-accurate pipeline kernel.
 *
 * A direct C translation of the interpreter tier in
 * repro/cyclesim/simulator.py, which is itself held bit-identical to
 * the frozen oracle repro/cyclesim/simulator_reference.py by
 * tests/test_cyclesim_equivalence.py.  One cyclesim_batch() call runs
 * MANY pipeline configurations against one shared cycle plan: the
 * per-instruction tables are read-only and shared, the per-config
 * scratch (ready/complete/wake times, ROB, issue window, MSHR) is
 * allocated once and reset between configs.
 *
 * Structural notes, mirroring the Python tier:
 *
 *  - MSHR completions form a FIFO, not a heap: every entry completes
 *    exactly miss_penalty cycles after allocation and the clock never
 *    runs backwards, so completion order is allocation order.  The
 *    event wheel is a flat array scanned by a head cursor; entries
 *    double as MSHR records, chained into a small hash on the line
 *    number for merge lookups.
 *  - Operand wake times memoise: a producer's ready time is written
 *    exactly once (at issue), so once every producer of an instruction
 *    has issued its wake time is final (wake[] < 0 means unknown).
 *  - When a cycle retires/issues/moves nothing, the clock jumps to the
 *    next event (completion, wakeup, fetch restart, drain release) and
 *    the skipped span is charged to the stall category of the cycle.
 *
 * The opcode values are pinned to repro.isa.opclass.OpClass and
 * verified by ckernel.py before the kernel is ever called; the stall
 * category indices are pinned to repro.cyclesim.metrics.STALL_CATEGORIES.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define OP_ALU 0
#define OP_LOAD 1
#define OP_STORE 2
#define OP_BRANCH 3
#define OP_PREFETCH 4
#define OP_CAS 5
#define OP_LDSTUB 6
#define OP_MEMBAR 7
#define OP_NOP 8

/* Matches _NEVER in the Python simulator. */
#define NEVER (1LL << 60)

/* Stall-category indices: STALL_CATEGORIES order in metrics.py. */
#define CAT_COMMIT 0
#define CAT_MEMORY 1
#define CAT_IFETCH 2
#define CAT_BRANCH 3
#define CAT_DRAIN 4
#define CAT_BACKEND 5
#define CAT_FRONTEND 6
#define N_CATEGORIES 7

/* Per-config status codes. */
#define ST_OK 0
#define ST_DEADLOCK 1

/* Access kinds, matching the Python access() closure. */
#define KIND_DMISS 0
#define KIND_IMISS 1
#define KIND_PREFETCH 2

#define HASH_BITS 15
#define HASH_SIZE (1 << HASH_BITS)

typedef struct {
    int64_t rob;
    int64_t issue_window;
    int64_t fetch_buffer;
    int64_t fetch_width;
    int64_t dispatch_width;
    int64_t issue_width;
    int64_t commit_width;
    int64_t frontend_depth;
    int64_t alu_latency;
    int64_t branch_latency;
    int64_t l1_latency;
    int64_t l2_latency;
    int64_t miss_penalty;
    int64_t redirect_penalty;
    int64_t load_in_order;
    int64_t load_wait_staddr;
    int64_t branch_in_order;
    int64_t serializing;
    int64_t perfect_l2;
    int64_t event_skip;
} CycleConfig;

typedef struct {
    int64_t cycles;
    int64_t offchip_accesses;
    int64_t dmiss_accesses;
    int64_t imiss_accesses;
    int64_t prefetch_accesses;
    int64_t nonzero_cycles;
    int64_t outstanding_integral;
    int64_t stalls[N_CATEGORIES];
    int64_t status;
    int64_t error_cycle;
    int64_t error_committed;
} CycleResult;

/* The outstanding-access tracker, bit-for-bit the Python
 * OutstandingTracker: integral/nonzero only advance over spans where
 * the count is positive, and last_time only moves forward. */
typedef struct {
    int64_t count;
    int64_t last_time;
    int64_t nonzero;
    int64_t integral;
} Tracker;

/* certify: requires now >= 0 && now <= (1 << 53) */
static void trk_advance(Tracker *t, int64_t now)
{
    int64_t elapsed = now - t->last_time;
    if (elapsed > 0) {
        if (t->count > 0) {
            t->nonzero += elapsed;
            /* reprolint: disable=kernel-overflow -- integral sums count*dt over disjoint spans (at most 2n accesses outstanding for at most miss_penalty cycles each, < 2^47 total); the interval domain loses the span correlation and sees 2^53 * 2^27 */
            t->integral += elapsed * t->count;
        }
        t->last_time = now;
    }
}

/* certify: requires now >= 0 && now <= (1 << 53) */
/* certify: requires delta >= -1 && delta <= 1 */
static void trk_add(Tracker *t, int64_t now, int64_t delta)
{
    trk_advance(t, now);
    t->count += delta;
}

/* Everything one configuration run touches, bundled so access() stays
 * a readable function instead of a 15-argument call. */
typedef struct {
    int64_t n;
    const int8_t *ops;
    const int32_t *prod1, *prod2, *prod3, *memdep;
    const int64_t *addr_line, *pc_line;
    const uint8_t *dmiss, *imiss, *mispred, *pmiss, *pfuseful;

    int64_t *ready;      /* result availability, NEVER until issue   */
    int64_t *complete;   /* commit eligibility, NEVER until issue    */
    int64_t *wake;       /* memoised operand wake time, -1 unknown   */
    uint8_t *imiss_run;  /* per-run copy: fetch consumes each miss   */

    /* MSHR entries double as completion-wheel slots (FIFO order).   */
    int64_t *ent_done;
    int64_t *ent_line;
    uint8_t *ent_useful;
    int32_t *ent_next;   /* hash chain                               */
    int32_t *hash_head;
    int64_t ce_head, ce_tail;

    int64_t *rob_buf;    /* ring buffer                              */
    int64_t rob_alloc;
    int64_t *iw_buf;     /* program-order array, compacted at issue  */
    int64_t *memops_buf;
    int64_t *branches_buf;
    int64_t *urs_buf;    /* unresolved stores: pure FIFO, no wrap    */
    int64_t *fq_idx;     /* fetch queue ring                         */
    int64_t *fq_time;
    int64_t fq_alloc;

    Tracker trk;
    CycleResult *out;
    int64_t miss_penalty;
} Ctx;

/* certify: returns 0 .. HASH_SIZE - 1 */
static uint64_t hash_line(int64_t line)
{
    uint64_t h = (uint64_t)line;
    h *= 0x9E3779B97F4A7C15ULL;
    return h >> (64 - HASH_BITS);
}

/* Start (or merge into) an off-chip access; returns completion time. */
/* certify: requires now >= 0 && now <= (1 << 52) */
/* certify: requires line >= 0 && line <= (1 << 57) */
/* certify: requires useful >= 0 && useful <= 1 */
/* certify: returns 0 .. (1 << 53) */
static int64_t do_access(Ctx *c, int64_t now, int64_t line, int useful,
                         int kind)
{
    uint64_t b = hash_line(line);
    int32_t e = c->hash_head[b];
    while (e >= 0 && c->ent_line[e] != line)
        e = c->ent_next[e];
    if (e >= 0) {  /* merge with the in-flight access to this line */
        if (useful && !c->ent_useful[e]) {
            c->ent_useful[e] = 1;
            trk_add(&c->trk, now, 1);
        }
        return c->ent_done[e];
    }
    int64_t done = now + c->miss_penalty;
    /* certify: assume c->ce_tail <= 2 * n - 1 -- at most two wheel
       entries per instruction (one pc line at fetch, gated by
       imiss_run; one data line at issue, and each instruction issues
       once), so the tail never reaches 2n */
    e = (int32_t)c->ce_tail++;
    c->ent_done[e] = done;
    c->ent_line[e] = line;
    c->ent_useful[e] = (uint8_t)useful;
    c->ent_next[e] = c->hash_head[b];
    c->hash_head[b] = e;
    if (useful) {
        trk_add(&c->trk, now, 1);
        c->out->offchip_accesses++;
        if (kind == KIND_DMISS)
            c->out->dmiss_accesses++;
        else if (kind == KIND_IMISS)
            c->out->imiss_accesses++;
        else
            c->out->prefetch_accesses++;
    }
    return done;
}

/* certify: requires i >= 0 && i <= n - 1 */
/* certify: returns 0 .. NEVER */
static int64_t wake_of(Ctx *c, int64_t i)
{
    int64_t w = c->wake[i];
    if (w >= 0)
        return w;
    w = 0;
    int32_t p = c->prod1[i];
    if (p >= 0 && c->ready[p] > w)
        w = c->ready[p];
    p = c->prod2[i];
    if (p >= 0 && c->ready[p] > w)
        w = c->ready[p];
    p = c->prod3[i];
    if (p >= 0 && c->ready[p] > w)
        w = c->ready[p];
    if (w < NEVER)
        c->wake[i] = w;  /* every producer issued: final */
    return w;
}

/* Remove *value* from an order-preserving array list (always present). */
/* certify: requires *count >= 1 && *count <= iw_alloc */
/* certify: requires value >= 0 && value <= n - 1 */
/* certify: buffer buf length iw_alloc content 0 .. n - 1 */
static void list_remove(int64_t *buf, int64_t *count, int64_t value)
{
    int64_t k = 0;
    /* certify: assume k <= *count - 1 -- value is always present among
       the first *count live entries (callers only remove instructions
       they inserted at dispatch), so the scan stops before the end */
    while (buf[k] != value)
        k++;
    (*count)--;
    /* certify: assume k <= *count -- the removed slot sits at or before
       the new count (k was below the old count, checked above) */
    memmove(buf + k, buf + k + 1, (size_t)(*count - k) * sizeof(int64_t));  /* reprolint: disable=kernel-bounds -- shifts the (*count - k) in-bounds tail left by one slot; the interval domain cannot relate the source pointer buf + k + 1 to the declared buffer base, and 0 <= k <= *count is established by the assumes above */
}

static void run_one(Ctx *c, const CycleConfig *cfg)
{
    /* certify: assume cfg->rob <= rob_alloc && cfg->issue_window <= iw_alloc && cfg->fetch_buffer <= fq_alloc -- cyclesim_batch sizes the scratch buffers to the maxima over all configs */
    const int64_t n = c->n;
    const int8_t *ops = c->ops;
    const int32_t *memdep = c->memdep;
    const uint8_t *dmiss = c->dmiss, *mispred = c->mispred;
    const uint8_t *pmiss = c->pmiss, *pfuseful = c->pfuseful;
    int64_t *ready = c->ready, *complete = c->complete;
    CycleResult *out = c->out;

    const int load_in_order = (int)cfg->load_in_order;
    const int load_wait_staddr = (int)cfg->load_wait_staddr;
    const int branch_in_order = (int)cfg->branch_in_order;
    const int serializing = (int)cfg->serializing;
    const int perfect_l2 = (int)cfg->perfect_l2;
    const int event_skip = (int)cfg->event_skip;
    const int64_t l1_latency = cfg->l1_latency;
    const int64_t l2_latency = cfg->l2_latency;
    const int64_t alu_latency = cfg->alu_latency;
    const int64_t branch_latency = cfg->branch_latency;
    const int64_t frontend_depth = cfg->frontend_depth;
    const int64_t redirect_penalty = cfg->redirect_penalty;
    const int64_t commit_width = cfg->commit_width;
    const int64_t issue_width = cfg->issue_width;
    const int64_t dispatch_width = cfg->dispatch_width;
    const int64_t fetch_width = cfg->fetch_width;
    const int64_t fetch_buffer = cfg->fetch_buffer;
    const int64_t rob_size = cfg->rob;
    const int64_t iw_size = cfg->issue_window;
    c->miss_penalty = cfg->miss_penalty;

    /* Reset per-config scratch. */
    for (int64_t i = 0; i < n; i++) {
        ready[i] = NEVER;
        complete[i] = NEVER;
    }
    memset(c->wake, 0xff, (size_t)n * sizeof(int64_t));  /* -1 */
    if (n)
        memcpy(c->imiss_run, c->imiss, (size_t)n);
    for (int64_t b = 0; b < HASH_SIZE; b++)
        c->hash_head[b] = -1;
    c->ce_head = c->ce_tail = 0;
    c->trk.count = c->trk.last_time = 0;
    c->trk.nonzero = c->trk.integral = 0;

    int64_t rob_head = 0, rob_count = 0;  /* ring over rob_buf */
    int64_t iw_count = 0;
    int64_t memops_count = 0, branches_count = 0;
    int64_t urs_head = 0, urs_tail = 0;
    int64_t fq_head = 0, fq_count = 0;

    int64_t fetch_ptr = 0;
    int64_t fetch_stall_until = 0;
    int waiting_redirect = 0;
    int64_t redirect_branch = -1;
    int64_t serializing_block_until = 0;
    int wait_reason_is_branch = 0;

    int64_t now = 0;
    int64_t committed = 0;

    while (committed < n) {
        /* certify: assume now >= 0 && now <= (1 << 52) && rob_count >= 0 && rob_count <= rob_alloc && rob_head >= 0 && rob_head <= rob_alloc - 1 && iw_count >= 0 && iw_count <= iw_alloc && fq_count >= 0 && fq_count <= fq_alloc && fq_head >= 0 && fq_head <= fq_alloc - 1 && memops_count >= 0 && memops_count <= iw_alloc && branches_count >= 0 && branches_count <= iw_alloc && urs_head >= 0 && urs_head <= urs_tail && urs_tail >= 0 && urs_tail <= n -- cycle-loop invariants: every queue insertion below is guarded by its capacity check, ring heads wrap on increment, at most one unresolved store per instruction, and simulated time only jumps to already-scheduled events (each at most miss_penalty ahead; total work is bounded by 3n events) */
        /* Retire completed off-chip accesses. */
        while (c->ce_head < c->ce_tail && c->ent_done[c->ce_head] <= now) {
            int64_t e = c->ce_head++;
            uint64_t b = hash_line(c->ent_line[e]);
            int32_t cur = c->hash_head[b];
            if (cur == (int32_t)e) {
                c->hash_head[b] = c->ent_next[e];
            } else {
                /* certify: assume cur >= 0 -- entry e is always linked
                   into its line's hash chain, so the walk stays inside
                   the chain until it finds e */
                while (c->ent_next[cur] != (int32_t)e)
                    cur = c->ent_next[cur];
                c->ent_next[cur] = c->ent_next[e];
            }
            if (c->ent_useful[e])
                trk_add(&c->trk, c->ent_done[e], -1);
        }

        int64_t activity = 0;
        int64_t committed_this_cycle = 0;

        /* ---- commit ---------------------------------------------- */
        for (int64_t k = 0; k < commit_width; k++) {
            if (rob_count == 0)
                break;
            int64_t head = c->rob_buf[rob_head];
            if (complete[head] > now)
                break;
            rob_head++;
            if (rob_head == c->rob_alloc)
                rob_head = 0;
            rob_count--;
            /* certify: assume committed <= n - 1 -- each commit retires
               a distinct one of the n instructions */
            committed++;
            /* certify: assume committed_this_cycle <= (1 << 16) - 1 --
               one increment per commit-loop iteration, and the loop is
               bounded by commit_width <= 2^16 */
            committed_this_cycle++;
            /* certify: assume activity <= (1 << 18) -- at most one
               increment per commit, issue, dispatch, or fetch slot per
               cycle, and each width is <= 2^16 */
            activity++;
        }

        /* ---- issue ----------------------------------------------- */
        if (iw_count > 0 && now >= serializing_block_until) {
            int64_t issued_this_cycle = 0;
            int any_issued = 0;
            for (int64_t pos = 0; pos < iw_count; pos++) {
                if (issued_this_cycle >= issue_width)
                    break;
                int64_t i = c->iw_buf[pos];
                int op = ops[i];
                int is_serial = (op == OP_CAS || op == OP_LDSTUB ||
                                 op == OP_MEMBAR);

                if (serializing && is_serial) {
                    /* Drain: only the ROB head may issue. */
                    if (rob_count == 0 || c->rob_buf[rob_head] != i)
                        continue;
                }
                if (wake_of(c, i) > now)
                    continue;

                if (op == OP_LOAD || op == OP_CAS || op == OP_LDSTUB) {
                    int32_t m = memdep[i];
                    if (m >= 0 && complete[m] > now)
                        continue;  /* wait for the forwarding store */
                    if (load_in_order && c->memops_buf[0] != i)
                        continue;
                    if (load_wait_staddr) {
                        while (urs_head < urs_tail) {
                            int64_t s = c->urs_buf[urs_head];
                            int64_t addr_when = 0;
                            int32_t p = c->prod1[s];
                            if (p >= 0 && ready[p] > addr_when)
                                addr_when = ready[p];
                            p = c->prod2[s];
                            if (p >= 0 && ready[p] > addr_when)
                                addr_when = ready[p];
                            if (addr_when <= now)
                                urs_head++;
                            else
                                break;
                        }
                        if (urs_head < urs_tail && c->urs_buf[urs_head] < i)
                            continue;
                    }
                    int64_t done;
                    if (dmiss[i]) {
                        if (perfect_l2)
                            done = now + l2_latency;
                        else
                            done = do_access(c, now, c->addr_line[i], 1,
                                             KIND_DMISS);
                    } else {
                        done = now + l1_latency;
                    }
                    ready[i] = done;
                    complete[i] = done;
                    if (serializing && op != OP_LOAD)
                        serializing_block_until = done;
                } else if (op == OP_STORE) {
                    if (load_in_order && c->memops_buf[0] != i)
                        continue;
                    ready[i] = now + 1;
                    complete[i] = now + 1;
                } else if (op == OP_PREFETCH) {
                    if (pmiss[i] && !perfect_l2)
                        do_access(c, now, c->addr_line[i], pfuseful[i],
                                  KIND_PREFETCH);
                    ready[i] = now + 1;
                    complete[i] = now + 1;
                } else if (op == OP_BRANCH) {
                    if (branch_in_order && c->branches_buf[0] != i)
                        continue;
                    int64_t done = now + branch_latency;
                    ready[i] = done;
                    complete[i] = done;
                    if (i == redirect_branch) {
                        fetch_stall_until = done + redirect_penalty;
                        redirect_branch = -1;
                        waiting_redirect = 0;
                        wait_reason_is_branch = 1;
                    }
                } else if (op == OP_MEMBAR) {
                    ready[i] = now + 1;
                    complete[i] = now + 1;
                    if (serializing)
                        serializing_block_until = now + 1;
                } else {  /* ALU / NOP */
                    int64_t done = now + alu_latency;
                    ready[i] = done;
                    complete[i] = done;
                }

                issued_this_cycle++;
                any_issued = 1;
                c->iw_buf[pos] = -1;  /* compacted below */
                if (op == OP_LOAD || op == OP_STORE || op == OP_PREFETCH ||
                    op == OP_CAS || op == OP_LDSTUB)
                    /* certify: assume memops_count >= 1 && memops_count <= iw_alloc -- the op being removed was inserted into memops_buf at dispatch, and the list never outgrows the issue window */
                    list_remove(c->memops_buf, &memops_count, i);
                if (op == OP_BRANCH)
                    /* certify: assume branches_count >= 1 && branches_count <= iw_alloc -- the branch being removed was inserted at dispatch, and the list never outgrows the issue window */
                    list_remove(c->branches_buf, &branches_count, i);
                if (serializing && (op == OP_CAS || op == OP_LDSTUB))
                    break;  /* drain: nothing younger issues this cycle */
            }
            if (any_issued) {
                int64_t w = 0;
                for (int64_t pos = 0; pos < iw_count; pos++) {
                    int64_t v = c->iw_buf[pos];
                    if (v >= 0)
                        /* certify: assume w <= pos -- w counts the kept
                           entries, at most one per scanned slot */
                        c->iw_buf[w++] = v;
                }
                iw_count = w;
                /* certify: assume issued_this_cycle <= (1 << 16) -- bounded by the issue_width guard, which the widened loop exit loses */
                activity += issued_this_cycle;
            }
        }

        /* ---- dispatch -------------------------------------------- */
        int64_t dispatched = 0;
        while (fq_count > 0 && dispatched < dispatch_width &&
               c->fq_time[fq_head] <= now && rob_count < rob_size &&
               iw_count < iw_size) {
            int64_t i = c->fq_idx[fq_head];
            int op = ops[i];
            if (serializing &&
                (op == OP_CAS || op == OP_LDSTUB || op == OP_MEMBAR) &&
                rob_count > 0)
                break;  /* serializing op enters an empty backend only */
            fq_head++;
            if (fq_head == c->fq_alloc)
                fq_head = 0;
            fq_count--;
            int64_t tail = rob_head + rob_count;
            if (tail >= c->rob_alloc)
                tail -= c->rob_alloc;
            c->rob_buf[tail] = i;
            rob_count++;
            c->iw_buf[iw_count++] = i;
            if (op == OP_LOAD || op == OP_STORE || op == OP_PREFETCH ||
                op == OP_CAS || op == OP_LDSTUB) {
                /* certify: assume memops_count >= 0 && memops_count <= iw_alloc - 1 -- every
                   listed memop also occupies an issue-window slot
                   (inserted together just above, removed together at
                   issue), so the list stays below the allocation */
                c->memops_buf[memops_count++] = i;
                if (op == OP_STORE && load_wait_staddr)
                    /* certify: assume urs_tail <= n - 1 -- stores enter
                       the unresolved-store FIFO once each, so at most n
                       entries are ever appended */
                    c->urs_buf[urs_tail++] = i;
            }
            if (op == OP_BRANCH)
                /* certify: assume branches_count >= 0 && branches_count <= iw_alloc - 1 --
                   every listed branch also occupies an issue-window
                   slot, so the list stays below the allocation */
                c->branches_buf[branches_count++] = i;
            dispatched++;
        }
        /* certify: assume dispatched <= (1 << 16) -- bounded by the dispatch_width guard, which the widened loop exit loses */
        activity += dispatched;

        /* ---- fetch ----------------------------------------------- */
        if (now >= fetch_stall_until && !waiting_redirect) {
            int64_t fetched = 0;
            while (fetch_ptr < n && fetched < fetch_width &&
                   fq_count < fetch_buffer) {
                int64_t i = fetch_ptr;
                if (c->imiss_run[i]) {
                    c->imiss_run[i] = 0;
                    int64_t done;
                    if (perfect_l2)
                        done = now + l2_latency;
                    else
                        done = do_access(c, now, c->pc_line[i], 1,
                                         KIND_IMISS);
                    fetch_stall_until = done;
                    wait_reason_is_branch = 0;
                    break;
                }
                int64_t slot = fq_head + fq_count;
                if (slot >= c->fq_alloc)
                    slot -= c->fq_alloc;
                c->fq_idx[slot] = i;
                c->fq_time[slot] = now + frontend_depth;
                fq_count++;
                fetch_ptr++;
                fetched++;
                if (mispred[i]) {
                    waiting_redirect = 1;
                    redirect_branch = i;
                    break;
                }
            }
            /* certify: assume fetched <= (1 << 16) -- bounded by the fetch_width guard, which the widened loop exit loses */
            activity += fetched;
        }

        /* ---- attribute this cycle to the CPI stack --------------- */
        int cat;
        if (committed_this_cycle) {
            cat = CAT_COMMIT;
        } else if (rob_count > 0) {
            int64_t head = c->rob_buf[rob_head];
            if (complete[head] < NEVER) {
                int op = ops[head];
                if (serializing && (op == OP_CAS || op == OP_LDSTUB ||
                                    op == OP_MEMBAR))
                    cat = CAT_DRAIN;
                else if (dmiss[head] || op == OP_LOAD || op == OP_CAS ||
                         op == OP_LDSTUB)
                    cat = CAT_MEMORY;
                else
                    cat = CAT_BACKEND;
            } else {
                cat = CAT_BACKEND;
            }
        } else if (waiting_redirect ||
                   (redirect_branch == -1 && fetch_stall_until > now &&
                    fetch_ptr < n && wait_reason_is_branch)) {
            cat = CAT_BRANCH;
        } else if (fetch_stall_until > now) {
            cat = CAT_IFETCH;
        } else {
            cat = CAT_FRONTEND;
        }

        /* ---- advance time ---------------------------------------- */
        trk_advance(&c->trk, now);
        if (activity || !event_skip) {
            out->stalls[cat]++;
            now++;
            continue;
        }
        /* Fully stalled: jump to the next event (clock bulk-skip). */
        int64_t next_time = NEVER;
        if (c->ce_head < c->ce_tail)
            next_time = c->ent_done[c->ce_head];
        if (rob_count > 0) {
            int64_t t = complete[c->rob_buf[rob_head]];
            if (t < next_time)
                next_time = t;
        }
        /* certify: assume iw_count >= 0 && iw_count <= iw_alloc -- the
           issue-window list never outgrows its allocation (the same
           cycle-loop invariant assumed at the loop head above) */
        for (int64_t pos = 0; pos < iw_count; pos++) {
            int64_t w = wake_of(c, c->iw_buf[pos]);
            if (now < w && w < next_time)
                next_time = w;
        }
        if (fq_count > 0 && c->fq_time[fq_head] > now &&
            c->fq_time[fq_head] < next_time)
            next_time = c->fq_time[fq_head];
        if (!waiting_redirect && now < fetch_stall_until &&
            fetch_stall_until < next_time)
            next_time = fetch_stall_until;
        if (now < serializing_block_until &&
            serializing_block_until < next_time)
            next_time = serializing_block_until;
        if (next_time <= now || next_time >= NEVER) {
            out->status = ST_DEADLOCK;
            out->error_cycle = now;
            out->error_committed = committed;
            return;
        }
        out->stalls[cat] += next_time - now;
        now = next_time;
    }

    /* certify: assume now <= (1 << 52) -- simulated time only jumps to
       already-scheduled events, each at most miss_penalty ahead of the
       clock; total time is bounded by 3n events * 2^20 < 2^47 */
    trk_advance(&c->trk, now);
    out->cycles = now;
    out->nonzero_cycles = c->trk.nonzero;
    out->outstanding_integral = c->trk.integral;
    out->status = ST_OK;
}

int cyclesim_batch(
    int64_t n,
    const int8_t *ops,
    const int32_t *prod1, const int32_t *prod2, const int32_t *prod3,
    const int32_t *memdep,
    const int64_t *addr_line, const int64_t *pc_line,
    const uint8_t *dmiss, const uint8_t *imiss, const uint8_t *mispred,
    const uint8_t *pmiss, const uint8_t *pfuseful,
    const CycleConfig *configs, int64_t n_configs,
    CycleResult *results)
{
    Ctx c;
    memset(&c, 0, sizeof(c));
    c.n = n;
    c.ops = ops;
    c.prod1 = prod1;
    c.prod2 = prod2;
    c.prod3 = prod3;
    c.memdep = memdep;
    c.addr_line = addr_line;
    c.pc_line = pc_line;
    c.dmiss = dmiss;
    c.imiss = imiss;
    c.mispred = mispred;
    c.pmiss = pmiss;
    c.pfuseful = pfuseful;

    int64_t rob_max = 1, iw_max = 1, fq_max = 1;
    for (int64_t k = 0; k < n_configs; k++) {
        if (configs[k].rob > rob_max)
            rob_max = configs[k].rob;
        if (configs[k].issue_window > iw_max)
            iw_max = configs[k].issue_window;
        if (configs[k].fetch_buffer > fq_max)
            fq_max = configs[k].fetch_buffer;
    }
    /* certify: assume rob_max == rob_alloc && iw_max == iw_alloc && fq_max == fq_alloc -- the proof's allocation symbols are defined as exactly these maxima */
    c.rob_alloc = rob_max;
    c.fq_alloc = fq_max;

    size_t ni = (size_t)(n > 0 ? n : 1);
    c.ready = malloc(ni * sizeof(int64_t));
    c.complete = malloc(ni * sizeof(int64_t));
    c.wake = malloc(ni * sizeof(int64_t));
    c.imiss_run = malloc(ni);
    c.ent_done = malloc(2 * ni * sizeof(int64_t));
    c.ent_line = malloc(2 * ni * sizeof(int64_t));
    c.ent_useful = malloc(2 * ni);
    c.ent_next = malloc(2 * ni * sizeof(int32_t));
    c.hash_head = malloc(HASH_SIZE * sizeof(int32_t));
    c.urs_buf = malloc(ni * sizeof(int64_t));
    c.rob_buf = malloc((size_t)rob_max * sizeof(int64_t));
    c.iw_buf = malloc((size_t)iw_max * sizeof(int64_t));
    c.memops_buf = malloc((size_t)iw_max * sizeof(int64_t));
    c.branches_buf = malloc((size_t)iw_max * sizeof(int64_t));
    c.fq_idx = malloc((size_t)fq_max * sizeof(int64_t));
    c.fq_time = malloc((size_t)fq_max * sizeof(int64_t));

    int ok = c.ready && c.complete && c.wake && c.imiss_run &&
             c.ent_done && c.ent_line && c.ent_useful && c.ent_next &&
             c.hash_head && c.urs_buf && c.rob_buf && c.iw_buf &&
             c.memops_buf && c.branches_buf && c.fq_idx && c.fq_time;
    if (ok) {
        for (int64_t k = 0; k < n_configs; k++) {
            memset(&results[k], 0, sizeof(CycleResult));
            c.out = &results[k];
            run_one(&c, &configs[k]);
        }
    }

    free(c.ready);
    free(c.complete);
    free(c.wake);
    free(c.imiss_run);
    free(c.ent_done);
    free(c.ent_line);
    free(c.ent_useful);
    free(c.ent_next);
    free(c.hash_head);
    free(c.urs_buf);
    free(c.rob_buf);
    free(c.iw_buf);
    free(c.memops_buf);
    free(c.branches_buf);
    free(c.fq_idx);
    free(c.fq_time);
    return ok ? 0 : 1;
}
