"""The cycle-level out-of-order pipeline.

Trace-driven timing simulation over an annotated trace: the annotation
decides *what* happens (which loads leave the chip, which branches
mispredict), the pipeline decides *when*.  The model:

* fetch: ``fetch_width``/cycle into a ``fetch_buffer``-entry queue;
  fetch blocks on an instruction-fetch miss until the line returns, and
  after a mispredicted branch until it resolves plus a redirect penalty;
* dispatch: ``dispatch_width``/cycle, ``frontend_depth`` cycles after
  fetch, consuming ROB and issue-window entries;
* issue: ``issue_width``/cycle, oldest-first from the issue window once
  operands are ready, subject to the Table 2 issue constraints (load
  ordering, branch ordering, serializing drain);
* memory: off-chip accesses allocate MSHR entries (merging on the same
  line) that complete after ``miss_penalty`` cycles; MLP(t) is the
  number of useful entries outstanding;
* commit: in-order, ``commit_width``/cycle; a missing load holds its
  ROB entry until its data returns.

Time advances cycle by cycle while the pipeline makes progress and
skips directly to the next event (a completion, a fetch restart) when
it is fully stalled — which is most of the wall-clock time at
1000-cycle memory latencies.
"""

import heapq

from repro.core.config import BranchPolicy, LoadPolicy, SerializePolicy
from repro.core.depgraph import depgraph_for
from repro.core.mlpsim import event_masks, resolve_region
from repro.cyclesim.config import CycleSimConfig
from repro.cyclesim.metrics import CycleMetrics, OutstandingTracker
from repro.isa.opclass import OpClass
from repro.robustness.errors import InternalError

_NEVER = 1 << 60
_LINE_SHIFT = 6


class CycleSimulator:
    """Runs one annotated trace through the cycle-level pipeline."""

    def __init__(self, config=None):
        self.config = config or CycleSimConfig()

    def run(self, annotated, start=None, stop=None, workload=None):
        """Simulate *annotated* and return :class:`CycleMetrics`."""
        return run_cyclesim(
            annotated, self.config, start=start, stop=stop, workload=workload
        )


def run_cyclesim(annotated, config=None, start=None, stop=None, workload=None):
    """Simulate *annotated* under *config*; return :class:`CycleMetrics`."""
    config = config or CycleSimConfig()
    trace = annotated.trace
    start, stop = resolve_region(annotated, start, stop)
    n = stop - start

    dmiss, imiss, mispred, pmiss, pfuseful, _ = event_masks(
        annotated, config.machine(), start, stop
    )
    imiss = list(imiss)

    graph = depgraph_for(annotated, start, stop)
    prod1, prod2, prod3 = graph.prod1, graph.prod2, graph.prod3
    memdep = graph.memdep

    ops = trace.op[start:stop].tolist()
    addrs = trace.addr[start:stop].tolist()
    pcs = trace.pc[start:stop].tolist()

    ALU = int(OpClass.ALU)
    LOAD = int(OpClass.LOAD)
    STORE = int(OpClass.STORE)
    BRANCH = int(OpClass.BRANCH)
    PREFETCH = int(OpClass.PREFETCH)
    CAS = int(OpClass.CAS)
    LDSTUB = int(OpClass.LDSTUB)
    MEMBAR = int(OpClass.MEMBAR)
    NOP = int(OpClass.NOP)
    MEMOPS = (LOAD, STORE, PREFETCH, CAS, LDSTUB)

    load_in_order = config.issue.load_policy == LoadPolicy.IN_ORDER
    load_wait_staddr = config.issue.load_policy == LoadPolicy.WAIT_STORE_ADDR
    branch_in_order = config.issue.branch_policy == BranchPolicy.IN_ORDER
    serializing = config.issue.serialize_policy == SerializePolicy.SERIALIZING
    perfect_l2 = config.perfect_l2
    miss_penalty = config.miss_penalty
    l1_latency = config.l1_latency
    l2_latency = config.l2_latency

    # Per-instruction timing state.
    ready = [_NEVER] * n  # result availability (wakeup)
    complete = [_NEVER] * n  # commit eligibility

    fetch_q = []  # (index, dispatch-eligible cycle), FIFO
    rob = []  # indices in program order (list used as deque via pointer)
    rob_head = 0
    iw = []  # dispatched, unissued indices (program order)
    unissued_memops = []  # for policy A ordering (head may issue)
    unresolved_stores = []  # for policy B (stores whose address is unknown)
    unissued_branches = []  # for in-order branch issue

    fetch_ptr = 0
    fetch_stall_until = 0
    waiting_redirect = False  # stalled on an unissued mispredicted branch
    redirect_branch = -1
    serializing_block_until = 0

    mshr = {}  # line -> [completion_cycle, useful]
    completion_events = []  # heap of (cycle, line)
    tracker = OutstandingTracker()

    metrics = CycleMetrics(
        workload=workload or trace.name,
        label=f"{config.issue_window}{config.issue.name}"
        + ("/perfL2" if perfect_l2 else ""),
    )

    def access(now, addr, useful, kind):
        """Start an off-chip access; return its completion cycle."""
        if perfect_l2:
            return now + l2_latency
        line = addr >> _LINE_SHIFT
        entry = mshr.get(line)
        if entry is not None:
            if useful and not entry[1]:
                entry[1] = True
                tracker.add(now, 1)
            return entry[0]
        done = now + miss_penalty
        mshr[line] = [done, useful]
        heapq.heappush(completion_events, (done, line))
        if useful:
            tracker.add(now, 1)
            metrics.offchip_accesses += 1
            if kind == 0:
                metrics.dmiss_accesses += 1
            elif kind == 1:
                metrics.imiss_accesses += 1
            else:
                metrics.prefetch_accesses += 1
        return done

    def operands_ready(i):
        """The cycle all register operands of *i* are available."""
        when = 0
        p = prod1[i]
        if p >= 0:
            r = ready[p]
            if r > when:
                when = r
        p = prod2[i]
        if p >= 0:
            r = ready[p]
            if r > when:
                when = r
        p = prod3[i]
        if p >= 0:
            r = ready[p]
            if r > when:
                when = r
        return when

    now = 0
    committed = 0
    stalls = metrics.stall_cycles
    wait_reason_is_branch = False
    while committed < n:
        # Retire completed off-chip accesses.
        while completion_events and completion_events[0][0] <= now:
            done, line = heapq.heappop(completion_events)
            entry = mshr.pop(line, None)
            if entry is not None and entry[1]:
                tracker.add(done, -1)

        activity = 0
        committed_this_cycle = 0

        # ---- commit ------------------------------------------------------
        for _ in range(config.commit_width):
            if rob_head >= len(rob):
                break
            head = rob[rob_head]
            if complete[head] > now:
                break
            rob_head += 1
            committed += 1
            committed_this_cycle += 1
            activity += 1
        if rob_head > 4096 and rob_head * 2 > len(rob):
            del rob[:rob_head]
            rob_head = 0

        # ---- issue ---------------------------------------------------------
        if iw and now >= serializing_block_until:
            issued_this_cycle = 0
            issued_indices = []
            for i in iw:
                if issued_this_cycle >= config.issue_width:
                    break
                op = ops[i]

                if serializing and op in (CAS, LDSTUB, MEMBAR):
                    # Pipeline drain: only the ROB head may issue, and
                    # younger instructions wait for its completion.
                    if rob_head >= len(rob) or rob[rob_head] != i:
                        continue
                if operands_ready(i) > now:
                    continue

                if op == LOAD or op == CAS or op == LDSTUB:
                    m = memdep[i]
                    if m >= 0 and complete[m] > now:
                        continue  # wait for the forwarding store
                    if load_in_order and unissued_memops[0] != i:
                        continue
                    if load_wait_staddr:
                        while unresolved_stores:
                            s = unresolved_stores[0]
                            addr_when = 0
                            p = prod1[s]
                            if p >= 0 and ready[p] > addr_when:
                                addr_when = ready[p]
                            p = prod2[s]
                            if p >= 0 and ready[p] > addr_when:
                                addr_when = ready[p]
                            if addr_when <= now:
                                unresolved_stores.pop(0)
                            else:
                                break
                        if unresolved_stores and unresolved_stores[0] < i:
                            continue
                    if dmiss[i]:
                        done = access(now, addrs[i], True, 0)
                    else:
                        done = now + l1_latency
                    ready[i] = done
                    complete[i] = done
                    if serializing and op != LOAD:
                        serializing_block_until = done
                elif op == STORE:
                    if load_in_order and unissued_memops[0] != i:
                        continue
                    ready[i] = now + 1
                    complete[i] = now + 1
                elif op == PREFETCH:
                    if pmiss[i]:
                        access(now, addrs[i], pfuseful[i], 2)
                    ready[i] = now + 1
                    complete[i] = now + 1
                elif op == BRANCH:
                    if branch_in_order and unissued_branches[0] != i:
                        continue
                    done = now + config.branch_latency
                    ready[i] = done
                    complete[i] = done
                    if i == redirect_branch:
                        fetch_stall_until = done + config.redirect_penalty
                        redirect_branch = -1
                        waiting_redirect = False
                        wait_reason_is_branch = True
                elif op == MEMBAR:
                    ready[i] = now + 1
                    complete[i] = now + 1
                    if serializing:
                        serializing_block_until = now + 1
                else:  # ALU / NOP
                    done = now + config.alu_latency
                    ready[i] = done
                    complete[i] = done

                issued_indices.append(i)
                issued_this_cycle += 1
                if op in MEMOPS and unissued_memops and unissued_memops[0] == i:
                    unissued_memops.pop(0)
                elif op in MEMOPS:
                    unissued_memops.remove(i)
                if op == BRANCH:
                    if unissued_branches and unissued_branches[0] == i:
                        unissued_branches.pop(0)
                    else:
                        unissued_branches.remove(i)
                if serializing and op in (CAS, LDSTUB):
                    break  # drain: nothing younger issues this cycle

            for i in issued_indices:
                iw.remove(i)
            activity += len(issued_indices)

        # ---- dispatch -----------------------------------------------------
        dispatched = 0
        while (
            fetch_q
            and dispatched < config.dispatch_width
            and fetch_q[0][1] <= now
            and len(rob) - rob_head < config.rob
            and len(iw) < config.issue_window
        ):
            if (
                serializing
                and ops[fetch_q[0][0]] in (CAS, LDSTUB, MEMBAR)
                and rob_head < len(rob)
            ):
                # Pipeline drain: a serializing instruction enters the
                # backend only once everything older has committed.
                break
            i, _ = fetch_q.pop(0)
            rob.append(i)
            iw.append(i)
            op = ops[i]
            if op in MEMOPS:
                unissued_memops.append(i)
                if op == STORE and load_wait_staddr:
                    unresolved_stores.append(i)
            if op == BRANCH:
                unissued_branches.append(i)
            dispatched += 1
        activity += dispatched

        # ---- fetch ---------------------------------------------------------
        if now >= fetch_stall_until and not waiting_redirect:
            fetched = 0
            while (
                fetch_ptr < n
                and fetched < config.fetch_width
                and len(fetch_q) < config.fetch_buffer
            ):
                i = fetch_ptr
                if imiss[i]:
                    imiss[i] = False
                    done = access(now, pcs[i], True, 1)
                    fetch_stall_until = done
                    wait_reason_is_branch = False
                    break
                fetch_q.append((i, now + config.frontend_depth))
                fetch_ptr += 1
                fetched += 1
                if mispred[i]:
                    waiting_redirect = True
                    redirect_branch = i
                    break
            activity += fetched

        # ---- attribute this cycle to the CPI stack -------------------------
        if committed_this_cycle:
            category = "commit"
        elif rob_head < len(rob):
            head = rob[rob_head]
            if complete[head] < _NEVER:
                head_op = ops[head]
                if head_op in (CAS, LDSTUB, MEMBAR) and serializing:
                    category = "drain"
                elif dmiss[head] or head_op in (LOAD, CAS, LDSTUB):
                    category = "memory"
                else:
                    category = "backend"
            else:
                category = "backend"
        elif waiting_redirect or (
            redirect_branch == -1 and fetch_stall_until > now and fetch_ptr < n
            and wait_reason_is_branch
        ):
            category = "branch"
        elif fetch_stall_until > now:
            category = "ifetch"
        else:
            category = "frontend"

        # ---- advance time --------------------------------------------------
        tracker.advance(now)
        if activity or not config.event_skip:
            stalls[category] += 1
            now += 1
            continue
        # Fully stalled: jump to the next event.
        next_time = _NEVER
        if completion_events:
            next_time = completion_events[0][0]
        if rob_head < len(rob):
            c = complete[rob[rob_head]]
            if c < next_time:
                next_time = c
        for i in iw:
            w = operands_ready(i)
            if now < w < next_time:
                next_time = w
        if fetch_q and fetch_q[0][1] > now:
            if fetch_q[0][1] < next_time:
                next_time = fetch_q[0][1]
        if not waiting_redirect and now < fetch_stall_until < next_time:
            next_time = fetch_stall_until
        if now < serializing_block_until < next_time:
            next_time = serializing_block_until
        if next_time <= now or next_time >= _NEVER:
            raise InternalError(
                f"cycle simulator deadlocked at cycle {now}"
                f" (committed {committed}/{n})"
            )
        stalls[category] += next_time - now
        now = next_time

    tracker.advance(now)
    metrics.instructions = n
    metrics.cycles = now
    metrics.nonzero_cycles = tracker.nonzero_cycles
    metrics.outstanding_integral = tracker.integral
    return metrics
