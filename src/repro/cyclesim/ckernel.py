"""Compiled cyclesim kernel: build, load and drive ``_cyclesim_kernel.c``.

The cycle simulator's fast tier is a C translation of the interpreter
in :mod:`repro.cyclesim.simulator`, compiled on demand with the system
C compiler and loaded through :mod:`ctypes` — the same zero-dependency
build protocol as the MLPsim kernel (:mod:`repro.core.ckernel`): the
object is keyed on the SHA-1 of the source, written atomically so
concurrent sweep workers race benignly, and ``REPRO_KERNEL_DIR``
overrides the build directory (empty string disables the kernel —
tests use this to pin the interpreter tier).

One :func:`run_cycle_plan` call simulates **many pipeline
configurations against one shared cycle plan**: the per-instruction
tables cross the ctypes boundary once and the per-config cost is a
compiled pipeline walk, which is what makes the Table 3 grid (27
configs per workload) cheap.

Everything is fail-soft: a missing compiler or unwritable build
directory marks the kernel unavailable (:func:`kernel_available`
returns ``False``) and the pure-Python interpreter takes over.
"""

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

from repro.core.config import BranchPolicy, LoadPolicy, SerializePolicy
from repro.cyclesim.metrics import STALL_CATEGORIES, CycleMetrics
from repro.cyclesim.plan import validate_cycle_plan_contract
from repro.isa.opclass import OpClass
from repro.robustness.errors import InternalError

#: Opcode values the C source was written against.  Verified against
#: :class:`repro.isa.opclass.OpClass` before the kernel is ever used.
_EXPECTED_OPS = {
    "ALU": 0, "LOAD": 1, "STORE": 2, "BRANCH": 3, "PREFETCH": 4,
    "CAS": 5, "LDSTUB": 6, "MEMBAR": 7, "NOP": 8,
}

#: Per-config status codes of the C kernel (``ST_*`` defines).
_ST_OK = 0
_ST_DEADLOCK = 1

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_cyclesim_kernel.c")


class _KernelConfig(ctypes.Structure):
    _fields_ = [
        ("rob", ctypes.c_int64),
        ("issue_window", ctypes.c_int64),
        ("fetch_buffer", ctypes.c_int64),
        ("fetch_width", ctypes.c_int64),
        ("dispatch_width", ctypes.c_int64),
        ("issue_width", ctypes.c_int64),
        ("commit_width", ctypes.c_int64),
        ("frontend_depth", ctypes.c_int64),
        ("alu_latency", ctypes.c_int64),
        ("branch_latency", ctypes.c_int64),
        ("l1_latency", ctypes.c_int64),
        ("l2_latency", ctypes.c_int64),
        ("miss_penalty", ctypes.c_int64),
        ("redirect_penalty", ctypes.c_int64),
        ("load_in_order", ctypes.c_int64),
        ("load_wait_staddr", ctypes.c_int64),
        ("branch_in_order", ctypes.c_int64),
        ("serializing", ctypes.c_int64),
        ("perfect_l2", ctypes.c_int64),
        ("event_skip", ctypes.c_int64),
    ]


class _KernelResult(ctypes.Structure):
    _fields_ = [
        ("cycles", ctypes.c_int64),
        ("offchip_accesses", ctypes.c_int64),
        ("dmiss_accesses", ctypes.c_int64),
        ("imiss_accesses", ctypes.c_int64),
        ("prefetch_accesses", ctypes.c_int64),
        ("nonzero_cycles", ctypes.c_int64),
        ("outstanding_integral", ctypes.c_int64),
        ("stalls", ctypes.c_int64 * len(STALL_CATEGORIES)),
        ("status", ctypes.c_int64),
        ("error_cycle", ctypes.c_int64),
        ("error_committed", ctypes.c_int64),
    ]


_kernel = None
_kernel_error = None
_probed = False


def _build_dir():
    """First writable directory for the compiled object, or ``None``.

    ``REPRO_KERNEL_DIR`` overrides; setting it to an empty string
    disables the compiled kernel entirely (tests use this to pin the
    interpreter tier).
    """
    override = os.environ.get("REPRO_KERNEL_DIR")
    if override is not None:
        return override if override.strip() else None
    candidates = [
        os.path.join(os.path.dirname(_SOURCE_PATH), "_build"),
        os.path.join(tempfile.gettempdir(), "repro-kernel"),
    ]
    for candidate in candidates:
        try:
            os.makedirs(candidate, exist_ok=True)
            probe = os.path.join(candidate, f".probe-{os.getpid()}")
            with open(probe, "w"):  # reprolint: disable=atomic-writes
                pass  # an empty writability probe, not a data write
            os.unlink(probe)
            return candidate
        except OSError:
            continue
    return None


def _compiler():
    return os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")


def _verify_constants():
    """The C source hard-codes enum values; refuse to load on any skew."""
    for name, value in _EXPECTED_OPS.items():
        if int(OpClass[name]) != value:
            raise InternalError(
                f"OpClass.{name} = {int(OpClass[name])} but the compiled"
                f" kernel was written for {value};"
                " rebuild _cyclesim_kernel.c"
            )


def _load_kernel():
    """Compile (if needed) and bind the kernel; raises on any failure."""
    _verify_constants()
    cc = _compiler()
    if cc is None:
        raise InternalError("no C compiler found (set CC or install cc)")
    directory = _build_dir()
    if directory is None:
        raise InternalError("no writable directory for the kernel object")
    with open(_SOURCE_PATH, "rb") as fh:
        source = fh.read()
    digest = hashlib.sha1(source).hexdigest()[:16]
    so_path = os.path.join(directory, f"_cyclesim_kernel-{digest}.so")
    if not os.path.exists(so_path):
        tmp_path = os.path.join(
            directory, f".{os.getpid()}-{digest}.so.tmp"
        )
        try:
            subprocess.run(
                [cc, "-O2", "-fPIC", "-shared", "-o", tmp_path,
                 _SOURCE_PATH],
                check=True,
                capture_output=True,
                text=True,
            )
            os.replace(tmp_path, so_path)  # atomic: workers race benignly
        except subprocess.CalledProcessError as error:
            raise InternalError(
                f"kernel compilation failed: {error.stderr}"
            ) from error
        finally:
            if os.path.exists(tmp_path):
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
    lib = ctypes.CDLL(so_path)
    fn = lib.cyclesim_batch
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.c_int64,                       # n
        ctypes.c_void_p,                      # ops
        ctypes.c_void_p, ctypes.c_void_p,     # prod1, prod2
        ctypes.c_void_p, ctypes.c_void_p,     # prod3, memdep
        ctypes.c_void_p, ctypes.c_void_p,     # addr_line, pc_line
        ctypes.c_void_p, ctypes.c_void_p,     # dmiss, imiss
        ctypes.c_void_p, ctypes.c_void_p,     # mispred, pmiss
        ctypes.c_void_p,                      # pfuseful
        ctypes.POINTER(_KernelConfig),
        ctypes.c_int64,
        ctypes.POINTER(_KernelResult),
    ]
    return fn


def kernel_available():
    """Can the compiled cyclesim kernel be used in this process?

    The first call probes (compiling if necessary); the outcome is
    cached for the life of the process either way.
    """
    global _kernel, _kernel_error, _probed
    if not _probed:
        _probed = True
        try:
            _kernel = _load_kernel()
        except Exception as error:  # fail-soft: interpreter takes over
            _kernel = None
            _kernel_error = error
    return _kernel is not None


def kernel_error():
    """Why the kernel is unavailable (``None`` when it loaded fine)."""
    kernel_available()
    return _kernel_error


def _config_struct(config):
    issue = config.issue
    return _KernelConfig(
        rob=config.rob,
        issue_window=config.issue_window,
        fetch_buffer=config.fetch_buffer,
        fetch_width=config.fetch_width,
        dispatch_width=config.dispatch_width,
        issue_width=config.issue_width,
        commit_width=config.commit_width,
        frontend_depth=config.frontend_depth,
        alu_latency=config.alu_latency,
        branch_latency=config.branch_latency,
        l1_latency=config.l1_latency,
        l2_latency=config.l2_latency,
        miss_penalty=config.miss_penalty,
        redirect_penalty=config.redirect_penalty,
        load_in_order=issue.load_policy == LoadPolicy.IN_ORDER,
        load_wait_staddr=issue.load_policy == LoadPolicy.WAIT_STORE_ADDR,
        branch_in_order=issue.branch_policy == BranchPolicy.IN_ORDER,
        serializing=issue.serialize_policy == SerializePolicy.SERIALIZING,
        perfect_l2=config.perfect_l2,
        event_skip=config.event_skip,
    )


def _column(array, dtype):
    """The column as a C-contiguous array of *dtype* without copying
    when the layout already matches (bool columns reinterpret as u8)."""
    if array.dtype == np.bool_ and dtype == np.uint8:
        array = array.view(np.uint8)
    return np.ascontiguousarray(array, dtype=dtype)


def run_cycle_plan(plan, pairs, workload):
    """Simulate every ``(label, config)`` pair against *plan* in C.

    One kernel call covers the whole batch: the columns are shared,
    the per-config scratch buffers are reused inside the kernel.
    Returns ``{label: CycleMetrics}`` in input order, bit-identical to
    the interpreter (and hence the frozen reference).

    Raises
    ------
    repro.robustness.errors.InternalError
        If the kernel is unavailable (callers must check
        :func:`kernel_available` first) or a config deadlocked — the
        same condition, same message, as the Python tiers.
    """
    if not kernel_available():
        raise InternalError(
            f"compiled cyclesim kernel unavailable: {_kernel_error}"
        )
    pairs = list(pairs)
    n = len(plan)

    ops = _column(plan.ops, np.int8)
    prod1 = _column(plan.prod1, np.int32)
    prod2 = _column(plan.prod2, np.int32)
    prod3 = _column(plan.prod3, np.int32)
    memdep = _column(plan.memdep, np.int32)
    addr_line = _column(plan.addr_line, np.int64)
    pc_line = _column(plan.pc_line, np.int64)
    dmiss = _column(plan.dmiss, np.uint8)
    imiss = _column(plan.imiss, np.uint8)
    mispred = _column(plan.mispred, np.uint8)
    pmiss = _column(plan.pmiss, np.uint8)
    pfuseful = _column(plan.pfuseful, np.uint8)

    configs = (_KernelConfig * len(pairs))(
        *[_config_struct(config) for _, config in pairs]
    )
    results = (_KernelResult * len(pairs))()

    # The kernel's bounds/overflow certification assumes exactly the
    # CYCLE_PLAN_CONTRACT ranges; refuse to call it with anything
    # outside them (the plan-contract lint pass proves this call
    # dominates the kernel invocation).
    validate_cycle_plan_contract(plan, configs)

    status = _kernel(
        n,
        ops.ctypes.data, prod1.ctypes.data, prod2.ctypes.data,
        prod3.ctypes.data, memdep.ctypes.data,
        addr_line.ctypes.data, pc_line.ctypes.data,
        dmiss.ctypes.data, imiss.ctypes.data, mispred.ctypes.data,
        pmiss.ctypes.data, pfuseful.ctypes.data,
        configs, len(pairs), results,
    )
    if status != 0:
        raise InternalError("compiled cyclesim kernel ran out of memory")

    out = {}
    for (label, config), raw in zip(pairs, results):
        if raw.status == _ST_DEADLOCK:
            raise InternalError(
                f"cycle simulator deadlocked at cycle {raw.error_cycle}"
                f" (committed {raw.error_committed}/{n})"
            )
        metrics = CycleMetrics(
            workload=workload,
            label=f"{config.issue_window}{config.issue.name}"
            + ("/perfL2" if config.perfect_l2 else ""),
            instructions=n,
            cycles=raw.cycles,
            offchip_accesses=raw.offchip_accesses,
            dmiss_accesses=raw.dmiss_accesses,
            imiss_accesses=raw.imiss_accesses,
            prefetch_accesses=raw.prefetch_accesses,
            nonzero_cycles=raw.nonzero_cycles,
            outstanding_integral=raw.outstanding_integral,
        )
        metrics.stall_cycles.update(zip(STALL_CATEGORIES, raw.stalls))
        out[label] = metrics
    return out
