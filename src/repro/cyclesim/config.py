"""Configuration of the cycle-accurate simulator."""

import dataclasses

from repro.core.config import IssueConfig, MachineConfig
from repro.robustness.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class CycleSimConfig:
    """Timing and structure parameters of the cycle simulator.

    Structure sizes and issue constraints mirror
    :class:`~repro.core.config.MachineConfig`; the timing parameters are
    cyclesim-only (MLPsim is timing-free by design).
    """

    issue: IssueConfig = IssueConfig.from_letter("C")
    issue_window: int = 64
    rob: int = 64
    fetch_buffer: int = 32

    fetch_width: int = 4
    dispatch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    frontend_depth: int = 5
    """Cycles between fetch and dispatch (decode/rename pipeline)."""

    alu_latency: int = 1
    branch_latency: int = 1
    l1_latency: int = 3
    l2_latency: int = 12
    miss_penalty: int = 1000
    """Latency of a long-latency off-chip access, in cycles."""
    redirect_penalty: int = 3
    """Cycles between branch resolution and fetch restart."""

    perfect_l2: bool = False
    """Treat would-be off-chip accesses as L2 hits (measures CPI_perf)."""

    event_skip: bool = True
    """Jump over fully-stalled stretches instead of ticking every cycle.
    Results are identical either way (tested); disable only to verify
    the skipping logic or to trace cycle-by-cycle behaviour."""

    def __post_init__(self):
        if self.rob < self.issue_window:
            raise ConfigError("the ROB cannot be smaller than the issue window")
        if self.miss_penalty <= self.l2_latency:
            raise ConfigError("off-chip latency must exceed the L2 latency")

    @classmethod
    def from_machine(cls, machine, miss_penalty=1000, **overrides):
        """Build a timing config matching a :class:`MachineConfig`."""
        if machine.runahead:
            raise ConfigError("the cycle simulator does not implement runahead")
        fields = {
            "issue": machine.issue,
            "issue_window": machine.issue_window,
            "rob": machine.rob,
            "fetch_buffer": machine.fetch_buffer,
            "miss_penalty": miss_penalty,
        }
        fields.update(overrides)
        return cls(**fields)

    def machine(self):
        """The window-structure view of this config, for MLPsim parity."""
        return MachineConfig(
            issue=self.issue,
            issue_window=self.issue_window,
            rob=self.rob,
            fetch_buffer=self.fetch_buffer,
        )
