"""Flat per-region input tables of the cycle simulator.

The cycle simulator's hot loop reads per-instruction facts — opcode,
producers, event flags, cache-line numbers — that are properties of the
*trace region alone*: unlike MLPsim plans there is no per-machine mask
group, because the cyclesim grid never flips perfect-* switches (the
``perfect_l2`` knob is applied at access time, not in the masks).  One
:class:`CyclePlan` therefore serves **every** configuration of a grid
sweep, which is what makes Table 3's 27 configs per workload cheap: the
decode/opclass, dependence and event tables are built once, the per
-config cost collapses to the compiled (or interpreted) pipeline walk.

Like the columnar MLPsim plan, a cycle plan spills to a flat
``{name: array}`` payload so :mod:`repro.analysis.shm` can publish it
once and let sweep workers attach zero-copy; the schema version travels
with the payload so a stale publisher is rejected loudly.
"""

import dataclasses

import numpy as np

from repro.core.depgraph import depgraph_for
from repro.core.mlpsim import _event_arrays, resolve_region
from repro.robustness.errors import InternalError, TraceFormatError

#: Version of the cycle-plan payload layout; bump on any change to the
#: column set or meaning so a stale shared segment cannot be misread.
CYCLE_SCHEMA_VERSION = 1

#: Cache-line shift shared with the simulator (64-byte lines).
LINE_SHIFT = 6

#: Columns a spilled cycle-plan payload must carry, with dtypes.
CYCLE_PLAN_COLUMNS = (
    ("ops", np.int8),
    ("prod1", np.int32),
    ("prod2", np.int32),
    ("prod3", np.int32),
    ("memdep", np.int32),
    ("addr_line", np.int64),
    ("pc_line", np.int64),
    ("dmiss", np.bool_),
    ("imiss", np.bool_),
    ("mispred", np.bool_),
    ("pmiss", np.bool_),
    ("pfuseful", np.bool_),
)

#: Payload key distinguishing a cycle plan from a columnar MLPsim plan
#: inside the shared-memory publication protocol.
CYCLE_META_KEY = "cycle_meta"

#: Machine-checked value-range contract between the cycle-plan builder
#: and the compiled kernel.  Bounds are ``int`` or ``[symbol, offset]``
#: over the region length ``n``; producer columns keep the depgraph's
#: ``-1`` sentinel (unlike MLPsim plans, which rewrite it to ``n``).
#: The ``plan-contract`` lint pass requires this literal to equal
#: ``repro.lint.certify.contracts.CYCLESIM_PLAN_FACTS`` and to be
#: enforced by :func:`validate_cycle_plan_contract` before every
#: kernel call, so edits here without a matching contract + manifest
#: update fail the build.
CYCLE_PLAN_CONTRACT = {
    "n_max": 1 << 26,
    "columns": {
        "ops": [0, 8],
        "prod1": [-1, ["n", -1]],
        "prod2": [-1, ["n", -1]],
        "prod3": [-1, ["n", -1]],
        "memdep": [-1, ["n", -1]],
        "addr_line": [0, 1 << 57],
        "pc_line": [0, 1 << 57],
        "dmiss": [0, 1],
        "imiss": [0, 1],
        "mispred": [0, 1],
        "pmiss": [0, 1],
        "pfuseful": [0, 1],
    },
    "config": {
        "rob": [1, 1 << 20],
        "issue_window": [1, 1 << 20],
        "fetch_buffer": [1, 1 << 20],
        "fetch_width": [1, 1 << 16],
        "dispatch_width": [1, 1 << 16],
        "issue_width": [1, 1 << 16],
        "commit_width": [1, 1 << 16],
        "frontend_depth": [0, 1 << 16],
        "alu_latency": [0, 1 << 20],
        "branch_latency": [0, 1 << 20],
        "l1_latency": [0, 1 << 20],
        "l2_latency": [0, 1 << 20],
        "miss_penalty": [0, 1 << 20],
        "redirect_penalty": [0, 1 << 20],
        "load_in_order": [0, 1],
        "load_wait_staddr": [0, 1],
        "branch_in_order": [0, 1],
        "serializing": [0, 1],
        "perfect_l2": [0, 1],
        "event_skip": [0, 1],
    },
}


def _contract_bound(form, n):
    """Evaluate a contract bound (``int`` or ``[symbol, offset]``) at *n*."""
    if isinstance(form, int):
        return form
    sym, offset = form
    if sym != "n":
        raise InternalError(f"unknown contract bound symbol {sym!r}")
    return n + offset


def validate_cycle_plan_contract(plan, configs):
    """Enforce :data:`CYCLE_PLAN_CONTRACT` before the C kernel runs.

    Called by :func:`repro.cyclesim.ckernel.run_cycle_plan`
    immediately before the kernel invocation — the C kernel's
    bounds/overflow proof assumes exactly these ranges.

    Raises
    ------
    repro.robustness.errors.InternalError
        If the region is too long, a column holds a value outside its
        contracted range, or a config field is out of range.
    """
    n = len(plan)
    if n > CYCLE_PLAN_CONTRACT["n_max"]:
        raise InternalError(
            f"cycle plan region has {n} instructions; the compiled"
            " kernel is certified for at most"
            f" {CYCLE_PLAN_CONTRACT['n_max']}"
        )
    if n:
        for name, (lo, hi) in CYCLE_PLAN_CONTRACT["columns"].items():
            column = getattr(plan, name)
            vmin, vmax = int(column.min()), int(column.max())
            lo_v, hi_v = _contract_bound(lo, n), _contract_bound(hi, n)
            if vmin < lo_v or vmax > hi_v:
                raise InternalError(
                    f"cycle plan column {name!r} spans [{vmin}, {vmax}]"
                    f" but the kernel contract requires [{lo_v}, {hi_v}]"
                )
    for config in configs:
        for field, (lo, hi) in CYCLE_PLAN_CONTRACT["config"].items():
            value = int(getattr(config, field))
            lo_v, hi_v = _contract_bound(lo, n), _contract_bound(hi, n)
            if value < lo_v or value > hi_v:
                raise InternalError(
                    f"cycle kernel config field {field!r} = {value}"
                    f" outside the contracted range [{lo_v}, {hi_v}]"
                )


@dataclasses.dataclass
class _CycleLists:
    """Flat Python lists for the interpreter tier, built once per plan."""

    ops: list
    prod1: list
    prod2: list
    prod3: list
    memdep: list
    addr_line: list
    pc_line: list
    dmiss: list
    imiss: list
    mispred: list
    pmiss: list
    pfuseful: list


@dataclasses.dataclass
class CyclePlan:
    """Structure-of-arrays input of the cycle simulator for one region.

    All columns have length ``n = stop - start``.  Producer columns keep
    the dependence graph's ``-1`` sentinel for "no producer in region";
    ``addr_line``/``pc_line`` are the byte addresses already shifted to
    cache-line numbers, so the inner loop never touches the trace.
    """

    start: int
    stop: int
    ops: np.ndarray
    prod1: np.ndarray
    prod2: np.ndarray
    prod3: np.ndarray
    memdep: np.ndarray
    addr_line: np.ndarray
    pc_line: np.ndarray
    dmiss: np.ndarray
    imiss: np.ndarray
    mispred: np.ndarray
    pmiss: np.ndarray
    pfuseful: np.ndarray

    def __len__(self):
        return self.stop - self.start

    def nbytes(self):
        """Total payload size of the numpy columns, in bytes."""
        return sum(
            getattr(self, name).nbytes for name, _ in CYCLE_PLAN_COLUMNS
        )

    def lists(self):
        """Flat Python lists for the interpreter tier (memoised).

        Callers must not mutate the returned lists; the interpreter
        copies ``imiss``, the one table it services in place.
        """
        cached = getattr(self, "_lists", None)
        if cached is not None:
            return cached
        lists = _CycleLists(
            ops=self.ops.tolist(),
            prod1=self.prod1.tolist(),
            prod2=self.prod2.tolist(),
            prod3=self.prod3.tolist(),
            memdep=self.memdep.tolist(),
            addr_line=self.addr_line.tolist(),
            pc_line=self.pc_line.tolist(),
            dmiss=self.dmiss.tolist(),
            imiss=self.imiss.tolist(),
            mispred=self.mispred.tolist(),
            pmiss=self.pmiss.tolist(),
            pfuseful=self.pfuseful.tolist(),
        )
        self._lists = lists
        return lists


def _cycle_plan_cache(annotated):
    cache = getattr(annotated, "_cycle_plan_cache", None)
    if cache is None:
        cache = {}
        annotated._cycle_plan_cache = cache
    return cache


def cycle_plan_for(annotated, start=None, stop=None):
    """Return the (memoised) :class:`CyclePlan` for a region of *annotated*.

    One plan per region serves the whole configuration grid — the cycle
    simulator's event masks never depend on the machine (no perfect-*
    switches), so there is no mask-group key.
    """
    start, stop = resolve_region(annotated, start, stop)
    cache = _cycle_plan_cache(annotated)
    plan = cache.get((start, stop))
    if plan is None:
        plan = build_cycle_plan(annotated, start, stop)
        cache[(start, stop)] = plan
    return plan


def build_cycle_plan(annotated, start, stop):
    """Build the flat cycle-simulator tables for ``annotated[start:stop)``."""
    trace = annotated.trace

    # The cycle simulator models a real machine: every perfect-* switch
    # is off, so the masks equal the raw annotation (MachineConfig's
    # defaults).  ``perfect_l2`` is a timing knob applied at access
    # time and does not touch the masks.
    from repro.core.config import MachineConfig

    dmiss, imiss, mispred, pmiss, pfuseful, _ = _event_arrays(
        annotated, MachineConfig(), start, stop
    )

    graph = depgraph_for(annotated, start, stop)

    return CyclePlan(
        start=start, stop=stop,
        ops=np.ascontiguousarray(trace.op[start:stop], dtype=np.int8),
        prod1=np.ascontiguousarray(graph.prod1, dtype=np.int32),
        prod2=np.ascontiguousarray(graph.prod2, dtype=np.int32),
        prod3=np.ascontiguousarray(graph.prod3, dtype=np.int32),
        memdep=np.ascontiguousarray(graph.memdep, dtype=np.int32),
        addr_line=np.ascontiguousarray(
            np.asarray(trace.addr[start:stop], dtype=np.int64) >> LINE_SHIFT
        ),
        pc_line=np.ascontiguousarray(
            np.asarray(trace.pc[start:stop], dtype=np.int64) >> LINE_SHIFT
        ),
        dmiss=np.ascontiguousarray(dmiss),
        imiss=np.ascontiguousarray(imiss),
        mispred=np.ascontiguousarray(mispred),
        pmiss=np.ascontiguousarray(pmiss),
        pfuseful=np.ascontiguousarray(pfuseful),
    )


def cycle_plan_payload(plan):
    """Project *plan* to a flat ``{name: array}`` dict for spilling.

    The payload round-trips through :func:`cycle_plan_from_payload`;
    the :data:`CYCLE_META_KEY` record carries the schema version and
    region so a version-skewed or truncated publisher is rejected.
    """
    payload = {name: getattr(plan, name) for name, _ in CYCLE_PLAN_COLUMNS}
    payload[CYCLE_META_KEY] = np.asarray(
        [CYCLE_SCHEMA_VERSION, plan.start, plan.stop], dtype=np.int64
    )
    return payload


def cycle_plan_from_payload(payload, path=None):
    """Rebuild a :class:`CyclePlan` from :func:`cycle_plan_payload` output.

    Raises
    ------
    repro.robustness.errors.TraceFormatError
        If the payload misses columns, carries a wrong dtype, or was
        written under a different :data:`CYCLE_SCHEMA_VERSION`.
    """
    if CYCLE_META_KEY not in payload:
        raise TraceFormatError(
            "not a cycle plan payload (no cycle_meta record)",
            path=path, field=CYCLE_META_KEY,
        )
    meta = np.asarray(payload[CYCLE_META_KEY])
    if meta.shape != (3,):
        raise TraceFormatError(
            f"cycle plan meta record has shape {meta.shape}; expected (3,)",
            path=path, field=CYCLE_META_KEY,
        )
    version = int(meta[0])
    if version != CYCLE_SCHEMA_VERSION:
        raise TraceFormatError(
            f"cycle plan schema version mismatch: payload has {version},"
            f" library expects {CYCLE_SCHEMA_VERSION}",
            path=path, field=CYCLE_META_KEY,
        )
    start, stop = int(meta[1]), int(meta[2])
    n = stop - start
    if n < 0 or start < 0:
        raise TraceFormatError(
            f"cycle plan meta names an invalid region [{start}, {stop})",
            path=path, field=CYCLE_META_KEY,
        )
    columns = {}
    for name, dtype in CYCLE_PLAN_COLUMNS:
        if name not in payload:
            raise TraceFormatError(
                f"cycle plan payload is missing column {name!r}",
                path=path, field=name,
            )
        array = np.asarray(payload[name])
        if array.dtype != np.dtype(dtype) or array.shape != (n,):
            raise TraceFormatError(
                f"cycle plan column {name!r} has dtype {array.dtype}"
                f" shape {array.shape}; expected {np.dtype(dtype)} ({n},)",
                path=path, field=name,
            )
        columns[name] = array
    return CyclePlan(start=start, stop=stop, **columns)
