"""Measurement machinery of the cycle simulator.

MLP is measured exactly as the paper defines it (Section 2.1): MLP(t)
is the number of useful off-chip accesses outstanding at cycle t, and
average MLP is MLP(t) averaged over the cycles where it is non-zero.
The simulator reports changes to the outstanding count as they happen;
the accumulator integrates counts over the intervals between changes.
"""

import dataclasses
from repro.robustness.errors import InternalError

#: CPI-stack categories, in display order.
STALL_CATEGORIES = (
    "commit",   # cycles that retired at least one instruction
    "memory",   # ROB head waiting on off-chip (or cache) data
    "ifetch",   # fetch blocked on an instruction miss, pipeline empty
    "branch",   # fetch waiting for a mispredicted branch to resolve
    "drain",    # serializing-instruction pipeline drain
    "backend",  # ROB head dispatched but not yet complete (exec/deps)
    "frontend", # pipeline fill: nothing in the ROB, fetch running
)


@dataclasses.dataclass
class CycleMetrics:
    """Results of one cycle-simulator run."""

    workload: str
    label: str
    instructions: int = 0
    cycles: int = 0
    offchip_accesses: int = 0
    dmiss_accesses: int = 0
    imiss_accesses: int = 0
    prefetch_accesses: int = 0
    nonzero_cycles: int = 0
    outstanding_integral: int = 0
    stall_cycles: dict = dataclasses.field(
        default_factory=lambda: {c: 0 for c in STALL_CATEGORIES}
    )

    @property
    def cpi(self):
        if not self.instructions:
            return 0.0
        return self.cycles / self.instructions

    @property
    def ipc(self):
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    @property
    def mlp(self):
        """Average MLP(t) over cycles with at least one access in flight."""
        if not self.nonzero_cycles:
            return 0.0
        return self.outstanding_integral / self.nonzero_cycles

    @property
    def miss_rate_per_100(self):
        if not self.instructions:
            return 0.0
        return 100.0 * self.offchip_accesses / self.instructions

    def summary(self):
        """One-line CPI/MLP rendering."""
        return (
            f"{self.workload:<12} {self.label:<10} CPI={self.cpi:6.3f}"
            f"  MLP={self.mlp:5.3f}  ({self.offchip_accesses} accesses,"
            f" {self.cycles} cycles / {self.instructions} insts)"
        )

    def cpi_stack(self):
        """CPI attributed per stall category (a classic CPI stack).

        Categories sum to the overall CPI (every cycle is charged to
        exactly one).  ``commit`` covers cycles that retired work; the
        rest name what the retirement stage was waiting for.
        """
        if not self.instructions:
            return {c: 0.0 for c in STALL_CATEGORIES}
        return {
            c: self.stall_cycles.get(c, 0) / self.instructions
            for c in STALL_CATEGORIES
        }

    def format_cpi_stack(self):
        """One-line per-category CPI rendering (non-trivial terms only)."""
        stack = self.cpi_stack()
        parts = [f"{c}={v:.3f}" for c, v in stack.items() if v > 0.0005]
        return f"CPI {self.cpi:.3f} = " + " + ".join(parts)


class OutstandingTracker:
    """Integrates the outstanding-access count over time.

    ``advance(now)`` must be called (with non-decreasing ``now``) before
    each change to the outstanding count; it accumulates the elapsed
    interval at the previous count.
    """

    def __init__(self):
        self.count = 0
        self._last_time = 0
        self.nonzero_cycles = 0
        self.integral = 0

    def advance(self, now):
        """Accumulate the interval since the last change at the old count."""
        elapsed = now - self._last_time
        if elapsed > 0 and self.count > 0:
            self.nonzero_cycles += elapsed
            self.integral += elapsed * self.count
        if elapsed > 0:
            self._last_time = now

    def add(self, now, delta=1):
        """Change the outstanding count by *delta* at cycle *now*."""
        self.advance(now)
        self.count += delta
        if self.count < 0:
            raise InternalError("outstanding access count went negative")
