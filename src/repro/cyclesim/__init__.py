"""Cycle-accurate out-of-order pipeline simulator.

The reproduction's stand-in for the paper's proprietary SPARC cycle
simulator.  It executes the same annotated traces as MLPsim but with
real timing — fetch/decode/rename pipeline, fetch buffer, issue window,
reorder buffer, issue-width and commit-width limits, functional-unit
latencies, MSHR-tracked off-chip accesses — and measures MLP(t) exactly
as Section 2.1 prescribes, plus CPI and the perfect-L2 CPI the paper's
performance equations need.

Like the paper's simulator it implements issue configurations A-C of
Table 2 (the paper notes theirs "cannot simulate out-of-order branch
execution"; ours supports D/E too but the validation experiments mirror
the paper and use A-C).
"""

from repro.cyclesim.config import CycleSimConfig
from repro.cyclesim.metrics import CycleMetrics
from repro.cyclesim.simulator import CycleSimulator, run_cyclesim

__all__ = [
    "CycleSimConfig",
    "CycleMetrics",
    "CycleSimulator",
    "run_cyclesim",
]
