"""Limit-study configurations (paper Section 5.6 / Figure 10).

The paper measures the headroom left above runahead execution by
assuming, in turn, perfect instruction prefetching (``perfI``), perfect
value prediction of missing loads (``perfVP``), perfect branch
prediction (``perfBP``), and the combination of the last two.  The same
grid is also evaluated over a conventional (non-runahead) baseline with
a 64-entry issue window, 256-entry ROB and issue configuration D.
"""

import dataclasses

from repro.core.config import MachineConfig

#: The limit-study variants of Figure 10, in the paper's display order.
LIMIT_VARIANTS = (
    ("base", {}),
    ("perfI", {"perfect_ifetch": True}),
    ("perfVP", {"perfect_value": True}),
    ("perfBP", {"perfect_branch": True}),
    ("perfVP.perfBP", {"perfect_value": True, "perfect_branch": True}),
)


def perfect_variant(machine, perfect_ifetch=False, perfect_branch=False,
                    perfect_value=False):
    """Return *machine* with the given perfect-frontend switches set."""
    return dataclasses.replace(
        machine,
        perfect_ifetch=perfect_ifetch or machine.perfect_ifetch,
        perfect_branch=perfect_branch or machine.perfect_branch,
        perfect_value=perfect_value or machine.perfect_value,
    )


def limit_configs(runahead=True):
    """Return the Figure 10 configuration grid as ``(label, machine)``.

    With *runahead* True the baseline is the paper's RAE machine
    (upper graph of Figure 10); otherwise it is the conventional
    64-entry-window, 256-entry-ROB configuration-D machine (lower
    graph).
    """
    if runahead:
        base = MachineConfig.runahead_machine()
        prefix = "RAE"
    else:
        base = MachineConfig.named("64D", rob=256)
        prefix = "64D.rob256"
    grid = []
    for suffix, switches in LIMIT_VARIANTS:
        label = prefix if suffix == "base" else f"{prefix}.{suffix}"
        grid.append((label, dataclasses.replace(base, **switches)))
    return grid
