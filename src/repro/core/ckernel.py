"""Compiled MLPsim kernel: build, load and drive ``_mlpsim_kernel.c``.

The batched engine's hot path is a C translation of the Python epoch
scan (see ``_mlpsim_kernel.c``), compiled on demand with the system C
compiler and loaded through :mod:`ctypes` — no third-party build
dependency.  One :func:`run_plan` call simulates **many machine
configurations against one shared columnar plan**, which is what makes
full-grid sweeps cheap: the trace columns are prepared once and the
per-config cost collapses to a few milliseconds of compiled scanning.

Everything here is fail-soft: a missing compiler, an unwritable build
directory or a failed compilation simply mark the kernel unavailable
(:func:`kernel_available` returns ``False``) and the pure-NumPy engine
in :mod:`repro.core.batched` takes over.  The build is atomic
(temp file + ``os.replace``) and keyed on the SHA-1 of the C source,
so concurrent sweep workers race benignly and edits to the source
trigger a rebuild instead of loading a stale object.
"""

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

from repro.core.columnar import validate_plan_contract
from repro.core.results import MLPResult
from repro.core.termination import Inhibitor, InhibitorCounts
from repro.isa.opclass import OpClass
from repro.robustness.errors import InternalError

#: Inhibitor indices of the C kernel, in order.  Must match the INH_*
#: defines in ``_mlpsim_kernel.c``.
INHIBITOR_ORDER = (
    Inhibitor.IMISS_START,
    Inhibitor.MAXWIN,
    Inhibitor.MISPRED_BR,
    Inhibitor.IMISS_END,
    Inhibitor.MISSING_LOAD,
    Inhibitor.DEP_STORE,
    Inhibitor.SERIALIZE,
    Inhibitor.RUNAHEAD_LIMIT,
    Inhibitor.MSHR_LIMIT,
    Inhibitor.STORE_BUFFER,
    Inhibitor.END_OF_TRACE,
)

#: Opcode values the C source was written against.  Verified against
#: :class:`repro.isa.opclass.OpClass` before the kernel is ever used.
_EXPECTED_OPS = {
    "ALU": 0, "LOAD": 1, "STORE": 2, "BRANCH": 3, "PREFETCH": 4,
    "CAS": 5, "LDSTUB": 6, "MEMBAR": 7, "NOP": 8,
}

#: ``execute()`` status codes of the C kernel, keyed by the ``ST_*``
#: suffix.  The Python engines speak strings ("done", "defer",
#: "stop-done", "stop-defer"); the C scan encodes the same four
#: outcomes as these integers, and the ``kernel-constants`` lint pass
#: holds the ``ST_*`` defines in ``_mlpsim_kernel.c`` to this table.
_EXPECTED_STATUSES = {
    "DONE": 0, "DEFER": 1, "STOP_DONE": 2, "STOP_DEFER": 3,
}

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_mlpsim_kernel.c")

_UNBOUNDED = 1 << 30


class _KernelConfig(ctypes.Structure):
    _fields_ = [
        ("rob", ctypes.c_int64),
        ("iw", ctypes.c_int64),
        ("fetch_buffer", ctypes.c_int64),
        ("serializing", ctypes.c_int64),
        ("load_in_order", ctypes.c_int64),
        ("load_wait_staddr", ctypes.c_int64),
        ("branch_in_order", ctypes.c_int64),
        ("mshr_cap", ctypes.c_int64),
        ("sb_cap", ctypes.c_int64),
        ("slow_bp", ctypes.c_int64),
        ("slow_bp_threshold", ctypes.c_int64),
    ]


class _KernelResult(ctypes.Structure):
    _fields_ = [
        ("epochs", ctypes.c_int64),
        ("accesses", ctypes.c_int64),
        ("dmiss_accesses", ctypes.c_int64),
        ("imiss_accesses", ctypes.c_int64),
        ("prefetch_accesses", ctypes.c_int64),
        ("store_accesses", ctypes.c_int64),
        ("store_epochs", ctypes.c_int64),
        ("inhibitors", ctypes.c_int64 * len(INHIBITOR_ORDER)),
        ("error_index", ctypes.c_int64),
    ]


_kernel = None
_kernel_error = None
_probed = False


def _build_dir():
    """First writable directory for the compiled object, or ``None``.

    ``REPRO_KERNEL_DIR`` overrides; setting it to an empty string
    disables the compiled kernel entirely (tests use this to pin the
    NumPy fallback).
    """
    override = os.environ.get("REPRO_KERNEL_DIR")
    if override is not None:
        return override if override.strip() else None
    candidates = [
        os.path.join(os.path.dirname(_SOURCE_PATH), "_build"),
        os.path.join(tempfile.gettempdir(), "repro-kernel"),
    ]
    for candidate in candidates:
        try:
            os.makedirs(candidate, exist_ok=True)
            probe = os.path.join(candidate, f".probe-{os.getpid()}")
            with open(probe, "w"):  # reprolint: disable=atomic-writes
                pass  # an empty writability probe, not a data write
            os.unlink(probe)
            return candidate
        except OSError:
            continue
    return None


def _compiler():
    return os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")


def _verify_constants():
    """The C source hard-codes enum values; refuse to load on any skew."""
    for name, value in _EXPECTED_OPS.items():
        if int(OpClass[name]) != value:
            raise InternalError(
                f"OpClass.{name} = {int(OpClass[name])} but the compiled"
                f" kernel was written for {value}; rebuild _mlpsim_kernel.c"
            )
    if len(INHIBITOR_ORDER) != len(Inhibitor):
        raise InternalError(
            "Inhibitor enum and the compiled kernel's INH_* table"
            " disagree; update _mlpsim_kernel.c and INHIBITOR_ORDER"
        )


def _load_kernel():
    """Compile (if needed) and bind the kernel; raises on any failure."""
    _verify_constants()
    cc = _compiler()
    if cc is None:
        raise InternalError("no C compiler found (set CC or install cc)")
    directory = _build_dir()
    if directory is None:
        raise InternalError("no writable directory for the kernel object")
    with open(_SOURCE_PATH, "rb") as fh:
        source = fh.read()
    digest = hashlib.sha1(source).hexdigest()[:16]
    so_path = os.path.join(directory, f"_mlpsim_kernel-{digest}.so")
    if not os.path.exists(so_path):
        tmp_path = os.path.join(
            directory, f".{os.getpid()}-{digest}.so.tmp"
        )
        try:
            subprocess.run(
                [cc, "-O2", "-fPIC", "-shared", "-o", tmp_path,
                 _SOURCE_PATH],
                check=True,
                capture_output=True,
                text=True,
            )
            os.replace(tmp_path, so_path)  # atomic: workers race benignly
        except subprocess.CalledProcessError as error:
            raise InternalError(
                f"kernel compilation failed: {error.stderr}"
            ) from error
        finally:
            if os.path.exists(tmp_path):
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
    lib = ctypes.CDLL(so_path)
    fn = lib.mlpsim_batch
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.c_int64,                       # n
        ctypes.c_void_p,                      # ops
        ctypes.c_void_p, ctypes.c_void_p,     # prod1, prod2
        ctypes.c_void_p, ctypes.c_void_p,     # prod3, memdep
        ctypes.c_void_p, ctypes.c_void_p,     # dmiss, imiss
        ctypes.c_void_p, ctypes.c_void_p,     # mispred, pmiss
        ctypes.c_void_p, ctypes.c_void_p,     # pfuseful, vp_ok
        ctypes.c_void_p, ctypes.c_void_p,     # smiss, scalar_mask
        ctypes.POINTER(_KernelConfig),
        ctypes.c_int64,
        ctypes.POINTER(_KernelResult),
    ]
    return fn


def kernel_available():
    """Can the compiled kernel be used in this process?

    The first call probes (compiling if necessary); the outcome is
    cached for the life of the process either way.
    """
    global _kernel, _kernel_error, _probed
    if not _probed:
        _probed = True
        try:
            _kernel = _load_kernel()
        except Exception as error:  # fail-soft: NumPy engine takes over
            _kernel = None
            _kernel_error = error
    return _kernel is not None


def kernel_error():
    """Why the kernel is unavailable (``None`` when it loaded fine)."""
    kernel_available()
    return _kernel_error


def _config_struct(machine):
    from repro.core.config import (
        BranchPolicy,
        LoadPolicy,
        SerializePolicy,
    )

    issue = machine.issue
    return _KernelConfig(
        rob=machine.rob,
        iw=machine.issue_window,
        fetch_buffer=machine.fetch_buffer,
        serializing=issue.serialize_policy == SerializePolicy.SERIALIZING,
        load_in_order=issue.load_policy == LoadPolicy.IN_ORDER,
        load_wait_staddr=issue.load_policy == LoadPolicy.WAIT_STORE_ADDR,
        branch_in_order=issue.branch_policy == BranchPolicy.IN_ORDER,
        mshr_cap=machine.max_outstanding or _UNBOUNDED,
        sb_cap=(machine.store_buffer
                if machine.store_buffer is not None else _UNBOUNDED),
        slow_bp=machine.slow_branch_predictor,
        slow_bp_threshold=int(machine.slow_bp_accuracy * 1024),
    )


def _column(array, dtype):
    """The column as a C-contiguous array of *dtype* without copying
    when the layout already matches (bool columns reinterpret as u8)."""
    if array.dtype == np.bool_ and dtype == np.uint8:
        array = array.view(np.uint8)
    return np.ascontiguousarray(array, dtype=dtype)


def run_plan(plan, machines, workload):
    """Simulate every ``(label, machine)`` pair against *plan* in C.

    One kernel call covers the whole batch: the columns are shared,
    the per-config scratch buffers are reused inside the kernel.
    Returns ``{label: MLPResult}`` in input order.

    Raises
    ------
    repro.robustness.errors.InternalError
        If the kernel is unavailable (callers must check
        :func:`kernel_available` first) or a config made no progress —
        the same condition, same message, as the Python engines.
    """
    if not kernel_available():
        raise InternalError(
            f"compiled MLPsim kernel unavailable: {_kernel_error}"
        )
    pairs = list(machines)
    n = len(plan)

    ops = _column(plan.ops, np.int8)
    prod1 = _column(plan.prod1, np.int32)
    prod2 = _column(plan.prod2, np.int32)
    prod3 = _column(plan.prod3, np.int32)
    memdep = _column(plan.memdep, np.int32)
    dmiss = _column(plan.dmiss, np.uint8)
    imiss = _column(plan.imiss, np.uint8)
    mispred = _column(plan.mispred, np.uint8)
    pmiss = _column(plan.pmiss, np.uint8)
    pfuseful = _column(plan.pfuseful, np.uint8)
    vp_ok = _column(plan.vp_ok, np.uint8)
    smiss = _column(plan.smiss, np.uint8)
    scalar_mask = _column(plan.scalar_mask, np.uint8)

    configs = (_KernelConfig * len(pairs))(
        *[_config_struct(machine) for _, machine in pairs]
    )
    results = (_KernelResult * len(pairs))()

    # The kernel's bounds/overflow certification assumes exactly the
    # PLAN_CONTRACT ranges; refuse to call it with anything outside
    # them (the plan-contract lint pass proves this call dominates the
    # kernel invocation).
    validate_plan_contract(plan, configs)

    status = _kernel(
        n,
        ops.ctypes.data, prod1.ctypes.data, prod2.ctypes.data,
        prod3.ctypes.data, memdep.ctypes.data,
        dmiss.ctypes.data, imiss.ctypes.data, mispred.ctypes.data,
        pmiss.ctypes.data, pfuseful.ctypes.data, vp_ok.ctypes.data,
        smiss.ctypes.data, scalar_mask.ctypes.data,
        configs, len(pairs), results,
    )
    if status != 0:
        raise InternalError("compiled MLPsim kernel ran out of memory")

    out = {}
    for (label, machine), raw in zip(pairs, results):
        if raw.error_index >= 0:
            raise InternalError(
                "MLPsim made no progress in an epoch at instruction"
                f" {raw.error_index + plan.start}"
            )
        counts = InhibitorCounts.from_dict(
            dict(zip(INHIBITOR_ORDER, raw.inhibitors))
        )
        out[label] = MLPResult(
            workload=workload,
            machine_label=machine.label,
            instructions=n,
            accesses=raw.accesses,
            epochs=raw.epochs,
            dmiss_accesses=raw.dmiss_accesses,
            imiss_accesses=raw.imiss_accesses,
            prefetch_accesses=raw.prefetch_accesses,
            store_accesses=raw.store_accesses,
            store_epochs=raw.store_epochs,
            inhibitors=counts,
            epoch_records=None,
        )
    return out
