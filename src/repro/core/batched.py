"""Batched MLPsim: the epoch model over columnar traces.

This engine produces :class:`~repro.core.results.MLPResult`s that are
**bit-identical** to :func:`repro.core.mlpsim.simulate` (and therefore
to the frozen reference interpreter) while replacing most per-
instruction Python interpretation with vectorised NumPy passes over a
:class:`~repro.core.columnar.ColumnarPlan`.

The key observation: between two *scalar positions* (off-chip events,
serializing instructions, result-less ops that name a destination — see
``ColumnarPlan.scalar_mask``) an instruction can only

* execute immediately (``res_data = epoch``), or
* defer, because a producer is unavailable or an in-order issue
  cascade (policy A/B loads, in-order branches) blocks it, or
* — for a mispredicted branch that defers — terminate the epoch.

No counters, MSHR/store-buffer occupancy, triggers or events other than
``MISPRED_BR`` can change inside such a stretch, so the whole stretch
is resolved with a handful of array operations:

1. Tentatively mark the stretch executed (``res_data[span] = epoch``).
2. Gather each instruction's producer availability through the
   sentineled producer columns; a gather above ``epoch`` defers.
3. Apply the issue-policy cascades (all loads after the first
   dependence-deferred memop under policy A; after the first
   address-deferred store under policy B; all branches after the first
   deferred branch when branches issue in order).
4. Deferred lanes revert to ``NOT_EXECUTED``; repeat from 2 until the
   defer set stops growing.  Dependences point strictly backwards, so
   this optimistic iteration converges to exactly the program-order
   scan result; the rare deep-chain stretch that exceeds
   :data:`FIXPOINT_CAP` iterations falls back to the scalar
   interpreter for that stretch only.

Window termination (ROB / issue-window exhaustion) is applied in closed
form from the defer positions, and the first non-predictor-saved
mispredicted deferring branch truncates the stretch exactly where the
scalar scan would have stopped.  Scalar positions, the deferred-rescan
entries that carry events, and the fetch-buffer run-on keep the
one-instruction-at-a-time interpreter, which mirrors
``mlpsim._simulate_ooo`` branch for branch.

Configurations outside the vectorised envelope — runahead machines,
value prediction / perfect value (whose split data/valid availability
needs per-lane validity propagation), and ``record_sets`` runs — are
delegated to the scalar engine, which the equivalence suite already
pins to the reference.  For everything else ``res_valid`` provably
equals ``res_data`` (a missing load's result is both usable and
validated in the next epoch), so the batched engine tracks a single
availability array.
"""

import numpy as np

from repro.core.columnar import plan_for
from repro.core.config import (
    BranchPolicy,
    LoadPolicy,
    SerializePolicy,
)
from repro.core.mlpsim import NOT_EXECUTED, simulate
from repro.core.results import MLPResult
from repro.core.termination import Inhibitor, InhibitorCounts
from repro.core.epoch import TriggerKind
from repro.isa.opclass import OpClass
from repro.robustness.errors import InternalError, SimulationError

#: Stretches shorter than this are interpreted scalar — below it the
#: fixed cost of the NumPy pass exceeds the interpreter loop.
VECTOR_MIN = 32

#: Iteration cap of the defer-closure fixpoint.  Each iteration extends
#: deferral one level down the in-stretch dependence chains; stretches
#: with deeper chains (rare) are handed to the scalar interpreter.
FIXPOINT_CAP = 24


def batched_supported(machine, record_sets=False):
    """Can *machine* run on the batched engine (vs scalar fallback)?

    The compiled kernel models the split data/valid availability of
    value prediction, so with a working C toolchain only runahead
    machines and ``record_sets`` runs need the scalar engine; on the
    pure-NumPy fallback the value-prediction family is excluded too.
    """
    if machine.runahead or record_sets:
        return False
    from repro.core.ckernel import kernel_available

    if kernel_available():
        return True
    return not (machine.perfect_value or machine.value_prediction)


def simulate_batched(annotated, machine, start=None, stop=None,
                     workload=None, record_sets=False, _validate=True):
    """Drop-in :func:`repro.core.mlpsim.simulate` on the batched engine.

    Returns a bit-identical :class:`MLPResult`; configurations the
    vectorised engine does not cover are silently delegated to the
    scalar engine, so every machine config is accepted.
    """
    if _validate:
        from repro.robustness.validate import validate_annotated

        validate_annotated(annotated, check_events=False)
    if not batched_supported(machine, record_sets):
        return simulate(
            annotated, machine, start=start, stop=stop,
            workload=workload, record_sets=record_sets,
        )
    plan = plan_for(annotated, machine, start, stop)
    return simulate_plan(
        plan, machine, workload=workload or annotated.trace.name
    )


def simulate_batch(annotated, machines, start=None, stop=None,
                   workload=None, progress=None):
    """Run a config grid over one trace; returns ``{label: MLPResult}``.

    *machines* is an iterable of ``(label, machine)`` pairs (an ordered
    mapping also works).  Configurations are processed in grid order,
    but all configs sharing an event-mask key reuse one columnar plan,
    so the per-trace preparation cost is paid once per mask group
    rather than once per config.  *progress* is called with each label
    as it completes.
    """
    from repro.core.ckernel import kernel_available
    from repro.robustness.validate import validate_annotated

    validate_annotated(annotated, check_events=False)
    if hasattr(machines, "items"):
        machines = machines.items()
    pairs = list(machines)
    name = workload or annotated.trace.name
    results = {}

    if kernel_available():
        # One kernel call per mask group: every config whose perfect-*
        # and value-prediction switches agree shares one columnar plan
        # and one compiled pass over it.
        from repro.core.columnar import mask_key

        groups = {}
        for label, machine in pairs:
            if batched_supported(machine):
                groups.setdefault(
                    mask_key(machine), []
                ).append((label, machine))
        for group in groups.values():
            plan = plan_for(annotated, group[0][1], start, stop)
            from repro.core.ckernel import run_plan

            for label, result in run_plan(plan, group, name).items():
                results[label] = result
                if progress is not None:
                    progress(label)

    for label, machine in pairs:
        if label in results:
            continue
        results[label] = simulate_batched(
            annotated, machine, start=start, stop=stop,
            workload=workload, _validate=False,
        )
        if progress is not None:
            progress(label)
    return {label: results[label] for label, _ in pairs}


def simulate_plan(plan, machine, workload):
    """Run one supported config against a pre-built columnar plan.

    This is the worker-side entry point of zero-copy sweeps: the plan
    may be attached from shared memory with no annotated trace in the
    process at all.

    Raises
    ------
    repro.robustness.errors.SimulationError
        If *machine* is outside the vectorised envelope (those configs
        need the annotated trace for the scalar engine).
    """
    if not batched_supported(machine):
        raise SimulationError(
            f"machine {machine.label!r} is outside the batched engine's"
            " envelope (runahead/value prediction need the scalar engine)",
            field=machine.label,
        )
    from repro.core.ckernel import kernel_available, run_plan

    if kernel_available():
        return run_plan(plan, [("_", machine)], workload)["_"]
    return _simulate_columnar(plan, machine, workload)


def _simulate_columnar(plan, machine, workload):
    n = len(plan)
    runtime = plan.runtime()

    ops = runtime.ops_l
    prod1 = runtime.prod1_l
    prod2 = runtime.prod2_l
    prod3 = runtime.prod3_l
    memdep = runtime.memdep_l
    dmiss = runtime.dmiss_l
    mispred = runtime.mispred_l
    pmiss = runtime.pmiss_l
    pfuseful = runtime.pfuseful_l
    smiss = runtime.smiss_l
    scalar_mask = runtime.scalar_mask_l
    imiss = plan.imiss.tolist()  # mutated as fetch misses are serviced

    vprod_all = runtime.vprod_all
    is_load_c = plan.is_load
    is_store_c = plan.is_store
    is_branch_c = plan.is_branch
    is_memop_c = plan.is_memop
    mispred_c = plan.mispred
    scalar_pos = runtime.scalar_pos_l

    ALU = int(OpClass.ALU)
    LOAD = int(OpClass.LOAD)
    STORE = int(OpClass.STORE)
    PREFETCH = int(OpClass.PREFETCH)
    MEMBAR = int(OpClass.MEMBAR)
    NOP = int(OpClass.NOP)
    BRANCH = int(OpClass.BRANCH)

    serializing = machine.issue.serialize_policy == SerializePolicy.SERIALIZING
    load_in_order = machine.issue.load_policy == LoadPolicy.IN_ORDER
    load_wait_staddr = machine.issue.load_policy == LoadPolicy.WAIT_STORE_ADDR
    branch_in_order = machine.issue.branch_policy == BranchPolicy.IN_ORDER
    iw_size = machine.issue_window
    rob_size = machine.rob
    fetch_buffer = machine.fetch_buffer
    mshr_cap = machine.max_outstanding or (1 << 30)
    sb_cap = (
        machine.store_buffer if machine.store_buffer is not None else (1 << 30)
    )
    slow_bp = machine.slow_branch_predictor
    slow_bp_threshold = int(machine.slow_bp_accuracy * 1024)

    ne32 = np.int32(NOT_EXECUTED)

    # Result availability, epoch units; slot n is the gather sentinel
    # ("no producer": available since epoch 0).  res_valid is omitted:
    # without value prediction it provably equals res_data.
    rd = np.full(n + 1, NOT_EXECUTED, dtype=np.int32)
    rd[n] = 0

    arange_n = np.arange(n, dtype=np.int64)

    deferred = []  # indices fetched but not executed, program order
    fetch_pos = 0
    sp_idx = 0  # cursor into scalar_pos (fetch_pos is monotone)
    force_scalar_until = 0  # scalar-interpret up to here (fixpoint bail)
    epoch = 0

    epochs_recorded = 0
    total_accesses = 0
    dmiss_accesses = 0
    imiss_accesses = 0
    prefetch_accesses = 0
    store_accesses = 0
    store_epochs = 0
    inhibitors = InhibitorCounts()

    # ---- per-epoch scan state (rebound at the top of every epoch) ------
    accesses = 0
    e_dmiss = 0
    e_imiss = 0
    e_pmiss = 0
    e_smiss = 0
    inflight = 0
    trigger_idx = None
    trigger_kind = None
    first_miss_idx = None
    blocked_memop = False
    blocked_staddr = False
    blocked_branch = False
    events = []
    new_deferred = []
    progress = False

    def slow_bp_saves(i):
        """Deterministic per-instance slow-predictor outcome (reproducible)."""
        return slow_bp and ((i * 2654435761) >> 7) % 1024 < slow_bp_threshold

    def execute_scalar(i):
        """One-instruction interpreter, mirroring ``mlpsim.execute``.

        ``res_valid`` handling is dropped (identically ``res_data`` for
        the configs this engine accepts); everything else — the gate
        order, the events, the blocking flags — matches branch for
        branch.
        """
        nonlocal accesses, e_dmiss, e_pmiss, e_smiss, inflight
        nonlocal trigger_idx, trigger_kind
        nonlocal blocked_memop, blocked_staddr, blocked_branch
        nonlocal first_miss_idx, progress

        op = ops[i]

        if op == ALU:
            de = rd[prod1[i]]
            d = rd[prod2[i]]
            if d > de:
                de = d
            if de > epoch:
                return "defer"
            progress = True
            rd[i] = epoch
            return "done"

        if op == BRANCH:
            de = rd[prod1[i]]
            d = rd[prod2[i]]
            if d > de:
                de = d
            if de <= epoch and not (branch_in_order and blocked_branch):
                progress = True
                return "done"
            blocked_branch = True
            if mispred[i]:
                if slow_bp_saves(i):
                    return "defer"
                events.append(Inhibitor.MISPRED_BR)
                return "stop-defer"
            return "defer"

        if op == LOAD:
            de = rd[prod1[i]]
            d = rd[prod2[i]]
            if d > de:
                de = d
            d = rd[memdep[i]]
            if d > de:
                de = d
            if de > epoch:
                blocked_memop = True
                return "defer"
            if load_in_order and blocked_memop:
                if dmiss[i]:
                    events.append(Inhibitor.MISSING_LOAD)
                return "defer"
            if load_wait_staddr and blocked_staddr:
                if dmiss[i]:
                    events.append(Inhibitor.DEP_STORE)
                return "defer"
            if dmiss[i] and inflight >= mshr_cap:
                events.append(Inhibitor.MSHR_LIMIT)
                blocked_memop = True
                return "defer"
            progress = True
            if dmiss[i]:
                accesses += 1
                e_dmiss += 1
                inflight += 1
                if trigger_idx is None:
                    trigger_idx = i
                    trigger_kind = TriggerKind.DMISS
                if first_miss_idx is None:
                    first_miss_idx = i
                rd[i] = epoch + 1
            else:
                rd[i] = epoch
            return "done"

        if op == STORE:
            ade = rd[prod1[i]]
            d = rd[prod2[i]]
            if d > ade:
                ade = d
            de = ade
            d = rd[prod3[i]]
            if d > de:
                de = d
            if de > epoch:
                blocked_memop = True
                if ade > epoch:
                    blocked_staddr = True
                return "defer"
            if smiss[i]:
                if e_smiss >= sb_cap:
                    events.append(Inhibitor.STORE_BUFFER)
                    blocked_memop = True
                    return "defer"
                if inflight >= mshr_cap:
                    events.append(Inhibitor.MSHR_LIMIT)
                    blocked_memop = True
                    return "defer"
                e_smiss += 1
                inflight += 1
            progress = True
            rd[i] = epoch
            return "done"

        if op == PREFETCH:
            de = rd[prod1[i]]
            d = rd[prod2[i]]
            if d > de:
                de = d
            if de > epoch:
                return "defer"
            if pmiss[i] and inflight >= mshr_cap:
                events.append(Inhibitor.MSHR_LIMIT)
                return "defer"
            progress = True
            if pmiss[i]:
                inflight += 1
            if pmiss[i] and pfuseful[i]:
                accesses += 1
                e_pmiss += 1
                if trigger_idx is None:
                    trigger_idx = i
                    trigger_kind = TriggerKind.PMISS
            return "done"

        if op == NOP:
            progress = True
            return "done"

        # Serializing instructions: CAS / LDSTUB / MEMBAR.
        de = rd[prod1[i]]
        d = rd[prod2[i]]
        if d > de:
            de = d
        d = rd[prod3[i]]
        if d > de:
            de = d
        if op != MEMBAR:
            d = rd[memdep[i]]
            if d > de:
                de = d

        if serializing:
            outstanding = bool(new_deferred) or trigger_idx is not None
            if outstanding or de > epoch:
                events.append(Inhibitor.SERIALIZE)
                if op == MEMBAR:
                    progress = True
                    rd[i] = epoch + 1
                    return "stop-done"
                blocked_memop = True
                return "stop-defer"
            progress = True
            if op == MEMBAR:
                rd[i] = epoch
                return "done"
            return execute_atomic(i)

        if op == MEMBAR:
            progress = True
            rd[i] = epoch
            return "done"
        if de > epoch:
            blocked_memop = True
            return "defer"
        progress = True
        return execute_atomic(i)

    def execute_atomic(i):
        """Issue an executing CAS/LDSTUB (register + memory results)."""
        nonlocal accesses, e_dmiss, trigger_idx, trigger_kind
        nonlocal first_miss_idx, inflight
        if dmiss[i]:
            accesses += 1
            e_dmiss += 1
            inflight += 1
            if trigger_idx is None:
                trigger_idx = i
                trigger_kind = TriggerKind.DMISS
            if first_miss_idx is None:
                first_miss_idx = i
            rd[i] = epoch + 1
        else:
            rd[i] = epoch
        if serializing and dmiss[i]:
            events.append(Inhibitor.SERIALIZE)
            return "stop-done"
        return "done"

    EMPTY = ()  # vector_segment marker: every lane executed, no defers

    def vector_segment(sel, length):
        """Resolve one vectorisable stretch, tentatively executed.

        *sel* is a slice (fetch span) or an int index array (deferred
        run); *length* is its element count.  Returns

        * ``EMPTY`` — every lane executed (``rd[sel]`` = ``epoch``);
          the common case, resolved with a single stacked gather;
        * ``(defer, dep, dep12, ld, st, br)`` — the defer mask, the
          dependence-defer mask, the address-source defer mask and the
          opclass masks, aligned with *sel*, with ``rd[sel]`` already
          holding ``epoch`` on executing lanes and ``NOT_EXECUTED`` on
          deferring lanes;
        * ``None`` — the defer closure exceeded :data:`FIXPOINT_CAP`
          iterations (``rd[sel]`` fully reverted; caller interprets).
        """
        seg = vprod_all[:, sel]
        rd[sel] = ep32
        g = rd[seg] > epoch
        cascading = (
            (load_in_order and blocked_memop)
            or (load_wait_staddr and blocked_staddr)
            or (branch_in_order and blocked_branch)
        )
        if not cascading and not g.any():
            return EMPTY

        ld = is_load_c[sel]
        st = is_store_c[sel]
        br = is_branch_c[sel]
        mo = is_memop_c[sel]
        pos = arange_n[:length]
        defer = None
        for _ in range(FIXPOINT_CAP):
            dep12 = g[0] | g[1]
            dep = dep12 | g[2] | g[3]
            new = dep
            if load_in_order:
                if blocked_memop:
                    new = new | ld
                else:
                    md = mo & dep
                    if md.any():
                        new = new | (ld & (pos > int(md.argmax())))
            elif load_wait_staddr:
                if blocked_staddr:
                    new = new | ld
                else:
                    sd = st & dep12
                    if sd.any():
                        new = new | (ld & (pos > int(sd.argmax())))
            if branch_in_order:
                if blocked_branch:
                    new = new | br
                else:
                    bd = br & new
                    if bd.any():
                        new = new | (br & (pos > int(bd.argmax())))
            if defer is None:
                if not new.any():
                    return EMPTY
            elif np.array_equal(new, defer):
                return defer, dep, dep12, ld, st, br
            defer = new
            rd[sel] = np.where(defer, ne32, ep32)
            g = rd[seg] > epoch
        rd[sel] = ne32
        return None

    def finish_segment(indices, defer, dep, dep12, ld, st, br, length):
        """Commit the first *length* lanes of a resolved stretch.

        *indices* maps lanes to absolute instruction positions (an
        int array for deferred runs, ``None`` + *base* handled by the
        caller for contiguous spans is not needed — spans pass their
        absolute index array too).  Updates the deferral list, the
        blocking flags and ``progress``; returns the executed count.
        """
        nonlocal blocked_memop, blocked_staddr, blocked_branch, progress
        d = defer[:length]
        dep = dep[:length]
        dep12 = dep12[:length]
        if d.any():
            new_deferred.extend(indices[:length][d].tolist())
            executed = length - int(d.sum())
        else:
            executed = length
        if executed:
            progress = True
        if not blocked_memop and (is_memop_seg(ld, st, length) & dep).any():
            blocked_memop = True
        if not blocked_staddr and (st[:length] & dep12).any():
            blocked_staddr = True
        if not blocked_branch and (br[:length] & d).any():
            blocked_branch = True
        return executed

    def is_memop_seg(ld, st, length):
        return ld[:length] | st[:length]

    def first_branch_stop(indices, defer, br, length):
        """First mispredicted deferring branch the predictor cannot save.

        Returns its lane index, or ``-1``.  *indices* are absolute
        positions (for the slow-predictor hash); only the first
        *length* lanes are considered.
        """
        cand = np.flatnonzero(
            br[:length] & defer[:length] & mispred_c[indices[:length]]
        )
        for c in cand:
            if slow_bp and slow_bp_saves(int(indices[int(c)])):
                continue
            return int(c)
        return -1

    while fetch_pos < n or deferred:
        epoch += 1
        ep32 = np.int32(epoch)
        accesses = 0
        e_dmiss = 0
        e_imiss = 0
        e_pmiss = 0
        e_smiss = 0
        inflight = 0
        trigger_idx = None
        trigger_kind = None
        first_miss_idx = None

        blocked_memop = False
        blocked_staddr = False
        blocked_branch = False
        events = []
        new_deferred = []
        progress = False

        stop_scan = False
        fetch_stop = None  # None / "hard" / "soft" ("soft" allows buffering)

        # ---- phase 1: deferred instructions, in program order ----------
        # Runs of non-scalar entries between event-carrying ones are
        # resolved vectorised; scalar entries and short runs take the
        # interpreter.  Entry order (= program order: the deferral list
        # is built in scan order every epoch) is preserved throughout.
        if deferred:
            d_arr = np.fromiter(deferred, dtype=np.int64, count=len(deferred))
            d_scal = np.flatnonzero(plan.scalar_mask[d_arr])
            nd_total = len(deferred)
            seg_start = 0
            si = 0
            while seg_start < nd_total:
                run_end = int(d_scal[si]) if si < len(d_scal) else nd_total
                if run_end - seg_start >= VECTOR_MIN:
                    run = d_arr[seg_start:run_end]
                    res = vector_segment(run, len(run))
                else:
                    run = None
                    res = None
                if res is EMPTY:
                    progress = True
                    seg_start = run_end
                elif res is not None:
                    defer, dep, dep12, ld, st, br = res
                    bstop = first_branch_stop(run, defer, br, len(run))
                    length = len(run) if bstop < 0 else bstop + 1
                    if length < len(run):
                        rd[run[length:]] = ne32
                    finish_segment(
                        run, defer, dep, dep12, ld, st, br, length
                    )
                    if bstop >= 0:
                        events.append(Inhibitor.MISPRED_BR)
                        new_deferred.extend(deferred[seg_start + length:])
                        stop_scan = True
                        break
                    seg_start = run_end
                else:
                    # Scalar interpretation: a short run, a run whose
                    # defer closure did not converge, or nothing (the
                    # next entry is itself scalar).
                    scan_end = run_end if run_end > seg_start else run_end + 1
                    stopped_status = None
                    for di in range(seg_start, min(scan_end, nd_total)):
                        i = deferred[di]
                        status = execute_scalar(i)
                        if status == "defer":
                            new_deferred.append(i)
                        elif status == "stop-defer":
                            new_deferred.append(i)
                            stopped_status = status
                        elif status == "stop-done":
                            stopped_status = status
                        if stopped_status is not None:
                            new_deferred.extend(deferred[di + 1:])
                            stop_scan = True
                            break
                    if stop_scan:
                        last_event = events[-1] if events else None
                        if (stopped_status == "stop-done"
                                or last_event is Inhibitor.SERIALIZE):
                            fetch_stop = "soft"
                        break
                    seg_start = min(scan_end, nd_total)
                    if run_end < nd_total and seg_start > run_end:
                        si += 1
                continue

        # ---- phase 2: fetch — vector spans between scalar positions ----
        if not stop_scan and fetch_stop is None:
            while fetch_pos < n:
                # Window constraints bind whenever older work is
                # uncompleted (a deferral or an outstanding data miss).
                oldest = new_deferred[0] if new_deferred else None
                if first_miss_idx is not None and (
                    oldest is None or first_miss_idx < oldest
                ):
                    oldest = first_miss_idx
                if oldest is not None and fetch_pos - oldest >= rob_size:
                    events.append(Inhibitor.MAXWIN)
                    fetch_stop = "soft"
                    break
                if len(new_deferred) >= iw_size:
                    events.append(Inhibitor.MAXWIN)
                    fetch_stop = "soft"
                    break

                i = fetch_pos
                while scalar_pos[sp_idx] < i:
                    sp_idx += 1
                span_end = scalar_pos[sp_idx]

                if span_end == i:  # a scalar position
                    if imiss[i]:
                        if inflight >= mshr_cap:
                            events.append(Inhibitor.MSHR_LIMIT)
                            fetch_stop = "hard"
                            break
                        accesses += 1
                        e_imiss += 1
                        inflight += 1
                        imiss[i] = False  # the line arrives; don't recount
                        if trigger_idx is None:
                            trigger_idx = i
                            trigger_kind = TriggerKind.IMISS
                            events.append(Inhibitor.IMISS_START)
                        else:
                            events.append(Inhibitor.IMISS_END)
                        new_deferred.append(i)
                        fetch_pos += 1
                        progress = True
                        fetch_stop = "hard"
                        break
                    status = execute_scalar(i)
                    fetch_pos += 1
                    if status == "defer":
                        new_deferred.append(i)
                    elif status == "stop-defer":
                        new_deferred.append(i)
                        last_event = events[-1] if events else None
                        fetch_stop = (
                            "soft" if last_event is Inhibitor.SERIALIZE
                            else "hard"
                        )
                        break
                    elif status == "stop-done":
                        fetch_stop = "soft"
                        break
                    continue

                if (not new_deferred and first_miss_idx is None
                        and not (blocked_memop or blocked_staddr
                                 or blocked_branch)):
                    # Clean machine state: nothing deferred, no miss in
                    # flight, no policy cascade armed.  Every producer
                    # of every instruction in [i, span_end) already has
                    # rd <= epoch, the window cannot bind, and spans
                    # contain no event positions — the whole stretch
                    # executes as one slice fill.
                    rd[i:span_end] = ep32
                    progress = True
                    fetch_pos = span_end
                    continue

                # Pre-truncate the span at the ROB limit when the base
                # is already pinned by older work: instructions past it
                # can never fetch this scan, so don't pay for them.
                span_cap = span_end
                if oldest is not None:
                    span_cap = min(span_cap, oldest + rob_size)

                if span_cap - i < VECTOR_MIN or i < force_scalar_until:
                    # Short stretch (or a convergence bail-out): the
                    # one-instruction interpreter, window checks at the
                    # loop top as usual.
                    status = execute_scalar(i)
                    fetch_pos += 1
                    if status == "defer":
                        new_deferred.append(i)
                    elif status == "stop-defer":
                        new_deferred.append(i)
                        last_event = events[-1] if events else None
                        fetch_stop = (
                            "soft" if last_event is Inhibitor.SERIALIZE
                            else "hard"
                        )
                        break
                    elif status == "stop-done":
                        fetch_stop = "soft"
                        break
                    continue

                # -- vectorised span [i, span_cap) ----------------------
                m = span_cap - i
                res = vector_segment(slice(i, span_cap), m)
                if res is None:
                    force_scalar_until = span_cap
                    continue
                if res is EMPTY:
                    # Nothing deferred: the span executed whole.  If the
                    # ROB pre-truncation cut it short the loop-top check
                    # emits MAXWIN exactly as the scalar scan would.
                    progress = True
                    fetch_pos = span_cap
                    continue
                defer, dep, dep12, ld, st, br = res
                dpos = np.flatnonzero(defer)

                # Closed-form window stops: the scalar scan re-checks
                # ROB/IW before every fetch, but inside a span the
                # inputs only change at defer positions.  (The oldest
                # != None ROB case is already folded into span_cap.)
                limit = span_cap
                if oldest is None and dpos.size:
                    limit = min(limit, i + int(dpos[0]) + rob_size)
                room = iw_size - len(new_deferred)
                if dpos.size >= room:
                    limit = min(limit, i + int(dpos[room - 1]) + 1)

                indices = arange_n[i:span_cap]
                bstop = first_branch_stop(indices, defer, br, limit - i)
                if bstop >= 0:
                    length = bstop + 1
                    rd[i + length:span_cap] = ne32
                    finish_segment(
                        indices, defer, dep, dep12, ld, st, br, length
                    )
                    fetch_pos = i + length
                    events.append(Inhibitor.MISPRED_BR)
                    fetch_stop = "hard"
                    break
                if limit < span_cap:
                    length = limit - i
                    rd[limit:span_cap] = ne32
                    finish_segment(
                        indices, defer, dep, dep12, ld, st, br, length
                    )
                    fetch_pos = limit
                else:
                    finish_segment(indices, defer, dep, dep12, ld, st, br, m)
                    fetch_pos = span_cap
                # A window stop (IW full, or ROB pinned by the span's
                # own first deferral or by older work) fires at the
                # loop-top checks on the next iteration, which see the
                # updated new_deferred — identical to the scalar scan.

        # ---- phase 3: fetch-buffer run-on past a dispatch-side stall ---
        if fetch_stop == "soft":
            buffered = 0
            while fetch_pos < n and buffered < fetch_buffer:
                i = fetch_pos
                if imiss[i]:
                    if inflight >= mshr_cap:
                        break
                    accesses += 1
                    e_imiss += 1
                    inflight += 1
                    imiss[i] = False
                    events.append(Inhibitor.IMISS_END)
                    new_deferred.append(i)
                    fetch_pos += 1
                    progress = True
                    break
                new_deferred.append(i)
                fetch_pos += 1
                buffered += 1
                if mispred[i]:
                    # Fetch past an (unexecuted) mispredicted branch is
                    # on the wrong path: nothing beyond it may be
                    # buffered or counted.
                    break

        deferred = new_deferred

        store_accesses += e_smiss
        if e_smiss:
            store_epochs += 1

        if accesses == 0 and e_smiss:
            continue
        if accesses == 0:
            if not progress:
                where = (
                    deferred[0] + plan.start if deferred
                    else fetch_pos + plan.start
                )
                raise InternalError(
                    f"batched MLPsim made no progress in an epoch at"
                    f" instruction {where}"
                )
            continue  # pure on-chip stretch: not an epoch

        epochs_recorded += 1
        total_accesses += accesses
        dmiss_accesses += e_dmiss
        imiss_accesses += e_imiss
        prefetch_accesses += e_pmiss

        inhibitor = events[0] if events else Inhibitor.END_OF_TRACE
        inhibitors.record(inhibitor)

    return MLPResult(
        workload=workload,
        machine_label=machine.label,
        instructions=n,
        accesses=total_accesses,
        epochs=epochs_recorded,
        dmiss_accesses=dmiss_accesses,
        imiss_accesses=imiss_accesses,
        prefetch_accesses=prefetch_accesses,
        store_accesses=store_accesses,
        store_epochs=store_epochs,
        inhibitors=inhibitors,
        epoch_records=None,
    )
