"""Columnar simulation plans: the trace recast as NumPy structure-of-arrays.

The scalar engine (:mod:`repro.core.mlpsim`) interprets one instruction
at a time from flat Python lists.  The batched engine
(:mod:`repro.core.batched`) instead executes *stretches* of instructions
with vectorised NumPy operations, which needs the trace, its dependence
graph and its event masks laid out as aligned int32/bool columns with
gather-friendly sentinels.  That layout is a :class:`ColumnarPlan`.

A plan is built once per ``(region, mask-key)`` and shared by **every
machine configuration** whose perfect-* and value-prediction switches
produce the same event masks — the config grid of a sweep typically
collapses to a handful of mask groups, so the per-trace preparation cost
is amortised across the whole grid.  Plans are memoised on the annotated
trace object (like the dependence graph and the interpreter tables) and
their raw columns can be spilled to / restored from flat array payloads
for zero-copy hand-off to sweep worker processes (see
:mod:`repro.analysis.shm`).

Layout conventions
------------------

* Producer columns (``prod1``, ``prod2``, ``prod3``, ``memdep``) are
  region-relative ``int32`` indices with the *sentinel* ``n`` (one past
  the region) instead of ``-1`` for "no producer": the engines allocate
  result arrays of length ``n + 1`` whose last slot holds epoch 0
  ("always available"), so availability gathers need no mask.
* Event columns are ``bool`` with the machine's perfect-* switches
  already applied, exactly as :func:`repro.core.mlpsim._event_arrays`
  computes them.
* ``scalar_mask`` marks the positions the batched engine must hand to
  the scalar interpreter (misses, serializing instructions,
  result-less ops that name a destination); everything between two
  scalar positions is eligible for vectorised execution.
* The payload carries the dependence graph verbatim; the *vector*
  producer columns — where a slot an opcode never reads (a NOP's
  registers, a non-store's ``prod3``, a non-load's ``memdep``) is
  forced to the sentinel — are derived locally by :meth:`runtime`,
  together with the flat Python lists the scalar interpreter indexes.

Bump :data:`COLUMNAR_SCHEMA_VERSION` whenever the set or meaning of the
columns changes: the disk annotation cache keys its entries on it, and
stale pre-refactor entries are quarantined instead of silently
deserialized (see :mod:`repro.experiments.common`).
"""

import dataclasses

import numpy as np

from repro.core.depgraph import depgraph_for
from repro.core.mlpsim import _event_arrays, resolve_region
from repro.isa.opclass import OpClass
from repro.isa.registers import REG_ZERO
from repro.robustness.errors import InternalError, TraceFormatError

#: Version of the columnar plan layout.  Annotation cache entries are
#: keyed on it so pre-columnar archives cannot be misread as current.
COLUMNAR_SCHEMA_VERSION = 1

#: Columns a spilled plan payload must carry, with dtypes.
PLAN_COLUMNS = (
    ("ops", np.int8),
    ("prod1", np.int32),
    ("prod2", np.int32),
    ("prod3", np.int32),
    ("memdep", np.int32),
    ("dmiss", np.bool_),
    ("imiss", np.bool_),
    ("mispred", np.bool_),
    ("pmiss", np.bool_),
    ("pfuseful", np.bool_),
    ("vp_ok", np.bool_),
    ("smiss", np.bool_),
    ("is_load", np.bool_),
    ("is_store", np.bool_),
    ("is_branch", np.bool_),
    ("is_memop", np.bool_),
    ("scalar_mask", np.bool_),
)


#: Machine-checked value-range contract between the plan builder and
#: the compiled kernel.  Every bound is an ``int`` or a
#: ``[symbol, offset]`` pair over the region length ``n``; column
#: entries bound the values inside each array the kernel receives,
#: ``config`` entries bound the ``_KernelConfig`` fields.  The
#: ``plan-contract`` lint pass requires this literal to equal
#: ``repro.lint.certify.contracts.MLPSIM_PLAN_FACTS`` (the facts the
#: C bounds/overflow proof assumes) and to be enforced by
#: :func:`validate_plan_contract` before every kernel call, so edits
#: here without a matching contract + manifest update fail the build.
PLAN_CONTRACT = {
    "n_max": 1 << 26,
    "columns": {
        "ops": [0, 8],
        "prod1": [0, ["n", 0]],
        "prod2": [0, ["n", 0]],
        "prod3": [0, ["n", 0]],
        "memdep": [0, ["n", 0]],
        "dmiss": [0, 1],
        "imiss": [0, 1],
        "mispred": [0, 1],
        "pmiss": [0, 1],
        "pfuseful": [0, 1],
        "vp_ok": [0, 1],
        "smiss": [0, 1],
        "scalar_mask": [0, 1],
    },
    "config": {
        "rob": [1, 1 << 24],
        "iw": [1, 1 << 24],
        "fetch_buffer": [0, 1 << 24],
        "serializing": [0, 1],
        "load_in_order": [0, 1],
        "load_wait_staddr": [0, 1],
        "branch_in_order": [0, 1],
        "mshr_cap": [1, 1 << 30],
        "sb_cap": [0, 1 << 30],
        "slow_bp": [0, 1],
        "slow_bp_threshold": [0, 1 << 20],
    },
}


def contract_bound(form, n):
    """Evaluate a contract bound (``int`` or ``[symbol, offset]``) at *n*."""
    if isinstance(form, int):
        return form
    sym, offset = form
    if sym != "n":
        raise InternalError(f"unknown contract bound symbol {sym!r}")
    return n + offset


def validate_plan_contract(plan, configs):
    """Enforce :data:`PLAN_CONTRACT` on what is about to cross into C.

    Called by :func:`repro.core.ckernel.run_plan` immediately before
    the kernel invocation — the C kernel's bounds/overflow proof
    assumes exactly these ranges, so handing it anything outside them
    would void the certification.

    Raises
    ------
    repro.robustness.errors.InternalError
        If the region is too long, a column holds a value outside its
        contracted range, or a config field is out of range.
    """
    n = len(plan)
    if n > PLAN_CONTRACT["n_max"]:
        raise InternalError(
            f"plan region has {n} instructions; the compiled kernel is"
            f" certified for at most {PLAN_CONTRACT['n_max']}"
        )
    if n:
        for name, (lo, hi) in PLAN_CONTRACT["columns"].items():
            column = getattr(plan, name)
            vmin, vmax = int(column.min()), int(column.max())
            lo_v, hi_v = contract_bound(lo, n), contract_bound(hi, n)
            if vmin < lo_v or vmax > hi_v:
                raise InternalError(
                    f"plan column {name!r} spans [{vmin}, {vmax}] but"
                    f" the kernel contract requires [{lo_v}, {hi_v}]"
                )
    for config in configs:
        for field, (lo, hi) in PLAN_CONTRACT["config"].items():
            value = int(getattr(config, field))
            lo_v, hi_v = contract_bound(lo, n), contract_bound(hi, n)
            if value < lo_v or value > hi_v:
                raise InternalError(
                    f"kernel config field {field!r} = {value} outside"
                    f" the contracted range [{lo_v}, {hi_v}]"
                )


def mask_key(machine):
    """The event-mask identity of *machine*: configs sharing it share a plan."""
    return (
        machine.perfect_ifetch,
        machine.perfect_branch,
        machine.perfect_value,
        machine.value_prediction,
    )


@dataclasses.dataclass
class _PlanRuntime:
    """Derived, process-local artifacts of a plan.

    ``vprod_all`` stacks the four producer columns — with never-read
    slots (a NOP's registers, a non-store's ``prod3``, a non-load's
    ``memdep``) forced to the sentinel — into one ``(4, n)`` matrix, so
    a single fancy gather resolves every in-span availability check.
    The ``*_l`` members are flat Python lists
    (the fastest random-access structure in the interpreter) for the
    scalar positions the batched engine still interprets one at a time.
    """

    vprod_all: np.ndarray  # (4, n): vprod1 / vprod2 / vprod3 / vmem stacked
    ops_l: list
    prod1_l: list
    prod2_l: list
    prod3_l: list
    memdep_l: list
    dmiss_l: list
    mispred_l: list
    pmiss_l: list
    pfuseful_l: list
    smiss_l: list
    scalar_mask_l: list
    scalar_pos_l: list


@dataclasses.dataclass
class ColumnarPlan:
    """Structure-of-arrays input of the batched engine for one region.

    All columns have length ``n = stop - start``; producer columns use
    the sentinel ``n`` for "no producer in region".  ``scalar_pos`` is
    the sorted scalar positions followed by the sentinel ``n``, so
    forward scans never fall off the end.
    """

    start: int
    stop: int
    ops: np.ndarray
    prod1: np.ndarray
    prod2: np.ndarray
    prod3: np.ndarray
    memdep: np.ndarray
    dmiss: np.ndarray
    imiss: np.ndarray
    mispred: np.ndarray
    pmiss: np.ndarray
    pfuseful: np.ndarray
    vp_ok: np.ndarray
    smiss: np.ndarray
    is_load: np.ndarray     # LOAD only (policy-A/B in-order load cascades)
    is_store: np.ndarray    # STORE only
    is_branch: np.ndarray   # BRANCH only (in-order branch cascades)
    is_memop: np.ndarray    # LOAD | STORE (blocked_memop sources)
    scalar_mask: np.ndarray
    scalar_pos: np.ndarray  # sorted scalar positions + sentinel n

    def __len__(self):
        return self.stop - self.start

    def nbytes(self):
        """Total payload size of the numpy columns, in bytes."""
        total = self.scalar_pos.nbytes
        for name, _ in PLAN_COLUMNS:
            total += getattr(self, name).nbytes
        return total

    def runtime(self):
        """Derived vector columns and scalar lists, built once per plan."""
        cached = getattr(self, "_runtime", None)
        if cached is not None:
            return cached
        n = len(self)
        sentinel = np.int32(n)
        is_nop = self.ops == int(OpClass.NOP)
        vprod_all = np.ascontiguousarray(np.stack([
            np.where(is_nop, sentinel, self.prod1),
            np.where(is_nop, sentinel, self.prod2),
            np.where(self.is_store, self.prod3, sentinel),
            np.where(self.is_load, self.memdep, sentinel),
        ]))
        runtime = _PlanRuntime(
            vprod_all=vprod_all,
            ops_l=self.ops.tolist(),
            prod1_l=self.prod1.tolist(),
            prod2_l=self.prod2.tolist(),
            prod3_l=self.prod3.tolist(),
            memdep_l=self.memdep.tolist(),
            dmiss_l=self.dmiss.tolist(),
            mispred_l=self.mispred.tolist(),
            pmiss_l=self.pmiss.tolist(),
            pfuseful_l=self.pfuseful.tolist(),
            smiss_l=self.smiss.tolist(),
            scalar_mask_l=self.scalar_mask.tolist(),
            scalar_pos_l=self.scalar_pos.tolist(),
        )
        self._runtime = runtime
        return runtime


def _plan_cache(annotated):
    cache = getattr(annotated, "_columnar_plan_cache", None)
    if cache is None:
        cache = {}
        annotated._columnar_plan_cache = cache
    return cache


def plan_for(annotated, machine, start=None, stop=None):
    """Return the (memoised) :class:`ColumnarPlan` for *machine*'s mask group.

    Configurations that share perfect-* and value-prediction switches
    share one plan object; a grid sweep therefore builds at most one
    plan per mask group per region.
    """
    start, stop = resolve_region(annotated, start, stop)
    key = (start, stop) + mask_key(machine)
    cache = _plan_cache(annotated)
    plan = cache.get(key)
    if plan is None:
        plan = build_plan(annotated, machine, start, stop)
        cache[key] = plan
    return plan


def build_plan(annotated, machine, start, stop):
    """Build the columnar plan for ``annotated[start:stop)`` under *machine*.

    Only the mask key of *machine* matters; window sizes, issue policy
    and structure limits are applied by the engine at run time, which is
    what makes the plan shareable across a config grid.
    """
    n = stop - start
    trace = annotated.trace

    (dmiss, imiss, mispred, pmiss, pfuseful, vp_ok) = _event_arrays(
        annotated, machine, start, stop
    )
    dmiss = np.ascontiguousarray(dmiss)
    imiss = np.ascontiguousarray(imiss)
    mispred = np.ascontiguousarray(mispred)
    pmiss = np.ascontiguousarray(pmiss)
    pfuseful = np.ascontiguousarray(pfuseful)
    vp_ok = np.ascontiguousarray(vp_ok)
    smiss = np.ascontiguousarray(np.asarray(annotated.smiss[start:stop]))
    ops = np.ascontiguousarray(trace.op[start:stop])

    graph = depgraph_for(annotated, start, stop)
    prod1 = _sentineled(graph.prod1, n)
    prod2 = _sentineled(graph.prod2, n)
    prod3 = _sentineled(graph.prod3, n)
    memdep = _sentineled(graph.memdep, n)

    is_load = ops == int(OpClass.LOAD)
    is_store = ops == int(OpClass.STORE)
    is_branch = ops == int(OpClass.BRANCH)
    is_memop = is_load | is_store

    serialize_ops = (
        (ops == int(OpClass.CAS))
        | (ops == int(OpClass.LDSTUB))
        | (ops == int(OpClass.MEMBAR))
    )
    resultless_ops = (
        is_branch
        | (ops == int(OpClass.NOP))
        | (ops == int(OpClass.PREFETCH))
    )
    dst_named = trace.dst[start:stop] > REG_ZERO

    # Positions the scalar interpreter must handle: every off-chip or
    # serializing event plus result-less ops whose (never-assigned)
    # result slot must keep its reference-engine behaviour.
    scalar_mask = (
        dmiss | imiss | pmiss | smiss | serialize_ops
        | (resultless_ops & dst_named)
    )

    return ColumnarPlan(
        start=start, stop=stop,
        ops=ops,
        prod1=prod1, prod2=prod2, prod3=prod3, memdep=memdep,
        dmiss=dmiss, imiss=imiss, mispred=mispred,
        pmiss=pmiss, pfuseful=pfuseful, vp_ok=vp_ok, smiss=smiss,
        is_load=is_load, is_store=is_store, is_branch=is_branch,
        is_memop=is_memop,
        scalar_mask=scalar_mask,
        scalar_pos=_scalar_pos(scalar_mask, n),
    )


def _scalar_pos(scalar_mask, n):
    positions = np.flatnonzero(scalar_mask).astype(np.int64)
    return np.append(positions, n)


def _sentineled(producers, n):
    """Producer list with ``-1`` replaced by the gather sentinel ``n``."""
    arr = np.asarray(producers, dtype=np.int32)
    return np.where(arr >= 0, arr, np.int32(n)).astype(np.int32)


def plan_payload(plan):
    """Project *plan* to a flat ``{name: array}`` dict for spilling.

    The payload round-trips through :func:`plan_from_payload`; the
    schema version travels with it so a stale archive is rejected
    loudly instead of misread.
    """
    payload = {name: getattr(plan, name) for name, _ in PLAN_COLUMNS}
    payload["meta"] = np.asarray(
        [COLUMNAR_SCHEMA_VERSION, plan.start, plan.stop], dtype=np.int64
    )
    return payload


def plan_from_payload(payload, path=None):
    """Rebuild a :class:`ColumnarPlan` from :func:`plan_payload` output.

    Raises
    ------
    repro.robustness.errors.TraceFormatError
        If the payload misses columns, carries a wrong dtype, or was
        written under a different :data:`COLUMNAR_SCHEMA_VERSION`.
    """
    if "meta" not in payload:
        raise TraceFormatError(
            "not a columnar plan payload (no meta record)",
            path=path, field="meta",
        )
    meta = np.asarray(payload["meta"])
    if meta.shape != (3,):
        raise TraceFormatError(
            f"columnar plan meta record has shape {meta.shape}; expected (3,)",
            path=path, field="meta",
        )
    version = int(meta[0])
    if version != COLUMNAR_SCHEMA_VERSION:
        raise TraceFormatError(
            f"columnar schema version mismatch: payload has {version},"
            f" library expects {COLUMNAR_SCHEMA_VERSION}",
            path=path, field="meta",
        )
    start, stop = int(meta[1]), int(meta[2])
    n = stop - start
    if n < 0 or start < 0:
        raise TraceFormatError(
            f"columnar plan meta names an invalid region [{start}, {stop})",
            path=path, field="meta",
        )
    columns = {}
    for name, dtype in PLAN_COLUMNS:
        if name not in payload:
            raise TraceFormatError(
                f"columnar plan payload is missing column {name!r}",
                path=path, field=name,
            )
        array = np.asarray(payload[name])
        if array.dtype != np.dtype(dtype) or array.shape != (n,):
            raise TraceFormatError(
                f"columnar plan column {name!r} has dtype {array.dtype}"
                f" shape {array.shape}; expected {np.dtype(dtype)} ({n},)",
                path=path, field=name,
            )
        columns[name] = array
    return ColumnarPlan(
        start=start, stop=stop,
        scalar_pos=_scalar_pos(columns["scalar_mask"], n),
        **columns,
    )
