"""The epoch model of MLP and MLPsim — the paper's primary contribution.

The epoch model (Section 3): under long off-chip latencies, execution
separates into *epochs* — on-chip computation followed by a batch of
off-chip accesses that issue and complete together.  Microarchitecture
choices impose *window termination conditions* bounding how many useful
off-chip accesses overlap in one epoch; MLP is the ratio of useful
off-chip accesses to epochs.

:class:`~repro.core.mlpsim.MLPSim` implements the model over an annotated
trace for out-of-order machines (issue configurations A-E of Table 2,
decoupled issue window / ROB, runahead execution, value prediction, and
the perfect-frontend switches of the limit study).  In-order stall-on-miss
and stall-on-use machines live in :mod:`repro.core.inorder`.
"""

from repro.core.config import (
    BranchPolicy,
    IssueConfig,
    LoadPolicy,
    MachineConfig,
    SerializePolicy,
)
from repro.core.epoch import Epoch
from repro.core.termination import Inhibitor
from repro.core.results import MLPResult
from repro.core.mlpsim import MLPSim, simulate
from repro.core.inorder import (
    InOrderPolicy,
    simulate_inorder,
    simulate_stall_on_miss,
    simulate_stall_on_use,
)
from repro.core.batched import (
    batched_supported,
    simulate_batch,
    simulate_batched,
)
from repro.core.columnar import COLUMNAR_SCHEMA_VERSION, ColumnarPlan, plan_for
from repro.core.limits import limit_configs, perfect_variant
from repro.core.smt import (
    SMTResult,
    ThreadProfile,
    profile_from_result,
    profile_workload,
    simulate_smt,
)

__all__ = [
    "BranchPolicy",
    "IssueConfig",
    "LoadPolicy",
    "MachineConfig",
    "SerializePolicy",
    "Epoch",
    "Inhibitor",
    "MLPResult",
    "MLPSim",
    "simulate",
    "InOrderPolicy",
    "simulate_inorder",
    "simulate_stall_on_miss",
    "simulate_stall_on_use",
    "batched_supported",
    "simulate_batch",
    "simulate_batched",
    "COLUMNAR_SCHEMA_VERSION",
    "ColumnarPlan",
    "plan_for",
    "limit_configs",
    "perfect_variant",
    "SMTResult",
    "ThreadProfile",
    "profile_from_result",
    "profile_workload",
    "simulate_smt",
]
