"""In-order machines: stall-on-miss and stall-on-use (paper Section 3.3).

A *stall-on-miss* machine stalls issue as soon as a load misses the data
cache, so a missing load both starts and terminates its window; only
software prefetch misses and a closely following instruction-fetch miss
can overlap with it.  A *stall-on-use* machine stalls at the first
consumer of missing data, so independent missing loads between a miss
and its first use overlap — which is why its MLP is slightly higher
(Table 5).

Neither machine reorders instructions, so no window structures are
modeled; the only state is the set of registers whose miss data is
outstanding and the list of software prefetches in flight.  Prefetches
never stall.  An off-chip prefetch overlaps with the misses of the
window it was issued in; it can never overlap *across* a window
boundary, because the boundary is a full-latency stall by which time the
prefetch has completed.  A prefetch issued with no miss outstanding
joins the next window only if one opens within ``overlap_window``
instructions (roughly the instructions an in-order core retires in one
memory latency).

When a window ends, fetch keeps running while issue drains, so an
instruction-fetch miss within the next ``fetch_buffer`` instructions
overlaps with the closing window — this is why the paper's stall-on-miss
MLP sits slightly above 1.0 even without prefetches.
"""

import enum

from repro.core.epoch import Epoch, TriggerKind
from repro.core.mlpsim import event_masks, resolve_region
from repro.core.results import MLPResult
from repro.core.termination import Inhibitor, InhibitorCounts
from repro.isa.opclass import OpClass
from repro.isa.registers import REG_ZERO


class InOrderPolicy(enum.Enum):
    """Which in-order stall policy the machine implements."""

    STALL_ON_MISS = "stall-on-miss"
    STALL_ON_USE = "stall-on-use"


def simulate_stall_on_miss(annotated, machine=None, **kwargs):
    """Convenience wrapper for the stall-on-miss machine."""
    return simulate_inorder(
        annotated, policy=InOrderPolicy.STALL_ON_MISS, machine=machine, **kwargs
    )


def simulate_stall_on_use(annotated, machine=None, **kwargs):
    """Convenience wrapper for the stall-on-use machine."""
    return simulate_inorder(
        annotated, policy=InOrderPolicy.STALL_ON_USE, machine=machine, **kwargs
    )


def simulate_inorder(annotated, policy, machine=None, start=None, stop=None,
                     workload=None, record_sets=False, overlap_window=1000,
                     fetch_buffer=32):
    """Simulate an in-order machine over *annotated*.

    *machine* is only consulted for the perfect-* event switches (the
    in-order pipelines have no window structures); it may be None.
    """
    from repro.core.config import MachineConfig

    trace = annotated.trace
    machine = machine or MachineConfig()
    start, stop = resolve_region(annotated, start, stop)
    n = stop - start

    dmiss, imiss, mispred, pmiss, pfuseful, _ = event_masks(
        annotated, machine, start, stop
    )
    imiss = list(imiss)  # lookahead consumes fetch misses early
    stall_on_use = policy == InOrderPolicy.STALL_ON_USE

    ops = trace.op[start:stop].tolist()
    dsts = trace.dst[start:stop].tolist()
    src1s = trace.src1[start:stop].tolist()
    src2s = trace.src2[start:stop].tolist()
    src3s = trace.src3[start:stop].tolist()

    LOAD = int(OpClass.LOAD)
    PREFETCH = int(OpClass.PREFETCH)
    CAS = int(OpClass.CAS)
    LDSTUB = int(OpClass.LDSTUB)
    MEMBAR = int(OpClass.MEMBAR)

    epochs_recorded = 0
    total_accesses = 0
    dmiss_accesses = 0
    imiss_accesses = 0
    prefetch_accesses = 0
    inhibitors = InhibitorCounts()
    epoch_records = [] if record_sets else None

    outstanding = set()  # registers whose miss data is in flight
    pending_pf = []  # useful off-chip prefetches in flight
    window_accesses = 0
    window_d = window_i = window_p = 0
    window_trigger = None
    window_kind = None
    window_members = [] if record_sets else None

    def add_access(i, kind):
        nonlocal window_accesses, window_d, window_i, window_p
        nonlocal window_trigger, window_kind
        window_accesses += 1
        if kind == TriggerKind.DMISS:
            window_d += 1
        elif kind == TriggerKind.IMISS:
            window_i += 1
        else:
            window_p += 1
        if window_trigger is None:
            window_trigger = i
            window_kind = kind
        if record_sets:
            window_members.append(i)

    def close_window(inhibitor):
        nonlocal epochs_recorded, total_accesses, window_accesses
        nonlocal dmiss_accesses, imiss_accesses, prefetch_accesses
        nonlocal window_d, window_i, window_p, window_trigger, window_kind
        nonlocal window_members
        if window_accesses:
            epochs_recorded += 1
            total_accesses += window_accesses
            dmiss_accesses += window_d
            imiss_accesses += window_i
            prefetch_accesses += window_p
            inhibitors.record(inhibitor)
            if record_sets:
                epoch_records.append(
                    Epoch(
                        index=epochs_recorded - 1,
                        trigger=window_trigger + start,
                        trigger_kind=window_kind,
                        accesses=window_accesses,
                        inhibitor=inhibitor,
                        members=[m + start for m in window_members],
                    )
                )
        window_accesses = 0
        window_d = window_i = window_p = 0
        window_trigger = None
        window_kind = None
        if record_sets:
            window_members = []
        outstanding.clear()

    def absorb_pending(pos):
        """Fold in-flight prefetches into the current window.

        Every pending prefetch was issued after the previous window
        closed.  If the current window is open (a miss is outstanding)
        they all overlap with it; otherwise only prefetches within
        ``overlap_window`` instructions of *pos* are still in flight —
        older ones completed alone and are emitted as their own
        (grouped) epochs.
        """
        nonlocal pending_pf
        if window_accesses:
            fresh = pending_pf
            stale = []
        else:
            stale = [p for p in pending_pf if p < pos - overlap_window]
            fresh = [p for p in pending_pf if p >= pos - overlap_window]
        pending_pf = []
        group_start = None
        for p in stale:
            if group_start is not None and p - group_start >= overlap_window:
                close_window(Inhibitor.END_OF_TRACE)
                group_start = None
            if group_start is None:
                group_start = p
            add_access(p, TriggerKind.PMISS)
        if group_start is not None:
            close_window(Inhibitor.END_OF_TRACE)
        for p in fresh:
            add_access(p, TriggerKind.PMISS)

    def stall(pos, inhibitor):
        """Full-latency stall: close the window at *pos*.

        Fetch keeps running while issue drains, so an instruction-fetch
        miss within the next ``fetch_buffer`` instructions overlaps with
        the closing window (and is consumed here so it does not start
        its own epoch later).
        """
        absorb_pending(pos)
        for j in range(pos + 1, min(n, pos + 1 + fetch_buffer)):
            if mispred[j]:
                break  # fetch past here runs down the wrong path
            if imiss[j]:
                imiss[j] = False
                add_access(j, TriggerKind.IMISS)
                break
        close_window(inhibitor)

    for i in range(n):
        op = ops[i]

        if imiss[i]:
            imiss[i] = False
            absorb_pending(i)
            add_access(i, TriggerKind.IMISS)
            # Fetch is blocking: the window cannot grow past this point.
            close_window(
                Inhibitor.IMISS_END if window_d else Inhibitor.IMISS_START
            )

        if stall_on_use and outstanding:
            uses = False
            s = src1s[i]
            if s > REG_ZERO and s in outstanding:
                uses = True
            if not uses:
                s = src2s[i]
                if s > REG_ZERO and s in outstanding:
                    uses = True
            if not uses:
                s = src3s[i]
                if s > REG_ZERO and s in outstanding:
                    uses = True
            if uses:
                # First consumer of missing data: the pipeline stalls
                # here until every outstanding miss returns.
                stall(i, Inhibitor.MISSING_LOAD)

        if op == PREFETCH:
            if pmiss[i] and pfuseful[i]:
                pending_pf.append(i)
            continue

        if op == LOAD or op == CAS or op == LDSTUB:
            serializing_atomic = op != LOAD
            if serializing_atomic and (outstanding or window_accesses):
                # Atomics drain the pipeline first.
                stall(i, Inhibitor.SERIALIZE)
            if dmiss[i]:
                absorb_pending(i)
                add_access(i, TriggerKind.DMISS)
                if stall_on_use and not serializing_atomic:
                    dst = dsts[i]
                    if dst > REG_ZERO:
                        outstanding.add(dst)
                else:
                    # Stall-on-miss (and atomics either way) stall here.
                    stall(i, Inhibitor.MISSING_LOAD)
            else:
                dst = dsts[i]
                if dst > REG_ZERO and outstanding:
                    outstanding.discard(dst)
            continue

        if op == MEMBAR:
            if outstanding or window_accesses:
                stall(i, Inhibitor.SERIALIZE)
            continue

        # ALU / branch / store / NOP: overwriting a register with on-chip
        # data clears its outstanding status.
        dst = dsts[i]
        if dst > REG_ZERO and outstanding:
            outstanding.discard(dst)

    absorb_pending(n + overlap_window + 1)
    close_window(Inhibitor.END_OF_TRACE)

    label = f"in-order/{policy.value}"
    return MLPResult(
        workload=workload or trace.name,
        machine_label=label,
        instructions=n,
        accesses=total_accesses,
        epochs=epochs_recorded,
        dmiss_accesses=dmiss_accesses,
        imiss_accesses=imiss_accesses,
        prefetch_accesses=prefetch_accesses,
        inhibitors=inhibitors,
        epoch_records=epoch_records,
    )
