"""MLPsim: the epoch-model simulator (paper Section 4.1).

The simulator partitions an annotated dynamic instruction stream into
epoch sets by tracking register and memory dependences and applying the
window termination conditions implied by a :class:`MachineConfig`.  It
is deliberately timing-free: on-chip latencies are zero, and all
overlappable off-chip accesses of an epoch issue and complete together.

Operational model (one iteration of the main loop = one epoch):

1. The result of a missing load becomes available in the *next* epoch
   (its data returns when the epoch ends); every on-chip result is
   available within the epoch that computes it.  Availability is kept
   per dynamic instruction (``res_data``) against the static dependence
   graph of :mod:`repro.core.depgraph`, so an instruction whose producer
   has not executed yet is automatically "not ready".
2. Each epoch scans instructions in program order: first the *deferred*
   instructions (fetched in earlier epochs but not yet executed), then
   new instructions from the fetch stream.  One in-order pass suffices
   because dependences only point backwards.
3. Fetch stops at the first window termination condition: ROB or issue
   window exhaustion, a serializing instruction with older work
   outstanding, an instruction-fetch miss, or an unresolvable
   mispredicted branch.  After ROB/IW/serializing (dispatch-side) stops,
   fetch runs on for up to ``fetch_buffer`` further instructions; they
   cannot dispatch, but an I-miss among them still issues its off-chip
   line fetch.
4. An epoch is recorded when it issued at least one useful off-chip
   access, and is charged to the earliest MLP-inhibiting condition in
   program order (the Figure 5 categories).

Value prediction (Sections 3.6/5.5) splits availability in two: a
correctly predicted missing load's result is *usable* in the same epoch
(``res_data``) but only *validated* in the next (``res_valid``); a
mispredicted branch whose sources are merely usable, not validated,
cannot redirect fetch and still terminates the window.

The rules were fixed against the paper's worked Examples 1-5, which are
unit-tested verbatim in ``tests/test_paper_examples.py``.

Performance structure (see ``docs/PERFORMANCE.md``):

* the ``execute`` scan closures are created once per :func:`simulate`
  call, not once per epoch, and dependence lookups are inlined into
  the per-opcode branches;
* event masks and dependence columns are flattened to plain lists once
  up front (numpy scalar indexing is an order of magnitude slower in
  the interpreter loop);
* a vectorised "next interesting instruction" index — built from the
  dmiss/imiss/pmiss/smiss/serialize masks — lets the scan skip on-chip
  stretches between misses in bulk with list slice-assignment instead
  of interpreting every ALU/NOP one at a time.  The skip engages only
  in a provably *clean* scan state (nothing deferred, nothing in
  flight, no events recorded this epoch), where every skipped
  instruction is known to execute immediately with
  ``res_data = res_valid = epoch``; cleanliness is monotone within an
  epoch, so the check never has to re-arm.

The pre-optimization interpreter is preserved verbatim in
:mod:`repro.core.mlpsim_reference`; equivalence tests pin this engine
to bit-identical :class:`MLPResult`s against it.
"""

import numpy as np

from repro.core.config import (
    BranchPolicy,
    LoadPolicy,
    MachineConfig,
    SerializePolicy,
)
from repro.core.depgraph import depgraph_for
from repro.core.epoch import Epoch, TriggerKind
from repro.core.results import MLPResult
from repro.core.termination import Inhibitor, InhibitorCounts
from repro.isa.opclass import OpClass
from repro.isa.registers import REG_ZERO
from repro.robustness.errors import InternalError

#: Result epoch of an instruction that has not executed yet.
NOT_EXECUTED = 1 << 30


class MLPSim:
    """The MLP simulator.

    Parameters
    ----------
    machine:
        :class:`MachineConfig`; defaults to the paper's 64C machine.
    record_sets:
        When True, every epoch record carries its full epoch set
        (memory-heavy; meant for tests and small traces).
    """

    def __init__(self, machine=None, record_sets=False):
        self.machine = machine or MachineConfig()
        self.record_sets = record_sets

    def run(self, annotated, start=None, stop=None, workload=None):
        """Simulate *annotated* and return an :class:`MLPResult`.

        *start*/*stop* bound the simulated region; by default the
        measured (post-warmup) region of the annotated trace is used.
        """
        return simulate(
            annotated,
            self.machine,
            start=start,
            stop=stop,
            workload=workload,
            record_sets=self.record_sets,
        )


def simulate(annotated, machine, start=None, stop=None, workload=None,
             record_sets=False):
    """Functional entry point; see :class:`MLPSim`.

    The annotated input is structurally validated (mask dtypes and
    lengths, ``vp_outcome`` codes, ``measure_start`` range) before the
    engine runs; a malformed annotation raises
    :class:`~repro.robustness.errors.TraceFormatError` instead of
    silently producing wrong MLP numbers.
    """
    from repro.robustness.validate import validate_annotated

    validate_annotated(annotated, check_events=False)
    if machine.runahead:
        from repro.core.runahead import simulate_runahead

        return simulate_runahead(
            annotated,
            machine,
            start=start,
            stop=stop,
            workload=workload,
            record_sets=record_sets,
        )
    return _simulate_ooo(annotated, machine, start, stop, workload, record_sets)


def resolve_region(annotated, start, stop):
    """Normalise a (start, stop) request against the measured region.

    Raises
    ------
    repro.robustness.errors.SimulationError
        If the requested region falls outside the trace.
    """
    from repro.robustness.errors import SimulationError

    if start is None:
        start = annotated.measure_start
    if stop is None:
        stop = len(annotated.trace)
    if not 0 <= start <= stop <= len(annotated.trace):
        raise SimulationError(
            f"invalid trace region [{start}, {stop}) for a trace of"
            f" {len(annotated.trace)} instructions"
        )
    return start, stop


def _event_arrays(annotated, machine, start, stop):
    """Per-instruction event masks as numpy bool arrays over the region.

    Applies the machine's perfect-* switches; shared by the list-based
    :func:`event_masks` (the engines' interpreter input) and the
    vectorised skip-index construction.
    """
    dmiss = np.asarray(annotated.dmiss[start:stop])
    imiss = np.asarray(annotated.imiss[start:stop])
    mispred = np.asarray(annotated.mispred[start:stop])
    pmiss = np.asarray(annotated.pmiss[start:stop])
    pfuseful = np.asarray(annotated.pfuseful[start:stop])
    if machine.perfect_ifetch:
        imiss = np.zeros_like(imiss)
    if machine.perfect_branch:
        mispred = np.zeros_like(mispred)
    if machine.perfect_value:
        vp_ok = dmiss.copy()
    elif machine.value_prediction:
        vp_ok = dmiss & (np.asarray(annotated.vp_outcome[start:stop]) == 0)
    else:
        vp_ok = np.zeros_like(dmiss)
    return dmiss, imiss, mispred, pmiss, pfuseful, vp_ok


def event_masks(annotated, machine, start, stop):
    """Per-instruction event lists under the machine's perfect-* switches.

    Returns ``(dmiss, imiss, mispred, pmiss, pfuseful, vp_ok)`` as plain
    Python lists over the region.
    """
    dmiss, imiss, mispred, pmiss, pfuseful, vp_ok = _event_arrays(
        annotated, machine, start, stop
    )
    return (
        dmiss.tolist(),
        imiss.tolist(),
        mispred.tolist(),
        pmiss.tolist(),
        pfuseful.tolist(),
        vp_ok.tolist(),
    )


def _interp_tables(annotated, machine, start, stop):
    """Flat interpreter input tables for a region, memoised.

    Returns ``(dmiss, imiss, mispred, pmiss, pfuseful, vp_ok, smiss,
    ops, interesting_pos)`` — plain Python lists (the fastest random
    access structure for the interpreter loops) plus the vectorised
    "next interesting instruction" index.  An instruction is *boring*
    when, scanned in a clean state (no deferrals, nothing in flight,
    no events this epoch), it is known to execute immediately as
    ``res_data = res_valid = epoch`` with no counter, trigger,
    blocking-flag or event side effects: hit loads/stores, ALU ops,
    and result-less ops (branches — even mispredicted ones resolve
    instantly when their sources are on chip — NOPs and on-chip
    prefetches).  A result-less op that nonetheless names a
    destination register is kept interesting so its (never-assigned)
    ``res_data`` slot behaves exactly as in the reference interpreter.

    The tables are cached on the annotated object (like the dependence
    graph) because sweeps and repeated runs simulate the same region
    under many machine configurations; only the machine's perfect-*
    and value-prediction switches change their content.  Callers must
    not mutate the returned lists — the engine copies ``imiss``, the
    one table it services in place.
    """
    cache = getattr(annotated, "_interp_table_cache", None)
    if cache is None:
        cache = {}
        annotated._interp_table_cache = cache
    key = (
        start,
        stop,
        machine.perfect_ifetch,
        machine.perfect_branch,
        machine.perfect_value,
        machine.value_prediction,
    )
    tables = cache.get(key)
    if tables is not None:
        return tables

    trace = annotated.trace
    n = stop - start
    (dmiss_arr, imiss_arr, mispred_arr, pmiss_arr, pfuseful_arr,
     vp_ok_arr) = _event_arrays(annotated, machine, start, stop)
    smiss_arr = np.asarray(annotated.smiss[start:stop])
    ops_arr = trace.op[start:stop]

    serialize_ops = (
        (ops_arr == int(OpClass.CAS))
        | (ops_arr == int(OpClass.LDSTUB))
        | (ops_arr == int(OpClass.MEMBAR))
    )
    resultless_ops = (
        (ops_arr == int(OpClass.BRANCH))
        | (ops_arr == int(OpClass.NOP))
        | (ops_arr == int(OpClass.PREFETCH))
    )
    interesting = (
        dmiss_arr | imiss_arr | pmiss_arr | smiss_arr | serialize_ops
        | (resultless_ops & (trace.dst[start:stop] > REG_ZERO))
    )
    interesting_pos = np.flatnonzero(interesting).tolist()
    interesting_pos.append(n)  # sentinel: bulk skips clamp at region end

    tables = (
        dmiss_arr.tolist(),
        imiss_arr.tolist(),
        mispred_arr.tolist(),
        pmiss_arr.tolist(),
        pfuseful_arr.tolist(),
        vp_ok_arr.tolist(),
        smiss_arr.tolist(),
        ops_arr.tolist(),
        interesting_pos,
    )
    cache[key] = tables
    return tables


def _simulate_ooo(annotated, machine, start, stop, workload, record_sets):
    start, stop = resolve_region(annotated, start, stop)
    n = stop - start

    (dmiss, imiss, mispred, pmiss, pfuseful, vp_ok, smiss, ops,
     interesting_pos) = _interp_tables(annotated, machine, start, stop)
    imiss = imiss.copy()  # mutated as fetch misses are serviced

    graph = depgraph_for(annotated, start, stop)
    prod1 = graph.prod1
    prod2 = graph.prod2
    prod3 = graph.prod3
    memdep = graph.memdep

    ALU = int(OpClass.ALU)
    LOAD = int(OpClass.LOAD)
    STORE = int(OpClass.STORE)
    PREFETCH = int(OpClass.PREFETCH)
    CAS = int(OpClass.CAS)
    LDSTUB = int(OpClass.LDSTUB)
    MEMBAR = int(OpClass.MEMBAR)
    NOP = int(OpClass.NOP)
    BRANCH = int(OpClass.BRANCH)

    ip_idx = 0

    serializing = machine.issue.serialize_policy == SerializePolicy.SERIALIZING
    load_in_order = machine.issue.load_policy == LoadPolicy.IN_ORDER
    load_wait_staddr = machine.issue.load_policy == LoadPolicy.WAIT_STORE_ADDR
    branch_in_order = machine.issue.branch_policy == BranchPolicy.IN_ORDER
    iw_size = machine.issue_window
    rob_size = machine.rob
    fetch_buffer = machine.fetch_buffer
    mshr_cap = machine.max_outstanding or (1 << 30)
    sb_cap = machine.store_buffer if machine.store_buffer is not None else (1 << 30)
    slow_bp = machine.slow_branch_predictor
    slow_bp_threshold = int(machine.slow_bp_accuracy * 1024)

    # Per-instruction result availability, in epoch units.
    res_data = [NOT_EXECUTED] * n
    res_valid = [NOT_EXECUTED] * n

    deferred = []  # indices fetched but not executed, program order
    fetch_pos = 0
    epoch = 0

    epochs_recorded = 0
    total_accesses = 0
    dmiss_accesses = 0
    imiss_accesses = 0
    prefetch_accesses = 0
    store_accesses = 0
    store_epochs = 0
    inhibitors = InhibitorCounts()
    epoch_records = [] if record_sets else None

    # ---- per-epoch scan state ------------------------------------------
    # Rebound at the top of every epoch; the scan closures below are
    # created once per simulate() call (not per epoch) and reach these
    # through the enclosing scope.
    accesses = 0
    e_dmiss = 0
    e_imiss = 0
    e_pmiss = 0
    e_smiss = 0
    inflight = 0  # MSHR occupancy: useful + store + useless accesses
    trigger_idx = None
    trigger_kind = None
    first_miss_idx = None  # oldest ROB-holding data miss this epoch
    members = None
    blocked_memop = False  # an older load/store has not issued (policy A)
    blocked_staddr = False  # an older store's address is unresolved (B)
    blocked_branch = False  # an older branch has not issued (in-order)
    events = []  # inhibitors in scan (= program) order; first wins
    new_deferred = []
    progress = False

    def slow_bp_saves(i):
        """Does the slow unresolvable-branch predictor get this one right?

        Deterministic per dynamic instance, so runs are reproducible."""
        return slow_bp and ((i * 2654435761) >> 7) % 1024 < slow_bp_threshold

    def execute(i):
        """Attempt to execute instruction *i* in the current epoch.

        Returns ``"done"``, ``"defer"``, ``"stop-done"`` or
        ``"stop-defer"``; the stop variants terminate the scan.
        Dependence availability (the reference engine's ``deps``) is
        inlined into each opcode branch.
        """
        nonlocal accesses, e_dmiss, e_pmiss, e_smiss, inflight
        nonlocal trigger_idx, trigger_kind
        nonlocal blocked_memop, blocked_staddr, blocked_branch
        nonlocal first_miss_idx, progress

        op = ops[i]

        if op == ALU:
            de = 0
            ve = 0
            p = prod1[i]
            if p >= 0:
                de = res_data[p]
                ve = res_valid[p]
            p = prod2[i]
            if p >= 0:
                d = res_data[p]
                if d > de:
                    de = d
                v = res_valid[p]
                if v > ve:
                    ve = v
            if de > epoch:
                return "defer"
            progress = True
            res_data[i] = epoch
            res_valid[i] = ve if ve > epoch else epoch
            if members is not None:
                members.append(i)
            return "done"

        if op == BRANCH:
            de = 0
            ve = 0
            p = prod1[i]
            if p >= 0:
                de = res_data[p]
                ve = res_valid[p]
            p = prod2[i]
            if p >= 0:
                d = res_data[p]
                if d > de:
                    de = d
                v = res_valid[p]
                if v > ve:
                    ve = v
            can_issue = de <= epoch and not (branch_in_order and blocked_branch)
            if can_issue and mispred[i] and ve > epoch:
                # Condition computed from an unvalidated predicted
                # value: recovery must wait for the real data.
                can_issue = False
            if can_issue:
                progress = True
                if members is not None:
                    members.append(i)
                return "done"
            blocked_branch = True
            if mispred[i]:
                if slow_bp_saves(i):
                    # The slow second-level predictor (Section 3.2.4
                    # extension) redirects fetch correctly; the
                    # branch merely waits in the window.
                    return "defer"
                events.append(Inhibitor.MISPRED_BR)
                return "stop-defer"
            return "defer"

        if op == LOAD:
            de = 0
            ve = 0
            p = prod1[i]
            if p >= 0:
                de = res_data[p]
                ve = res_valid[p]
            p = prod2[i]
            if p >= 0:
                d = res_data[p]
                if d > de:
                    de = d
                v = res_valid[p]
                if v > ve:
                    ve = v
            m = memdep[i]
            if m >= 0:
                d = res_data[m]
                if d > de:
                    de = d
                v = res_valid[m]
                if v > ve:
                    ve = v
            if de > epoch:
                blocked_memop = True
                return "defer"
            if load_in_order and blocked_memop:
                if dmiss[i]:
                    events.append(Inhibitor.MISSING_LOAD)
                return "defer"
            if load_wait_staddr and blocked_staddr:
                if dmiss[i]:
                    events.append(Inhibitor.DEP_STORE)
                return "defer"
            if dmiss[i] and inflight >= mshr_cap:
                events.append(Inhibitor.MSHR_LIMIT)
                blocked_memop = True
                return "defer"
            progress = True
            if dmiss[i]:
                accesses += 1
                e_dmiss += 1
                inflight += 1
                if trigger_idx is None:
                    trigger_idx = i
                    trigger_kind = TriggerKind.DMISS
                if first_miss_idx is None:
                    first_miss_idx = i
                res_data[i] = epoch if vp_ok[i] else epoch + 1
                res_valid[i] = epoch + 1
            else:
                res_data[i] = epoch
                res_valid[i] = ve if ve > epoch else epoch
            if members is not None:
                members.append(i)
            return "done"

        if op == STORE:
            ade = 0
            ave = 0
            p = prod1[i]
            if p >= 0:
                ade = res_data[p]
                ave = res_valid[p]
            p = prod2[i]
            if p >= 0:
                d = res_data[p]
                if d > ade:
                    ade = d
                v = res_valid[p]
                if v > ave:
                    ave = v
            de = ade
            ve = ave
            p = prod3[i]
            if p >= 0:
                d = res_data[p]
                if d > de:
                    de = d
                v = res_valid[p]
                if v > ve:
                    ve = v
            if de > epoch:
                blocked_memop = True
                if ade > epoch:
                    blocked_staddr = True
                return "defer"
            if smiss[i]:
                if e_smiss >= sb_cap:
                    events.append(Inhibitor.STORE_BUFFER)
                    blocked_memop = True
                    return "defer"
                if inflight >= mshr_cap:
                    events.append(Inhibitor.MSHR_LIMIT)
                    blocked_memop = True
                    return "defer"
                e_smiss += 1
                inflight += 1
            progress = True
            res_data[i] = epoch
            res_valid[i] = ve if ve > epoch else epoch
            if members is not None:
                members.append(i)
            return "done"

        if op == PREFETCH:
            de = 0
            p = prod1[i]
            if p >= 0:
                de = res_data[p]
            p = prod2[i]
            if p >= 0:
                d = res_data[p]
                if d > de:
                    de = d
            if de > epoch:
                return "defer"
            if pmiss[i] and inflight >= mshr_cap:
                events.append(Inhibitor.MSHR_LIMIT)
                return "defer"
            progress = True
            if pmiss[i]:
                inflight += 1
            if pmiss[i] and pfuseful[i]:
                accesses += 1
                e_pmiss += 1
                if trigger_idx is None:
                    trigger_idx = i
                    trigger_kind = TriggerKind.PMISS
            if members is not None:
                members.append(i)
            return "done"

        if op == NOP:
            progress = True
            if members is not None:
                members.append(i)
            return "done"

        # Serializing instructions: CAS / LDSTUB / MEMBAR.
        de = 0
        ve = 0
        p = prod1[i]
        if p >= 0:
            de = res_data[p]
            ve = res_valid[p]
        p = prod2[i]
        if p >= 0:
            d = res_data[p]
            if d > de:
                de = d
            v = res_valid[p]
            if v > ve:
                ve = v
        p = prod3[i]
        if p >= 0:
            d = res_data[p]
            if d > de:
                de = d
            v = res_valid[p]
            if v > ve:
                ve = v
        if op != MEMBAR:
            m = memdep[i]
            if m >= 0:
                d = res_data[m]
                if d > de:
                    de = d
                v = res_valid[m]
                if v > ve:
                    ve = v

        if serializing:
            outstanding = bool(new_deferred) or trigger_idx is not None
            if outstanding or de > epoch:
                events.append(Inhibitor.SERIALIZE)
                if op == MEMBAR:
                    # The barrier commits with the drain at epoch end.
                    progress = True
                    res_data[i] = epoch + 1
                    res_valid[i] = epoch + 1
                    if members is not None:
                        members.append(i)
                    return "stop-done"
                blocked_memop = True
                return "stop-defer"
            # Pipeline already drained: the instruction issues now.
            progress = True
            if op == MEMBAR:
                res_data[i] = epoch
                res_valid[i] = epoch
                if members is not None:
                    members.append(i)
                return "done"
            return execute_atomic(i, ve)

        # Non-serializing policy (config E): atomics behave like an
        # ordinary load+store pair, barriers like NOPs.
        if op == MEMBAR:
            progress = True
            res_data[i] = epoch
            res_valid[i] = epoch
            if members is not None:
                members.append(i)
            return "done"
        if de > epoch:
            blocked_memop = True
            return "defer"
        progress = True
        return execute_atomic(i, ve)

    def execute_atomic(i, ve):
        """Issue an executing CAS/LDSTUB (register + memory results)."""
        nonlocal accesses, e_dmiss, trigger_idx, trigger_kind
        nonlocal first_miss_idx, inflight
        if dmiss[i]:
            accesses += 1
            e_dmiss += 1
            inflight += 1
            if trigger_idx is None:
                trigger_idx = i
                trigger_kind = TriggerKind.DMISS
            if first_miss_idx is None:
                first_miss_idx = i
            res_data[i] = epoch + 1
            res_valid[i] = epoch + 1
        else:
            res_data[i] = epoch
            res_valid[i] = ve if ve > epoch else epoch
        if members is not None:
            members.append(i)
        if serializing and dmiss[i]:
            # An atomic that leaves the chip holds younger
            # instructions at the drain until it completes.
            events.append(Inhibitor.SERIALIZE)
            return "stop-done"
        return "done"

    while fetch_pos < n or deferred:
        epoch += 1
        accesses = 0
        e_dmiss = 0
        e_imiss = 0
        e_pmiss = 0
        e_smiss = 0
        inflight = 0
        trigger_idx = None
        trigger_kind = None
        first_miss_idx = None
        members = [] if record_sets else None

        blocked_memop = False
        blocked_staddr = False
        blocked_branch = False
        events = []
        new_deferred = []
        progress = False

        # ---- phase 1: deferred instructions, in program order --------------
        stop_scan = False
        fetch_stop = None  # None / "hard" / "soft" ("soft" allows buffering)
        for di in range(len(deferred)):
            i = deferred[di]
            # Inline ALU fast path (mirrors the ALU branch of execute()):
            # dependence chains keep plain ALU ops in the deferred set
            # for many epochs, so this is the hot case of the scan.
            if ops[i] == ALU:
                de = 0
                ve = 0
                p = prod1[i]
                if p >= 0:
                    de = res_data[p]
                    ve = res_valid[p]
                p = prod2[i]
                if p >= 0:
                    d = res_data[p]
                    if d > de:
                        de = d
                    v = res_valid[p]
                    if v > ve:
                        ve = v
                if de <= epoch:
                    progress = True
                    res_data[i] = epoch
                    res_valid[i] = ve if ve > epoch else epoch
                    if members is not None:
                        members.append(i)
                else:
                    new_deferred.append(i)
                continue
            status = execute(i)
            if status == "defer":
                new_deferred.append(i)
            elif status == "stop-defer":
                new_deferred.append(i)
                stop_scan = True
            elif status == "stop-done":
                stop_scan = True
            if stop_scan:
                new_deferred.extend(deferred[di + 1 :])
                # A dispatch-side stop (serializing drain) lets fetch run
                # on into the fetch buffer exactly as when the same stop
                # is reached from the fetch stream in phase 2; only a
                # mispredicted-branch stop freezes fetch itself.
                last_event = events[-1] if events else None
                if status == "stop-done" or last_event is Inhibitor.SERIALIZE:
                    fetch_stop = "soft"
                break

        # ---- phase 2a: bulk-skip on-chip stretches in a clean state --------
        # While nothing is deferred, nothing is in flight and no event
        # has been recorded, every instruction up to the next
        # interesting position executes immediately (its producers all
        # completed in earlier epochs) and the window constraints
        # cannot bind.  Skip those stretches with slice assignment and
        # interpret only the interesting instruction; cleanliness is
        # monotone within an epoch, so once the condition fails it
        # stays failed and the interpreter loop below takes over.
        if not stop_scan:
            while fetch_pos < n and not (
                new_deferred
                or events
                or inflight
                or e_smiss
                or trigger_idx is not None
                or first_miss_idx is not None
                or blocked_memop
                or blocked_staddr
                or blocked_branch
            ):
                while interesting_pos[ip_idx] < fetch_pos:
                    ip_idx += 1
                nxt = interesting_pos[ip_idx]
                if nxt > fetch_pos:
                    filler = [epoch] * (nxt - fetch_pos)
                    res_data[fetch_pos:nxt] = filler
                    res_valid[fetch_pos:nxt] = filler
                    if members is not None:
                        members.extend(range(fetch_pos, nxt))
                    progress = True
                    fetch_pos = nxt
                    if fetch_pos >= n:
                        break
                i = fetch_pos
                if imiss[i]:
                    break  # the interpreter loop below services it
                status = execute(i)
                fetch_pos += 1
                if status == "defer":
                    new_deferred.append(i)
                elif status == "stop-defer":
                    new_deferred.append(i)
                    last_event = events[-1] if events else None
                    fetch_stop = (
                        "soft" if last_event is Inhibitor.SERIALIZE else "hard"
                    )
                    break
                elif status == "stop-done":
                    fetch_stop = "soft"
                    break

        # ---- phase 2b: fetch, one instruction at a time --------------------
        # The common opcodes (ALU, BRANCH, LOAD) are executed inline to
        # avoid a function call per instruction; each inline block
        # mirrors the corresponding branch of execute() exactly, and
        # the equivalence suite holds them to the reference engine
        # bit for bit.  nd_len shadows len(new_deferred).
        if not stop_scan and fetch_stop is None:
            nd_len = len(new_deferred)
            while fetch_pos < n:
                # Window constraints bind whenever older work is
                # uncompleted (a deferral or an outstanding data miss).
                oldest = new_deferred[0] if nd_len else None
                if first_miss_idx is not None and (
                    oldest is None or first_miss_idx < oldest
                ):
                    oldest = first_miss_idx
                if oldest is not None and fetch_pos - oldest >= rob_size:
                    events.append(Inhibitor.MAXWIN)
                    fetch_stop = "soft"
                    break
                if nd_len >= iw_size:
                    events.append(Inhibitor.MAXWIN)
                    fetch_stop = "soft"
                    break

                i = fetch_pos
                if imiss[i]:
                    if inflight >= mshr_cap:
                        events.append(Inhibitor.MSHR_LIMIT)
                        fetch_stop = "hard"
                        break
                    accesses += 1
                    e_imiss += 1
                    inflight += 1
                    imiss[i] = False  # the line arrives; do not recount
                    if trigger_idx is None:
                        trigger_idx = i
                        trigger_kind = TriggerKind.IMISS
                        events.append(Inhibitor.IMISS_START)
                    else:
                        events.append(Inhibitor.IMISS_END)
                    new_deferred.append(i)
                    fetch_pos += 1
                    progress = True
                    fetch_stop = "hard"
                    break

                op = ops[i]

                if op == ALU:
                    de = 0
                    ve = 0
                    p = prod1[i]
                    if p >= 0:
                        de = res_data[p]
                        ve = res_valid[p]
                    p = prod2[i]
                    if p >= 0:
                        d = res_data[p]
                        if d > de:
                            de = d
                        v = res_valid[p]
                        if v > ve:
                            ve = v
                    fetch_pos += 1
                    if de <= epoch:
                        progress = True
                        res_data[i] = epoch
                        res_valid[i] = ve if ve > epoch else epoch
                        if members is not None:
                            members.append(i)
                    else:
                        new_deferred.append(i)
                        nd_len += 1
                    continue

                if op == BRANCH:
                    de = 0
                    ve = 0
                    p = prod1[i]
                    if p >= 0:
                        de = res_data[p]
                        ve = res_valid[p]
                    p = prod2[i]
                    if p >= 0:
                        d = res_data[p]
                        if d > de:
                            de = d
                        v = res_valid[p]
                        if v > ve:
                            ve = v
                    can_issue = de <= epoch and not (
                        branch_in_order and blocked_branch
                    )
                    if can_issue and mispred[i] and ve > epoch:
                        can_issue = False
                    fetch_pos += 1
                    if can_issue:
                        progress = True
                        if members is not None:
                            members.append(i)
                        continue
                    blocked_branch = True
                    new_deferred.append(i)
                    nd_len += 1
                    if mispred[i]:
                        if slow_bp_saves(i):
                            continue
                        events.append(Inhibitor.MISPRED_BR)
                        fetch_stop = "hard"
                        break
                    continue

                if op == LOAD:
                    de = 0
                    ve = 0
                    p = prod1[i]
                    if p >= 0:
                        de = res_data[p]
                        ve = res_valid[p]
                    p = prod2[i]
                    if p >= 0:
                        d = res_data[p]
                        if d > de:
                            de = d
                        v = res_valid[p]
                        if v > ve:
                            ve = v
                    p = memdep[i]
                    if p >= 0:
                        d = res_data[p]
                        if d > de:
                            de = d
                        v = res_valid[p]
                        if v > ve:
                            ve = v
                    fetch_pos += 1
                    if de > epoch:
                        blocked_memop = True
                        new_deferred.append(i)
                        nd_len += 1
                        continue
                    if load_in_order and blocked_memop:
                        if dmiss[i]:
                            events.append(Inhibitor.MISSING_LOAD)
                        new_deferred.append(i)
                        nd_len += 1
                        continue
                    if load_wait_staddr and blocked_staddr:
                        if dmiss[i]:
                            events.append(Inhibitor.DEP_STORE)
                        new_deferred.append(i)
                        nd_len += 1
                        continue
                    if dmiss[i]:
                        if inflight >= mshr_cap:
                            events.append(Inhibitor.MSHR_LIMIT)
                            blocked_memop = True
                            new_deferred.append(i)
                            nd_len += 1
                            continue
                        progress = True
                        accesses += 1
                        e_dmiss += 1
                        inflight += 1
                        if trigger_idx is None:
                            trigger_idx = i
                            trigger_kind = TriggerKind.DMISS
                        if first_miss_idx is None:
                            first_miss_idx = i
                        res_data[i] = epoch if vp_ok[i] else epoch + 1
                        res_valid[i] = epoch + 1
                    else:
                        progress = True
                        res_data[i] = epoch
                        res_valid[i] = ve if ve > epoch else epoch
                    if members is not None:
                        members.append(i)
                    continue

                status = execute(i)
                fetch_pos += 1
                if status == "defer":
                    new_deferred.append(i)
                    nd_len += 1
                elif status == "stop-defer":
                    new_deferred.append(i)
                    last_event = events[-1] if events else None
                    fetch_stop = (
                        "soft" if last_event is Inhibitor.SERIALIZE else "hard"
                    )
                    break
                elif status == "stop-done":
                    fetch_stop = "soft"
                    break

        # ---- phase 3: fetch-buffer run-on past a dispatch-side stall --------
        if fetch_stop == "soft":
            buffered = 0
            while fetch_pos < n and buffered < fetch_buffer:
                i = fetch_pos
                if imiss[i]:
                    if inflight >= mshr_cap:
                        break
                    accesses += 1
                    e_imiss += 1
                    inflight += 1
                    imiss[i] = False
                    events.append(Inhibitor.IMISS_END)
                    new_deferred.append(i)
                    fetch_pos += 1
                    progress = True
                    break
                new_deferred.append(i)
                fetch_pos += 1
                buffered += 1
                if mispred[i]:
                    # Fetch past an (unexecuted) mispredicted branch is
                    # on the wrong path: nothing beyond it may be
                    # buffered or counted.
                    break

        deferred = new_deferred

        store_accesses += e_smiss
        if e_smiss:
            store_epochs += 1

        if accesses == 0 and e_smiss:
            # A store-only epoch: off-chip store traffic with no useful
            # (MLP-countable) access.  Record it for store-MLP purposes
            # but not as an MLP epoch.
            continue
        if accesses == 0:
            if not progress:
                where = deferred[0] + start if deferred else fetch_pos + start
                raise InternalError(
                    f"MLPsim made no progress in an epoch at instruction {where}"
                )
            continue  # pure on-chip stretch: not an epoch

        epochs_recorded += 1
        total_accesses += accesses
        dmiss_accesses += e_dmiss
        imiss_accesses += e_imiss
        prefetch_accesses += e_pmiss

        inhibitor = events[0] if events else Inhibitor.END_OF_TRACE
        inhibitors.record(inhibitor)

        if record_sets:
            epoch_records.append(
                Epoch(
                    index=epochs_recorded - 1,
                    trigger=trigger_idx + start,
                    trigger_kind=trigger_kind,
                    accesses=accesses,
                    inhibitor=inhibitor,
                    members=[m + start for m in members],
                )
            )

    return MLPResult(
        workload=workload or annotated.trace.name,
        machine_label=machine.label,
        instructions=n,
        accesses=total_accesses,
        epochs=epochs_recorded,
        dmiss_accesses=dmiss_accesses,
        imiss_accesses=imiss_accesses,
        prefetch_accesses=prefetch_accesses,
        store_accesses=store_accesses,
        store_epochs=store_epochs,
        inhibitors=inhibitors,
        epoch_records=epoch_records,
    )
