/* MLPsim epoch-model kernel: the batched engine's compiled interpreter.
 *
 * This is a line-for-line translation of the Python engine's
 * `_simulate_ooo` scan (src/repro/core/mlpsim.py) over the columnar
 * plan of src/repro/core/columnar.py, run for MANY machine
 * configurations against ONE shared set of trace columns per call.
 * The equivalence suite holds every result bit-for-bit to the frozen
 * reference engine (mlpsim_reference.simulate_reference); any change
 * here must keep that property.
 *
 * Compiled on demand by repro.core.ckernel with the system C compiler;
 * when no compiler is available the pure-NumPy engine in
 * repro.core.batched takes over.  No libc beyond malloc/free/memcpy.
 *
 * Layout contract (see ColumnarPlan):
 *   - producer columns are region-relative int32 with sentinel n
 *     ("no producer"); result arrays have n+1 slots with slot n = 0,
 *     so availability reads never branch.
 *   - event columns are uint8 (0/1) with the machine's perfect-*
 *     switches already applied by the plan builder.
 *   - opcode values mirror repro.isa.opclass.OpClass and are verified
 *     against it at load time by ckernel.py.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define OP_ALU 0
#define OP_LOAD 1
#define OP_STORE 2
#define OP_BRANCH 3
#define OP_PREFETCH 4
#define OP_CAS 5
#define OP_LDSTUB 6
#define OP_MEMBAR 7
#define OP_NOP 8

/* Inhibitor indices: must match the order ckernel.py derives from
 * repro.core.termination.Inhibitor (verified at load time). */
#define INH_IMISS_START 0
#define INH_MAXWIN 1
#define INH_MISPRED_BR 2
#define INH_IMISS_END 3
#define INH_MISSING_LOAD 4
#define INH_DEP_STORE 5
#define INH_SERIALIZE 6
#define INH_RUNAHEAD_LIMIT 7
#define INH_MSHR_LIMIT 8
#define INH_STORE_BUFFER 9
#define INH_END_OF_TRACE 10
#define INH_COUNT 11

#define NOT_EXECUTED (1 << 30)

/* execute() statuses */
#define ST_DONE 0
#define ST_DEFER 1
#define ST_STOP_DONE 2
#define ST_STOP_DEFER 3

typedef struct {
    int64_t rob;
    int64_t iw;
    int64_t fetch_buffer;
    int64_t serializing;
    int64_t load_in_order;
    int64_t load_wait_staddr;
    int64_t branch_in_order;
    int64_t mshr_cap;
    int64_t sb_cap;
    int64_t slow_bp;
    int64_t slow_bp_threshold;
} KernelConfig;

typedef struct {
    int64_t epochs;
    int64_t accesses;
    int64_t dmiss_accesses;
    int64_t imiss_accesses;
    int64_t prefetch_accesses;
    int64_t store_accesses;
    int64_t store_epochs;
    int64_t inhibitors[INH_COUNT];
    int64_t error_index; /* -1 = ok; else the no-progress instruction */
} KernelResult;

/* Shared trace columns plus the per-config scratch buffers. */
typedef struct {
    int64_t n;
    const int8_t *ops;
    const int32_t *prod1;
    const int32_t *prod2;
    const int32_t *prod3;
    const int32_t *memdep;
    const uint8_t *dmiss;
    const uint8_t *mispred;
    const uint8_t *pmiss;
    const uint8_t *pfuseful;
    const uint8_t *vp_ok;
    const uint8_t *smiss;
    const uint8_t *scalar_mask; /* "interesting" positions: see plan */
    uint8_t *imiss; /* per-config copy: serviced lines are cleared */
    int32_t *res_data;  /* n+1 slots, slot n == 0 */
    int32_t *res_valid; /* n+1 slots, slot n == 0 */
    int32_t *deferred;
    int32_t *new_deferred;
} Trace;

/* Per-epoch scan state (the Python engine's nonlocal block). */
typedef struct {
    int32_t epoch;
    int64_t accesses;
    int64_t e_dmiss;
    int64_t e_imiss;
    int64_t e_pmiss;
    int64_t e_smiss;
    int64_t inflight;
    int64_t trigger_idx;    /* -1 = none */
    int64_t first_miss_idx; /* -1 = none */
    int blocked_memop;
    int blocked_staddr;
    int blocked_branch;
    int progress;
    int64_t ev_count;
    int ev_first;
    int ev_last;
    int64_t nd_len;
} Scan;

/* certify: requires inhibitor >= 0 && inhibitor <= INH_COUNT - 1 */
static inline void emit(Scan *s, int inhibitor)
{
    if (s->ev_count == 0)
        s->ev_first = inhibitor;
    s->ev_last = inhibitor;
    s->ev_count++;
}

/* certify: returns 0 .. 1 */
static inline int slow_bp_saves(const KernelConfig *c, int64_t i)
{
    if (!c->slow_bp)
        return 0;
    return (int64_t)((((uint64_t)i * 2654435761ULL) >> 7) % 1024)
        < c->slow_bp_threshold;
}

/* certify: requires i >= 0 && i <= n - 1 */
/* certify: requires ve >= 0 && ve <= (1 << 30) */
static inline int execute_atomic(const Trace *t, const KernelConfig *c,
                                 Scan *s, int64_t i, int32_t ve)
{
    if (t->dmiss[i]) {
        s->accesses++;
        s->e_dmiss++;
        s->inflight++;
        if (s->trigger_idx < 0)
            s->trigger_idx = i;
        if (s->first_miss_idx < 0)
            s->first_miss_idx = i;
        t->res_data[i] = s->epoch + 1;
        t->res_valid[i] = s->epoch + 1;
    } else {
        t->res_data[i] = s->epoch;
        t->res_valid[i] = ve > s->epoch ? ve : s->epoch;
    }
    if (c->serializing && t->dmiss[i]) {
        emit(s, INH_SERIALIZE);
        return ST_STOP_DONE;
    }
    return ST_DONE;
}

/* Mirror of the Python engine's execute(i), status for status. */
/* certify: requires i >= 0 && i <= n - 1 */
static int execute(const Trace *t, const KernelConfig *c, Scan *s, int64_t i)
{
    const int op = t->ops[i];
    const int32_t epoch = s->epoch;
    int32_t de, ve, d, v;

    if (op == OP_ALU) {
        de = t->res_data[t->prod1[i]];
        ve = t->res_valid[t->prod1[i]];
        d = t->res_data[t->prod2[i]];
        if (d > de)
            de = d;
        v = t->res_valid[t->prod2[i]];
        if (v > ve)
            ve = v;
        if (de > epoch)
            return ST_DEFER;
        s->progress = 1;
        t->res_data[i] = epoch;
        t->res_valid[i] = ve > epoch ? ve : epoch;
        return ST_DONE;
    }

    if (op == OP_BRANCH) {
        de = t->res_data[t->prod1[i]];
        ve = t->res_valid[t->prod1[i]];
        d = t->res_data[t->prod2[i]];
        if (d > de)
            de = d;
        v = t->res_valid[t->prod2[i]];
        if (v > ve)
            ve = v;
        int can_issue =
            de <= epoch && !(c->branch_in_order && s->blocked_branch);
        if (can_issue && t->mispred[i] && ve > epoch)
            can_issue = 0; /* predicted value not validated yet */
        if (can_issue) {
            s->progress = 1;
            return ST_DONE;
        }
        s->blocked_branch = 1;
        if (t->mispred[i]) {
            if (slow_bp_saves(c, i))
                return ST_DEFER;
            emit(s, INH_MISPRED_BR);
            return ST_STOP_DEFER;
        }
        return ST_DEFER;
    }

    if (op == OP_LOAD) {
        de = t->res_data[t->prod1[i]];
        ve = t->res_valid[t->prod1[i]];
        d = t->res_data[t->prod2[i]];
        if (d > de)
            de = d;
        v = t->res_valid[t->prod2[i]];
        if (v > ve)
            ve = v;
        d = t->res_data[t->memdep[i]];
        if (d > de)
            de = d;
        v = t->res_valid[t->memdep[i]];
        if (v > ve)
            ve = v;
        if (de > epoch) {
            s->blocked_memop = 1;
            return ST_DEFER;
        }
        if (c->load_in_order && s->blocked_memop) {
            if (t->dmiss[i])
                emit(s, INH_MISSING_LOAD);
            return ST_DEFER;
        }
        if (c->load_wait_staddr && s->blocked_staddr) {
            if (t->dmiss[i])
                emit(s, INH_DEP_STORE);
            return ST_DEFER;
        }
        if (t->dmiss[i] && s->inflight >= c->mshr_cap) {
            emit(s, INH_MSHR_LIMIT);
            s->blocked_memop = 1;
            return ST_DEFER;
        }
        s->progress = 1;
        if (t->dmiss[i]) {
            s->accesses++;
            s->e_dmiss++;
            s->inflight++;
            if (s->trigger_idx < 0)
                s->trigger_idx = i;
            if (s->first_miss_idx < 0)
                s->first_miss_idx = i;
            t->res_data[i] = t->vp_ok[i] ? epoch : epoch + 1;
            t->res_valid[i] = epoch + 1;
        } else {
            t->res_data[i] = epoch;
            t->res_valid[i] = ve > epoch ? ve : epoch;
        }
        return ST_DONE;
    }

    if (op == OP_STORE) {
        int32_t ade = t->res_data[t->prod1[i]];
        int32_t ave = t->res_valid[t->prod1[i]];
        d = t->res_data[t->prod2[i]];
        if (d > ade)
            ade = d;
        v = t->res_valid[t->prod2[i]];
        if (v > ave)
            ave = v;
        de = ade;
        ve = ave;
        d = t->res_data[t->prod3[i]];
        if (d > de)
            de = d;
        v = t->res_valid[t->prod3[i]];
        if (v > ve)
            ve = v;
        if (de > epoch) {
            s->blocked_memop = 1;
            if (ade > epoch)
                s->blocked_staddr = 1;
            return ST_DEFER;
        }
        if (t->smiss[i]) {
            if (s->e_smiss >= c->sb_cap) {
                emit(s, INH_STORE_BUFFER);
                s->blocked_memop = 1;
                return ST_DEFER;
            }
            if (s->inflight >= c->mshr_cap) {
                emit(s, INH_MSHR_LIMIT);
                s->blocked_memop = 1;
                return ST_DEFER;
            }
            s->e_smiss++;
            s->inflight++;
        }
        s->progress = 1;
        t->res_data[i] = epoch;
        t->res_valid[i] = ve > epoch ? ve : epoch;
        return ST_DONE;
    }

    if (op == OP_PREFETCH) {
        de = t->res_data[t->prod1[i]];
        d = t->res_data[t->prod2[i]];
        if (d > de)
            de = d;
        if (de > epoch)
            return ST_DEFER;
        if (t->pmiss[i] && s->inflight >= c->mshr_cap) {
            emit(s, INH_MSHR_LIMIT);
            return ST_DEFER;
        }
        s->progress = 1;
        if (t->pmiss[i])
            s->inflight++;
        if (t->pmiss[i] && t->pfuseful[i]) {
            s->accesses++;
            s->e_pmiss++;
            if (s->trigger_idx < 0)
                s->trigger_idx = i;
        }
        return ST_DONE;
    }

    if (op == OP_NOP) {
        s->progress = 1;
        return ST_DONE;
    }

    /* Serializing instructions: CAS / LDSTUB / MEMBAR. */
    de = t->res_data[t->prod1[i]];
    ve = t->res_valid[t->prod1[i]];
    d = t->res_data[t->prod2[i]];
    if (d > de)
        de = d;
    v = t->res_valid[t->prod2[i]];
    if (v > ve)
        ve = v;
    d = t->res_data[t->prod3[i]];
    if (d > de)
        de = d;
    v = t->res_valid[t->prod3[i]];
    if (v > ve)
        ve = v;
    if (op != OP_MEMBAR) {
        d = t->res_data[t->memdep[i]];
        if (d > de)
            de = d;
        v = t->res_valid[t->memdep[i]];
        if (v > ve)
            ve = v;
    }

    if (c->serializing) {
        int outstanding = s->nd_len > 0 || s->trigger_idx >= 0;
        if (outstanding || de > epoch) {
            emit(s, INH_SERIALIZE);
            if (op == OP_MEMBAR) {
                /* The barrier commits with the drain at epoch end. */
                s->progress = 1;
                t->res_data[i] = epoch + 1;
                t->res_valid[i] = epoch + 1;
                return ST_STOP_DONE;
            }
            s->blocked_memop = 1;
            return ST_STOP_DEFER;
        }
        s->progress = 1;
        if (op == OP_MEMBAR) {
            t->res_data[i] = epoch;
            t->res_valid[i] = epoch;
            return ST_DONE;
        }
        return execute_atomic(t, c, s, i, ve);
    }

    /* Non-serializing policy (config E): atomics behave like an
     * ordinary load+store pair, barriers like NOPs. */
    if (op == OP_MEMBAR) {
        s->progress = 1;
        t->res_data[i] = epoch;
        t->res_valid[i] = epoch;
        return ST_DONE;
    }
    if (de > epoch) {
        s->blocked_memop = 1;
        return ST_DEFER;
    }
    s->progress = 1;
    return execute_atomic(t, c, s, i, ve);
}

#define FS_NONE 0
#define FS_HARD 1
#define FS_SOFT 2

/* certify: buffer imiss_src length n content 0 .. 1 */
static void simulate_one(Trace *t, const KernelConfig *c, KernelResult *r,
                         const uint8_t *imiss_src)
{
    const int64_t n = t->n;
    int64_t fetch_pos = 0;
    int64_t deferred_len = 0;
    int32_t epoch = 0;
    int64_t i, di;
    Scan s;

    memcpy(t->imiss, imiss_src, (size_t)n);
    for (i = 0; i <= n; i++) {
        t->res_data[i] = NOT_EXECUTED;
        t->res_valid[i] = NOT_EXECUTED;
    }
    t->res_data[n] = 0; /* the gather sentinel: "always available" */
    t->res_valid[n] = 0;

    memset(r, 0, sizeof(*r));
    r->error_index = -1;

    while (fetch_pos < n || deferred_len) {
        /* certify: assume epoch <= (1 << 28) - 2 -- every epoch either
         * makes progress (retiring or fetching at least one of the n
         * instructions) or returns through the no-progress error path,
         * so the count stays under ~3n and n <= 1 << 26 */
        epoch++;
        s.epoch = epoch;
        s.accesses = 0;
        s.e_dmiss = 0;
        s.e_imiss = 0;
        s.e_pmiss = 0;
        s.e_smiss = 0;
        s.inflight = 0;
        s.trigger_idx = -1;
        s.first_miss_idx = -1;
        s.blocked_memop = 0;
        s.blocked_staddr = 0;
        s.blocked_branch = 0;
        s.progress = 0;
        s.ev_count = 0;
        s.ev_first = -1;
        s.ev_last = -1;
        s.nd_len = 0;

        int stop_scan = 0;
        int fetch_stop = FS_NONE;
        int32_t *nd = t->new_deferred;

        /* ---- phase 1: deferred instructions, in program order ---- */
        for (di = 0; di < deferred_len; di++) {
            i = t->deferred[di];
            int status = execute(t, c, &s, i);
            if (status == ST_DEFER) {
                nd[s.nd_len++] = (int32_t)i;
            } else if (status == ST_STOP_DEFER) {
                nd[s.nd_len++] = (int32_t)i;
                stop_scan = 1;
            } else if (status == ST_STOP_DONE) {
                stop_scan = 1;
            }
            if (stop_scan) {
                for (di++; di < deferred_len; di++)
                    nd[s.nd_len++] = t->deferred[di];
                /* A dispatch-side stop (serializing drain) lets fetch
                 * run on into the fetch buffer, exactly as the same
                 * stop reached from the fetch stream in phase 2; only
                 * a mispredicted-branch stop freezes fetch itself. */
                if (status == ST_STOP_DONE || s.ev_last == INH_SERIALIZE)
                    fetch_stop = FS_SOFT;
                break;
            }
        }

        /* ---- phase 2a: bulk-skip on-chip stretches in a clean state.
         * While nothing is deferred, nothing is in flight and no event
         * has been recorded, every instruction up to the next
         * interesting position (scalar_mask) executes immediately and
         * the window constraints cannot bind; cleanliness is monotone
         * within an epoch.  Mirrors the Python engine's 2a. ---- */
        if (!stop_scan && fetch_stop == FS_NONE) {
            while (fetch_pos < n
                   && !(s.nd_len || s.ev_count || s.inflight || s.e_smiss
                        || s.trigger_idx >= 0 || s.first_miss_idx >= 0
                        || s.blocked_memop || s.blocked_staddr
                        || s.blocked_branch)) {
                i = fetch_pos;
                if (!t->scalar_mask[i]) {
                    t->res_data[i] = epoch;
                    t->res_valid[i] = epoch;
                    s.progress = 1;
                    fetch_pos++;
                    continue;
                }
                if (t->imiss[i])
                    break; /* the interpreter loop below services it */
                int status = execute(t, c, &s, i);
                fetch_pos++;
                if (status == ST_DEFER) {
                    nd[s.nd_len++] = (int32_t)i;
                } else if (status == ST_STOP_DEFER) {
                    nd[s.nd_len++] = (int32_t)i;
                    fetch_stop =
                        s.ev_last == INH_SERIALIZE ? FS_SOFT : FS_HARD;
                    break;
                } else if (status == ST_STOP_DONE) {
                    fetch_stop = FS_SOFT;
                    break;
                }
            }
        }

        /* ---- phase 2: fetch, one instruction at a time ---- */
        if (!stop_scan && fetch_stop == FS_NONE) {
            while (fetch_pos < n) {
                /* Window constraints bind whenever older work is
                 * uncompleted (a deferral or an outstanding miss). */
                int64_t oldest = s.nd_len ? nd[0] : -1;
                if (s.first_miss_idx >= 0
                    && (oldest < 0 || s.first_miss_idx < oldest))
                    oldest = s.first_miss_idx;
                if (oldest >= 0 && fetch_pos - oldest >= c->rob) {
                    emit(&s, INH_MAXWIN);
                    fetch_stop = FS_SOFT;
                    break;
                }
                if (s.nd_len >= c->iw) {
                    emit(&s, INH_MAXWIN);
                    fetch_stop = FS_SOFT;
                    break;
                }

                i = fetch_pos;
                if (t->imiss[i]) {
                    if (s.inflight >= c->mshr_cap) {
                        emit(&s, INH_MSHR_LIMIT);
                        fetch_stop = FS_HARD;
                        break;
                    }
                    s.accesses++;
                    s.e_imiss++;
                    s.inflight++;
                    t->imiss[i] = 0; /* the line arrives; don't recount */
                    if (s.trigger_idx < 0) {
                        s.trigger_idx = i;
                        emit(&s, INH_IMISS_START);
                    } else {
                        emit(&s, INH_IMISS_END);
                    }
                    nd[s.nd_len++] = (int32_t)i;
                    fetch_pos++;
                    s.progress = 1;
                    fetch_stop = FS_HARD;
                    break;
                }

                int status = execute(t, c, &s, i);
                fetch_pos++;
                if (status == ST_DEFER) {
                    nd[s.nd_len++] = (int32_t)i;
                } else if (status == ST_STOP_DEFER) {
                    nd[s.nd_len++] = (int32_t)i;
                    fetch_stop =
                        s.ev_last == INH_SERIALIZE ? FS_SOFT : FS_HARD;
                    break;
                } else if (status == ST_STOP_DONE) {
                    fetch_stop = FS_SOFT;
                    break;
                }
            }
        }

        /* ---- phase 3: fetch-buffer run-on past a dispatch stall ---- */
        if (fetch_stop == FS_SOFT) {
            int64_t buffered = 0;
            while (fetch_pos < n && buffered < c->fetch_buffer) {
                i = fetch_pos;
                if (t->imiss[i]) {
                    if (s.inflight >= c->mshr_cap)
                        break;
                    s.accesses++;
                    s.e_imiss++;
                    s.inflight++;
                    t->imiss[i] = 0;
                    emit(&s, INH_IMISS_END);
                    nd[s.nd_len++] = (int32_t)i;
                    fetch_pos++;
                    s.progress = 1;
                    break;
                }
                nd[s.nd_len++] = (int32_t)i;
                fetch_pos++;
                buffered++;
                if (t->mispred[i]) {
                    /* Fetch past an (unexecuted) mispredicted branch
                     * is on the wrong path: nothing beyond it may be
                     * buffered or counted. */
                    break;
                }
            }
        }

        /* swap deferred <-> new_deferred */
        {
            int32_t *tmp = t->deferred;
            t->deferred = t->new_deferred;
            t->new_deferred = tmp;
            deferred_len = s.nd_len;
        }

        r->store_accesses += s.e_smiss;
        if (s.e_smiss)
            r->store_epochs++;

        if (s.accesses == 0 && s.e_smiss)
            continue; /* store-only epoch: store MLP, not an MLP epoch */
        if (s.accesses == 0) {
            if (!s.progress) {
                r->error_index =
                    deferred_len ? t->deferred[0] : fetch_pos;
                return;
            }
            continue; /* pure on-chip stretch: not an epoch */
        }

        r->epochs++;
        r->accesses += s.accesses;
        r->dmiss_accesses += s.e_dmiss;
        r->imiss_accesses += s.e_imiss;
        r->prefetch_accesses += s.e_pmiss;
        /* reprolint: disable=kernel-bounds -- emit() sets ev_first in [0, INH_COUNT) whenever ev_count > 0; the interval domain cannot couple the two fields */
        r->inhibitors[s.ev_count ? s.ev_first
                                 : INH_END_OF_TRACE]++;
    }
}

/* Entry point: simulate every config against the shared columns.
 * Returns 0 on success, -1 on allocation failure.  Per-config
 * no-progress errors are reported in results[k].error_index. */
int mlpsim_batch(int64_t n,
                 const int8_t *ops,
                 const int32_t *prod1, const int32_t *prod2,
                 const int32_t *prod3, const int32_t *memdep,
                 const uint8_t *dmiss, const uint8_t *imiss,
                 const uint8_t *mispred, const uint8_t *pmiss,
                 const uint8_t *pfuseful, const uint8_t *vp_ok,
                 const uint8_t *smiss, const uint8_t *scalar_mask,
                 const KernelConfig *configs, int64_t nconfigs,
                 KernelResult *results)
{
    Trace t;
    int64_t k;

    t.n = n;
    t.ops = ops;
    t.prod1 = prod1;
    t.prod2 = prod2;
    t.prod3 = prod3;
    t.memdep = memdep;
    t.dmiss = dmiss;
    t.mispred = mispred;
    t.pmiss = pmiss;
    t.pfuseful = pfuseful;
    t.vp_ok = vp_ok;
    t.smiss = smiss;
    t.scalar_mask = scalar_mask;

    t.imiss = (uint8_t *)malloc((size_t)n ? (size_t)n : 1);
    t.res_data = (int32_t *)malloc(sizeof(int32_t) * (size_t)(n + 1));
    t.res_valid = (int32_t *)malloc(sizeof(int32_t) * (size_t)(n + 1));
    t.deferred = (int32_t *)malloc(sizeof(int32_t) * (size_t)(n + 1));
    t.new_deferred = (int32_t *)malloc(sizeof(int32_t) * (size_t)(n + 1));
    if (!t.imiss || !t.res_data || !t.res_valid || !t.deferred
        || !t.new_deferred) {
        free(t.imiss);
        free(t.res_data);
        free(t.res_valid);
        free(t.deferred);
        free(t.new_deferred);
        return -1;
    }

    for (k = 0; k < nconfigs; k++)
        simulate_one(&t, &configs[k], &results[k], imiss);

    free(t.imiss);
    free(t.res_data);
    free(t.res_valid);
    free(t.deferred);
    free(t.new_deferred);
    return 0;
}
