"""Multithreaded MLP (the paper's Section 7 future work).

The paper's closing section names "studying MLP for multithreaded
processors" as future work.  This module implements the natural epoch-
model extension: each hardware thread is an alternating sequence of
on-chip compute phases and memory epochs (from a per-thread MLPsim run),
and the threads share one core.

Model
-----
* A thread's behaviour is summarised as a list of
  ``(compute_instructions, accesses)`` pairs — the on-chip work leading
  up to each epoch trigger, and the off-chip accesses the epoch
  overlaps — extracted from an MLPsim run with epoch records.
* Compute phases share the core's issue bandwidth: with *k* threads
  simultaneously computing, each proceeds at ``ipc / k`` (a round-robin
  SMT approximation).  Memory epochs cost one full off-chip latency and
  overlap freely across threads — stalled threads consume no pipeline
  resources, which is exactly why multithreading is an MLP lever.
* The simulation is event-driven over phase boundaries; aggregate
  MLP(t) integrates the total outstanding accesses across threads, as
  in Section 2.1 but for the whole core.

Outputs: aggregate core MLP, per-thread completion times, and the
memory-overlap speedup versus running the threads back to back.
"""

import dataclasses

from repro.core.config import MachineConfig
from repro.core.mlpsim import simulate
from repro.robustness.errors import SimulationError


@dataclasses.dataclass(frozen=True)
class ThreadProfile:
    """One thread's alternating compute/epoch behaviour."""

    name: str
    phases: tuple  # ((compute_instructions, accesses), ...)
    tail_instructions: int = 0  # compute after the last epoch

    @property
    def total_accesses(self):
        return sum(accesses for _, accesses in self.phases)

    @property
    def total_instructions(self):
        return (
            sum(insts for insts, _ in self.phases) + self.tail_instructions
        )


def profile_from_result(result, region_start=None, workload=None):
    """Summarise an MLPsim run (with epoch records) as a ThreadProfile.

    The compute work charged to each epoch is the program-order distance
    from the previous epoch's trigger — the on-chip instructions the
    thread retires between misses.
    """
    if result.epoch_records is None:
        raise SimulationError(
            "profile_from_result needs epoch records; run MLPsim with"
            " record_sets=True"
        )
    if region_start is None:
        region_start = (
            result.epoch_records[0].trigger if result.epoch_records else 0
        )
    phases = []
    previous = region_start
    for epoch in result.epoch_records:
        compute = max(0, epoch.trigger - previous)
        phases.append((compute, epoch.accesses))
        previous = epoch.trigger
    tail = max(0, result.instructions - (previous - region_start))
    return ThreadProfile(
        name=workload or result.workload,
        phases=tuple(phases),
        tail_instructions=tail,
    )


def profile_workload(annotated, machine=None, workload=None):
    """Run MLPsim over *annotated* and profile it for SMT composition."""
    machine = machine or MachineConfig()
    result = simulate(annotated, machine, record_sets=True)
    start, _ = annotated.measured_region()
    return profile_from_result(result, region_start=start, workload=workload)


@dataclasses.dataclass
class SMTResult:
    """Outcome of one multithreaded composition."""

    threads: int
    cycles: float
    accesses: int
    nonzero_cycles: float
    outstanding_integral: float
    thread_finish: dict  # name -> cycle
    serial_cycles: float  # the same threads run back to back

    @property
    def mlp(self):
        """Aggregate core MLP(t) averaged over non-zero cycles."""
        if not self.nonzero_cycles:
            return 0.0
        return self.outstanding_integral / self.nonzero_cycles

    @property
    def speedup_vs_serial(self):
        """Throughput gain over running the threads consecutively."""
        if not self.cycles:
            return 0.0
        return self.serial_cycles / self.cycles - 1.0

    def summary(self):
        """One-line MLP/throughput rendering."""
        return (
            f"SMT x{self.threads}: MLP={self.mlp:5.3f}"
            f"  {self.accesses} accesses in {self.cycles:.0f} cycles"
            f"  ({self.speedup_vs_serial:+.0%} vs back-to-back)"
        )


def _serial_cycles(profiles, ipc, latency):
    total = 0.0
    for profile in profiles:
        for compute, _ in profile.phases:
            total += compute / ipc + latency
        total += profile.tail_instructions / ipc
    return total


def simulate_smt(profiles, ipc=2.0, latency=1000):
    """Compose *profiles* onto one SMT core; return an :class:`SMTResult`.

    Parameters
    ----------
    profiles:
        Per-thread :class:`ThreadProfile` objects.
    ipc:
        The core's on-chip IPC when a single thread computes; *k*
        computing threads each get ``ipc / k``.
    latency:
        Off-chip access latency in cycles (every epoch costs one).
    """
    if not profiles:
        raise SimulationError("simulate_smt needs at least one thread")
    if ipc <= 0 or latency <= 0:
        raise SimulationError("ipc and latency must be positive")

    # Thread state: remaining phase list, instructions left in the
    # current compute phase, or the cycle its epoch completes.
    COMPUTING, STALLED, DONE = 0, 1, 2
    state = []
    for profile in profiles:
        phases = list(profile.phases) + [(profile.tail_instructions, 0)]
        compute, accesses = phases[0]
        state.append(
            {
                "profile": profile,
                "phases": phases,
                "index": 0,
                "mode": COMPUTING,
                "left": float(compute),
                "wake": 0.0,
            }
        )

    now = 0.0
    outstanding = 0
    integral = 0.0
    nonzero = 0.0
    finish = {}
    EPS = 1e-9

    while True:
        computing = [t for t in state if t["mode"] == COMPUTING]
        stalled = [t for t in state if t["mode"] == STALLED]
        if not computing and not stalled:
            break

        # Next event: the earliest epoch completion, or the earliest
        # compute-phase completion at the shared rate.
        candidates = []
        if stalled:
            candidates.append(min(t["wake"] for t in stalled))
        if computing:
            rate = ipc / len(computing)
            candidates.append(now + min(t["left"] for t in computing) / rate)
        next_time = max(now, min(candidates))
        span = next_time - now

        if span > 0:
            if outstanding > 0:
                integral += span * outstanding
                nonzero += span
            if computing:
                progressed = span * ipc / len(computing)
                for t in computing:
                    t["left"] -= progressed
            now = next_time

        # Transition threads at their boundaries; loop until stable so
        # zero-length compute phases (back-to-back epochs) cascade.
        changed = True
        while changed:
            changed = False
            for t in state:
                if t["mode"] == STALLED and t["wake"] <= now + EPS:
                    outstanding -= t["phases"][t["index"]][1]
                    t["index"] += 1
                    if t["index"] < len(t["phases"]):
                        t["mode"] = COMPUTING
                        t["left"] = float(t["phases"][t["index"]][0])
                    else:
                        t["mode"] = DONE
                        finish[t["profile"].name] = now
                    changed = True
                elif t["mode"] == COMPUTING and t["left"] <= EPS:
                    accesses = t["phases"][t["index"]][1]
                    if accesses > 0:
                        t["mode"] = STALLED
                        t["wake"] = now + latency
                        outstanding += accesses
                    else:
                        # The zero-access tail phase: thread finished.
                        t["mode"] = DONE
                        finish[t["profile"].name] = now
                    changed = True

    return SMTResult(
        threads=len(profiles),
        cycles=now,
        accesses=sum(p.total_accesses for p in profiles),
        nonzero_cycles=nonzero,
        outstanding_integral=integral,
        thread_finish=finish,
        serial_cycles=_serial_cycles(profiles, ipc, latency),
    )
