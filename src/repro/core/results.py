"""Result record produced by every MLP simulation."""

import dataclasses
import typing

from repro.core.termination import InhibitorCounts


@dataclasses.dataclass
class MLPResult:
    """Outcome of one MLPsim run.

    ``mlp`` is the paper's average MLP: useful off-chip accesses divided
    by the number of epochs (an epoch exists only around at least one
    outstanding access, so this equals averaging MLP(t) over non-zero
    cycles under the epoch model's equal-time-per-epoch assumption).
    """

    workload: str
    machine_label: str
    instructions: int
    accesses: int
    epochs: int
    dmiss_accesses: int
    imiss_accesses: int
    prefetch_accesses: int
    inhibitors: InhibitorCounts
    epoch_records: typing.Optional[list] = None
    store_accesses: int = 0
    store_epochs: int = 0

    @property
    def mlp(self):
        if not self.epochs:
            return 0.0
        return self.accesses / self.epochs

    @property
    def store_mlp(self):
        """Average overlapped off-chip *store* traffic per store epoch.

        The paper's Section 7 names "store MLP for applications where a
        finite store buffer limits performance" as future work; this is
        that metric: off-chip stores divided by the number of epochs
        that issued at least one (0.0 when stores never left the chip
        or the machine did not model them).
        """
        if not self.store_epochs:
            return 0.0
        return self.store_accesses / self.store_epochs

    @property
    def miss_rate_per_100(self):
        """Useful off-chip accesses per 100 simulated instructions."""
        if not self.instructions:
            return 0.0
        return 100.0 * self.accesses / self.instructions

    def summary(self):
        """One-line human-readable summary."""
        return (
            f"{self.workload:<12} {self.machine_label:<16}"
            f" MLP={self.mlp:5.3f}  ({self.accesses} accesses /"
            f" {self.epochs} epochs, {self.instructions} insts)"
        )

    def inhibitor_breakdown(self):
        """Figure 5-style fractions, keyed by inhibitor."""
        return self.inhibitors.fractions()
