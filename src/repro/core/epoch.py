"""Epoch records.

An epoch (Section 3.1) is a slice of execution from the end of the
previous epoch through its first off-chip access (the *epoch trigger*)
to the cycle that access completes.  All overlappable off-chip accesses
inside it issue and complete together; the *epoch set* is the set of
dynamic instructions that execute in it.
"""

import dataclasses
import typing

from repro.core.termination import Inhibitor
from repro.robustness.errors import SimulationError


class TriggerKind:
    """What kind of off-chip access triggered the epoch."""

    DMISS = "dmiss"
    IMISS = "imiss"
    PMISS = "pmiss"


@dataclasses.dataclass
class Epoch:
    """One epoch of execution.

    ``accesses`` counts the useful off-chip accesses that issued in the
    epoch; MLP is ``sum(accesses) / len(epochs)``.  ``members`` (the
    epoch set) is recorded only when the simulator is asked to, because
    it is large.
    """

    index: int
    trigger: int
    trigger_kind: str
    accesses: int
    inhibitor: Inhibitor
    members: typing.Optional[list] = None

    def __post_init__(self):
        if self.accesses < 1:
            raise SimulationError("an epoch contains at least one off-chip access")

    def __repr__(self):
        body = (
            f"Epoch(#{self.index}, trigger=i{self.trigger}"
            f" ({self.trigger_kind}), accesses={self.accesses},"
            f" inhibitor={self.inhibitor.value})"
        )
        if self.members is not None:
            body = body[:-1] + f", members={self.members})"
        return body


def epoch_sets(epochs):
    """Return the epoch sets as a list of member lists.

    Only valid when the simulator recorded members.
    """
    sets = []
    for epoch in epochs:
        if epoch.members is None:
            raise SimulationError(
                "epoch sets were not recorded; run the simulator with"
                " record_sets=True"
            )
        sets.append(list(epoch.members))
    return sets
