"""Machine configuration: issue constraints and window geometry.

:class:`IssueConfig` encodes Table 2 of the paper — the five
progressively more aggressive issue-constraint configurations A-E —
as three orthogonal policies:

=========  =============================================  ============  =================
Config     Load issue (w.r.t. other loads/stores)         Branch issue  Serializing insts
=========  =============================================  ============  =================
A          in-order                                       in-order      serializing
B          out-of-order, wait for earlier store addrs     in-order      serializing
C          out-of-order, speculate past earlier stores    in-order      serializing
D          out-of-order, speculate past earlier stores    out-of-order  serializing
E          out-of-order, speculate past earlier stores    out-of-order  non-serializing
=========  =============================================  ============  =================

:class:`MachineConfig` adds the structure sizes (fetch buffer, issue
window, reorder buffer — the three structures MLPsim models), runahead
execution, value prediction, and the perfect-frontend switches of the
limit study.
"""

import dataclasses
import enum

from repro.robustness.errors import ConfigError


class LoadPolicy(enum.Enum):
    """Load issue policy w.r.t. other loads and stores (Section 3.4.1)."""

    IN_ORDER = "in-order"
    WAIT_STORE_ADDR = "wait-store-addr"
    SPECULATIVE = "speculative"


class BranchPolicy(enum.Enum):
    """Branch issue policy w.r.t. other branches (Section 3.4.2)."""

    IN_ORDER = "in-order"
    OUT_OF_ORDER = "out-of-order"


class SerializePolicy(enum.Enum):
    """Whether CASA/LDSTUB/MEMBAR drain the pipeline (Section 3.2.2)."""

    SERIALIZING = "serializing"
    NON_SERIALIZING = "non-serializing"


@dataclasses.dataclass(frozen=True)
class IssueConfig:
    """One of the issue-constraint configurations of Table 2."""

    name: str
    load_policy: LoadPolicy
    branch_policy: BranchPolicy
    serialize_policy: SerializePolicy

    @classmethod
    def from_letter(cls, letter):
        """Return the Table 2 configuration named by *letter* (``"A"``-``"E"``)."""
        try:
            return _TABLE2[letter.upper()]
        except KeyError:
            raise ConfigError(
                f"unknown issue configuration {letter!r}; expected A-E",
                field="issue",
            ) from None

    @classmethod
    def all(cls):
        """Return configurations A through E, in order."""
        return tuple(_TABLE2.values())


_TABLE2 = {
    "A": IssueConfig(
        "A", LoadPolicy.IN_ORDER, BranchPolicy.IN_ORDER, SerializePolicy.SERIALIZING
    ),
    "B": IssueConfig(
        "B",
        LoadPolicy.WAIT_STORE_ADDR,
        BranchPolicy.IN_ORDER,
        SerializePolicy.SERIALIZING,
    ),
    "C": IssueConfig(
        "C",
        LoadPolicy.SPECULATIVE,
        BranchPolicy.IN_ORDER,
        SerializePolicy.SERIALIZING,
    ),
    "D": IssueConfig(
        "D",
        LoadPolicy.SPECULATIVE,
        BranchPolicy.OUT_OF_ORDER,
        SerializePolicy.SERIALIZING,
    ),
    "E": IssueConfig(
        "E",
        LoadPolicy.SPECULATIVE,
        BranchPolicy.OUT_OF_ORDER,
        SerializePolicy.NON_SERIALIZING,
    ),
}


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Full machine description consumed by MLPsim.

    The paper's default machine (Section 5.1) is ``MachineConfig()``:
    32-entry fetch buffer, 64-entry issue window, 64-entry ROB, issue
    configuration C.
    """

    issue: IssueConfig = _TABLE2["C"]
    issue_window: int = 64
    rob: int = 64
    fetch_buffer: int = 32
    runahead: bool = False
    max_runahead: int = 2048
    value_prediction: bool = False
    perfect_ifetch: bool = False
    perfect_branch: bool = False
    perfect_value: bool = False

    max_outstanding: int = None
    """MSHR file size: maximum off-chip accesses in flight per epoch
    (None = unbounded, the paper's implicit assumption)."""

    store_buffer: int = None
    """Store-buffer entries: maximum missing stores in flight per epoch
    (None = infinite, the paper's Section 3 assumption; finite values
    implement the "store MLP" future work of Section 7)."""

    slow_branch_predictor: bool = False
    """Enable the Section 3.2.4 extension: a slow second-level predictor
    consulted only for unresolvable mispredicted branches (its latency
    is hidden by the off-chip access it races)."""

    slow_bp_accuracy: float = 0.85
    """Accuracy of the slow unresolvable-branch predictor."""

    def __post_init__(self):
        if self.issue_window <= 0 or self.rob <= 0 or self.fetch_buffer < 0:
            raise ConfigError("structure sizes must be positive")
        if self.rob < self.issue_window:
            raise ConfigError(
                "the ROB cannot be smaller than the issue window"
                f" (rob={self.rob}, issue_window={self.issue_window})"
            )
        if self.max_runahead <= 0:
            raise ConfigError("max_runahead must be positive")
        if self.max_outstanding is not None and self.max_outstanding <= 0:
            raise ConfigError("max_outstanding must be positive or None")
        if self.store_buffer is not None and self.store_buffer < 0:
            raise ConfigError("store_buffer must be non-negative or None")
        if not 0.0 <= self.slow_bp_accuracy <= 1.0:
            raise ConfigError("slow_bp_accuracy must be a probability")

    @classmethod
    def named(cls, label, **overrides):
        """Build a machine from a paper-style label like ``"64C"``.

        The number is both the issue window and ROB size; the letter is
        the Table 2 issue configuration.  Keyword *overrides* adjust any
        other field (e.g. ``rob=256`` for the decoupled configurations of
        Figure 6).
        """
        if len(label) < 2:
            raise ConfigError(
                f"bad machine label {label!r}; expected <size><A-E>,"
                " e.g. 64C"
            )
        letter = label[-1]
        try:
            size = int(label[:-1])
        except ValueError:
            raise ConfigError(
                f"bad machine label {label!r}; the size part"
                f" {label[:-1]!r} is not an integer"
            ) from None
        fields = {
            "issue": IssueConfig.from_letter(letter),
            "issue_window": size,
            "rob": size,
        }
        fields.update(_checked_overrides(cls, overrides))
        return cls(**fields)

    @classmethod
    def runahead_machine(cls, max_runahead=2048, **overrides):
        """The paper's runahead machine (Section 5.4.1, Figure 8).

        Runahead behaves like a very large single-use window with the
        serializing constraint removed, so the underlying issue
        configuration barely matters; the paper pairs it with config D
        64-entry machines.
        """
        fields = {
            "issue": _TABLE2["D"],
            "runahead": True,
            "max_runahead": max_runahead,
        }
        fields.update(_checked_overrides(cls, overrides))
        return cls(**fields)

    @property
    def label(self):
        """Short paper-style label for reports."""
        base = f"{self.issue_window}{self.issue.name}"
        if self.rob != self.issue_window:
            base += f"/rob{self.rob}"
        if self.runahead:
            base = f"RAE({self.max_runahead})"
        extras = []
        if self.max_outstanding is not None:
            extras.append(f"mshr{self.max_outstanding}")
        if self.store_buffer is not None:
            extras.append(f"sb{self.store_buffer}")
        if self.slow_branch_predictor:
            extras.append(f"slowBP{self.slow_bp_accuracy:.0%}")
        if self.value_prediction:
            extras.append("VP")
        if self.perfect_ifetch:
            extras.append("perfI")
        if self.perfect_branch:
            extras.append("perfBP")
        if self.perfect_value:
            extras.append("perfVP")
        if extras:
            base += "." + ".".join(extras)
        return base


def _checked_overrides(cls, overrides):
    """Reject override keywords that name no :class:`MachineConfig` field.

    Without this, a typo like ``robb=256`` surfaces as a raw
    ``TypeError`` from the dataclass constructor; with it, the caller
    gets a :class:`ConfigError` naming the bad option and the valid
    ones.
    """
    valid = {field.name for field in dataclasses.fields(cls)}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise ConfigError(
            f"unknown machine option(s) {unknown}; valid options:"
            f" {sorted(valid - {'issue'})}",
            field=unknown[0],
        )
    return overrides
