"""Runahead execution under the epoch model (paper Sections 3.5 / 5.4.1).

When the missing-load epoch trigger reaches the head of the ROB, a
runahead machine checkpoints architectural state and keeps executing
speculatively: missing loads turn into prefetches, their dependents are
poisoned and skipped, stores do not update architectural state, and
serializing instructions impose no constraint (runahead is purely
speculative).  When the trigger's data returns the pipeline is flushed
and execution restarts after the trigger — with every line prefetched
during the runahead period now on chip.

Under the epoch model a runahead epoch therefore extends from its
trigger for up to ``max_runahead`` instructions and issues an off-chip
access for every reachable (non-poisoned) miss in that range.  The only
remaining window terminators are instruction-fetch misses and
mispredicted branches whose condition is poisoned — exactly the two
conditions the paper says runahead cannot remove.

Between epochs the machine executes architecturally with nothing
outstanding, so normal mode skips from off-chip event to off-chip
event.  Extension knobs: a finite MSHR file caps the accesses one
runahead period can launch, and the slow unresolvable-branch predictor
of Section 3.2.4 rescues a configurable fraction of poisoned
mispredicted branches.  (Finite store buffers are modeled only on the
conventional engine: runahead stores never leave the speculative
domain.)  A miss whose line was prefetched by an earlier runahead period
is *serviced* (its event flag is cleared) and does not miss again when
re-executed after the flush.
"""

from bisect import bisect_right

from repro.core.depgraph import depgraph_for
from repro.core.epoch import Epoch, TriggerKind
from repro.core.mlpsim import event_masks, resolve_region
from repro.core.results import MLPResult
from repro.core.termination import Inhibitor, InhibitorCounts
from repro.isa.opclass import OpClass


def simulate_runahead(annotated, machine, start=None, stop=None,
                      workload=None, record_sets=False):
    """Simulate a runahead machine; see :func:`repro.core.mlpsim.simulate`."""
    trace = annotated.trace
    start, stop = resolve_region(annotated, start, stop)
    n = stop - start

    dmiss, imiss, mispred, pmiss, pfuseful, vp_ok = event_masks(
        annotated, machine, start, stop
    )

    graph = depgraph_for(annotated, start, stop)
    prod1 = graph.prod1
    prod2 = graph.prod2
    prod3 = graph.prod3
    memdep = graph.memdep

    ops = trace.op[start:stop].tolist()

    ALU = int(OpClass.ALU)
    LOAD = int(OpClass.LOAD)
    STORE = int(OpClass.STORE)
    BRANCH = int(OpClass.BRANCH)
    PREFETCH = int(OpClass.PREFETCH)
    CAS = int(OpClass.CAS)
    LDSTUB = int(OpClass.LDSTUB)
    max_runahead = machine.max_runahead
    mshr_cap = machine.max_outstanding or (1 << 30)
    slow_bp = machine.slow_branch_predictor
    slow_bp_threshold = int(machine.slow_bp_accuracy * 1024)

    def slow_bp_saves(j):
        """Deterministic per-instance outcome of the slow unresolvable-
        branch predictor (the Section 3.2.4 extension)."""
        return slow_bp and ((j * 2654435761) >> 7) % 1024 < slow_bp_threshold

    # Positions of every potential off-chip event, for normal-mode skipping.
    # Event flags (dmiss/imiss/pmiss) are cleared as accesses are serviced.
    event_positions = [
        i
        for i in range(n)
        if dmiss[i] or imiss[i] or (pmiss[i] and pfuseful[i])
    ]

    pending_pf = []  # useful off-chip prefetches awaiting an epoch to join

    epochs_recorded = 0
    total_accesses = 0
    dmiss_accesses = 0
    imiss_accesses = 0
    prefetch_accesses = 0
    inhibitors = InhibitorCounts()
    epoch_records = [] if record_sets else None

    def record_epoch(trigger, kind, accesses, n_d, n_i, n_p, inhibitor,
                     members):
        nonlocal epochs_recorded, total_accesses
        nonlocal dmiss_accesses, imiss_accesses, prefetch_accesses
        epochs_recorded += 1
        total_accesses += accesses
        dmiss_accesses += n_d
        imiss_accesses += n_i
        prefetch_accesses += n_p
        inhibitors.record(inhibitor)
        if record_sets:
            epoch_records.append(
                Epoch(
                    index=epochs_recorded - 1,
                    trigger=trigger + start,
                    trigger_kind=kind,
                    accesses=accesses,
                    inhibitor=inhibitor,
                    members=[m + start for m in members]
                    if members is not None
                    else None,
                )
            )

    def flush_stale_prefetches(horizon):
        """Emit prefetch-only epochs for pending prefetches that are more
        than a runahead window older than *horizon*; return the rest."""
        fresh = []
        group = []
        for idx in pending_pf:
            if idx >= horizon - max_runahead:
                fresh.append(idx)
            elif group and idx - group[0] >= max_runahead:
                record_epoch(
                    group[0], TriggerKind.PMISS, len(group), 0, 0,
                    len(group), Inhibitor.RUNAHEAD_LIMIT, list(group),
                )
                group = [idx]
            else:
                group.append(idx)
        if group:
            record_epoch(
                group[0], TriggerKind.PMISS, len(group), 0, 0, len(group),
                Inhibitor.RUNAHEAD_LIMIT, list(group),
            )
        return fresh

    fetch_pos = 0
    while True:
        # ---- normal mode: skip to the next live off-chip event -----------
        ptr = bisect_right(event_positions, fetch_pos - 1)
        i = None
        while ptr < len(event_positions):
            candidate = event_positions[ptr]
            if (
                imiss[candidate]
                or dmiss[candidate]
                or (pmiss[candidate] and pfuseful[candidate])
            ):
                i = candidate
                break
            ptr += 1
        if i is None:
            break  # no further events: the tail is pure on-chip execution

        if imiss[i]:
            # Fetch is blocking: a missing instruction fetch cannot be
            # run ahead of.  It forms its own epoch (plus any prefetches
            # still in flight).
            imiss[i] = False
            pending = flush_stale_prefetches(i)
            pending_pf.clear()
            record_epoch(
                i, TriggerKind.IMISS, 1 + len(pending), 0, 1, len(pending),
                Inhibitor.IMISS_START, [i] + pending,
            )
            fetch_pos = i  # the instruction itself executes after the fetch
            continue

        if pmiss[i]:
            # A useful off-chip software prefetch does not stall; it joins
            # the next epoch if one begins within a runahead window.
            pmiss[i] = False
            pending_pf.append(i)
            fetch_pos = i + 1
            continue

        # ---- runahead epoch, triggered by the missing load at i ----------
        dmiss[i] = False
        pending = flush_stale_prefetches(i)
        pending_pf.clear()
        accesses = 1 + len(pending)
        n_d, n_i, n_p = 1, 0, len(pending)
        members = [i] + pending if record_sets else None
        inhibitor = None
        poisoned = set()
        # Value-predicted results are usable for dataflow but remain
        # unvalidated until the real data returns: a mispredicted branch
        # computed from them still cannot redirect fetch (this is why
        # perfect VP and perfect BP compose in Figure 10).
        unvalidated = set()
        dead_stores = set()  # skipped stores and stores of wrong data
        if vp_ok[i]:
            unvalidated.add(i)
        else:
            poisoned.add(i)

        j = i + 1
        limit = min(n, i + max_runahead)
        while j < limit:
            if imiss[j]:
                if accesses >= mshr_cap:
                    # No MSHR for the line fetch: runahead stalls here
                    # and the fetch miss waits for the next epoch.
                    inhibitor = Inhibitor.MSHR_LIMIT
                    break
                imiss[j] = False
                accesses += 1
                n_i += 1
                if members is not None:
                    members.append(j)
                inhibitor = Inhibitor.IMISS_END
                break

            op = ops[j]
            if op == ALU:
                p1, p2 = prod1[j], prod2[j]
                if (p1 >= i and p1 in poisoned) or (p2 >= i and p2 in poisoned):
                    poisoned.add(j)
            elif op == LOAD or op == CAS or op == LDSTUB:
                p1, p2 = prod1[j], prod2[j]
                addr_poisoned = (p1 >= i and p1 in poisoned) or (
                    p2 >= i and p2 in poisoned
                )
                if addr_poisoned:
                    poisoned.add(j)
                    if op != LOAD:
                        dead_stores.add(j)
                else:
                    m = memdep[j]
                    stale = m >= i and (m in dead_stores or m in poisoned)
                    if dmiss[j] and accesses < mshr_cap:
                        dmiss[j] = False
                        accesses += 1
                        n_d += 1
                        if members is not None:
                            members.append(j)
                        if vp_ok[j]:
                            unvalidated.add(j)
                        else:
                            poisoned.add(j)
                    elif dmiss[j]:
                        # MSHRs full: the miss cannot be prefetched; it
                        # stays live and triggers a later epoch.
                        poisoned.add(j)
                        if op != LOAD:
                            dead_stores.add(j)
                    elif stale:
                        poisoned.add(j)
                    if op != LOAD:
                        p3 = prod3[j]
                        if p3 >= i and p3 in poisoned:
                            dead_stores.add(j)
            elif op == STORE:
                p1, p2, p3 = prod1[j], prod2[j], prod3[j]
                if (
                    (p1 >= i and p1 in poisoned)
                    or (p2 >= i and p2 in poisoned)
                    or (p3 >= i and p3 in poisoned)
                ):
                    dead_stores.add(j)
            elif op == BRANCH:
                p1, p2 = prod1[j], prod2[j]
                unsettled = (
                    (p1 >= i and (p1 in poisoned or p1 in unvalidated))
                    or (p2 >= i and (p2 in poisoned or p2 in unvalidated))
                )
                if unsettled and mispred[j] and not slow_bp_saves(j):
                    inhibitor = Inhibitor.MISPRED_BR
                    break
            elif op == PREFETCH:
                p1 = prod1[j]
                if not (p1 >= i and p1 in poisoned):
                    if pmiss[j] and pfuseful[j] and accesses < mshr_cap:
                        pmiss[j] = False
                        accesses += 1
                        n_p += 1
                        if members is not None:
                            members.append(j)
            # MEMBAR: no constraint during runahead (purely speculative).
            j += 1

        if inhibitor is None:
            if j >= n:
                inhibitor = Inhibitor.END_OF_TRACE
            else:
                inhibitor = Inhibitor.RUNAHEAD_LIMIT

        record_epoch(
            i, TriggerKind.DMISS, accesses, n_d, n_i, n_p, inhibitor, members
        )
        fetch_pos = i + 1  # flush and restart after the trigger

    flush_stale_prefetches(n + 2 * max_runahead)

    return MLPResult(
        workload=workload or trace.name,
        machine_label=machine.label,
        instructions=n,
        accesses=total_accesses,
        epochs=epochs_recorded,
        dmiss_accesses=dmiss_accesses,
        imiss_accesses=imiss_accesses,
        prefetch_accesses=prefetch_accesses,
        inhibitors=inhibitors,
        epoch_records=epoch_records,
    )
