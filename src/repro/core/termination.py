"""Window termination conditions and epoch-inhibitor accounting.

Figure 5 of the paper charges every epoch to the condition that
prevented more MLP from being uncovered in it.  We reproduce the same
categories:

* ``IMISS_START`` — the epoch trigger was a missing instruction fetch
  (fetch is blocking, nothing can overlap);
* ``MAXWIN`` — the issue window or reorder buffer filled;
* ``MISPRED_BR`` — an unresolvable mispredicted branch (dependent on a
  missing load of the epoch) sent fetch down the wrong path;
* ``IMISS_END`` — a data access triggered the epoch but a missing
  instruction fetch stopped it;
* ``MISSING_LOAD`` — an unissued older load/store blocked a would-be
  off-chip load (only possible under issue configuration A);
* ``DEP_STORE`` — a store with an unresolved (miss-dependent) address
  blocked a would-be off-chip load (configurations A and B);
* ``SERIALIZE`` — a serializing instruction drained the pipeline;
* ``RUNAHEAD_LIMIT`` — the runahead machine hit its maximum runahead
  distance (the analogue of MAXWIN);
* ``MSHR_LIMIT`` — the MSHR file filled: no further off-chip access
  could issue this epoch (extension; folded into MAXWIN in the
  Figure 5 display);
* ``STORE_BUFFER`` — a missing store could not get a store-buffer entry
  (the Section 7 "store MLP" future work; also folded into MAXWIN);
* ``END_OF_TRACE`` — the trace ran out (bookkeeping, excluded from the
  paper-style breakdown).

When several conditions occur in one epoch the epoch is charged to the
*earliest in program order*, because that is the one that actually
capped this epoch's MLP.
"""

import enum


class Inhibitor(enum.Enum):
    """Why an epoch could not uncover more MLP."""

    IMISS_START = "imiss_start"
    MAXWIN = "maxwin"
    MISPRED_BR = "mispred_br"
    IMISS_END = "imiss_end"
    MISSING_LOAD = "missing_load"
    DEP_STORE = "dep_store"
    SERIALIZE = "serialize"
    RUNAHEAD_LIMIT = "runahead_limit"
    MSHR_LIMIT = "mshr_limit"
    STORE_BUFFER = "store_buffer"
    END_OF_TRACE = "end_of_trace"


#: Display order used by the Figure 5 reproduction.
FIGURE5_ORDER = (
    Inhibitor.IMISS_START,
    Inhibitor.MAXWIN,
    Inhibitor.MISPRED_BR,
    Inhibitor.IMISS_END,
    Inhibitor.MISSING_LOAD,
    Inhibitor.DEP_STORE,
    Inhibitor.SERIALIZE,
)


class InhibitorCounts:
    """Per-epoch inhibitor tally."""

    def __init__(self):
        self._counts = {inhibitor: 0 for inhibitor in Inhibitor}

    def record(self, inhibitor):
        """Charge one epoch to *inhibitor*."""
        self._counts[inhibitor] += 1

    def __getitem__(self, inhibitor):
        return self._counts[inhibitor]

    def total(self, include_end_of_trace=False):
        """Number of charged epochs (END_OF_TRACE excluded by default)."""
        total = sum(self._counts.values())
        if not include_end_of_trace:
            total -= self._counts[Inhibitor.END_OF_TRACE]
        return total

    def fractions(self):
        """Return the Figure 5 breakdown: {inhibitor: fraction of epochs}.

        ``END_OF_TRACE`` epochs are excluded, matching the paper's
        averaging over all (real) epochs.
        """
        total = self.total()
        if not total:
            return {inhibitor: 0.0 for inhibitor in FIGURE5_ORDER}
        counts = dict(self._counts)
        # Structure-limit variants fold into MAXWIN for the paper-style
        # display; as_dict() exposes the raw split.
        counts[Inhibitor.MAXWIN] += counts.pop(Inhibitor.RUNAHEAD_LIMIT)
        counts[Inhibitor.MAXWIN] += counts.pop(Inhibitor.MSHR_LIMIT)
        counts[Inhibitor.MAXWIN] += counts.pop(Inhibitor.STORE_BUFFER)
        return {
            inhibitor: counts[inhibitor] / total for inhibitor in FIGURE5_ORDER
        }

    def as_dict(self):
        """Raw per-inhibitor counts (no folding)."""
        return dict(self._counts)

    @classmethod
    def from_dict(cls, counts):
        """Rebuild a tally from a mapping keyed by inhibitor or value.

        Accepts both the :meth:`as_dict` form (:class:`Inhibitor` keys)
        and its JSON projection (``inhibitor.value`` string keys), so a
        journalled result restores to exactly the tally it came from.
        """
        tally = cls()
        for inhibitor in Inhibitor:
            count = counts.get(inhibitor, counts.get(inhibitor.value, 0))
            tally._counts[inhibitor] = int(count)
        return tally

    def __eq__(self, other):
        if not isinstance(other, InhibitorCounts):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self):
        charged = {
            inhibitor.value: count
            for inhibitor, count in self._counts.items()
            if count
        }
        return f"InhibitorCounts({charged})"
