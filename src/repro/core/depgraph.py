"""Static dependence graph over a trace region.

MLPsim needs, for every dynamic instruction, the *producer* of each of
its register sources (the most recent older writer of that register) and
its memory dependence (the most recent older store-like instruction to
the same address).  These are properties of the trace alone — they do
not depend on the machine configuration — so they are computed once per
trace region and shared by every simulation over it (parameter sweeps
re-run MLPsim dozens of times per trace).

Producer indices are region-relative; ``-1`` means "no producer inside
the region" (the value is architected state and therefore available from
epoch 0).
"""

from repro.isa.opclass import OpClass
from repro.isa.registers import NUM_REGS, REG_ZERO


class DepGraph:
    """Producer links for one trace region.

    Attributes
    ----------
    prod1, prod2:
        Producer index of ``src1``/``src2`` (address sources for memory
        operations), or -1.
    prod3:
        Producer index of the store-data source ``src3``, or -1.
    memdep:
        Index of the youngest older store-like instruction to the same
        address (loads and atomics only), or -1.
    """

    __slots__ = ("start", "stop", "prod1", "prod2", "prod3", "memdep")

    def __init__(self, start, stop, prod1, prod2, prod3, memdep):
        self.start = start
        self.stop = stop
        self.prod1 = prod1
        self.prod2 = prod2
        self.prod3 = prod3
        self.memdep = memdep

    def __len__(self):
        return self.stop - self.start


def build_depgraph(trace, start, stop):
    """Rename registers and memory over ``trace[start:stop)``."""
    ops = trace.op[start:stop].tolist()
    dsts = trace.dst[start:stop].tolist()
    src1s = trace.src1[start:stop].tolist()
    src2s = trace.src2[start:stop].tolist()
    src3s = trace.src3[start:stop].tolist()
    addrs = trace.addr[start:stop].tolist()
    n = stop - start

    STORE = int(OpClass.STORE)
    LOAD = int(OpClass.LOAD)
    CAS = int(OpClass.CAS)
    LDSTUB = int(OpClass.LDSTUB)

    prod1 = [-1] * n
    prod2 = [-1] * n
    prod3 = [-1] * n
    memdep = [-1] * n

    last_writer = [-1] * NUM_REGS
    last_store = {}  # address -> instruction index

    for i in range(n):
        s = src1s[i]
        if s > REG_ZERO:
            prod1[i] = last_writer[s]
        s = src2s[i]
        if s > REG_ZERO:
            prod2[i] = last_writer[s]
        s = src3s[i]
        if s > REG_ZERO:
            prod3[i] = last_writer[s]

        op = ops[i]
        if op == LOAD or op == CAS or op == LDSTUB:
            dep = last_store.get(addrs[i])
            if dep is not None:
                memdep[i] = dep
        if op == STORE or op == CAS or op == LDSTUB:
            last_store[addrs[i]] = i

        dst = dsts[i]
        if dst > REG_ZERO:
            last_writer[dst] = i

    return DepGraph(start, stop, prod1, prod2, prod3, memdep)


def depgraph_for(annotated, start, stop):
    """Return the (memoised) dependence graph for a region of *annotated*.

    The graph is cached on the annotated trace object because sweeps
    simulate the same region under many machine configurations.
    """
    cache = getattr(annotated, "_depgraph_cache", None)
    if cache is None:
        cache = {}
        annotated._depgraph_cache = cache
    key = (start, stop)
    graph = cache.get(key)
    if graph is None:
        graph = build_depgraph(annotated.trace, start, stop)
        cache[key] = graph
    return graph
