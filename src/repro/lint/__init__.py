"""reprolint: AST-based enforcement of the repository's invariants.

PR 1 and PR 2 established repo-wide conventions — every rejection in
``src/repro`` raises a :class:`~repro.robustness.errors.ReproError`
subclass, result files go through :mod:`repro.robustness.atomic`,
simulations are bit-reproducible, and ``repro.core.mlpsim_reference``
is a frozen oracle.  This package *proves* those invariants hold on
every commit instead of discovering breakage at the bottom of a sweep:
each invariant is a :class:`~repro.lint.framework.LintPass` that walks
the abstract syntax tree of the source tree and reports structured
:class:`~repro.lint.findings.Finding` records.

Usage::

    python -m repro lint                       # whole tree, text output
    python -m repro lint --format json         # machine-readable
    python -m repro lint --select determinism  # a subset of passes

A finding can be suppressed at the offending line with a trailing
``# reprolint: disable=<pass-id>`` comment (comma-separate several ids,
or use ``all``).  See ``docs/STATIC_ANALYSIS.md`` for the pass
catalogue and how to add a new pass.
"""

from repro.lint.findings import Finding, Severity
from repro.lint.framework import (
    LintPass,
    ModuleInfo,
    Project,
    registered_passes,
    run_lint,
)

__all__ = [
    "Finding",
    "Severity",
    "LintPass",
    "ModuleInfo",
    "Project",
    "registered_passes",
    "run_lint",
]
