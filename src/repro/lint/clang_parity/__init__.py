"""Cross-language ABI parity extraction for reprolint.

The batched engine duplicates one contract across two languages:
``_mlpsim_kernel.c`` hard-codes opcode/inhibitor/status ``#define``
tables, two ``typedef struct`` layouts and the ``mlpsim_batch``
prototype, while ``ckernel.py``/``columnar.py``/``termination.py``
mirror them as ctypes structures, ``argtypes`` wiring, enums and a
versioned payload schema.  Nothing at runtime checks most of it — a
reordered struct field reads garbage, silently.

This package recovers both sides so the ``kernel-abi``,
``kernel-constants`` and ``schema-version`` passes can diff them on
every lint run:

* :mod:`repro.lint.clang_parity.cextract` — a small regex +
  recursive-descent extractor over the C source (**no compiler
  dependency**): ``#define`` constant tables with evaluated integer
  values, ``typedef struct`` field lists with declared C types, and
  exported (non-``static``) function signatures.
* :mod:`repro.lint.clang_parity.pyextract` — AST-side extractors for
  the Python counterparts: ``ctypes.Structure`` ``_fields_`` layouts,
  ``argtypes``/``restype`` wiring, enum member values and definition
  order, module-level integer constants, and the ``PLAN_COLUMNS``
  payload schema with its fingerprint.
"""

from repro.lint.clang_parity.cextract import extract_c  # noqa: F401
