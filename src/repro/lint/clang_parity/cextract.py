"""Extract the ABI surface of a C source file without a compiler.

The kernel source is deliberately plain C89-with-stdint: object-like
macros, brace-initialised ``typedef struct`` blocks and free functions.
That restricted shape is what makes a dependency-free extractor honest:
a regex pass recovers the ``#define`` table, and a small
recursive-descent scan (token-free, driven by brace/paren matching)
recovers struct field lists and exported function signatures.  The
extractor is *strict about what it claims* — a ``#define`` whose value
it cannot evaluate is recorded with ``value=None`` rather than guessed,
and the parity passes treat "extractor matched nothing" as reportable,
so a drift in the C style fails loudly instead of silently passing
(the CI ``lint-parity`` smoke mutates a define to prove the wiring).

Line numbers are tracked through comment stripping (comments are
blanked, not removed), so findings can name the exact C line.
"""

import ast
import re

from repro.robustness.errors import InternalError

_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)((?:\s|\().*)?$")
_IDENT = r"[A-Za-z_]\w*"
_FUNC_HEAD_RE = re.compile(
    r"^(?P<quals>(?:%s[\s]+|\*+[\s]*)*?)(?P<name>%s)\s*\($"
    % (_IDENT, _IDENT)
)

#: Binary operators an integer ``#define`` expression may use; C and
#: Python agree on all of them for the non-negative operands the
#: kernel's defines stick to (``/`` maps to floor division).
_INT_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a // b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitXor: lambda a, b: a ^ b,
}
_INT_UNARYOPS = (ast.UAdd, ast.USub, ast.Invert)


class CDefine:
    """One object-like ``#define``: name, raw text, evaluated value."""

    __slots__ = ("name", "text", "value", "lineno")

    def __init__(self, name, text, value, lineno):
        self.name = name
        self.text = text
        self.value = value  # int, or None when not an integer constant
        self.lineno = lineno


class CField:
    """One struct member: declared type, name, optional array length."""

    __slots__ = ("name", "ctype", "array_len", "lineno")

    def __init__(self, name, ctype, array_len, lineno):
        self.name = name
        self.ctype = ctype          # normalised, e.g. "const int32_t *"
        self.array_len = array_len  # raw length text, or None
        self.lineno = lineno


class CStruct:
    """A ``typedef struct { ... } Name;`` with its fields in order."""

    __slots__ = ("name", "fields", "lineno")

    def __init__(self, name, fields, lineno):
        self.name = name
        self.fields = fields
        self.lineno = lineno


class CFunction:
    """An exported function definition: return type and parameters."""

    __slots__ = ("name", "return_type", "params", "lineno")

    def __init__(self, name, return_type, params, lineno):
        self.name = name
        self.return_type = return_type
        self.params = params  # list of (ctype, name)
        self.lineno = lineno


class CExtract:
    """The recovered ABI surface of one C translation unit."""

    def __init__(self, defines, structs, functions):
        self.defines = defines      # {name: CDefine}
        self.structs = structs      # {name: CStruct}
        self.functions = functions  # {name: CFunction}

    def define_value(self, name):
        """Evaluated value of define *name*, or ``None``."""
        define = self.defines.get(name)
        return define.value if define is not None else None


def _strip_comments(source):
    """Blank out ``/* */`` and ``//`` comments, preserving newlines."""
    out = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            end = n if end < 0 else end + 2
            out.append(re.sub(r"[^\n]", " ", source[i:end]))
            i = end
        elif ch == "/" and i + 1 < n and source[i + 1] == "/":
            end = source.find("\n", i)
            end = n if end < 0 else end
            out.append(" " * (end - i))
            i = end
        elif ch in "\"'":
            # String/char literals: skip verbatim so a "/*" inside one
            # does not start a comment.
            end = i + 1
            while end < n and source[end] != ch:
                end += 2 if source[end] == "\\" else 1
            end = min(end + 1, n)
            out.append(source[i:end])
            i = end
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _eval_int(text, env):
    """Evaluate an integer constant expression, or ``None``.

    C and Python agree on the syntax of the expressions the kernel
    uses — decimal/hex literals, parentheses, shifts, arithmetic and
    bitwise operators — so the text is parsed with :mod:`ast` and
    folded over a whitelist of node types.  Identifiers resolve
    through *env* (earlier defines); ``L``/``U`` literal suffixes are
    stripped first.  Anything else (casts, ``sizeof``, floats) yields
    ``None``.
    """
    text = re.sub(r"(?<=[0-9a-fA-FxX])[uUlL]+\b", "", text.strip())
    try:
        node = ast.parse(text, mode="eval").body
    except SyntaxError:
        return None

    def fold(node):
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.BinOp) and type(node.op) in _INT_BINOPS:
            left, right = fold(node.left), fold(node.right)
            if left is None or right is None:
                return None
            try:
                return _INT_BINOPS[type(node.op)](left, right)
            except (ValueError, ZeroDivisionError, OverflowError):
                return None
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, _INT_UNARYOPS
        ):
            operand = fold(node.operand)
            if operand is None:
                return None
            if isinstance(node.op, ast.USub):
                return -operand
            if isinstance(node.op, ast.Invert):
                return ~operand
            return operand
        return None

    return fold(node)


def _extract_defines(stripped):
    defines = {}
    env = {}
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        match = _DEFINE_RE.match(line)
        if not match:
            continue
        name, rest = match.group(1), (match.group(2) or "").strip()
        if rest.startswith("("):
            # A '(' directly after the name means a function-like
            # macro — but only without intervening space; the regex
            # keeps leading whitespace in `rest`, so check the raw gap.
            raw_after = line.split(name, 1)[1]
            if raw_after.startswith("("):
                continue
        value = _eval_int(rest, env) if rest else None
        defines[name] = CDefine(name, rest, value, lineno)
        if value is not None:
            env[name] = value
    return defines


def _lineno_at(stripped, offset):
    return stripped.count("\n", 0, offset) + 1


def _match_brace(text, open_index):
    """Index just past the brace/paren matching ``text[open_index]``."""
    pairs = {"{": "}", "(": ")", "[": "]"}
    close = pairs[text[open_index]]
    opener = text[open_index]
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == opener:
            depth += 1
        elif text[i] == close:
            depth -= 1
            if depth == 0:
                return i + 1
    raise InternalError(
        f"unbalanced {opener!r} at offset {open_index} while extracting"
        " the C ABI surface"
    )


def _normalise_type(tokens):
    """Join type tokens with single spaces, ``*`` separated."""
    flat = " ".join(tokens)
    flat = flat.replace("*", " * ")
    return " ".join(flat.split())


def _parse_field(decl, lineno):
    """Parse one struct member declaration (text between ``;``)."""
    decl = decl.strip()
    if not decl:
        return None
    array_len = None
    array = re.search(r"\[([^\]]*)\]\s*$", decl)
    if array:
        array_len = array.group(1).strip()
        decl = decl[: array.start()].rstrip()
    match = re.search(r"(%s)\s*$" % _IDENT, decl)
    if not match:
        return None
    name = match.group(1)
    ctype = _normalise_type(decl[: match.start()].split())
    if not ctype:
        return None
    return CField(name, ctype, array_len, lineno)


def _parse_field_decls(decl, lineno):
    """Parse one ``;``-terminated member declaration into its fields.

    A single declaration may carry several declarators
    (``const int32_t *prod1, *prod2;``); each declarator owns its own
    ``*``s and array suffix while sharing the base type.
    """
    decl = decl.strip()
    if not decl:
        return []
    chunks = decl.split(",")
    first = _parse_field(chunks[0], lineno)
    if first is None:
        return []
    fields = [first]
    base = first.ctype
    while base.endswith("*"):
        base = base[:-1].rstrip()
    for chunk in chunks[1:]:
        chunk = chunk.strip()
        array_len = None
        array = re.search(r"\[([^\]]*)\]\s*$", chunk)
        if array:
            array_len = array.group(1).strip()
            chunk = chunk[: array.start()].rstrip()
        stars = chunk.count("*")
        name = chunk.replace("*", "").strip()
        if not re.fullmatch(_IDENT, name):
            continue
        ctype = _normalise_type((base + " " + "*" * stars).split())
        fields.append(CField(name, ctype, array_len, lineno))
    return fields


def _extract_structs(stripped):
    structs = {}
    for match in re.finditer(r"\btypedef\s+struct\b", stripped):
        brace = stripped.find("{", match.end())
        if brace < 0:
            continue
        body_end = _match_brace(stripped, brace)
        tail = stripped[body_end:]
        name_match = re.match(r"\s*(%s)\s*;" % _IDENT, tail)
        if not name_match:
            continue
        name = name_match.group(1)
        fields = []
        body = stripped[brace + 1: body_end - 1]
        offset = brace + 1
        for decl in body.split(";"):
            lineno = _lineno_at(stripped, offset + len(decl)
                                - len(decl.lstrip()))
            fields.extend(_parse_field_decls(decl, lineno))
            offset += len(decl) + 1
        structs[name] = CStruct(
            name, fields, _lineno_at(stripped, match.start())
        )
    return structs


def _split_params(text):
    """Split a parameter list on top-level commas."""
    params, depth, current = [], 0, []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            params.append("".join(current))
            current = []
        else:
            current.append(ch)
    if "".join(current).strip():
        params.append("".join(current))
    return params


def _parse_param(text):
    text = text.strip()
    if not text or text == "void":
        return None
    match = re.search(r"(%s)\s*$" % _IDENT, text)
    if not match:
        return (_normalise_type(text.split()), None)  # unnamed param
    name = match.group(1)
    ctype = _normalise_type(text[: match.start()].split())
    if not ctype:
        # A bare identifier is a type with no name (e.g. "int").
        return (name, None)
    return (ctype, name)


def _extract_functions(stripped):
    """Exported function *definitions*: ``ret name(params) {``."""
    functions = {}
    for match in re.finditer(
        r"(?m)^(?P<head>[A-Za-z_][\w \t*]*?)\b(?P<name>%s)\s*\(" % _IDENT,
        stripped,
    ):
        head = match.group("head")
        if "static" in head.split() or "typedef" in head.split():
            continue
        open_paren = match.end() - 1
        try:
            close = _match_brace(stripped, open_paren)
        except InternalError:
            continue
        after = stripped[close:]
        if not re.match(r"\s*\{", after):
            continue  # a declaration or macro use, not a definition
        return_type = _normalise_type(head.split())
        if not return_type:
            continue
        params = []
        for param in _split_params(stripped[open_paren + 1: close - 1]):
            parsed = _parse_param(param)
            if parsed is not None:
                params.append(parsed)
        name = match.group("name")
        functions[name] = CFunction(
            name, return_type, params,
            _lineno_at(stripped, match.start("name")),
        )
    return functions


def extract_c(source):
    """Extract the :class:`CExtract` surface of C *source* text."""
    stripped = _strip_comments(source.replace("\r\n", "\n"))
    return CExtract(
        defines=_extract_defines(stripped),
        structs=_extract_structs(stripped),
        functions=_extract_functions(stripped),
    )
