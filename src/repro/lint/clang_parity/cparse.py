"""Statement/expression AST for the restricted C subset of the kernels.

:mod:`repro.lint.clang_parity.cextract` stops at declarations — enough
for the ABI-parity passes, but the certifier (``repro.lint.certify``)
needs to *execute* the kernels abstractly, which means parsing function
bodies.  This module supplies that second stage: a tokenizer and a
recursive-descent parser covering exactly the constructs the two
shipped kernels use —

* declarations with initialisers (including C99 ``for``-init),
* assignments (``=`` and the compound forms), ``++``/``--``,
* ``if``/``else``, ``while``, ``for``, ``break``/``continue``/``return``,
* the full C operator set at correct precedence (ternary, ``&&``/``||``,
  bit ops, shifts, casts, ``sizeof``, address-of, dereference),
* array subscripts, ``->``/``.`` field access and function calls.

Anything outside the subset (``switch``, ``goto``, ``do``, strings,
function pointers) raises :class:`CParseError` — the certifier reports
that as a finding rather than guessing at semantics.

The parser also collects the two comment-borne side channels the
certifier consumes:

* ``certify:`` annotations (``assume``/``requires``/``returns``/
  ``buffer``) — trusted facts, each carrying a mandatory
  ``-- reason`` (except ``returns``, which is *checked* at every
  return statement rather than trusted);
* C-side ``reprolint: disable=<pass> -- why`` suppressions, which the
  certify passes apply themselves (the Python-side suppression scanner
  only reads ``#`` comments).
"""

import bisect
import re

from repro.lint.clang_parity.cextract import _strip_comments


class CParseError(Exception):
    """The source stepped outside the supported C subset."""

    def __init__(self, message, lineno):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


# --------------------------------------------------------------- tokens

#: Scalar type words accepted in declarations, casts and ``sizeof``.
BASE_TYPES = frozenset({
    "void", "char", "short", "int", "long", "signed", "unsigned",
    "float", "double", "size_t", "ptrdiff_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
})

_KEYWORDS = frozenset({
    "if", "else", "while", "for", "return", "break", "continue",
    "sizeof", "const", "static", "struct",
})

_UNSUPPORTED = frozenset({"switch", "goto", "do", "case", "default"})

_TOKEN_RE = re.compile(
    r"""
      (?P<num>0[xX][0-9a-fA-F]+[uUlL]*|\d+[uUlL]*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<op><<=|>>=|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|
        |[+\-*/%&|^]=|[-+*/%&|^!~<>=?:;,.()\[\]{}])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "lineno")

    def __init__(self, kind, text, lineno):
        self.kind = kind
        self.text = text
        self.lineno = lineno

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line {self.lineno})"


class _LineMap:
    """Offset → 1-based line number for one source string."""

    def __init__(self, text):
        self.starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                self.starts.append(i + 1)

    def lineno(self, offset):
        return bisect.bisect_right(self.starts, offset)


def _tokenize(text, start, end, linemap):
    tokens = []
    pos = start
    while pos < end:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos].isspace():
                pos += 1
                continue
            raise CParseError(
                f"unexpected character {text[pos]!r}", linemap.lineno(pos)
            )
        lineno = linemap.lineno(match.start())
        if match.lastgroup == "num":
            tokens.append(_Token("num", match.group(), lineno))
        elif match.lastgroup == "id":
            tokens.append(_Token("id", match.group(), lineno))
        else:
            tokens.append(_Token("op", match.group(), lineno))
        pos = match.end()
    return tokens


# ------------------------------------------------------------ AST nodes

class CNode:
    """Base of every C AST node; carries the 1-based source line."""

    __slots__ = ("lineno",)


class CNum(CNode):
    """An integer literal (``unsigned`` records a ``u``/``U`` suffix)."""

    __slots__ = ("value", "unsigned")

    def __init__(self, value, unsigned, lineno):
        self.value = value
        self.unsigned = unsigned
        self.lineno = lineno


class CName(CNode):
    """A bare identifier reference."""

    __slots__ = ("name",)

    def __init__(self, name, lineno):
        self.name = name
        self.lineno = lineno


class CUnary(CNode):
    """Prefix operator: ``- ! ~ * &`` or prefix ``++``/``--``."""

    __slots__ = ("op", "operand")

    def __init__(self, op, operand, lineno):
        self.op = op
        self.operand = operand
        self.lineno = lineno


class CPostfix(CNode):
    """Postfix ``++``/``--``."""

    __slots__ = ("op", "operand")

    def __init__(self, op, operand, lineno):
        self.op = op
        self.operand = operand
        self.lineno = lineno


class CBinary(CNode):
    """An infix binary expression ``left op right``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right, lineno):
        self.op = op
        self.left = left
        self.right = right
        self.lineno = lineno


class CAssign(CNode):
    """``target op value`` where *op* is ``=`` or a compound form."""

    __slots__ = ("op", "target", "value")

    def __init__(self, op, target, value, lineno):
        self.op = op
        self.target = target
        self.value = value
        self.lineno = lineno


class CCond(CNode):
    """The ternary conditional ``cond ? then : other``."""

    __slots__ = ("cond", "then", "other")

    def __init__(self, cond, then, other, lineno):
        self.cond = cond
        self.then = then
        self.other = other
        self.lineno = lineno


class CCall(CNode):
    """A call of a named function."""

    __slots__ = ("name", "args")

    def __init__(self, name, args, lineno):
        self.name = name
        self.args = args
        self.lineno = lineno


class CIndex(CNode):
    """An array subscript ``base[index]`` — the certifier's target."""

    __slots__ = ("base", "index")

    def __init__(self, base, index, lineno):
        self.base = base
        self.index = index
        self.lineno = lineno


class CFieldRef(CNode):
    """A member access ``base.field`` or ``base->field``."""

    __slots__ = ("base", "field", "arrow")

    def __init__(self, base, field, arrow, lineno):
        self.base = base
        self.field = field
        self.arrow = arrow
        self.lineno = lineno


class CCast(CNode):
    """A cast ``(ctype)operand``."""

    __slots__ = ("ctype", "operand")

    def __init__(self, ctype, operand, lineno):
        self.ctype = ctype
        self.operand = operand
        self.lineno = lineno


class CSizeof(CNode):
    """``sizeof(type-name)`` (*arg* is a str) or ``sizeof(expr)``."""

    __slots__ = ("arg",)

    def __init__(self, arg, lineno):
        self.arg = arg
        self.lineno = lineno


class CStmt(CNode):
    """Base statement node; ``assumes`` holds attached annotations."""

    __slots__ = ("assumes",)


class CExprStmt(CStmt):
    """An expression evaluated for effect (assignment, call, ...)."""

    __slots__ = ("expr",)

    def __init__(self, expr, lineno):
        self.expr = expr
        self.lineno = lineno
        self.assumes = []


class CDeclarator:
    """One declared name within a declaration (pointer depth,
    optional array length and initialiser)."""

    __slots__ = ("name", "ptr", "array_len", "init", "lineno")

    def __init__(self, name, ptr, array_len, init, lineno):
        self.name = name
        self.ptr = ptr
        self.array_len = array_len
        self.init = init
        self.lineno = lineno


class CDeclStmt(CStmt):
    """A local declaration: one base type, one or more declarators."""

    __slots__ = ("base_type", "decls")

    def __init__(self, base_type, decls, lineno):
        self.base_type = base_type
        self.decls = decls
        self.lineno = lineno
        self.assumes = []


class CIf(CStmt):
    """An ``if``/``else`` statement."""

    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond, then, orelse, lineno):
        self.cond = cond
        self.then = then
        self.orelse = orelse
        self.lineno = lineno
        self.assumes = []


class CWhile(CStmt):
    """A ``while`` loop."""

    __slots__ = ("cond", "body")

    def __init__(self, cond, body, lineno):
        self.cond = cond
        self.body = body
        self.lineno = lineno
        self.assumes = []


class CFor(CStmt):
    """A ``for`` loop (any clause may be ``None``)."""

    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, lineno):
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body
        self.lineno = lineno
        self.assumes = []


class CReturn(CStmt):
    """A ``return`` statement (``value`` may be ``None``)."""

    __slots__ = ("value",)

    def __init__(self, value, lineno):
        self.value = value
        self.lineno = lineno
        self.assumes = []


class CBreak(CStmt):
    """A ``break`` statement."""

    __slots__ = ()

    def __init__(self, lineno):
        self.lineno = lineno
        self.assumes = []


class CContinue(CStmt):
    """A ``continue`` statement."""

    __slots__ = ()

    def __init__(self, lineno):
        self.lineno = lineno
        self.assumes = []


# --------------------------------------------------------------- parser

class _Parser:
    def __init__(self, tokens, typenames):
        self.tokens = tokens
        self.pos = 0
        self.typenames = typenames

    # -- token plumbing

    def peek(self, ahead=0):
        index = self.pos + ahead
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self):
        tok = self.peek()
        if tok is None:
            last = self.tokens[-1].lineno if self.tokens else 0
            raise CParseError("unexpected end of input", last)
        self.pos += 1
        return tok

    def at(self, text):
        tok = self.peek()
        return tok is not None and tok.text == text

    def accept(self, text):
        if self.at(text):
            return self.next()
        return None

    def expect(self, text):
        tok = self.peek()
        if tok is None or tok.text != text:
            got = tok.text if tok else "end of input"
            line = tok.lineno if tok else (
                self.tokens[-1].lineno if self.tokens else 0
            )
            raise CParseError(f"expected {text!r}, got {got!r}", line)
        return self.next()

    def _is_type_token(self, tok):
        return tok is not None and tok.kind == "id" and (
            tok.text in BASE_TYPES
            or tok.text in self.typenames
            or tok.text in ("const", "struct")
        )

    # -- statements

    def parse_statements_until_end(self):
        stmts = []
        while self.peek() is not None:
            stmts.append(self.parse_statement())
        return stmts

    def parse_body(self):
        """One statement or a braced block, as a statement list."""
        if self.accept("{"):
            stmts = []
            while not self.at("}"):
                stmts.append(self.parse_statement())
            self.expect("}")
            return stmts
        return [self.parse_statement()]

    def parse_statement(self):
        tok = self.peek()
        if tok is None:
            raise CParseError("unexpected end of input", 0)
        if tok.text in _UNSUPPORTED:
            raise CParseError(f"unsupported construct {tok.text!r}",
                              tok.lineno)
        if tok.text == "{":
            # A bare block: inline it as an if(1)-style single-arm.
            body = self.parse_body()
            stmt = CIf(CNum(1, False, tok.lineno), body, [], tok.lineno)
            return stmt
        if tok.text == "if":
            return self._parse_if()
        if tok.text == "while":
            self.next()
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            body = self.parse_body()
            return CWhile(cond, body, tok.lineno)
        if tok.text == "for":
            return self._parse_for()
        if tok.text == "return":
            self.next()
            value = None
            if not self.at(";"):
                value = self.parse_expression()
            self.expect(";")
            return CReturn(value, tok.lineno)
        if tok.text == "break":
            self.next()
            self.expect(";")
            return CBreak(tok.lineno)
        if tok.text == "continue":
            self.next()
            self.expect(";")
            return CContinue(tok.lineno)
        if self._starts_declaration():
            stmt = self._parse_declaration()
            self.expect(";")
            return stmt
        expr = self.parse_expression()
        self.expect(";")
        return CExprStmt(expr, expr.lineno)

    def _parse_if(self):
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then = self.parse_body()
        orelse = []
        if self.accept("else"):
            if self.at("if"):
                orelse = [self._parse_if()]
            else:
                orelse = self.parse_body()
        return CIf(cond, then, orelse, tok.lineno)

    def _parse_for(self):
        tok = self.expect("for")
        self.expect("(")
        init = None
        if not self.at(";"):
            if self._starts_declaration():
                init = self._parse_declaration()
            else:
                expr = self.parse_expression()
                init = CExprStmt(expr, expr.lineno)
        self.expect(";")
        cond = None
        if not self.at(";"):
            cond = self.parse_expression()
        self.expect(";")
        step = None
        if not self.at(")"):
            step = self.parse_expression()
        self.expect(")")
        body = self.parse_body()
        return CFor(init, cond, step, body, tok.lineno)

    def _starts_declaration(self):
        tok = self.peek()
        if not self._is_type_token(tok):
            return False
        # ``Trace t`` / ``int64_t i`` / ``const int32_t *nd`` all open
        # with type words; an expression never does (locals don't
        # shadow type names in the kernels).
        return True

    def _parse_declaration(self):
        first = self.peek()
        words = []
        while self._is_type_token(self.peek()):
            words.append(self.next().text)
        if not words:
            raise CParseError("expected a type", first.lineno)
        base_type = " ".join(words)
        decls = [self._parse_declarator()]
        while self.accept(","):
            decls.append(self._parse_declarator())
        return CDeclStmt(base_type, decls, first.lineno)

    def _parse_declarator(self):
        ptr = 0
        while self.accept("*"):
            ptr += 1
        name_tok = self.next()
        if name_tok.kind != "id":
            raise CParseError(
                f"expected a declarator name, got {name_tok.text!r}",
                name_tok.lineno,
            )
        array_len = None
        if self.accept("["):
            array_len = self.parse_expression()
            self.expect("]")
        init = None
        if self.accept("="):
            init = self.parse_assignment()
        return CDeclarator(name_tok.text, ptr, array_len, init,
                           name_tok.lineno)

    # -- expressions (standard C precedence)

    def parse_expression(self):
        return self.parse_assignment()

    _ASSIGN_OPS = frozenset({
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
    })

    def parse_assignment(self):
        left = self.parse_conditional()
        tok = self.peek()
        if tok is not None and tok.text in self._ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            return CAssign(tok.text, left, value, tok.lineno)
        return left

    def parse_conditional(self):
        cond = self.parse_logical_or()
        if self.at("?"):
            tok = self.next()
            then = self.parse_expression()
            self.expect(":")
            other = self.parse_conditional()
            return CCond(cond, then, other, tok.lineno)
        return cond

    def _binary_level(self, ops, sub):
        left = sub()
        while True:
            tok = self.peek()
            if tok is None or tok.text not in ops:
                return left
            self.next()
            right = sub()
            left = CBinary(tok.text, left, right, tok.lineno)

    def parse_logical_or(self):
        return self._binary_level(("||",), self.parse_logical_and)

    def parse_logical_and(self):
        return self._binary_level(("&&",), self.parse_bitor)

    def parse_bitor(self):
        return self._binary_level(("|",), self.parse_bitxor)

    def parse_bitxor(self):
        return self._binary_level(("^",), self.parse_bitand)

    def parse_bitand(self):
        return self._binary_level(("&",), self.parse_equality)

    def parse_equality(self):
        return self._binary_level(("==", "!="), self.parse_relational)

    def parse_relational(self):
        return self._binary_level(("<", ">", "<=", ">="), self.parse_shift)

    def parse_shift(self):
        return self._binary_level(("<<", ">>"), self.parse_additive)

    def parse_additive(self):
        return self._binary_level(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self):
        return self._binary_level(("*", "/", "%"), self.parse_cast)

    def _at_cast(self):
        if not self.at("("):
            return False
        return self._is_type_token(self.peek(1))

    def _parse_typename(self):
        words = []
        while self._is_type_token(self.peek()):
            words.append(self.next().text)
        while self.accept("*"):
            words.append("*")
        return " ".join(words)

    def parse_cast(self):
        if self._at_cast():
            tok = self.next()  # "("
            ctype = self._parse_typename()
            self.expect(")")
            operand = self.parse_cast()
            return CCast(ctype, operand, tok.lineno)
        return self.parse_unary()

    def parse_unary(self):
        tok = self.peek()
        if tok is None:
            raise CParseError("unexpected end of input", 0)
        if tok.text in ("-", "!", "~", "*", "&", "++", "--"):
            self.next()
            operand = self.parse_cast()
            return CUnary(tok.text, operand, tok.lineno)
        if tok.text == "+":
            self.next()
            return self.parse_cast()
        if tok.text == "sizeof":
            self.next()
            self.expect("(")
            if self._is_type_token(self.peek()):
                arg = self._parse_typename()
            else:
                arg = self.parse_expression()
            self.expect(")")
            return CSizeof(arg, tok.lineno)
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok is None:
                return expr
            if tok.text == "[":
                self.next()
                index = self.parse_expression()
                self.expect("]")
                expr = CIndex(expr, index, tok.lineno)
            elif tok.text in (".", "->"):
                self.next()
                field = self.next()
                if field.kind != "id":
                    raise CParseError(
                        f"expected a field name, got {field.text!r}",
                        field.lineno,
                    )
                expr = CFieldRef(expr, field.text, tok.text == "->",
                                 tok.lineno)
            elif tok.text == "(":
                if not isinstance(expr, CName):
                    raise CParseError("calls through expressions are not"
                                      " supported", tok.lineno)
                self.next()
                args = []
                if not self.at(")"):
                    args.append(self.parse_assignment())
                    while self.accept(","):
                        args.append(self.parse_assignment())
                self.expect(")")
                expr = CCall(expr.name, args, expr.lineno)
            elif tok.text in ("++", "--"):
                self.next()
                expr = CPostfix(tok.text, expr, tok.lineno)
            else:
                return expr

    def parse_primary(self):
        tok = self.next()
        if tok.kind == "num":
            text = tok.text
            digits = text.rstrip("uUlL")
            suffix = text[len(digits):]
            value = int(digits, 0)
            unsigned = "u" in suffix.lower()
            return CNum(value, unsigned, tok.lineno)
        if tok.kind == "id":
            if tok.text in _KEYWORDS or tok.text in _UNSUPPORTED:
                raise CParseError(
                    f"unexpected keyword {tok.text!r}", tok.lineno
                )
            return CName(tok.text, tok.lineno)
        if tok.text == "(":
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise CParseError(f"unexpected token {tok.text!r}", tok.lineno)


def parse_expression_text(text, typenames=frozenset(), lineno=0):
    """Parse one standalone expression (annotation conditions)."""
    linemap = _LineMap(text)
    tokens = _tokenize(text, 0, len(text), linemap)
    if not tokens:
        raise CParseError("empty expression", lineno)
    parser = _Parser(tokens, typenames)
    expr = parser.parse_expression()
    if parser.peek() is not None:
        raise CParseError(
            f"trailing tokens after expression: {parser.peek().text!r}",
            lineno,
        )
    return expr


# ------------------------------------------------- functions with bodies

class CFunctionDef:
    """One parsed function: signature plus statement-level body."""

    __slots__ = ("name", "return_type", "params", "body", "lineno",
                 "static", "requires", "returns", "param_buffers")

    def __init__(self, name, return_type, params, body, lineno, static):
        self.name = name
        self.return_type = return_type
        self.params = params          # list of (name, base_type, ptr)
        self.body = body              # list of CStmt
        self.lineno = lineno
        self.static = static
        self.requires = []            # CAnnotation, kind == "requires"
        self.returns = None           # CAnnotation, kind == "returns"
        self.param_buffers = []       # CAnnotation, kind == "buffer"


class CAnnotation:
    """One ``certify:`` comment, split but not yet evaluated."""

    __slots__ = ("kind", "lineno", "text", "reason")

    def __init__(self, kind, lineno, text, reason):
        self.kind = kind
        self.lineno = lineno
        self.text = text
        self.reason = reason


class CSuppression:
    """One C-side ``reprolint: disable=...`` comment."""

    __slots__ = ("lineno", "pass_ids", "reason")

    def __init__(self, lineno, pass_ids, reason):
        self.lineno = lineno
        self.pass_ids = pass_ids
        self.reason = reason


class CUnit:
    """A deep-parsed C translation unit."""

    __slots__ = ("functions", "annotations", "suppressions", "typenames")

    def __init__(self, functions, annotations, suppressions, typenames):
        self.functions = functions        # name -> CFunctionDef
        self.annotations = annotations    # list of CAnnotation
        self.suppressions = suppressions  # lineno -> CSuppression
        self.typenames = typenames

    def suppressed(self, lineno, pass_id):
        """True if *pass_id* is disabled at *lineno* by a C comment."""
        entry = self.suppressions.get(lineno)
        if entry is None:
            return False
        return pass_id in entry.pass_ids or "all" in entry.pass_ids


_FUNC_DEF_RE = re.compile(
    r"(?m)^(?P<head>(?:static\s+)?(?:const\s+)?[A-Za-z_]\w*"
    r"(?:\s+[A-Za-z_]\w*)*[\s*]+)"
    r"(?P<name>[A-Za-z_]\w*)\s*\("
)

_CERTIFY_RE = re.compile(
    r"/\*\s*certify:\s*(?P<body>[^*]*(?:\*(?!/)[^*]*)*)\*/"
)

_C_SUPPRESS_RE = re.compile(
    r"/\*\s*reprolint:\s*disable=(?P<ids>[\w, -]*?)"
    r"(?:\s*--\s*(?P<why>[^*]*(?:\*(?!/)[^*]*)*?))?\s*\*/"
)

_ANNOTATION_KINDS = frozenset({"assume", "requires", "returns", "buffer"})


def _scan_annotations(source, linemap):
    annotations = []
    for match in _CERTIFY_RE.finditer(source):
        lineno = linemap.lineno(match.start())
        body = " ".join(match.group("body").split())
        if " -- " in body:
            text, reason = body.split(" -- ", 1)
        else:
            text, reason = body, None
        parts = text.split(None, 1)
        kind = parts[0] if parts else ""
        if kind not in _ANNOTATION_KINDS or len(parts) < 2:
            raise CParseError(
                f"malformed certify annotation: {body!r}", lineno
            )
        annotations.append(CAnnotation(kind, lineno, parts[1], reason))
    return annotations


def _scan_suppressions(source, linemap):
    suppressions = {}
    for match in _C_SUPPRESS_RE.finditer(source):
        lineno = linemap.lineno(match.start())
        ids = frozenset(
            part.strip() for part in match.group("ids").split(",")
            if part.strip()
        )
        why = (match.group("why") or "").strip() or None
        # A comment alone on its line covers the next line; a trailing
        # comment covers its own.
        line_start = linemap.starts[lineno - 1]
        before = source[line_start:match.start()]
        target = lineno + 1 if not before.strip() else lineno
        suppressions[target] = CSuppression(target, ids, why)
    return suppressions


def _attach_annotations(functions, annotations):
    """Statement ``assume``s attach by line; the rest attach to the
    next function defined at or below the annotation."""
    ordered = sorted(functions.values(), key=lambda fn: fn.lineno)

    def function_at(lineno):
        for fn in ordered:
            if fn.lineno >= lineno:
                return fn
        return None

    def enclosing(lineno):
        best = None
        for fn in ordered:
            if fn.lineno <= lineno:
                best = fn
        return best

    for ann in annotations:
        if ann.kind == "assume":
            fn = enclosing(ann.lineno)
            target = None
            if fn is not None:
                for stmt in _walk_statements(fn.body):
                    if stmt.lineno >= ann.lineno and (
                        target is None or stmt.lineno < target.lineno
                    ):
                        target = stmt
            if target is None:
                raise CParseError(
                    "assume annotation is not followed by a statement",
                    ann.lineno,
                )
            target.assumes.append(ann)
        else:
            fn = function_at(ann.lineno)
            if fn is None:
                raise CParseError(
                    f"{ann.kind} annotation is not followed by a"
                    " function definition", ann.lineno
                )
            if ann.kind == "requires":
                fn.requires.append(ann)
            elif ann.kind == "buffer":
                fn.param_buffers.append(ann)
            else:
                if fn.returns is not None:
                    raise CParseError(
                        f"duplicate returns annotation on {fn.name}",
                        ann.lineno,
                    )
                fn.returns = ann


def _walk_statements(stmts):
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, CIf):
            yield from _walk_statements(stmt.then)
            yield from _walk_statements(stmt.orelse)
        elif isinstance(stmt, CWhile):
            yield from _walk_statements(stmt.body)
        elif isinstance(stmt, CFor):
            if stmt.init is not None:
                yield from _walk_statements([stmt.init])
            yield from _walk_statements(stmt.body)


def _match_close(text, open_pos, open_char, close_char, linemap):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_char:
            depth += 1
        elif text[i] == close_char:
            depth -= 1
            if depth == 0:
                return i
    raise CParseError(f"unbalanced {open_char!r}",
                      linemap.lineno(open_pos))


def _split_params_text(text):
    parts = []
    depth = 0
    current = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_param_sig(text, lineno):
    words = text.replace("*", " * ").split()
    ptr = words.count("*")
    words = [w for w in words if w != "*"]
    if not words:
        raise CParseError(f"cannot parse parameter {text!r}", lineno)
    if len(words) == 1:  # unnamed (``void``)
        return None
    name = words[-1]
    base = " ".join(w for w in words[:-1] if w != "const")
    return (name, base, ptr)


def parse_c_unit(source, typenames):
    """Deep-parse *source*: every function body, annotations and
    C-side suppressions.  Raises :class:`CParseError` on anything
    outside the supported subset."""
    stripped = _strip_comments(source)
    linemap = _LineMap(stripped)
    annotations = _scan_annotations(source, linemap)
    suppressions = _scan_suppressions(source, linemap)
    typenames = frozenset(typenames)

    functions = {}
    for match in _FUNC_DEF_RE.finditer(stripped):
        head = match.group("head").split()
        name = match.group("name")
        if head and head[0] in ("typedef", "if", "while", "for", "return"):
            continue
        static = "static" in head
        return_type = " ".join(
            w for w in head if w not in ("static", "const")
        ).replace(" *", "*").strip()
        open_paren = match.end() - 1
        close_paren = _match_close(stripped, open_paren, "(", ")", linemap)
        after = close_paren + 1
        while after < len(stripped) and stripped[after].isspace():
            after += 1
        if after >= len(stripped) or stripped[after] != "{":
            continue  # a prototype, not a definition
        body_close = _match_close(stripped, after, "{", "}", linemap)
        lineno = linemap.lineno(match.start())

        params = []
        params_text = stripped[open_paren + 1:close_paren]
        if params_text.strip() and params_text.strip() != "void":
            for part in _split_params_text(params_text):
                sig = _parse_param_sig(part, lineno)
                if sig is not None:
                    params.append(sig)

        tokens = _tokenize(stripped, after + 1, body_close, linemap)
        parser = _Parser(tokens, typenames)
        body = parser.parse_statements_until_end()
        functions[name] = CFunctionDef(
            name, return_type, params, body, lineno, static
        )

    _attach_annotations(functions, annotations)
    return CUnit(functions, annotations, suppressions, typenames)
