"""AST extractors for the Python half of the kernel ABI contract.

Counterparts to :mod:`repro.lint.clang_parity.cextract`, recovered
from parsed modules (never by importing them — lint must work on a
tree that does not import):

* ``ctypes.Structure`` subclasses and their ``_fields_`` layouts
  (:func:`ctypes_structs`), including ``c_int64 * len(...)`` array
  members;
* ``fn.argtypes = [...]`` / ``fn.restype = ...`` wiring
  (:func:`argtypes_wiring`);
* enum member definition order and constant values
  (:func:`enum_members`);
* module-level integer constants like ``NOT_EXECUTED = 1 << 30``
  (:func:`int_constant`), folded with the same operator whitelist the
  C extractor uses;
* attribute tuples like ``INHIBITOR_ORDER`` (:func:`attr_tuple`) and
  string-to-int contract dicts like ``_EXPECTED_OPS``
  (:func:`int_dict`);
* the ``PLAN_COLUMNS`` payload schema (:func:`plan_columns`) plus the
  extra literal keys ``plan_payload`` packs (:func:`payload_extras`),
  fingerprinted by :func:`schema_fingerprint` for the lint manifest.

Every extractor returns ``None`` (or an empty container) when the
shape it looks for is absent, so the parity passes can gate on "both
sides present" and fixture miniatures can carry only the pieces a test
exercises.
"""

import ast
import hashlib

from repro.lint.astutil import call_name, dotted_name, str_constant
from repro.lint.clang_parity.cextract import _INT_BINOPS, _INT_UNARYOPS


def _last_segment(name):
    return name.rsplit(".", 1)[-1] if name else None


def fold_int(node, env=None):
    """Fold a constant integer expression AST, or ``None``.

    The same operator whitelist as the C define evaluator, so the two
    sides of a constant like ``1 << 30`` are compared value-to-value
    rather than text-to-text.
    """
    env = env or {}
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.BinOp) and type(node.op) in _INT_BINOPS:
        left, right = fold_int(node.left, env), fold_int(node.right, env)
        if left is None or right is None:
            return None
        try:
            return _INT_BINOPS[type(node.op)](left, right)
        except (ValueError, ZeroDivisionError, OverflowError):
            return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, _INT_UNARYOPS):
        operand = fold_int(node.operand, env)
        if operand is None:
            return None
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.Invert):
            return ~operand
        return operand
    return None


class PyField:
    """One ctypes ``_fields_`` entry."""

    __slots__ = ("name", "ctype", "array_len", "lineno")

    def __init__(self, name, ctype, array_len, lineno):
        self.name = name
        self.ctype = ctype          # e.g. "c_int64"
        self.array_len = array_len  # source text of the length, or None
        self.lineno = lineno


class PyStruct:
    """One ``ctypes.Structure`` subclass layout."""

    __slots__ = ("name", "fields", "lineno")

    def __init__(self, name, fields, lineno):
        self.name = name
        self.fields = fields
        self.lineno = lineno


def _is_structure_base(base):
    return _last_segment(dotted_name(base)) in ("Structure", "BigEndianStructure",
                                                "LittleEndianStructure")


def _ctype_of(node):
    """Normalise a ctypes type expression to a comparable string.

    ``ctypes.c_int64`` -> ``("c_int64", None)``;
    ``ctypes.c_int64 * len(X)`` -> ``("c_int64", "len(X)")``;
    ``ctypes.POINTER(_KernelConfig)`` -> ``("POINTER(_KernelConfig)",
    None)``.  Unrecognised shapes give ``(None, None)``.
    """
    name = dotted_name(node)
    if name is not None:
        return _last_segment(name), None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        element = _last_segment(dotted_name(node.left))
        if element is not None:
            return element, ast.unparse(node.right)
    if isinstance(node, ast.Call):
        callee = _last_segment(call_name(node))
        if callee == "POINTER" and len(node.args) == 1:
            target = _last_segment(dotted_name(node.args[0]))
            if target is not None:
                return f"POINTER({target})", None
    return None, None


def ctypes_structs(tree):
    """All ``ctypes.Structure`` layouts in *tree*: ``{name: PyStruct}``."""
    structs = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(_is_structure_base(base) for base in node.bases):
            continue
        fields = []
        for stmt in node.body:
            if not (isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "_fields_"
                for t in stmt.targets
            )):
                continue
            if not isinstance(stmt.value, (ast.List, ast.Tuple)):
                continue
            for element in stmt.value.elts:
                if not (isinstance(element, (ast.Tuple, ast.List))
                        and len(element.elts) >= 2):
                    continue
                field_name = str_constant(element.elts[0])
                ctype, array_len = _ctype_of(element.elts[1])
                if field_name is not None:
                    fields.append(PyField(
                        field_name, ctype, array_len, element.lineno
                    ))
        structs[node.name] = PyStruct(node.name, fields, node.lineno)
    return structs


class ArgtypesWiring:
    """One ``fn.argtypes = [...]`` site (with its ``restype``)."""

    __slots__ = ("argtypes", "lineno", "restype", "restype_lineno")

    def __init__(self, argtypes, lineno, restype, restype_lineno):
        self.argtypes = argtypes  # list of (ctype_str_or_None, lineno)
        self.lineno = lineno
        self.restype = restype
        self.restype_lineno = restype_lineno


def argtypes_wiring(tree):
    """Every ``X.argtypes`` assignment in *tree*, paired per scope with
    the nearest ``X.restype`` assignment on the same receiver name."""
    argtype_sites = []   # (receiver, list, lineno)
    restype_sites = {}   # receiver -> (ctype, lineno)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Attribute):
            continue
        receiver = dotted_name(target.value)
        if target.attr == "argtypes" and isinstance(
            node.value, (ast.List, ast.Tuple)
        ):
            entries = [
                (_ctype_of(element)[0], element.lineno)
                for element in node.value.elts
            ]
            argtype_sites.append((receiver, entries, node.lineno))
        elif target.attr == "restype":
            restype_sites[receiver] = (
                _ctype_of(node.value)[0], node.lineno
            )
    wirings = []
    for receiver, entries, lineno in argtype_sites:
        restype, restype_lineno = restype_sites.get(receiver, (None, None))
        wirings.append(ArgtypesWiring(entries, lineno, restype,
                                      restype_lineno))
    return wirings


def enum_members(tree, class_name):
    """Members of enum *class_name* as ``[(name, value, lineno)]``.

    *value* is the folded int for ``IntEnum``-style members, the string
    for string-valued ones, else ``None``.  Returns ``None`` when the
    class is absent; order is definition order — which is exactly what
    the C ``INH_*`` indices encode.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            members = []
            for stmt in node.body:
                if not (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)):
                    continue
                name = stmt.targets[0].id
                if name.startswith("_"):
                    continue
                value = fold_int(stmt.value)
                if value is None:
                    value = str_constant(stmt.value)
                members.append((name, value, stmt.lineno))
            return members
    return None


def int_constant(tree, name):
    """Module-level ``name = <int expr>`` as ``(value, lineno)`` or ``None``."""
    for stmt in tree.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == name):
            value = fold_int(stmt.value)
            if value is not None:
                return value, stmt.lineno
    return None


def attr_tuple(tree, name):
    """Module-level ``name = (X.A, X.B, ...)`` as ``[(attr, lineno)]``."""
    for stmt in tree.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == name
                and isinstance(stmt.value, (ast.Tuple, ast.List))):
            entries = []
            for element in stmt.value.elts:
                if isinstance(element, ast.Attribute):
                    entries.append((element.attr, element.lineno))
                else:
                    entries.append((None, element.lineno))
            return entries
    return None


def int_dict(tree, name):
    """Module-level ``name = {"KEY": int, ...}`` as ``({key: value},
    lineno)`` or ``None``."""
    for stmt in tree.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == name
                and isinstance(stmt.value, ast.Dict)):
            out = {}
            for key, value in zip(stmt.value.keys, stmt.value.values):
                key_str = str_constant(key) if key is not None else None
                folded = fold_int(value)
                if key_str is not None and folded is not None:
                    out[key_str] = folded
            return out, stmt.lineno
    return None


def plan_columns(tree):
    """The ``PLAN_COLUMNS`` schema: ``([(name, dtype, lineno)], lineno)``.

    Dtypes are normalised to their last segment (``np.int8`` ->
    ``int8``) so the fingerprint is stable under import-style changes.
    """
    for stmt in tree.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "PLAN_COLUMNS"
                and isinstance(stmt.value, (ast.Tuple, ast.List))):
            columns = []
            for element in stmt.value.elts:
                if not (isinstance(element, (ast.Tuple, ast.List))
                        and len(element.elts) == 2):
                    continue
                name = str_constant(element.elts[0])
                dtype = _last_segment(dotted_name(element.elts[1]))
                if name is not None:
                    columns.append((name, dtype, element.lineno))
            return columns, stmt.lineno
    return None


def payload_extras(tree):
    """Extra literal keys ``plan_payload`` packs beside the columns.

    Scans the ``plan_payload`` function for ``payload["key"] = ...``
    stores on its dict; the schema fingerprint covers them so adding a
    second meta record is a schema change like any other.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "plan_payload":
            keys = []
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Subscript):
                        key = str_constant(target.slice)
                        if key is not None:
                            keys.append(key)
            return sorted(set(keys))
    return None


def schema_fingerprint(columns, extras):
    """SHA-256 fingerprint of the payload column set.

    Canonical form: one ``name:dtype`` line per column in order, then
    one ``+extra`` line per sorted extra key.  Pinned in
    ``repro.lint.manifest`` and regenerated by
    ``repro lint --manifest-update``.
    """
    lines = [f"{name}:{dtype}" for name, dtype, _ in columns]
    lines += [f"+{key}" for key in sorted(extras or ())]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()
