"""The reprolint pass framework: registry, file walking, suppression.

A pass subclasses :class:`LintPass`, sets a kebab-case :attr:`~LintPass.id`,
and overrides :meth:`~LintPass.check_module` (called once per source
module with its parsed AST) and/or :meth:`~LintPass.check_project`
(called once per run, for cross-file invariants such as registry
completeness).  Registration happens at class-definition time via the
:func:`register` decorator, so importing :mod:`repro.lint.passes` is
all it takes to make a pass available to :func:`run_lint`, the CLI and
the test suite.

Suppression: a line containing ``# reprolint: disable=<id>`` (several
ids comma-separated, or ``all``) silences findings reported *at that
line*.  Suppressions are parsed per physical line, so the comment goes
on the line the finding points at — for a multi-line statement, the
line where it starts.
"""

import ast
import pathlib
import re

from repro.lint.findings import Finding, Severity
from repro.robustness.errors import ConfigError

#: Where the linted source tree lives, relative to the project root.
SOURCE_ROOT = "src/repro"

#: All roots a lint run walks.  ``src/repro`` is the library; tests
#: and examples ride along so their determinism/write/flow hygiene is
#: enforced too (a test that seeds from the wall clock flakes just as
#: hard as an engine that does).
SOURCE_ROOTS = (SOURCE_ROOT, "tests", "examples")

#: Subtrees never walked: the lint fixture miniatures *contain
#: violations on purpose* — they are what the lint test suite runs
#: the passes against.
EXCLUDED_PREFIXES = ("tests/lint_fixtures/",)

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_\-, ]+)")


class ModuleInfo:
    """One parsed source module presented to the passes.

    Attributes
    ----------
    relpath:
        POSIX-style path relative to the project root
        (e.g. ``src/repro/core/mlpsim.py``) — the path findings carry.
    source:
        The module text (``\\r\\n`` normalised to ``\\n``).
    tree:
        The parsed :mod:`ast` module, or ``None`` when the file does
        not parse (the framework reports that as a finding itself).
    suppressions:
        Mapping of line number to the set of pass ids disabled there.
    """

    def __init__(self, relpath, source):
        self.relpath = relpath
        self.source = source.replace("\r\n", "\n")
        try:
            self.tree = ast.parse(self.source)
            self.parse_error = None
        except SyntaxError as error:
            self.tree = None
            self.parse_error = error
        self.suppressions = _parse_suppressions(self.source)

    def suppressed(self, line, pass_id):
        """True if *pass_id* is disabled at *line*."""
        disabled = self.suppressions.get(line)
        return disabled is not None and (
            pass_id in disabled or "all" in disabled
        )


def _parse_suppressions(source):
    suppressions = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            ids = {item.strip() for item in match.group(1).split(",")}
            suppressions[lineno] = {item for item in ids if item}
    return suppressions


class Project:
    """The file set of one lint run, rooted at a repository checkout.

    Walks ``<root>/src/repro``, ``<root>/tests`` and
    ``<root>/examples`` (``**/*.py``, minus the lint fixture
    miniatures) eagerly so that project-level passes can
    cross-reference modules.  Fixture trees in the test suite use the
    same layout, which is what makes every pass testable against a
    miniature repository.
    """

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.modules = []
        #: ``(relpath, kind)`` -> number of times that file's AST was
        #: built this run.  ``kind`` distinguishes the parsers that
        #: legitimately each run once over a file ("py" for the Python
        #: AST, "c-extract" for kernel declarations, "c-unit" for the
        #: certifier's statement bodies); the lint test suite asserts
        #: every count stays at exactly 1, which is what makes the
        #: shared caches below load-bearing rather than decorative.
        self.parse_counts = {}
        self._c_extracts = {}
        relpaths = set()
        for source_root in SOURCE_ROOTS:
            base = self.root / source_root
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                relpath = path.relative_to(self.root).as_posix()
                if relpath.startswith(EXCLUDED_PREFIXES):
                    continue
                relpaths.add(relpath)
        for relpath in sorted(relpaths):
            self.count_parse(relpath, "py")
            self.modules.append(
                ModuleInfo(relpath, (self.root / relpath).read_text())
            )

    def count_parse(self, relpath, kind):
        """Record one AST build of *relpath* in the parse ledger."""
        key = (relpath, kind)
        self.parse_counts[key] = self.parse_counts.get(key, 0) + 1

    def module(self, relpath):
        """Look up a module by root-relative POSIX path (or ``None``)."""
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None

    def read_text(self, relpath):
        """Text of any file under the root, or ``None`` when absent.

        The walk only parses ``*.py``, but cross-language passes also
        need the raw text of non-Python sources (the C kernel); the
        same ``\\r\\n`` normalisation as :class:`ModuleInfo` applies so
        extracted line content compares stably across checkouts.
        """
        path = self.root / relpath
        if not path.is_file():
            return None
        return path.read_text().replace("\r\n", "\n")

    def c_extract(self, relpath):
        """Declaration-level extraction of a C source, parsed once.

        Every pass that needs the kernel's structs/defines/prototypes
        goes through this cache (``kernel-abi``, ``kernel-constants``
        and the certify layer all read the same files), so one lint
        run parses each C source exactly once.  Returns ``None`` when
        the file is absent.
        """
        if relpath not in self._c_extracts:
            source = self.read_text(relpath)
            if source is None:
                self._c_extracts[relpath] = None
            else:
                from repro.lint.clang_parity.cextract import extract_c

                self.count_parse(relpath, "c-extract")
                self._c_extracts[relpath] = extract_c(source)
        return self._c_extracts[relpath]


class LintPass:
    """Base class for one enforced invariant.

    Subclasses set :attr:`id` (the kebab-case name used by
    ``--select`` and suppression comments) and :attr:`description`
    (one line, shown by ``repro lint --list``), then override one or
    both hooks.  Hooks yield :class:`~repro.lint.findings.Finding`
    records; the framework applies suppression filtering afterwards.

    :attr:`severity` is the pass's default severity — what
    :meth:`finding` stamps unless a call overrides it, and what
    ``repro lint --list`` reports.  ``ERROR`` passes fail the build;
    a new pass can ship as ``WARNING`` to observe before enforcing.
    """

    id = None
    description = ""
    severity = Severity.ERROR

    def check_module(self, module, project):
        """Yield findings for one parsed module (default: none)."""
        return ()

    def check_project(self, project):
        """Yield project-wide findings after all modules (default: none)."""
        return ()

    def finding(self, module_or_path, line, message, severity=None):
        """Convenience constructor stamping this pass's id."""
        path = getattr(module_or_path, "relpath", module_or_path)
        return Finding(
            path=path, line=line, pass_id=self.id, message=message,
            severity=self.severity if severity is None else severity,
        )


_REGISTRY = {}


def register(cls):
    """Class decorator adding a :class:`LintPass` to the registry."""
    if not cls.id:
        raise ConfigError(f"lint pass {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ConfigError(f"duplicate lint pass id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def registered_passes():
    """Return the pass registry as ``{id: class}``, importing the
    built-in passes on first use."""
    import repro.lint.passes  # noqa: F401  (registers via decorator)

    return dict(_REGISTRY)


def run_lint(root, select=None, stats=None):
    """Run the (selected) passes over the tree at *root*.

    Parameters
    ----------
    root:
        Project root: the directory containing ``src/repro``.  Fixture
        roots with the same layout work identically.
    select:
        Optional iterable of pass ids to run; ``None`` runs every
        registered pass.  Unknown ids raise
        :class:`~repro.robustness.errors.ConfigError`.
    stats:
        Optional dict, filled in place with run telemetry: ``passes``
        (list of ``{"id", "seconds", "findings"}`` in execution
        order), ``parse_counts`` (the project's ``(relpath, kind)``
        ledger) and ``files_parsed``.  Drives ``repro lint --stats``
        and the exactly-once-parse assertion in the test suite.

    Returns
    -------
    list of Finding
        Suppression-filtered, sorted by (path, line, pass id).
    """
    import time
    registry = registered_passes()
    if select is None:
        selected = list(registry)
    else:
        selected = list(select)
        unknown = sorted(set(selected) - set(registry))
        if unknown:
            raise ConfigError(
                f"unknown lint pass(es) {unknown}; available:"
                f" {sorted(registry)}"
            )
    project = Project(root)
    if not project.modules:
        raise ConfigError(
            f"no Python modules under {pathlib.Path(root) / SOURCE_ROOT};"
            " pass the project root (the directory containing"
            " src/repro)"
        )
    findings = []
    for module in project.modules:
        if module.parse_error is not None:
            findings.append(Finding(
                path=module.relpath,
                line=module.parse_error.lineno or 1,
                pass_id="parse",
                message=f"file does not parse: {module.parse_error.msg}",
            ))
    pass_stats = []
    for pass_id in selected:
        lint_pass = registry[pass_id]()
        started = time.perf_counter()
        reported = 0
        for module in project.modules:
            if module.tree is None:
                continue
            for finding in lint_pass.check_module(module, project):
                if not module.suppressed(finding.line, pass_id):
                    findings.append(finding)
                    reported += 1
        for finding in lint_pass.check_project(project):
            module = project.module(finding.path)
            if module is None or not module.suppressed(
                finding.line, pass_id
            ):
                findings.append(finding)
                reported += 1
        pass_stats.append({
            "id": pass_id,
            "seconds": time.perf_counter() - started,
            "findings": reported,
        })
    if stats is not None:
        stats["passes"] = pass_stats
        stats["parse_counts"] = dict(project.parse_counts)
        stats["files_parsed"] = len(
            {relpath for relpath, _ in project.parse_counts}
        )
    return sorted(findings)
