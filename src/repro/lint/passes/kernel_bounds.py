"""kernel-bounds: every C kernel subscript is proved in bounds.

The compiled kernels index dozens of ctypes-shared buffers with
computed offsets; one out-of-bounds subscript corrupts a neighbouring
column or segfaults the sweep pool, and no test tier can prove the
*absence* of such an index.  This pass runs the interval abstract
interpreter (:mod:`repro.lint.certify`) over each contracted kernel
and reports every array access whose index interval is not provably
inside the declared buffer length — the finding carries the C line
and the interval that failed, e.g.
``subscript ops[i]: index in [0, n], ops length n``.

This pass also owns the certification's shared diagnostics: a kernel
that fails to parse, and annotation hygiene (a ``certify: assume`` or
a C suppression without a ``-- reason`` justification) — exactly one
pass reports them, so a single defect stays a single finding.

Suppression uses C block comments
(``/* reprolint: disable=kernel-bounds -- why */``): trailing on the
flagged line, or alone on the line above it.  The ``-- why`` reason is
mandatory — an unjustified suppression is itself a finding.
"""

from repro.lint.certify import certified_kernels
from repro.lint.framework import LintPass, register


@register
class KernelBoundsPass(LintPass):
    id = "kernel-bounds"
    description = (
        "every array subscript in the C kernels must be provably in"
        " bounds under the declared plan contract"
    )

    def check_project(self, project):
        for relpath, report in sorted(certified_kernels(project).items()):
            if report.error is not None:
                lineno, message = report.error
                yield self.finding(
                    relpath, max(lineno, 1),
                    f"kernel cannot be certified: {message}",
                )
                continue
            for lineno, message in report.issues:
                if not report.unit.suppressed(lineno, self.id):
                    yield self.finding(relpath, lineno, message)
            for obligation in report.failed("bounds"):
                if report.unit.suppressed(obligation.lineno, self.id):
                    continue
                yield self.finding(
                    relpath, obligation.lineno, obligation.message,
                )
