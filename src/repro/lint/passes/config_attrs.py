"""config-attrs: experiment configs may only set real dataclass fields.

A sweep that passes ``robb=256`` where it meant ``rob=256`` either
crashes mid-campaign or — with ``dataclasses.replace`` on a config the
call site built itself — silently measures the wrong machine.  The
runtime layer already rejects unknown ``MachineConfig.named``
overrides, but only when that configuration is actually reached; a
typo in the last point of a 40-point grid survives until hour N.  This
pass checks every config-constructing call in ``experiments/``
statically, against the real dataclass fields.
"""

import ast
import dataclasses

from repro.lint.astutil import call_name
from repro.lint.framework import LintPass, register

SCOPE_PREFIX = "src/repro/experiments/"


def _machine_fields():
    from repro.core.config import MachineConfig

    return frozenset(f.name for f in dataclasses.fields(MachineConfig))


def _cyclesim_fields():
    from repro.cyclesim.config import CycleSimConfig

    return frozenset(f.name for f in dataclasses.fields(CycleSimConfig))


@register
class ConfigAttrsPass(LintPass):
    id = "config-attrs"
    description = (
        "keyword arguments to MachineConfig/CycleSimConfig"
        " constructors and dataclasses.replace must name real fields"
    )

    def check_module(self, module, project):
        if not module.relpath.startswith(SCOPE_PREFIX):
            return
        machine = _machine_fields()
        cyclesim = _cyclesim_fields()
        targets = {
            "MachineConfig": ("MachineConfig", machine),
            "MachineConfig.named": ("MachineConfig", machine),
            "MachineConfig.runahead_machine": ("MachineConfig", machine),
            "CycleSimConfig": ("CycleSimConfig", cyclesim),
            "CycleSimConfig.from_machine": ("CycleSimConfig", cyclesim),
            "dataclasses.replace": ("the config", machine | cyclesim),
            "replace": ("the config", machine | cyclesim),
        }
        for node in ast.walk(module.tree):
            name = call_name(node) if isinstance(node, ast.Call) else None
            if name is None:
                continue
            matched = targets.get(name)
            if matched is None:
                # Qualified spellings like config.MachineConfig.named.
                for suffix, entry in targets.items():
                    if "." in suffix and name.endswith("." + suffix):
                        matched = entry
                        break
            if matched is None:
                continue
            owner, valid = matched
            for kw in node.keywords:
                if kw.arg is not None and kw.arg not in valid:
                    yield self.finding(
                        module, node.lineno,
                        f"{name}(...) sets {kw.arg!r}, which is not a"
                        f" field of {owner}; valid fields:"
                        f" {sorted(valid)}",
                    )
