"""exhibit-registry: exhibit modules and the EXHIBITS map agree.

``repro exhibit all``, the fail-soft runner, the report generator and
the benchmark suite all iterate ``repro.experiments.EXHIBITS``.  An
exhibit module that exists on disk but is missing from the registry is
silently never run (a reproduction that quietly stops reproducing);
a registry entry whose module is gone (or lost its ``run`` function)
fails at dispatch time.  This pass cross-checks both directions
statically.
"""

import ast
import re

from repro.lint.astutil import str_constant
from repro.lint.framework import LintPass, register

REGISTRY_PATH = "src/repro/experiments/__init__.py"

#: Filenames under experiments/ that are exhibit modules by convention.
_EXHIBIT_FILE = re.compile(r"^(figure|table)[\w]*\.py$")


def _find_exhibits_dict(tree):
    """The ``EXHIBITS = {...}`` dict node, or ``None``."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "EXHIBITS":
                    if isinstance(node.value, ast.Dict):
                        return node.value
    return None


def _defines_run(tree):
    return any(
        isinstance(node, ast.FunctionDef) and node.name == "run"
        for node in tree.body
    )


@register
class ExhibitRegistryPass(LintPass):
    id = "exhibit-registry"
    description = (
        "every exhibit module is registered in EXHIBITS and every"
        " EXHIBITS entry resolves to a module with run()"
    )

    def check_project(self, project):
        registry_module = project.module(REGISTRY_PATH)
        if registry_module is None or registry_module.tree is None:
            return
        exhibits = _find_exhibits_dict(registry_module.tree)
        if exhibits is None:
            yield self.finding(
                registry_module, 1,
                "no EXHIBITS dict literal found; the exhibit registry"
                " must be a statically checkable module-level dict",
            )
            return

        registered = {}
        for key, value in zip(exhibits.keys, exhibits.values):
            name = str_constant(key)
            target = str_constant(value)
            if name is None or target is None:
                yield self.finding(
                    registry_module, key.lineno,
                    "EXHIBITS entries must be string literals",
                )
                continue
            registered[name] = (target, key.lineno)

        # Registered -> on disk, with a run() entry point.
        for name, (target, lineno) in registered.items():
            relpath = "src/" + target.replace(".", "/") + ".py"
            module = project.module(relpath)
            if module is None:
                yield self.finding(
                    registry_module, lineno,
                    f"exhibit {name!r} is registered as {target} but"
                    f" {relpath} does not exist",
                )
            elif module.tree is not None and not _defines_run(module.tree):
                yield self.finding(
                    registry_module, lineno,
                    f"exhibit {name!r} module {target} defines no"
                    " top-level run() function",
                )

        # On disk -> registered.
        registered_paths = {
            "src/" + target.replace(".", "/") + ".py"
            for target, _ in registered.values()
        }
        prefix = "src/repro/experiments/"
        for module in project.modules:
            if not module.relpath.startswith(prefix):
                continue
            filename = module.relpath[len(prefix):]
            if "/" in filename or not _EXHIBIT_FILE.match(filename):
                continue
            if module.relpath not in registered_paths:
                yield self.finding(
                    module, 1,
                    f"exhibit module {module.relpath} is not registered"
                    " in repro.experiments.EXHIBITS; it will never run"
                    " under `repro exhibit all`",
                )
