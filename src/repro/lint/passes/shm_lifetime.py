"""shm-lifetime: published plans must be released on every CFG path.

The zero-copy sweep protocol (:mod:`repro.analysis.shm`) is
parent-owned: whoever calls ``publish_plan`` must ``unpublish_plan``
the handle on *every* exit path — success, failure, and killed-worker
paths alike — or the segment outlives the process in ``/dev/shm``
until reboot.  Attachments (``attach_plan``) must reach ``close()``
the same way, and a raw ``SharedMemory(create=True)`` segment must
reach ``unlink()``.  The contract is documented and tested, but
nothing enforced it at new call sites; this pass runs the typestate
engine (:mod:`repro.lint.flow.typestate`) over every scope, exception
edges included, and reports:

* a **leak**: an acquisition from which some CFG path reaches the
  scope exit without the matching release — the finding names the
  leaking path's line numbers;
* a **use after release**: ``attach_plan`` on a handle after
  ``unpublish_plan`` (the segment is gone; workers would die), or any
  operation on an already-unlinked segment.

Ownership transfers are respected, not flagged: a handle that is
returned, stored into a container (``handles[key] = publish_plan(...)``
— the real sweep's pattern, released in its ``finally``), aliased or
passed to an unrecognised call leaves the scope's responsibility.
Module-local helpers that transitively call ``unpublish_plan`` count
as releases at their call sites (resolved through
:class:`~repro.lint.flow.summaries.ModuleSummaries`), so wrapping the
release in a ``_cleanup()`` helper does not read as an escape.
"""

import ast

from repro.lint.astutil import call_name
from repro.lint.flow.dataflow import own_expressions
from repro.lint.flow.summaries import ModuleSummaries
from repro.lint.flow.typestate import (
    Event,
    TypestateSpec,
    check_module_scopes,
)
from repro.lint.framework import LintPass, register

#: (state, op) -> new state.  Missing pairs are protocol violations.
_TRANSITIONS = {
    ("published", "attach"): "published",
    ("published", "unpublish"): "released",
    ("published", "query"): "published",
    ("released", "unpublish"): "released",   # explicitly idempotent
    ("released", "query"): "released",       # plan_is_published is a probe
    ("attached", "close"): "detached",
    ("attached", "query"): "attached",
    ("detached", "close"): "detached",       # AttachedPlan.close is safe
    ("detached", "query"): "detached",
    ("segment-open", "close"): "segment-closed",
    ("segment-open", "unlink"): "segment-unlinked",
    ("segment-open", "query"): "segment-open",
    ("segment-closed", "close"): "segment-closed",
    ("segment-closed", "unlink"): "segment-unlinked",
    ("segment-closed", "query"): "segment-closed",
    ("segment-unlinked", "close"): "segment-unlinked",
    ("segment-unlinked", "query"): "segment-unlinked",
}

_LEAK_REMEDY = {
    "published": (
        "never reaches unpublish_plan(); the /dev/shm segment (or"
        " spill file) outlives the sweep — release it in a finally"
        " block"
    ),
    "attached": (
        "never reaches close(); the worker keeps the whole plan"
        " buffer mapped — close the attachment in a finally block"
    ),
    "segment-open": (
        "never reaches unlink(); the segment persists in /dev/shm"
        " until reboot"
    ),
    "segment-closed": (
        "is closed but never unlinked; the segment persists in"
        " /dev/shm until reboot"
    ),
}

_VIOLATION_DETAIL = {
    ("released", "attach"): (
        "the segment was already unpublished — workers attaching now"
        " die with TraceFormatError"
    ),
    ("segment-unlinked", "unlink"): (
        "the segment was already unlinked — a second unlink raises"
    ),
}


def _last_segment(dotted):
    return dotted.rsplit(".", 1)[-1] if dotted else None


def _name_args(call):
    for arg in call.args:
        if isinstance(arg, ast.Name):
            yield arg.id


class ShmLifetimeSpec(TypestateSpec):
    name = "shared plan"
    final_states = frozenset({"released", "detached", "segment-unlinked"})
    release_ops = frozenset({"unpublish", "close", "unlink"})
    include_exceptional = True

    #: Function-call events: callee last segment -> op applied to every
    #: plain-name argument.
    _CALL_OPS = {
        "unpublish_plan": "unpublish",
        "attach_plan": "attach",
        "plan_is_published": "query",
    }
    #: Method-call events: attribute name -> op on the receiver.
    _METHOD_OPS = {"close": "close", "unlink": "unlink"}

    def __init__(self):
        self._release_wrappers = frozenset()

    def prepare(self, tree):
        """Find module-local helpers that transitively unpublish.

        ``_cleanup(handle)`` wrapping ``unpublish_plan(handle)`` must
        count as the release itself; otherwise every wrapper call would
        escape the handle and the pass would go blind exactly where
        teams consolidate their teardown.
        """
        summaries = ModuleSummaries(tree)
        wrappers = set()
        for func_name in summaries.functions:
            for reachable in summaries.transitive_closure(func_name):
                info = summaries.functions.get(reachable)
                if info is None:
                    continue
                if self._calls_unpublish(info.node):
                    wrappers.add(func_name)
                    break
        self._release_wrappers = frozenset(wrappers)

    @staticmethod
    def _calls_unpublish(func_node):
        for node in ast.walk(func_node):
            if isinstance(node, ast.Call) and \
                    _last_segment(call_name(node)) == "unpublish_plan":
                return True
        return False

    def acquisitions(self, stmt):
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)):
            return ()
        var = stmt.targets[0].id
        callee = _last_segment(call_name(stmt.value))
        if callee == "publish_plan":
            return ((var, "published"),)
        if callee == "attach_plan":
            return ((var, "attached"),)
        if callee == "SharedMemory" and any(
            kw.arg == "create" and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in stmt.value.keywords
        ):
            return ((var, "segment-open"),)
        return ()

    def events(self, stmt):
        events = []
        for expr in own_expressions(stmt):
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                dotted = call_name(node)
                last = _last_segment(dotted)
                op = self._CALL_OPS.get(last)
                if op is None and last in self._release_wrappers \
                        and "." not in (dotted or "."):
                    op = "unpublish"
                if op is not None:
                    for var in _name_args(node):
                        events.append(Event(var, op, node.lineno))
                    continue
                func = node.func
                if isinstance(func, ast.Attribute) and \
                        isinstance(func.value, ast.Name) and \
                        func.attr in self._METHOD_OPS:
                    events.append(Event(
                        func.value.id, self._METHOD_OPS[func.attr],
                        node.lineno,
                    ))
        return events

    def transition(self, state, op):
        return _TRANSITIONS.get((state, op))

    def violation_message(self, var, state, op):
        detail = _VIOLATION_DETAIL.get(
            (state, op), f"the plan protocol does not allow {op} in"
                         f" state {state}"
        )
        return f"{op} on {var!r} after it reached state {state}: {detail}"

    def leak_message(self, var, state, path):
        remedy = _LEAK_REMEDY.get(
            state, f"may exit the scope in state {state}"
        )
        return (
            f"shared plan {var!r} {remedy} (leaking path: {path};"
            " exception edges count)"
        )


@register
class ShmLifetimePass(LintPass):
    id = "shm-lifetime"
    description = (
        "publish_plan/attach_plan/SharedMemory acquisitions must reach"
        " unpublish/close/unlink on every CFG path, exception edges"
        " included"
    )

    #: Only modules mentioning the protocol's entry points are solved;
    #: everything else trivially has no acquisitions.
    _TRIGGERS = ("publish_plan", "attach_plan", "SharedMemory")

    def check_module(self, module, project):
        if not any(trigger in module.source for trigger in self._TRIGGERS):
            return
        for lineno, message in check_module_scopes(
            module.tree, ShmLifetimeSpec()
        ):
            yield self.finding(module, lineno, message)
