"""determinism: engine and analysis code must be bit-reproducible.

The reproduction's contract (and the engine-equivalence suite) is that
a simulation is a pure function of ``(trace, seed, config)``.  Three
AST-detectable ways to break that:

* drawing randomness from *module-level* ``random`` / ``np.random``
  state (or constructing an RNG with no seed) — results then depend on
  interpreter-global state and import order;
* reading the wall clock (``time.time``, ``datetime.now``) inside an
  engine — timestamps belong in reports, not in simulated results;
* iterating a ``set`` to produce ordered output — CPython set order
  varies with insertion history and hash randomisation.

Scope: the engine/analysis packages.  ``experiments/`` (which times
exhibits for its summary tables), ``robustness/`` (the fault-injection
harness), ``lint/`` and the CLI are exempt.
"""

import ast

from repro.lint.astutil import call_name
from repro.lint.framework import LintPass, register

EXEMPT_PREFIXES = (
    "src/repro/experiments/",
    "src/repro/robustness/",
    "src/repro/lint/",
)
EXEMPT_FILES = (
    "src/repro/cli.py",
    "src/repro/__main__.py",
)

#: Module-level sampling functions of the stdlib ``random`` module.
_RANDOM_FUNCS = frozenset({
    "random", "randrange", "randint", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "seed", "betavariate", "expovariate",
    "normalvariate", "lognormvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "triangular", "getrandbits", "randbytes",
})

#: numpy.random constructors that are fine *when given a seed*.
_SEEDABLE = frozenset({"default_rng", "RandomState", "Generator",
                       "SeedSequence"})

_WALL_CLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.now",
    "datetime.utcnow",
    "datetime.date.today",
    "date.today",
})


def _is_seedless(call):
    return not call.args and not call.keywords


@register
class DeterminismPass(LintPass):
    id = "determinism"
    description = (
        "engine/analysis code may not use unseeded RNGs, wall-clock"
        " reads, or set-iteration ordering"
    )

    def check_module(self, module, project):
        if module.relpath.startswith(EXEMPT_PREFIXES):
            return
        if module.relpath in EXEMPT_FILES:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.For):
                yield from self._check_set_iteration(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    yield from self._check_set_iteration(
                        module, generator.iter
                    )

    def _check_call(self, module, node):
        name = call_name(node)
        if name is None:
            return
        if name in _WALL_CLOCK:
            yield self.finding(
                module, node.lineno,
                f"{name}() reads the wall clock in engine/analysis code;"
                " results must be a pure function of (trace, seed,"
                " config)",
            )
            return
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in _RANDOM_FUNCS:
                yield self.finding(
                    module, node.lineno,
                    f"{name}() draws from module-level random state; use"
                    " an explicitly seeded random.Random(seed) instance",
                )
            elif parts[1] == "Random" and _is_seedless(node):
                yield self.finding(
                    module, node.lineno,
                    "random.Random() without a seed is nondeterministic;"
                    " pass an explicit seed",
                )
        elif len(parts) >= 2 and parts[-2] == "random" and \
                parts[0] in ("np", "numpy"):
            func = parts[-1]
            if func in _SEEDABLE:
                if _is_seedless(node):
                    yield self.finding(
                        module, node.lineno,
                        f"{name}() without a seed is nondeterministic;"
                        " pass an explicit seed",
                    )
            else:
                yield self.finding(
                    module, node.lineno,
                    f"{name}() uses numpy's global RNG state; use an"
                    " explicitly seeded np.random.default_rng(seed)",
                )

    def _check_set_iteration(self, module, iter_node):
        is_set = (
            isinstance(iter_node, (ast.Set, ast.SetComp))
            or (isinstance(iter_node, ast.Call)
                and call_name(iter_node) in ("set", "frozenset"))
        )
        if is_set:
            yield self.finding(
                module, iter_node.lineno,
                "iterating a set feeds nondeterministic ordering into"
                " results; sort it first (sorted(...))",
            )
