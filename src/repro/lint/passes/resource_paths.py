"""resource-paths: write handles must be closed on every CFG path.

A file handle opened for writing and dropped on *any* path — an early
``return``, an exception caught by a handler that bails out, a loop
``break`` — leaves buffered data unflushed and, on some platforms, the
file locked.  In a reproduction pipeline that shows up as a truncated
archive that the next stage half-reads.  The atomic write layer
(:mod:`repro.robustness.atomic`) and ``with`` blocks both make this
impossible by construction; this pass checks the remaining bare
``handle = open(path, "w")`` form against the CFG: from the opening
statement, **no** path may reach the scope's exit without passing a
closing statement (``handle.close()``, ``handle.__exit__``, ``with
handle:`` / ``with closing(handle):``).  Exception edges participate,
so a ``try`` body's failure path is checked just like the normal one.

An open-for-write whose handle is not kept at all (``open(p,
"w").write(...)``) can never be closed and is flagged directly.
"""

import ast

from repro.lint.astutil import call_name, open_write_mode
from repro.lint.flow.cfg import build_cfg, iter_scopes
from repro.lint.flow.dataflow import own_expressions
from repro.lint.framework import LintPass, register

#: Callees that return an open file handle.
_OPENERS = frozenset({
    "open", "io.open", "os.fdopen", "codecs.open",
    "gzip.open", "bz2.open", "lzma.open",
})

#: Callees that adapt a handle into a closing context manager.
_CLOSING_WRAPPERS = frozenset({"contextlib.closing", "closing"})


def _open_write_calls(stmt):
    """Open-for-write calls in the expressions *stmt* itself evaluates."""
    for expr in own_expressions(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and call_name(node) in _OPENERS:
                mode = open_write_mode(node)
                if mode is not None:
                    yield node, mode


def _with_context_exprs(stmt):
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    return []


def _closes(stmt, name):
    """True when *stmt* closes the handle bound to *name*."""
    for expr in own_expressions(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                callee = call_name(node)
                if callee in (f"{name}.close", f"{name}.__exit__"):
                    return True
                if callee in _CLOSING_WRAPPERS and any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in node.args
                ):
                    return True
    for expr in _with_context_exprs(stmt):
        if isinstance(expr, ast.Name) and expr.id == name:
            return True  # `with handle:` — closed by __exit__
    return False


@register
class ResourcePathsPass(LintPass):
    id = "resource-paths"
    description = (
        "a handle opened for writing must reach close()/__exit__ on"
        " every control-flow path, including exception edges"
    )

    def check_module(self, module, project):
        for scope_name, scope in iter_scopes(module.tree):
            cfg = build_cfg(scope, name=scope_name)
            yield from self._check_scope(module, cfg)

    def _check_scope(self, module, cfg):
        for index in cfg.statement_nodes():
            stmt = cfg.nodes[index]
            handle_name = None
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                handle_name = stmt.targets[0].id
            context_exprs = _with_context_exprs(stmt)
            for call, mode in _open_write_calls(stmt):
                if call in context_exprs or any(
                    call in ast.walk(e) for e in context_exprs
                ):
                    continue  # `with open(...)` closes itself
                if handle_name is not None and stmt.value is call:
                    yield from self._check_paths(
                        module, cfg, index, stmt, handle_name, mode
                    )
                else:
                    yield self.finding(
                        module, call.lineno,
                        f"open(..., {mode!r}) handle is not kept and"
                        " can never be closed; bind it, use `with`, or"
                        " use repro.robustness.atomic",
                    )

    def _check_paths(self, module, cfg, open_index, stmt, name, mode):
        closers = {
            index for index in cfg.statement_nodes()
            if _closes(cfg.nodes[index], name)
        }
        # Can the scope exit be reached from the open without passing
        # a closing statement?
        stack = [
            succ for succ in cfg.succ[open_index] if succ not in closers
        ]
        seen = set(stack)
        while stack:
            node = stack.pop()
            if node == cfg.exit:
                yield self.finding(
                    module, stmt.lineno,
                    f"handle {name!r} opened with mode {mode!r} may"
                    " leave the scope without being closed (a return,"
                    " break or exception path skips its close());"
                    " close it in a finally block, use `with`, or use"
                    " repro.robustness.atomic",
                )
                return
            for succ in cfg.succ[node]:
                if succ not in seen and succ not in closers:
                    seen.add(succ)
                    stack.append(succ)
