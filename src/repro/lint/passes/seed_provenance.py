"""seed-provenance: RNG seeds must come from explicit configuration.

The determinism pass (PR 3) catches a *seedless* ``default_rng()``;
it cannot catch the subtler bug where a seed is passed but *flows from
a nondeterministic source*::

    stamp = int(time.time())
    ...
    rng = np.random.default_rng(stamp)     # seeded, yet irreproducible

This pass runs the taint analysis over every scope's CFG: wall-clock
reads, OS entropy (``os.urandom``, ``secrets``), UUIDs and process
ids introduce taint labels; assignments, arithmetic, f-strings and
module-local helper calls propagate them (helper returns are
summarised via the module call graph, so ``seed = fresh_seed()`` is
tracked through ``fresh_seed``'s own body).  Any seeding call —
``default_rng(x)``, ``random.seed(x)``, ``random.Random(x)``,
``RandomState(x)``, ``SeedSequence(x)``, ``rng.seed(x)`` — whose
argument carries such a label is a violation, wherever it appears.

Values with no tracked source (function parameters, config attributes,
CLI arguments, literals) are considered explicit seeds and pass.
"""

import ast

from repro.lint.astutil import call_name
from repro.lint.flow.cfg import build_cfg, iter_scopes
from repro.lint.flow.dataflow import TaintAnalysis, own_expressions
from repro.lint.flow.summaries import ModuleSummaries
from repro.lint.framework import LintPass, register

#: Taint sources: dotted callee -> label.
TAINT_SOURCES = {
    "time.time": "wall-clock",
    "time.time_ns": "wall-clock",
    "time.monotonic": "wall-clock",
    "time.monotonic_ns": "wall-clock",
    "time.perf_counter": "wall-clock",
    "time.perf_counter_ns": "wall-clock",
    "datetime.datetime.now": "wall-clock",
    "datetime.now": "wall-clock",
    "datetime.datetime.utcnow": "wall-clock",
    "datetime.utcnow": "wall-clock",
    "datetime.date.today": "wall-clock",
    "date.today": "wall-clock",
    "os.urandom": "os-entropy",
    "secrets.token_bytes": "os-entropy",
    "secrets.token_hex": "os-entropy",
    "secrets.randbits": "os-entropy",
    "secrets.randbelow": "os-entropy",
    "uuid.uuid1": "uuid",
    "uuid.uuid4": "uuid",
    "os.getpid": "process-id",
}

#: Last path components that construct/reseed an RNG from their args.
_SINK_TAILS = frozenset({"default_rng", "RandomState", "SeedSequence"})


def _source_labels(dotted_name):
    label = TAINT_SOURCES.get(dotted_name)
    return {label} if label is not None else set()


def _is_seed_sink(dotted_name):
    parts = dotted_name.split(".")
    if parts[-1] in _SINK_TAILS:
        return True
    if dotted_name in ("random.seed", "random.Random"):
        return True
    # rng.seed(x) — reseeding an RNG instance.
    return len(parts) == 2 and parts[-1] == "seed"


@register
class SeedProvenancePass(LintPass):
    id = "seed-provenance"
    description = (
        "RNG seeds may not flow from wall-clock, OS entropy, uuid or"
        " pid sources — only from explicit config/CLI values"
    )

    def check_module(self, module, project):
        summaries = ModuleSummaries(module.tree)
        analysis = TaintAnalysis(_source_labels, summaries)
        # Module-level assignments seed the environment of every
        # function scope, so `STAMP = time.time()` at import time
        # taints a later `default_rng(STAMP)` inside a function.
        module_cfg = build_cfg(module.tree)
        module_states = analysis.solve(module_cfg)
        module_env = module_states[module_cfg.exit]
        for scope_name, scope in iter_scopes(module.tree):
            if isinstance(scope, ast.Module):
                cfg, states = module_cfg, module_states
            else:
                cfg = build_cfg(scope, name=scope_name)
                # Parameters shadow module globals and arrive untainted.
                params = {a.arg for a in ast.walk(scope.args)
                          if isinstance(a, ast.arg)}
                env = {name: taint for name, taint in module_env.items()
                       if name not in params}
                states = analysis.solve(cfg, entry_state=env)
            yield from self._check_scope(module, analysis, cfg, states)

    def _check_scope(self, module, analysis, cfg, states):
        for index in cfg.statement_nodes():
            stmt = cfg.nodes[index]
            for expr in own_expressions(stmt):
                for node in ast.walk(expr):
                    if not isinstance(node, ast.Call):
                        continue
                    name = call_name(node)
                    if name is None or not _is_seed_sink(name):
                        continue
                    args = list(node.args)
                    args += [kw.value for kw in node.keywords]
                    labels = set()
                    for arg in args:
                        labels |= analysis.taint_of(arg, states[index])
                    if labels:
                        pretty = ", ".join(sorted(labels))
                        yield self.finding(
                            module, node.lineno,
                            f"seed passed to {name}() is tainted by"
                            f" {pretty}; seeds must come from explicit"
                            " config/CLI values so runs are"
                            " reproducible",
                        )
