"""kernel-constants: C ``#define`` tables bit-identical to Python enums.

The C kernel hard-codes every enum it shares with the Python engines:
opcodes (``OP_*`` ↔ :class:`repro.isa.opclass.OpClass`), inhibitor
indices (``INH_*`` ↔ the definition order of
:class:`repro.core.termination.Inhibitor`), execute statuses (``ST_*``
↔ ``ckernel._EXPECTED_STATUSES``) and the ``NOT_EXECUTED`` sentinel
(↔ ``repro.core.mlpsim.NOT_EXECUTED``).  Runtime verification in
``ckernel._verify_constants`` covers the opcode values and the
inhibitor *count* — but not the inhibitor order, the statuses or the
sentinel, which until this pass agreed only by luck.

Checks (each disagreeing constant is one finding naming the C and
Python lines):

* every ``OP_<NAME>`` define equals ``OpClass.<NAME>``, and every
  ``OpClass`` member has a define;
* every ``INH_<NAME>`` define equals the definition index of
  ``Inhibitor.<NAME>``, every member has a define, and ``INH_COUNT``
  equals the member count (which is also what sizes the
  ``InhibitorCounts`` tally);
* ``ckernel.INHIBITOR_ORDER`` lists the ``Inhibitor`` members in
  definition order — the Python-side half of the same contract, which
  the runtime check never proves;
* every ``ST_<NAME>`` define equals ``ckernel._EXPECTED_STATUSES``;
* the ``NOT_EXECUTED`` defines agree across the languages.

If the C file is present but the extractor recovers no constants at
all, that is reported too — a silent extraction failure must not read
as "everything matches" (CI's ``lint-parity`` smoke also guards this
by mutating a define and expecting a finding).
"""

from repro.lint.clang_parity.pyextract import (
    attr_tuple,
    enum_members,
    int_constant,
    int_dict,
)
from repro.lint.framework import LintPass, register

C_KERNEL_PATH = "src/repro/core/_mlpsim_kernel.c"
CKERNEL_PATH = "src/repro/core/ckernel.py"
OPCLASS_PATH = "src/repro/isa/opclass.py"
TERMINATION_PATH = "src/repro/core/termination.py"
ENGINE_PATH = "src/repro/core/mlpsim.py"


@register
class KernelConstantsPass(LintPass):
    id = "kernel-constants"
    description = (
        "opcode/inhibitor/status/NOT_EXECUTED constants must be"
        " bit-identical between _mlpsim_kernel.c and the Python enums"
    )

    def check_project(self, project):
        extract = project.c_extract(C_KERNEL_PATH)
        if extract is None:
            return  # kernel-abi reports a missing C file
        if not extract.defines:
            module = project.module(CKERNEL_PATH)
            if module is not None:
                yield self.finding(
                    module, 1,
                    f"no #define constants extracted from"
                    f" {C_KERNEL_PATH}; the parity extractor matched"
                    " nothing, which would make every constant check"
                    " vacuous",
                )
            return
        yield from self._check_prefixed_table(
            project, extract, "OP_", OPCLASS_PATH,
            self._opclass_values(project), "OpClass",
        )
        inhibitors = self._inhibitor_order(project)
        yield from self._check_prefixed_table(
            project, extract, "INH_", TERMINATION_PATH,
            inhibitors, "Inhibitor definition order",
            skip={"INH_COUNT"},
        )
        yield from self._check_inh_count(project, extract, inhibitors)
        yield from self._check_inhibitor_order_tuple(project, inhibitors)
        yield from self._check_statuses(project, extract)
        yield from self._check_not_executed(project, extract)

    # -- Python-side tables --------------------------------------------

    def _opclass_values(self, project):
        module = project.module(OPCLASS_PATH)
        if module is None or module.tree is None:
            return None
        members = enum_members(module.tree, "OpClass")
        if members is None:
            return None
        return {
            name: (value, lineno)
            for name, value, lineno in members
            if isinstance(value, int)
        }

    def _inhibitor_order(self, project):
        module = project.module(TERMINATION_PATH)
        if module is None or module.tree is None:
            return None
        members = enum_members(module.tree, "Inhibitor")
        if not members:
            return None
        return {
            name: (index, lineno)
            for index, (name, _value, lineno) in enumerate(members)
        }

    # -- define-table diffing ------------------------------------------

    def _check_prefixed_table(self, project, extract, prefix, py_path,
                              expected, table_label, skip=frozenset()):
        if expected is None:
            return
        module = project.module(py_path)
        defines = {
            name: define for name, define in extract.defines.items()
            if name.startswith(prefix) and name not in skip
        }
        if not defines:
            yield self.finding(
                module, 1,
                f"{table_label} exists but no {prefix}* defines were"
                f" extracted from {C_KERNEL_PATH}; the C kernel and the"
                " Python table cannot be compared",
            )
            return
        for name, define in sorted(defines.items(),
                                   key=lambda kv: kv[1].lineno):
            member = name[len(prefix):]
            if member not in expected:
                yield self.finding(
                    module, 1,
                    f"{C_KERNEL_PATH}:{define.lineno} defines {name}"
                    f" but {table_label} has no member {member!r}",
                )
                continue
            value, lineno = expected[member]
            if define.value != value:
                got = define.value if define.value is not None \
                    else f"<unevaluable: {define.text}>"
                yield self.finding(
                    module, lineno,
                    f"{member} is {value} here but"
                    f" {C_KERNEL_PATH}:{define.lineno} defines"
                    f" {name} as {got}; the kernel would"
                    " mis-decode every record",
                )
        for member, (_value, lineno) in sorted(expected.items()):
            if prefix + member not in defines:
                yield self.finding(
                    module, lineno,
                    f"{table_label} member {member} has no"
                    f" {prefix}{member} define in {C_KERNEL_PATH};"
                    " the C kernel does not know this value",
                )

    # -- individual contracts ------------------------------------------

    def _check_inh_count(self, project, extract, inhibitors):
        if inhibitors is None:
            return
        module = project.module(TERMINATION_PATH)
        count = extract.define_value("INH_COUNT")
        if count is None:
            return  # absence of the whole INH_* table is reported above
        if count != len(inhibitors):
            define = extract.defines["INH_COUNT"]
            yield self.finding(
                module, 1,
                f"INH_COUNT is {count} ({C_KERNEL_PATH}:{define.lineno})"
                f" but Inhibitor has {len(inhibitors)} members — the"
                " kernel's inhibitors[] array and the InhibitorCounts"
                " tally would disagree in size",
            )

    def _check_inhibitor_order_tuple(self, project, inhibitors):
        """ckernel.INHIBITOR_ORDER must equal Inhibitor definition order.

        This is the half of the contract ``_verify_constants`` never
        checks: it compares lengths only, so a swapped pair in either
        table mislabels every inhibitor count without failing a test
        that does not inspect per-inhibitor values.
        """
        if inhibitors is None:
            return
        module = project.module(CKERNEL_PATH)
        if module is None or module.tree is None:
            return
        order = attr_tuple(module.tree, "INHIBITOR_ORDER")
        if order is None:
            return
        by_index = {index: name for name, (index, _l) in inhibitors.items()}
        for position, (attr, lineno) in enumerate(order):
            expected = by_index.get(position)
            if attr != expected:
                yield self.finding(
                    module, lineno,
                    f"INHIBITOR_ORDER[{position}] is"
                    f" {attr or '<not an Inhibitor member>'} but"
                    f" Inhibitor defines {expected or 'nothing'} at"
                    f" index {position} ({TERMINATION_PATH}); the C"
                    " kernel indexes inhibitors[] by definition order",
                )
                return
        if len(order) != len(inhibitors):
            yield self.finding(
                module, order[0][1] if order else 1,
                f"INHIBITOR_ORDER lists {len(order)} members but"
                f" Inhibitor defines {len(inhibitors)}",
            )

    def _check_statuses(self, project, extract):
        module = project.module(CKERNEL_PATH)
        if module is None or module.tree is None:
            return
        statuses = int_dict(module.tree, "_EXPECTED_STATUSES")
        if statuses is None:
            return
        expected, dict_lineno = statuses
        table = {
            name: (value, dict_lineno) for name, value in expected.items()
        }
        yield from self._check_prefixed_table(
            project, extract, "ST_", CKERNEL_PATH, table,
            "_EXPECTED_STATUSES",
        )

    def _check_not_executed(self, project, extract):
        module = project.module(ENGINE_PATH)
        if module is None or module.tree is None:
            return
        py_value = int_constant(module.tree, "NOT_EXECUTED")
        define = extract.defines.get("NOT_EXECUTED")
        if py_value is None or define is None:
            return
        value, lineno = py_value
        if define.value != value:
            yield self.finding(
                module, lineno,
                f"NOT_EXECUTED is {value} here but"
                f" {C_KERNEL_PATH}:{define.lineno} defines"
                f" {define.value}; the sentinel must be bit-identical"
                " across the engines",
            )
