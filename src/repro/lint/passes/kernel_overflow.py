"""kernel-overflow: no signed C arithmetic can wrap.

Signed overflow is undefined behaviour in C — a wrapped accumulator
does not crash, it silently produces whatever the optimiser felt like,
and the Python/C equivalence suite only catches it when a test trace
happens to push a counter past its width.  This pass reuses the
interval fixpoint from :mod:`repro.lint.certify` and reports every
signed arithmetic result whose interval is not provably inside the
declared type width — e.g. a running total typed ``int32_t`` whose
interval reaches ``[0, +inf)`` under the contracted trace length.

Parse failures and annotation hygiene are reported by
``kernel-bounds`` (one pass owns each shared diagnostic); this pass
reports overflow obligations only.

Suppression uses C block comments
(``/* reprolint: disable=kernel-overflow -- why */``): trailing on the
flagged line, or alone on the line above it.  The ``-- why`` reason is
mandatory.
"""

from repro.lint.certify import certified_kernels
from repro.lint.framework import LintPass, register


@register
class KernelOverflowPass(LintPass):
    id = "kernel-overflow"
    description = (
        "every signed arithmetic result in the C kernels must be"
        " provably inside its declared type width"
    )

    def check_project(self, project):
        for relpath, report in sorted(certified_kernels(project).items()):
            if report.error is not None:
                continue  # kernel-bounds reports the parse failure
            seen = set()
            for obligation in report.failed("overflow"):
                if report.unit.suppressed(obligation.lineno, self.id):
                    continue
                # The checker proves both the arithmetic result and the
                # store of one statement; a too-narrow variable fails
                # both at once — one defect, one finding per line.
                if obligation.lineno in seen:
                    continue
                seen.add(obligation.lineno)
                yield self.finding(
                    relpath, obligation.lineno, obligation.message,
                )
