"""signal-safety: code reachable from a signal handler must be reentrant.

A SIGALRM handler runs *between two bytecodes of whatever the main
thread was doing* — possibly while it holds a lock, is halfway through
a buffered write, or is touching the worker pool's bookkeeping.  The
supervisor's deadline machinery
(:func:`repro.robustness.supervisor.wall_clock_deadline`) therefore
keeps its handler to a single ``raise``; this pass enforces that
discipline wherever a handler is registered.

Registration sites recognised:

* ``signal.signal(SIG, handler)`` — *handler* is the root;
* ``wall_clock_deadline(seconds, make_error)`` — *make_error* is
  invoked **from** the handler, so it is a root too.

From each root the pass takes the module-local transitive call closure
(:class:`~repro.lint.flow.summaries.ModuleSummaries` — nested handler
functions register under their plain name) and flags, in any reachable
function or lambda body:

* **lock allocation** (``threading.Lock()`` and friends) — the
  allocation is cheap, but a handler that makes locks invariably
  acquires them next, and acquiring against the interrupted holder
  deadlocks;
* **lock acquisition** (``.acquire()``) — same deadlock, directly;
* **non-atomic I/O** (``open``/``os.fdopen``/``print``/``time.sleep``)
  — interleaves with the interrupted frame's buffered output, or
  simply never returns in a handler that is supposed to unwind;
* **calling back into the pool** (``.submit()``, ``.apply_async()``,
  ``.map_async()``, ``.shutdown()``, ``.terminate()``) — pool state is
  mutated by the very loop the signal interrupted.  (``.join()`` is
  deliberately *not* flagged: joining a process from a handler is
  blocking but consistent, and the supervisor's kill-path does it on
  purpose from normal code reached after unwinding.)

Handlers that only raise — the supervisor's pattern — pass untouched.
"""

import ast

from repro.lint.astutil import call_name
from repro.lint.flow.dataflow import own_expressions
from repro.lint.flow.summaries import ModuleSummaries, _own_statements
from repro.lint.framework import LintPass, register

_LOCK_ALLOCATORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

_IO_CALLS = frozenset({
    "open", "io.open", "os.fdopen", "codecs.open", "print",
})

_SLEEP_CALLS = frozenset({"time.sleep", "sleep"})

_POOL_METHODS = frozenset({
    "submit", "apply_async", "map_async", "shutdown", "terminate",
})

def _handler_roots(tree):
    """``(handler_arg_node, registration_lineno)`` for every site."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = call_name(node)
        if dotted == "signal.signal" and len(node.args) >= 2:
            yield node.args[1], node.lineno
        elif dotted is not None and \
                dotted.rsplit(".", 1)[-1] == "wall_clock_deadline" \
                and len(node.args) >= 2:
            yield node.args[1], node.lineno


def _classify_call(node):
    """The unsafe-operation description for *node*, or ``None``."""
    dotted = call_name(node)
    if dotted in _LOCK_ALLOCATORS:
        return (
            f"allocates a lock ({dotted}); a handler that makes locks"
            " acquires them next, deadlocking against the interrupted"
            " holder"
        )
    if dotted in _IO_CALLS:
        return (
            f"performs non-atomic I/O ({dotted}); it interleaves with"
            " whatever buffered write the signal interrupted"
        )
    if dotted in _SLEEP_CALLS:
        return (
            "sleeps; the handler blocks the very thread it is supposed"
            " to unwind"
        )
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "acquire":
            return (
                "acquires a lock; if the interrupted frame holds it,"
                " the process deadlocks"
            )
        if func.attr in _POOL_METHODS:
            return (
                f"calls back into the worker pool (.{func.attr}());"
                " pool state is mutated by the loop the signal"
                " interrupted"
            )
    return None


@register
class SignalSafetyPass(LintPass):
    id = "signal-safety"
    description = (
        "functions reachable from signal handler registration may not"
        " allocate/acquire locks, do non-atomic I/O, or call back into"
        " the worker pool"
    )

    _TRIGGERS = ("signal.signal", "wall_clock_deadline")

    def check_module(self, module, project):
        if not any(trigger in module.source for trigger in self._TRIGGERS):
            return
        summaries = ModuleSummaries(module.tree)
        reported = set()  # (lineno, message): roots may share callees
        for handler, registration_line in _handler_roots(module.tree):
            for finding in self._check_root(
                module, summaries, handler, registration_line
            ):
                key = (finding.line, finding.message)
                if key not in reported:
                    reported.add(key)
                    yield finding

    def _check_root(self, module, summaries, handler, registration_line):
        roots = []
        inline_bodies = []
        if isinstance(handler, ast.Name):
            if handler.id in summaries.functions:
                roots.append(handler.id)
        elif isinstance(handler, ast.Lambda):
            inline_bodies.append(handler)
        # Anything else — SIG_IGN/SIG_DFL dispositions, a restored
        # previous handler, a bound method — is unresolvable here and
        # is skipped rather than guessed at.
        for lam in inline_bodies:
            for node in ast.walk(lam.body):
                if isinstance(node, ast.Call):
                    problem = _classify_call(node)
                    if problem is not None:
                        yield self.finding(
                            module, node.lineno,
                            f"handler registered at line"
                            f" {registration_line} {problem}",
                        )
                    elif isinstance(node.func, ast.Name) and \
                            node.func.id in summaries.functions:
                        roots.append(node.func.id)
        seen = set()
        for root in roots:
            for func_name in summaries.transitive_closure(root):
                if func_name in seen:
                    continue
                seen.add(func_name)
                info = summaries.functions.get(func_name)
                if info is None:
                    continue
                yield from self._check_function(
                    module, info.node, func_name, registration_line
                )

    def _check_function(self, module, func_node, func_name,
                        registration_line):
        for stmt in _own_statements(func_node.body):
            for expr in own_expressions(stmt):
                for node in ast.walk(expr):
                    if not isinstance(node, ast.Call):
                        continue
                    problem = _classify_call(node)
                    if problem is not None:
                        yield self.finding(
                            module, node.lineno,
                            f"{func_name}() is reachable from the"
                            f" signal handler registered at line"
                            f" {registration_line} and {problem}",
                        )
