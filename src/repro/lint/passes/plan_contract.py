"""plan-contract: the Python plan invariants match what the C proof assumed.

The kernel certification (``kernel-bounds`` / ``kernel-overflow``)
proves its obligations *under the contract facts* — declared ranges
for every plan column, every config field and the region length.
Those facts are only sound if the Python side establishes them, so
this pass closes the loop:

* the ``PLAN_CONTRACT`` / ``CYCLE_PLAN_CONTRACT`` module-level literal
  exists, constant-folds, and is token-for-token equal to the facts
  the certifier assumed (:mod:`repro.lint.certify.contracts`);
* its SHA-256 fingerprint matches the pin in
  :mod:`repro.lint.manifest` — changing a contracted range without
  ``repro lint --manifest-update`` (a reviewed manifest regen) is a
  finding;
* the runtime validator (``validate_plan_contract`` /
  ``validate_cycle_plan_contract``) is defined next to the literal;
* the validator call *dominates* the ``_kernel(...)`` invocation in
  the ctypes driver: an unconditional top-level statement of the
  driver function, lexically before the kernel call, so every path
  that reaches the kernel has checked the certified input ranges.

The checks short-circuit per contract, so a single-site edit yields
exactly one finding.  Fixture trees that lack the C kernel (or the
builder module) are skipped — there is nothing certified to contract
against.
"""

from repro.lint import manifest
from repro.lint.certify.contracts import kernel_contracts
from repro.lint.certify.pyfacts import contract_findings
from repro.lint.framework import LintPass, register


@register
class PlanContractPass(LintPass):
    id = "plan-contract"
    description = (
        "plan/config contract literals, their manifest fingerprints and"
        " the runtime validator calls must match the ranges the kernel"
        " certification assumed"
    )

    def check_project(self, project):
        for contract in kernel_contracts():
            if project.read_text(contract.path) is None:
                continue  # no kernel in this tree -> nothing certified
            pinned = manifest.PLAN_CONTRACT_FINGERPRINTS.get(
                contract.python_name
            )
            for relpath, lineno, message in contract_findings(
                project, contract, pinned
            ):
                yield self.finding(relpath, lineno, message)
