"""journal-protocol: append handles must write→flush→fsync, in order.

The sweep journal's crash-safety argument
(:mod:`repro.robustness.journal`) rests on one ordering: every
appended record is **written**, then **flushed** (user-space buffer to
the kernel), then **fsynced** (kernel to disk) before the supervisor
acts on it.  Skip the flush and the fsync syncs a file the record has
not reached; skip the fsync and a machine crash silently loses a
record the supervisor already trusted.  Both failure modes pass every
test that does not cut power.

This pass runs a typestate automaton over every handle opened in
append mode (``open(path, "a")`` — the journal's signature; read-side
and truncating opens are out of scope)::

    opened --write--> dirty --flush--> flushed --fsync--> synced

and reports:

* ``fsync`` while **dirty** (flush was skipped — the fsync is a no-op
  for the buffered record);
* ``close``/scope-exit while **dirty** or **flushed** (the record is
  not durable; a crash after the supervisor proceeds loses it);
* any write-family operation after ``close``;
* any read-family operation on the append handle — replaying a
  journal through its own append handle reads nothing (``"a"`` is
  write-only) and papers over a missing re-open.

The automaton is solved over the **normal-edge** CFG view
(:meth:`~repro.lint.flow.cfg.CFG.without_exceptional`): an exception
racing a half-appended record *is the crash model* — the torn tail
replay is designed to discard — so exception paths that abandon a
dirty handle are correct behaviour, not findings.  (Leaked handles on
exception paths are ``resource-paths``' jurisdiction.)
"""

import ast

from repro.lint.astutil import call_name, open_write_mode
from repro.lint.flow.dataflow import own_expressions
from repro.lint.flow.typestate import (
    Event,
    TypestateSpec,
    check_module_scopes,
)
from repro.lint.framework import LintPass, register

#: Callees that return an open file handle (append-mode acquisition).
_OPENERS = frozenset({"open", "io.open", "os.fdopen", "codecs.open"})

_WRITE_METHODS = frozenset({"write", "writelines"})
_READ_METHODS = frozenset({
    "read", "readline", "readlines", "readinto", "readall",
})
#: Benign probes that do not move the automaton.
_QUERY_METHODS = frozenset({
    "fileno", "tell", "seek", "isatty", "readable", "writable",
    "seekable",
})

#: (state, op) -> new state.  Missing pairs are protocol violations.
_TRANSITIONS = {
    ("opened", "write"): "dirty",
    ("opened", "flush"): "flushed",
    ("opened", "fsync"): "synced",    # nothing buffered: harmless
    ("opened", "close"): "closed",
    ("opened", "query"): "opened",
    ("dirty", "write"): "dirty",
    ("dirty", "flush"): "flushed",
    ("dirty", "query"): "dirty",
    ("flushed", "write"): "dirty",
    ("flushed", "flush"): "flushed",
    ("flushed", "fsync"): "synced",
    ("flushed", "query"): "flushed",
    ("synced", "write"): "dirty",
    ("synced", "flush"): "synced",
    ("synced", "fsync"): "synced",
    ("synced", "close"): "closed",
    ("synced", "query"): "synced",
    ("closed", "close"): "closed",    # double close is a no-op
}

_VIOLATION_DETAIL = {
    ("dirty", "fsync"): (
        "fsync before flush(): the record is still in the user-space"
        " buffer, so the fsync makes nothing durable"
    ),
    ("dirty", "close"): (
        "closed with an unflushed, unsynced record: a crash after this"
        " point silently loses a journal entry the supervisor already"
        " acted on"
    ),
    ("flushed", "close"): (
        "closed without fsync: the record is in the kernel but not on"
        " disk, so a machine crash still loses it"
    ),
    ("closed", "write"): "write after close",
    ("closed", "flush"): "flush after close",
    ("closed", "fsync"): "fsync after close",
    ("closed", "query"): "use after close",
}


class JournalProtocolSpec(TypestateSpec):
    name = "append journal handle"
    final_states = frozenset({"opened", "synced", "closed"})
    release_ops = frozenset({"flush", "fsync", "close"})
    include_exceptional = False

    # -- acquisitions ---------------------------------------------------

    def acquisitions(self, stmt):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and self._append_open(stmt.value):
            return ((stmt.targets[0].id, "opened"),)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = []
            for item in stmt.items:
                if self._append_open(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    acquired.append((item.optional_vars.id, "opened"))
            return acquired
        return ()

    @staticmethod
    def _append_open(node):
        if not (isinstance(node, ast.Call)
                and call_name(node) in _OPENERS):
            return False
        mode = open_write_mode(node)
        return mode is not None and "a" in mode

    # -- events ---------------------------------------------------------

    def events(self, stmt):
        events = []
        for expr in own_expressions(stmt):
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                # os.fsync(handle.fileno()) — the protocol's sync step.
                if call_name(node) in ("os.fsync", "fsync"):
                    for arg in node.args:
                        receiver = self._fileno_receiver(arg)
                        if receiver is not None:
                            events.append(Event(
                                receiver, "fsync", node.lineno
                            ))
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)):
                    continue
                var, method = func.value.id, func.attr
                if method in _WRITE_METHODS:
                    events.append(Event(var, "write", node.lineno))
                elif method == "flush":
                    events.append(Event(var, "flush", node.lineno))
                elif method == "close":
                    events.append(Event(var, "close", node.lineno))
                elif method in _READ_METHODS:
                    events.append(Event(var, "read", node.lineno))
                elif method in _QUERY_METHODS:
                    events.append(Event(var, "query", node.lineno))
        return events

    @staticmethod
    def _fileno_receiver(arg):
        """``handle`` out of ``handle.fileno()`` (or a bare ``fd`` name)."""
        if isinstance(arg, ast.Call) and isinstance(
            arg.func, ast.Attribute
        ) and arg.func.attr == "fileno" and isinstance(
            arg.func.value, ast.Name
        ):
            return arg.func.value.id
        if isinstance(arg, ast.Name):
            return arg.id
        return None

    # -- automaton ------------------------------------------------------

    def transition(self, state, op):
        return _TRANSITIONS.get((state, op))

    def violation_message(self, var, state, op):
        if op == "read":
            return (
                f"read from append-mode journal handle {var!r}:"
                " \"a\" handles are write-only, so a replay through"
                " this handle reads nothing — re-open the journal for"
                " reading instead"
            )
        detail = _VIOLATION_DETAIL.get(
            (state, op),
            f"the append protocol does not allow {op} in state {state}",
        )
        return f"{op} on journal handle {var!r}: {detail}"

    def leak_message(self, var, state, path):
        missing = "flush() and os.fsync()" if state == "dirty" \
            else "os.fsync()"
        return (
            f"append journal handle {var!r} may exit the scope without"
            f" {missing} (normal path: {path}); the last record is not"
            " durable, so a crash loses an entry the caller believes"
            " journalled"
        )


@register
class JournalProtocolPass(LintPass):
    id = "journal-protocol"
    description = (
        "append-mode journal handles must write→flush→fsync in order,"
        " never write after close, never read through the append handle"
    )

    def check_module(self, module, project):
        if "\"a\"" not in module.source and "'a'" not in module.source:
            return  # no append-mode literal anywhere: nothing to acquire
        for lineno, message in check_module_scopes(
            module.tree, JournalProtocolSpec()
        ):
            yield self.finding(module, lineno, message)
