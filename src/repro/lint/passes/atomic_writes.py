"""atomic-writes: result files must go through repro.robustness.atomic.

PR 1 made every archive/report/benchmark write crash-safe by routing
it through write-temp-then-rename helpers.  A direct ``open(path,
"w")``, ``np.savez``, ``json.dump`` or ``Path.write_text`` in library
code can leave a truncated file behind an interrupted run, silently
corrupting a sweep's results.  This pass flags those call sites
anywhere in ``src/repro`` outside ``robustness/`` (where the atomic
helpers themselves live).
"""

import ast

from repro.lint.astutil import call_name, open_write_mode
from repro.lint.framework import LintPass, register

EXEMPT_PREFIXES = ("src/repro/robustness/",)

#: Dotted callee names that persist data and bypass the atomic layer.
_SAVE_CALLS = frozenset({
    "np.savez",
    "np.savez_compressed",
    "np.save",
    "numpy.savez",
    "numpy.savez_compressed",
    "numpy.save",
    "json.dump",
    "pickle.dump",
})

#: Attribute names that write through a path object.
_PATH_WRITERS = frozenset({"write_text", "write_bytes"})

_HELP = (
    "; route the write through repro.robustness.atomic"
    " (atomic_write / atomic_write_text / atomic_savez)"
)


@register
class AtomicWritesPass(LintPass):
    id = "atomic-writes"
    description = (
        "direct file writes (open-for-write / np.savez / json.dump)"
        " must use the repro.robustness.atomic helpers"
    )

    def check_module(self, module, project):
        if module.relpath.startswith(EXEMPT_PREFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "open":
                mode = open_write_mode(node)
                if mode is not None:
                    yield self.finding(
                        module, node.lineno,
                        f"open(..., {mode!r}) writes directly" + _HELP,
                    )
            elif name in _SAVE_CALLS:
                yield self.finding(
                    module, node.lineno,
                    f"{name}(...) writes directly" + _HELP,
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _PATH_WRITERS
            ):
                yield self.finding(
                    module, node.lineno,
                    f".{node.func.attr}(...) writes directly" + _HELP,
                )
