"""kernel-abi: ctypes layouts and argtypes must match the C kernel.

``ckernel.py`` drives ``_mlpsim_kernel.c`` through :mod:`ctypes`:
``_KernelConfig``/``_KernelResult`` mirror the ``typedef struct``
layouts and ``mlpsim_batch.argtypes`` mirrors the function prototype.
Nothing checks any of it at runtime — ctypes trusts the caller, so a
reordered or retyped field silently reads the wrong bytes and the
equivalence suite turns into a debugging session (or, worse, passes on
one compiler's padding and fails on another's).

This pass extracts both sides (:mod:`repro.lint.clang_parity`) and
diffs them:

* every ctypes ``_fields_`` entry must match the C struct member at
  the same position — name, scalar type (``c_int64`` ↔ ``int64_t``),
  and array-ness;
* ``argtypes`` must match the C parameter list position by position
  (``c_void_p`` matches any pointer; ``POINTER(_X)`` matches ``X *``)
  and ``restype`` the C return type;
* a missing C source next to a live ``ckernel.py`` is itself a
  finding — deleting the kernel must not silently pass.

One finding per structure/prototype (the first mismatching position),
naming the Python and C lines of the disagreeing pair.
"""

import re

from repro.lint.clang_parity.pyextract import argtypes_wiring, ctypes_structs
from repro.lint.framework import LintPass, register

C_KERNEL_PATH = "src/repro/core/_mlpsim_kernel.c"
CKERNEL_PATH = "src/repro/core/ckernel.py"

#: ctypes scalar names and the C spellings they bind to.
_SCALARS = {
    "c_int8": "int8_t", "c_uint8": "uint8_t",
    "c_int16": "int16_t", "c_uint16": "uint16_t",
    "c_int32": "int32_t", "c_uint32": "uint32_t",
    "c_int64": "int64_t", "c_uint64": "uint64_t",
    "c_int": "int", "c_long": "long", "c_size_t": "size_t",
    "c_float": "float", "c_double": "double", "c_char": "char",
}

#: Python struct name -> C struct name (underscore-private convention).
_STRUCT_PAIRS = (
    ("_KernelConfig", "KernelConfig"),
    ("_KernelResult", "KernelResult"),
)

_C_ENTRY_POINT = "mlpsim_batch"


def _bare_ctype(c_type):
    """The C type with ``const`` qualifiers dropped."""
    return " ".join(token for token in c_type.split() if token != "const")


def _scalar_matches(py_ctype, c_type):
    bare = _bare_ctype(c_type)
    if py_ctype == "c_void_p":
        return bare.endswith("*")
    pointer = re.fullmatch(r"POINTER\((\w+)\)", py_ctype or "")
    if pointer:
        target = pointer.group(1)
        return bare in (f"{target} *", f"{target.lstrip('_')} *")
    return _SCALARS.get(py_ctype) == bare


@register
class KernelAbiPass(LintPass):
    id = "kernel-abi"
    description = (
        "ctypes struct layouts and argtypes in ckernel.py must match"
        " the structs and prototypes of _mlpsim_kernel.c"
    )

    def check_project(self, project):
        ck = project.module(CKERNEL_PATH)
        if ck is None or ck.tree is None:
            return
        extract = project.c_extract(C_KERNEL_PATH)
        if extract is None:
            yield self.finding(
                ck, 1,
                f"{C_KERNEL_PATH} is missing: ckernel.py binds a C"
                " kernel that is not in the tree",
            )
            return
        py_structs = ctypes_structs(ck.tree)
        for py_name, c_name in _STRUCT_PAIRS:
            py_struct = py_structs.get(py_name)
            if py_struct is None:
                continue
            yield from self._check_struct(ck, py_struct, c_name,
                                          extract.structs.get(c_name))
        yield from self._check_prototype(ck, extract)

    # -- struct layouts ------------------------------------------------

    def _check_struct(self, ck, py_struct, c_name, c_struct):
        if c_struct is None:
            yield self.finding(
                ck, py_struct.lineno,
                f"no `typedef struct ... {c_name};` found in"
                f" {C_KERNEL_PATH} for ctypes layout {py_struct.name}",
            )
            return
        for position, (py_field, c_field) in enumerate(
            zip(py_struct.fields, c_struct.fields)
        ):
            problem = None
            if py_field.name != c_field.name:
                problem = (
                    f"is {py_field.name!r} but the C struct declares"
                    f" {c_field.name!r}"
                )
            elif (py_field.array_len is None) != (c_field.array_len is None):
                py_kind = "an array" if py_field.array_len else "a scalar"
                c_kind = "an array" if c_field.array_len else "a scalar"
                problem = f"is {py_kind} but the C struct declares {c_kind}"
            elif not _scalar_matches(py_field.ctype, c_field.ctype):
                problem = (
                    f"has ctypes type {py_field.ctype} but the C struct"
                    f" declares {c_field.ctype}"
                )
            if problem is not None:
                yield self.finding(
                    ck, py_field.lineno,
                    f"{py_struct.name} field #{position}"
                    f" ({py_field.name!r}) {problem}"
                    f" ({C_KERNEL_PATH}:{c_field.lineno}); ctypes reads"
                    " raw offsets, so the layouts must match"
                    " field-for-field",
                )
                return
        if len(py_struct.fields) != len(c_struct.fields):
            yield self.finding(
                ck, py_struct.lineno,
                f"{py_struct.name} has {len(py_struct.fields)} fields"
                f" but {c_name} has {len(c_struct.fields)}"
                f" ({C_KERNEL_PATH}:{c_struct.lineno})",
            )

    # -- function prototype --------------------------------------------

    def _check_prototype(self, ck, extract):
        wirings = argtypes_wiring(ck.tree)
        if not wirings:
            return
        c_fn = extract.functions.get(_C_ENTRY_POINT)
        if c_fn is None:
            yield self.finding(
                ck, wirings[0].lineno,
                f"argtypes are wired but no exported {_C_ENTRY_POINT}()"
                f" definition was extracted from {C_KERNEL_PATH}",
            )
            return
        for wiring in wirings:
            if len(wiring.argtypes) != len(c_fn.params):
                yield self.finding(
                    ck, wiring.lineno,
                    f"argtypes lists {len(wiring.argtypes)} parameters"
                    f" but {_C_ENTRY_POINT} takes {len(c_fn.params)}"
                    f" ({C_KERNEL_PATH}:{c_fn.lineno})",
                )
                continue
            for position, ((py_ctype, py_lineno), (c_type, c_param)) in \
                    enumerate(zip(wiring.argtypes, c_fn.params)):
                if not _scalar_matches(py_ctype, c_type):
                    yield self.finding(
                        ck, py_lineno,
                        f"argtypes[{position}] is {py_ctype} but"
                        f" {_C_ENTRY_POINT} parameter"
                        f" {c_param or position} is {c_type}"
                        f" ({C_KERNEL_PATH}:{c_fn.lineno})",
                    )
                    break
            else:
                if wiring.restype is not None and not _scalar_matches(
                    wiring.restype, c_fn.return_type
                ):
                    yield self.finding(
                        ck, wiring.restype_lineno or wiring.lineno,
                        f"restype is {wiring.restype} but"
                        f" {_C_ENTRY_POINT} returns {c_fn.return_type}"
                        f" ({C_KERNEL_PATH}:{c_fn.lineno})",
                    )
