"""frozen-oracle: reference engines are immutable and self-contained.

PR 2 held the optimized MLPsim engine bit-identical to the frozen
pre-optimization engine ``repro.core.mlpsim_reference``; the cyclesim
performance overhaul froze the cycle-accurate pipeline simulator as
``repro.cyclesim.simulator_reference`` under the same protocol.  The
equivalence suites derive all their power from those files never
changing.  Two statically checkable properties protect each oracle:

* the oracle may not import the engine under test: a whole-module
  import of the optimized engine, or a ``from``-import of anything
  beyond the shared trace-plumbing helpers the frozen file has always
  used, would let the oracle delegate to the code it is supposed to
  validate, which proves nothing;
* its content SHA-256 must match the manifest pinned in
  :mod:`repro.lint.manifest` — editing an oracle without updating the
  manifest (a loud, reviewable diff) fails the build.

If the tree has an engine but no oracle at all, that is also reported:
deleting an oracle must not silently pass.
"""

import ast
import hashlib

from repro.lint import manifest
from repro.lint.framework import LintPass, register

ENGINE_PATH = "src/repro/core/mlpsim.py"
CYCLESIM_ENGINE_PATH = "src/repro/cyclesim/simulator.py"

#: One spec per frozen oracle: where it lives, the hash it is pinned
#: at, the optimized engine it validates (and so must not import), the
#: spellings under which that engine can be imported, the package a
#: ``from <package> import <name>`` re-export would come from, and the
#: shared trace-plumbing names the oracle has always legitimately
#: imported from the engine module (anything else — ``simulate``, the
#: interpreter tables, ``*`` — is delegation).
_ORACLE_SPECS = (
    {
        "oracle_path": manifest.ORACLE_PATH,
        "sha256": manifest.ORACLE_SHA256,
        "engine_path": ENGINE_PATH,
        "engine_modules": ("repro.core.mlpsim", "mlpsim"),
        "engine_package": "repro.core",
        "engine_name": "mlpsim",
        "allowed_from_engine": frozenset({
            "NOT_EXECUTED", "event_masks", "resolve_region",
        }),
    },
    {
        "oracle_path": manifest.CYCLESIM_ORACLE_PATH,
        "sha256": manifest.CYCLESIM_ORACLE_SHA256,
        "engine_path": CYCLESIM_ENGINE_PATH,
        "engine_modules": ("repro.cyclesim.simulator", "simulator"),
        "engine_package": "repro.cyclesim",
        "engine_name": "simulator",
        # The cyclesim oracle shares nothing with its optimized engine
        # (its mlpsim plumbing imports come from repro.core.mlpsim, a
        # different module): any from-import here is delegation.
        "allowed_from_engine": frozenset(),
    },
)


def _imports_engine(node, spec):
    if isinstance(node, ast.Import):
        return any(
            alias.name in spec["engine_modules"] for alias in node.names
        )
    if isinstance(node, ast.ImportFrom):
        if node.module in spec["engine_modules"]:
            return any(
                alias.name not in spec["allowed_from_engine"]
                for alias in node.names
            )
        if node.module == spec["engine_package"] or (
            node.level >= 1 and node.module in (None, "")
        ):
            return any(
                alias.name == spec["engine_name"] for alias in node.names
            )
    return False


@register
class FrozenOraclePass(LintPass):
    id = "frozen-oracle"
    description = (
        "frozen reference engines must match their pinned hashes and"
        " must not import the engine under test"
    )

    def check_project(self, project):
        for spec in _ORACLE_SPECS:
            yield from self._check_oracle(project, spec)

    def _check_oracle(self, project, spec):
        oracle = project.module(spec["oracle_path"])
        if oracle is None:
            if project.module(spec["engine_path"]) is not None:
                yield self.finding(
                    spec["engine_path"], 1,
                    f"{spec['oracle_path']} is missing: the frozen"
                    " oracle must exist alongside the engine",
                )
            return
        if oracle.tree is not None:
            for node in ast.walk(oracle.tree):
                if _imports_engine(node, spec):
                    yield self.finding(
                        oracle, node.lineno,
                        "the frozen oracle imports"
                        f" {spec['engine_modules'][0]}; the reference"
                        " engine must stay independent of the engine it"
                        " validates",
                    )
        digest = hashlib.sha256(oracle.source.encode()).hexdigest()
        if digest != spec["sha256"]:
            yield self.finding(
                oracle, 1,
                "content hash does not match the pinned manifest"
                f" (got {digest[:12]}…, pinned"
                f" {spec['sha256'][:12]}…); the oracle is frozen"
                " — revert the edit, or update repro.lint.manifest in"
                " the same reviewed change",
            )
