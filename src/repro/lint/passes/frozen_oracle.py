"""frozen-oracle: mlpsim_reference is immutable and self-contained.

PR 2 held the optimized MLPsim engine bit-identical to the frozen
pre-optimization engine ``repro.core.mlpsim_reference``; the
engine-equivalence suite derives all its power from that file never
changing.  Two statically checkable properties protect it:

* the oracle may not import the engine under test: a whole-module
  import of ``repro.core.mlpsim`` or a ``from``-import of anything
  beyond the three shared trace-plumbing helpers the frozen file has
  always used (``NOT_EXECUTED``, ``event_masks``, ``resolve_region``)
  would let the oracle delegate to the code it is supposed to
  validate, which proves nothing;
* its content SHA-256 must match the manifest pinned in
  :mod:`repro.lint.manifest` — editing the oracle without updating the
  manifest (a loud, reviewable diff) fails the build.

If the tree has an engine but no oracle at all, that is also reported:
deleting the oracle must not silently pass.
"""

import ast
import hashlib

from repro.lint import manifest
from repro.lint.framework import LintPass, register

ENGINE_PATH = "src/repro/core/mlpsim.py"

#: Module spellings that resolve to the engine under test.
_ENGINE_MODULES = ("repro.core.mlpsim", "mlpsim")

#: Shared trace-plumbing names the frozen oracle has always imported
#: from the engine module; anything else (simulate, the interpreter
#: tables, ``*``) is delegation.
_ALLOWED_FROM_ENGINE = frozenset({
    "NOT_EXECUTED", "event_masks", "resolve_region",
})


def _imports_engine(node):
    if isinstance(node, ast.Import):
        return any(
            alias.name in _ENGINE_MODULES for alias in node.names
        )
    if isinstance(node, ast.ImportFrom):
        if node.module in _ENGINE_MODULES:
            return any(
                alias.name not in _ALLOWED_FROM_ENGINE
                for alias in node.names
            )
        if node.module == "repro.core" or (
            node.level >= 1 and node.module in (None, "")
        ):
            return any(alias.name == "mlpsim" for alias in node.names)
    return False


@register
class FrozenOraclePass(LintPass):
    id = "frozen-oracle"
    description = (
        "mlpsim_reference.py must match its pinned hash and must not"
        " import the engine under test"
    )

    def check_project(self, project):
        oracle = project.module(manifest.ORACLE_PATH)
        if oracle is None:
            if project.module(ENGINE_PATH) is not None:
                yield self.finding(
                    ENGINE_PATH, 1,
                    f"{manifest.ORACLE_PATH} is missing: the frozen"
                    " oracle must exist alongside the engine",
                )
            return
        if oracle.tree is not None:
            for node in ast.walk(oracle.tree):
                if _imports_engine(node):
                    yield self.finding(
                        oracle, node.lineno,
                        "the frozen oracle imports repro.core.mlpsim;"
                        " the reference engine must stay independent of"
                        " the engine it validates",
                    )
        digest = hashlib.sha256(oracle.source.encode()).hexdigest()
        if digest != manifest.ORACLE_SHA256:
            yield self.finding(
                oracle, 1,
                "content hash does not match the pinned manifest"
                f" (got {digest[:12]}…, pinned"
                f" {manifest.ORACLE_SHA256[:12]}…); the oracle is frozen"
                " — revert the edit, or update repro.lint.manifest in"
                " the same reviewed change",
            )
