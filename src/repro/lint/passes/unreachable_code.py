"""unreachable-code: every statement must be reachable from entry.

Dead code in a reproduction is not just clutter — it is usually a
*silently disabled check or fixup*: a consistency assertion parked
after an unconditional ``raise``, cleanup after a ``return`` that was
added later, an experiment arm cut off by ``while True`` with no
``break``.  This pass builds the CFG of every scope (module bodies,
functions, methods at any nesting) and reports statements with no
control-flow path from the scope's entry.

Only the *head* of each dead region is reported: for a block of five
statements behind an unconditional ``raise``, one finding points at
the first of them, and statements nested inside an already-dead
statement are not re-reported.
"""

from repro.lint.flow.cfg import build_cfg, iter_scopes
from repro.lint.framework import LintPass, register


@register
class UnreachableCodePass(LintPass):
    id = "unreachable-code"
    description = (
        "statements with no control-flow path from scope entry"
        " (e.g. code after an unconditional raise or return)"
    )

    def check_module(self, module, project):
        for scope_name, scope in iter_scopes(module.tree):
            cfg = build_cfg(scope, name=scope_name)
            reachable = cfg.reachable()
            for parent, tops in cfg.blocks:
                in_dead_run = False
                for index in tops:
                    if index in reachable:
                        in_dead_run = False
                        continue
                    if in_dead_run:
                        continue
                    in_dead_run = True
                    if parent is not None and parent not in reachable:
                        continue  # nested inside already-reported code
                    stmt = cfg.nodes[index]
                    yield self.finding(
                        module, stmt.lineno,
                        f"unreachable code in {scope_name}: no"
                        " control-flow path from entry reaches this"
                        " statement",
                    )
