"""sweep-race: process-pool workers must not mutate shared state.

The parallel sweep backend (PR 2) forks workers that inherit the
parent's modules copy-on-write.  A worker that stores to a module
global, a class attribute or a closed-over mutable *appears* to work —
each forked child updates its own copy — but the parent never sees the
writes, so the "shared" accumulator is silently empty (and under the
``spawn`` start method the same code races or pickles stale state).
The only safe protocol is the one ``repro.analysis.parallel`` uses:
workers receive arguments, return results, and the parent aggregates.

This pass finds every function submitted to a pool — the first
argument of ``.submit(f, ...)`` / ``.map(f, ...)`` / ``.starmap`` /
``.imap`` / ``.apply_async`` calls — and checks, through the module
call graph, that neither the worker nor any helper it transitively
calls stores outside its local scope: no ``global`` assignment, no
``STATE[...] = ...`` / ``STATE.attr = ...`` on a module-level name, no
``SomeClass.attr = ...``, no ``shared.append(...)``-style in-place
mutation of a closed-over or global container.

Pool *initializers* (``ProcessPoolExecutor(initializer=...)``) are
deliberately exempt: priming per-worker module state is their job.
"""

import ast

from repro.lint.flow.summaries import ModuleSummaries
from repro.lint.framework import LintPass, register

#: Attribute-call names whose first argument is run on pool workers.
_SUBMIT_METHODS = frozenset({
    "submit", "map", "starmap", "imap", "imap_unordered", "apply_async",
})


def _submitted_functions(tree):
    """``{function_name: first submit line}`` for pool-submitted names."""
    submitted = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in _SUBMIT_METHODS or not node.args:
            continue
        target = node.args[0]
        if isinstance(target, ast.Name):
            submitted.setdefault(target.id, node.lineno)
    return submitted


@register
class SweepRacePass(LintPass):
    id = "sweep-race"
    description = (
        "functions submitted to a process pool must not store to"
        " module globals, class attributes or closed-over mutables"
    )

    def check_module(self, module, project):
        submitted = _submitted_functions(module.tree)
        if not submitted:
            return
        summaries = ModuleSummaries(module.tree)
        reported = set()
        for worker, submit_line in sorted(submitted.items()):
            if worker not in summaries.functions:
                continue  # imported or builtin callable — out of scope
            for mutation, chain in summaries.external_mutations(worker):
                key = (mutation.lineno, mutation.kind, mutation.name)
                if key in reported:
                    continue
                reported.add(key)
                if len(chain) > 1:
                    via = " -> ".join(chain)
                    route = f" (reached via {via})"
                else:
                    route = ""
                yield self.finding(
                    module, mutation.lineno,
                    f"{mutation.func}() stores to"
                    f" {mutation.describe()} but {worker}() is"
                    f" submitted to a process pool at line"
                    f" {submit_line}{route}; forked workers mutate a"
                    " copy the parent never sees — return results"
                    " instead",
                )
