"""schema-version: payload layout changes must bump the schema version.

The columnar plan payload (:func:`repro.core.columnar.plan_payload`)
is persisted — spilled to workers over shared memory, written into the
annotation disk cache keyed on ``COLUMNAR_SCHEMA_VERSION``.  Adding,
removing, reordering or retyping a column while leaving the version
number alone lets a new build deserialize stale cached payloads as if
they were current: not a crash, a silent mis-read.

The pass extracts the column set ``plan_payload`` packs (the
``PLAN_COLUMNS`` table plus any extra literal keys the function
stores), fingerprints it, and compares fingerprint and declared
version against the pins in :mod:`repro.lint.manifest`:

===================  ==================  ===============================
fingerprint          declared version    meaning
===================  ==================  ===============================
matches pin          matches pin         clean
differs              matches pin         **schema changed without a
                                         version bump** — the bug this
                                         pass exists for
differs              differs             schema changed and version
                                         bumped: regenerate the manifest
                                         (``repro lint
                                         --manifest-update``)
matches pin          differs             version bumped with no schema
                                         change, or a stale manifest
===================  ==================  ===============================

Exactly one finding per state, so a mutated column set points at one
line (the ``PLAN_COLUMNS`` table) with one instruction.
"""

from repro.lint import manifest
from repro.lint.clang_parity.pyextract import (
    int_constant,
    payload_extras,
    plan_columns,
    schema_fingerprint,
)
from repro.lint.framework import LintPass, register


@register
class SchemaVersionPass(LintPass):
    id = "schema-version"
    description = (
        "the plan_payload column set is fingerprinted in the lint"
        " manifest; changing it requires a COLUMNAR_SCHEMA_VERSION bump"
    )

    def check_project(self, project):
        module = project.module(manifest.PAYLOAD_SCHEMA_PATH)
        if module is None or module.tree is None:
            return
        columns = plan_columns(module.tree)
        version = int_constant(module.tree, "COLUMNAR_SCHEMA_VERSION")
        if columns is None or version is None:
            missing = ("PLAN_COLUMNS" if columns is None
                       else "COLUMNAR_SCHEMA_VERSION")
            yield self.finding(
                module, 1,
                f"could not extract {missing} from"
                f" {manifest.PAYLOAD_SCHEMA_PATH}; the payload schema"
                " cannot be verified against the manifest",
            )
            return
        column_list, columns_lineno = columns
        declared_version, version_lineno = version
        fingerprint = schema_fingerprint(
            column_list, payload_extras(module.tree)
        )
        fingerprint_ok = fingerprint == manifest.PAYLOAD_SCHEMA_SHA256
        version_ok = declared_version == manifest.PAYLOAD_SCHEMA_VERSION
        if fingerprint_ok and version_ok:
            return
        if not fingerprint_ok and version_ok:
            yield self.finding(
                module, columns_lineno,
                "the plan_payload column set changed but"
                f" COLUMNAR_SCHEMA_VERSION is still {declared_version}:"
                " cached payloads written under the old layout would"
                " deserialize silently as the new one — bump the"
                " version, then run `repro lint --manifest-update`",
            )
        elif not fingerprint_ok:
            yield self.finding(
                module, columns_lineno,
                "the plan_payload column set changed and the version was"
                f" bumped to {declared_version}; regenerate the pinned"
                " fingerprint with `repro lint --manifest-update` in the"
                " same reviewed change",
            )
        else:
            yield self.finding(
                module, version_lineno,
                f"COLUMNAR_SCHEMA_VERSION is {declared_version} but the"
                f" manifest pins {manifest.PAYLOAD_SCHEMA_VERSION} for"
                " an unchanged column set: either revert the bump or run"
                " `repro lint --manifest-update` after the schema edit"
                " it was meant for",
            )
