"""The built-in reprolint passes.

Importing this package registers every pass with the framework
registry (each module applies the :func:`repro.lint.framework.register`
decorator at class-definition time).  Add a new pass by dropping a
module here and importing it below — see ``docs/STATIC_ANALYSIS.md``.
"""

from repro.lint.passes import (  # noqa: F401  (imported for registration)
    atomic_writes,
    config_attrs,
    determinism,
    error_hierarchy,
    exhibit_registry,
    frozen_oracle,
    journal_protocol,
    kernel_abi,
    kernel_bounds,
    kernel_constants,
    kernel_overflow,
    plan_contract,
    resource_paths,
    schema_version,
    seed_provenance,
    shm_lifetime,
    signal_safety,
    sweep_race,
    unreachable_code,
)
