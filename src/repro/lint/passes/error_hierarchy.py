"""error-hierarchy: rejections must raise a ReproError subclass.

PR 1 introduced the :mod:`repro.robustness.errors` hierarchy so every
rejection carries a path/field and stays ``ValueError``-compatible.
This pass makes the convention load-bearing: any ``raise`` of a bare
stdlib exception inside ``src/repro`` is a violation.

Exemptions:

* ``src/repro/robustness/`` — the hierarchy's own home (its tests and
  fault harness raise bare exceptions on purpose);
* ``src/repro/core/mlpsim_reference.py`` — the frozen oracle may not
  be edited (the ``frozen-oracle`` pass pins its content hash);
* ``NotImplementedError`` / ``StopIteration`` and re-raises
  (``raise`` with no expression) — standard Python idioms, not
  rejections.
"""

import ast

from repro.lint.astutil import dotted_name
from repro.lint.framework import LintPass, register

#: Stdlib exceptions that indicate an unconverted rejection site.
BARE_EXCEPTIONS = frozenset({
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "RuntimeError",
    "ArithmeticError",
    "ZeroDivisionError",
    "AttributeError",
    "OSError",
    "IOError",
})

EXEMPT_PREFIXES = ("src/repro/robustness/",)
EXEMPT_FILES = ("src/repro/core/mlpsim_reference.py",)


@register
class ErrorHierarchyPass(LintPass):
    id = "error-hierarchy"
    description = (
        "raise statements in src/repro must use a ReproError subclass,"
        " not a bare stdlib exception"
    )

    def check_module(self, module, project):
        if module.relpath.startswith(EXEMPT_PREFIXES):
            return
        if module.relpath in EXEMPT_FILES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc)
            if name in BARE_EXCEPTIONS:
                yield self.finding(
                    module, node.lineno,
                    f"raises bare {name}; use a ReproError subclass from"
                    " repro.robustness.errors (ConfigError,"
                    " TraceFormatError, SimulationError, InternalError)",
                )
