"""Dataflow machinery for reprolint's semantic passes.

Three layers, each usable on its own:

* :mod:`repro.lint.flow.cfg` — intraprocedural control-flow graphs
  over the ``ast`` (branches, loops with ``else``, ``try``/``except``/
  ``finally``, ``with``, early exits, exception edges);
* :mod:`repro.lint.flow.dataflow` — a worklist fixpoint solver with
  two instantiations: reaching definitions and a powerset taint
  lattice;
* :mod:`repro.lint.flow.summaries` — a module-level call graph with
  per-function return-taint and external-mutation summaries, lifting
  the intraprocedural results across helper calls.

See ``docs/STATIC_ANALYSIS.md`` for the architecture and a guide to
writing a dataflow pass.
"""

from repro.lint.flow.cfg import CFG, build_cfg
from repro.lint.flow.dataflow import (
    TaintAnalysis,
    bindings,
    own_expressions,
    reaching_definitions,
    solve_forward,
)
from repro.lint.flow.summaries import ModuleSummaries, Mutation

__all__ = [
    "CFG",
    "build_cfg",
    "TaintAnalysis",
    "bindings",
    "own_expressions",
    "reaching_definitions",
    "solve_forward",
    "ModuleSummaries",
    "Mutation",
]
